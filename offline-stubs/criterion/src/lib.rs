//! Offline stand-in for `criterion`.
//!
//! Keeps the macro/builder API the workspace benches use, but measures with
//! plain wall-clock timing: each `bench_function` runs a short warmup, then
//! `sample_size` timed samples, and prints mean/min per iteration. No
//! statistics beyond that, no HTML reports, no CLI filtering.

use std::time::{Duration, Instant};

#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..self.samples.capacity() {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                std::hint::black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..self.samples.capacity() {
            let inputs: Vec<I> = (0..self.iters_per_sample).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                std::hint::black_box(routine(input));
            }
            self.samples.push(start.elapsed());
        }
    }

    pub fn iter_batched_ref<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(&mut I) -> O,
    {
        for _ in 0..self.samples.capacity() {
            let mut inputs: Vec<I> = (0..self.iters_per_sample).map(|_| setup()).collect();
            let start = Instant::now();
            for input in &mut inputs {
                std::hint::black_box(routine(input));
            }
            self.samples.push(start.elapsed());
        }
    }
}

fn run_bench(id: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    // Calibrate iteration count so one sample takes roughly 5 ms.
    let mut iters_per_sample = 1u64;
    loop {
        let mut probe = Bencher {
            samples: Vec::with_capacity(1),
            iters_per_sample,
        };
        f(&mut probe);
        let elapsed = probe.samples.first().copied().unwrap_or_default();
        if elapsed >= Duration::from_millis(5) || iters_per_sample >= 1 << 20 {
            break;
        }
        iters_per_sample *= 2;
    }

    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size.max(1)),
        iters_per_sample,
    };
    f(&mut b);

    let per_iter: Vec<f64> = b
        .samples
        .iter()
        .map(|d| d.as_secs_f64() / iters_per_sample as f64)
        .collect();
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let min = per_iter.iter().copied().fold(f64::INFINITY, f64::min);
    println!(
        "{id:<48} mean {:>12}  min {:>12}  ({} samples x {} iters)",
        fmt_time(mean),
        fmt_time(min),
        per_iter.len(),
        iters_per_sample
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Accepted for CLI compatibility; this stub always runs everything.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_bench(id, self.sample_size, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size,
        }
    }

    pub fn final_summary(&mut self) {}
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_bench(&full, self.sample_size, &mut f);
        self
    }

    pub fn finish(self) {}
}

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default().configure_from_args();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut calls = 0u64;
        {
            let mut c = Criterion::default().sample_size(2);
            c.bench_function("smoke", |b| b.iter(|| calls += 1));
        }
        assert!(calls > 0);
    }

    #[test]
    fn group_and_batched_run() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("grp");
        g.sample_size(2).bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u32, 2, 3],
                |v| v.iter().sum::<u32>(),
                BatchSize::SmallInput,
            )
        });
        g.finish();
    }
}
