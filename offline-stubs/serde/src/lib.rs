//! Offline stand-in for `serde` (+`serde_derive`).
//!
//! Instead of serde's visitor architecture, this stub runs everything
//! through one JSON-shaped value tree ([`Value`]): `Serialize` renders a
//! value into the tree and `Deserialize` reads one back out. `serde_json`
//! (the sibling stub) adds the actual text parsing/printing on top. The
//! trait *names* and derive ergonomics match real serde for the attribute
//! surface this workspace uses: container/field `default`,
//! `rename_all = "snake_case"`, internally tagged enums (`tag = "..."`),
//! and `try_from`/`into` conversions.

pub use serde_derive::{Deserialize, Serialize};

/// JSON-shaped data tree shared by the serde and serde_json stubs.
///
/// `Object` deliberately holds a `Vec` of pairs (insertion order preserved,
/// tuple-pattern `retain` works), which is what the workspace's tests rely
/// on.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            Value::I64(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(v) => Some(*v),
            Value::U64(v) if *v <= i64::MAX as u64 => Some(*v as i64),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(v) => Some(*v),
            Value::U64(v) => Some(*v as f64),
            Value::I64(v) => Some(*v as f64),
            _ => None,
        }
    }

    pub fn is_u64(&self) -> bool {
        self.as_u64().is_some()
    }

    pub fn is_number(&self) -> bool {
        matches!(self, Value::U64(_) | Value::I64(_) | Value::F64(_))
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    /// Missing keys and non-objects index to `Null`, like serde_json.
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl std::ops::Index<&String> for Value {
    type Output = Value;
    fn index(&self, key: &String) -> &Value {
        &self[key.as_str()]
    }
}

// Literal comparisons used all over the workspace's tests
// (`v["cost"] == 2.0`, `v["backend"] == "annealer"`, ...).
impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}
impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}
impl PartialEq<i32> for Value {
    fn eq(&self, other: &i32) -> bool {
        self.as_i64() == Some(i64::from(*other))
    }
}
impl PartialEq<usize> for Value {
    fn eq(&self, other: &usize) -> bool {
        self.as_u64() == Some(*other as u64)
    }
}
impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}
impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}
impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}
impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

/// Deserialization failure: a plain message, like `serde::de::Error`.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl DeError {
    pub fn custom(msg: impl std::fmt::Display) -> Self {
        DeError(msg.to_string())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Renders `self` into the shared value tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Reads `Self` back out of the value tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---- primitive impls ----------------------------------------------------

macro_rules! ser_uint {
    ($($ty:ty),+) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $ty {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = v
                    .as_u64()
                    .ok_or_else(|| DeError(format!("expected unsigned integer, got {v:?}")))?;
                <$ty>::try_from(raw)
                    .map_err(|_| DeError(format!("{raw} out of range for {}", stringify!($ty))))
            }
        }
    )+};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($ty:ty),+) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::U64(v as u64) } else { Value::I64(v) }
            }
        }
        impl Deserialize for $ty {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = v
                    .as_i64()
                    .ok_or_else(|| DeError(format!("expected integer, got {v:?}")))?;
                <$ty>::try_from(raw)
                    .map_err(|_| DeError(format!("{raw} out of range for {}", stringify!($ty))))
            }
        }
    )+};
}
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
            .ok_or_else(|| DeError(format!("expected number, got {v:?}")))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(f64::from_value(v)? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool()
            .ok_or_else(|| DeError(format!("expected bool, got {v:?}")))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError(format!("expected string, got {v:?}")))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError(format!("expected array, got {v:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! ser_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(items) if items.len() == ser_tuple!(@count $($name)+) => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    _ => Err(DeError(format!(
                        "expected {}-tuple, got {v:?}",
                        ser_tuple!(@count $($name)+)
                    ))),
                }
            }
        }
    )+};
    (@count $($name:ident)+) => { [$(ser_tuple!(@one $name)),+].len() };
    (@one $name:ident) => { () };
}
ser_tuple!(
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("secs".to_string(), Value::U64(self.as_secs())),
            (
                "nanos".to_string(),
                Value::U64(u64::from(self.subsec_nanos())),
            ),
        ])
    }
}
impl Deserialize for std::time::Duration {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let secs = v
            .get("secs")
            .and_then(Value::as_u64)
            .ok_or_else(|| DeError("Duration missing `secs`".to_string()))?;
        let nanos = v
            .get("nanos")
            .and_then(Value::as_u64)
            .ok_or_else(|| DeError("Duration missing `nanos`".to_string()))?;
        let nanos =
            u32::try_from(nanos).map_err(|_| DeError("Duration nanos overflow".to_string()))?;
        Ok(std::time::Duration::new(secs, nanos))
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl<K: ToString, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_indexing_and_literal_comparisons() {
        let v = Value::Object(vec![
            ("cost".into(), Value::F64(2.0)),
            ("hits".into(), Value::U64(1)),
            ("backend".into(), Value::String("annealer".into())),
            ("hit".into(), Value::Bool(false)),
        ]);
        assert_eq!(v["cost"], 2.0);
        assert_eq!(v["hits"], 1);
        assert_eq!(v["backend"], "annealer");
        assert_eq!(v["hit"], false);
        assert!(v["missing"].is_null());
        assert!(v["hits"].is_u64());
        assert!(v["cost"].is_number());
    }

    #[test]
    fn option_and_tuple_round_trip() {
        let x: (u32, f64) = (7, -1.5);
        let v = x.to_value();
        assert_eq!(<(u32, f64)>::from_value(&v).unwrap(), x);
        assert_eq!(Option::<u64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u64>::from_value(&Value::U64(3)).unwrap(), Some(3));
    }
}

/// JSON printing shared with the serde_json stub (which cannot implement
/// `Display` for the foreign `Value` type itself).
#[doc(hidden)]
pub mod __print {
    use super::Value;

    // ---- printer ------------------------------------------------------------

    pub fn write_escaped(s: &str, out: &mut String) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }

    pub fn write_f64(v: f64, out: &mut String) -> std::result::Result<(), String> {
        if !v.is_finite() {
            return Err(format!("cannot serialize non-finite float {v}"));
        }
        let s = format!("{v}");
        out.push_str(&s);
        // Rust prints integral floats without a fraction ("2"); keep the float
        // type visible in the JSON like serde_json does ("2.0").
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
        Ok(())
    }

    pub fn write_value(
        v: &Value,
        out: &mut String,
        indent: Option<usize>,
        level: usize,
    ) -> std::result::Result<(), String> {
        let (nl, pad, pad_in, colon) = match indent {
            Some(w) => (
                "\n",
                " ".repeat(w * level),
                " ".repeat(w * (level + 1)),
                ": ",
            ),
            None => ("", String::new(), String::new(), ":"),
        };
        match v {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::U64(n) => out.push_str(&n.to_string()),
            Value::I64(n) => out.push_str(&n.to_string()),
            Value::F64(x) => write_f64(*x, out)?,
            Value::String(s) => write_escaped(s, out),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return Ok(());
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_value(item, out, indent, level + 1)?;
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Value::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return Ok(());
                }
                out.push('{');
                for (i, (k, val)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_escaped(k, out);
                    out.push_str(colon);
                    write_value(val, out, indent, level + 1)?;
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
        Ok(())
    }
}

impl std::fmt::Display for Value {
    /// Compact JSON, like `serde_json::Value`'s `Display`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        __print::write_value(self, &mut out, None, 0).map_err(|_| std::fmt::Error)?;
        f.write_str(&out)
    }
}
