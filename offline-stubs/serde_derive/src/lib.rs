//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! offline serde stub. No syn/quote — the item is parsed directly from the
//! proc-macro token trees, covering exactly the shapes this workspace uses:
//!
//! - named-field structs (container- and field-level `#[serde(default)]`)
//! - newtype structs (`pub struct PlanId(pub u32);`) — transparent
//! - unit enums, with optional `rename_all = "snake_case"`
//! - internally tagged enums (`tag = "..."` + `rename_all`) with unit and
//!   named-field variants
//! - `try_from = "Proxy"`, `into = "Proxy"` conversions
//!
//! Unknown fields are ignored on deserialize (serde's default behavior).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Default, Debug)]
struct ContainerAttrs {
    default: bool,
    rename_all_snake: bool,
    tag: Option<String>,
    try_from: Option<String>,
    into: Option<String>,
}

#[derive(Debug)]
struct Field {
    name: String,
    default: bool,
}

#[derive(Debug)]
struct Variant {
    name: String,
    /// `None` ⇒ unit variant; `Some(fields)` ⇒ named-field variant.
    fields: Option<Vec<Field>>,
}

#[derive(Debug)]
enum Data {
    NamedStruct(Vec<Field>),
    Newtype,
    Enum(Vec<Variant>),
}

struct Container {
    name: String,
    attrs: ContainerAttrs,
    data: Data,
}

// ---- parsing ------------------------------------------------------------

/// Splits `key = "value"` / bare `key` pieces of a `#[serde(...)]` list.
fn parse_serde_args(group: &str, attrs: &mut ContainerAttrs, field_default: &mut bool) {
    for piece in group.split(',') {
        let piece = piece.trim();
        if piece.is_empty() {
            continue;
        }
        let (key, value) = match piece.split_once('=') {
            Some((k, v)) => (k.trim(), Some(v.trim().trim_matches('"').to_string())),
            None => (piece, None),
        };
        match (key, value) {
            ("default", None) => {
                attrs.default = true;
                *field_default = true;
            }
            ("rename_all", Some(v)) => {
                assert_eq!(v, "snake_case", "only snake_case rename_all is supported");
                attrs.rename_all_snake = true;
            }
            ("tag", Some(v)) => attrs.tag = Some(v),
            ("try_from", Some(v)) => attrs.try_from = Some(v),
            ("into", Some(v)) => attrs.into = Some(v),
            other => panic!("unsupported serde attribute: {other:?}"),
        }
    }
}

/// Consumes a leading run of `#[...]` attributes; returns whether a
/// `#[serde(default)]` was present and merges container-level args.
fn take_attrs(
    tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>,
) -> (ContainerAttrs, bool) {
    let mut attrs = ContainerAttrs::default();
    let mut field_default = false;
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                let Some(TokenTree::Group(g)) = tokens.next() else {
                    panic!("expected [...] after #");
                };
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                if let Some(TokenTree::Ident(id)) = inner.first() {
                    if id.to_string() == "serde" {
                        if let Some(TokenTree::Group(args)) = inner.get(1) {
                            parse_serde_args(
                                &args.stream().to_string(),
                                &mut attrs,
                                &mut field_default,
                            );
                        }
                    }
                }
            }
            _ => break,
        }
    }
    (attrs, field_default)
}

/// Skips `pub`, `pub(crate)` etc.
fn skip_visibility(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    if matches!(tokens.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        tokens.next();
        if matches!(tokens.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            tokens.next();
        }
    }
}

/// Parses `name: Type, ...` named fields, tracking `<...>` depth so commas
/// inside generic arguments do not split fields.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        if tokens.peek().is_none() {
            break;
        }
        let (_, field_default) = take_attrs(&mut tokens);
        if tokens.peek().is_none() {
            break;
        }
        skip_visibility(&mut tokens);
        let Some(TokenTree::Ident(name)) = tokens.next() else {
            panic!("expected field name");
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{name}`, got {other:?}"),
        }
        // Skip the type up to the next top-level comma.
        let mut angle_depth = 0i32;
        for tt in tokens.by_ref() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
        fields.push(Field {
            name: name.to_string(),
            default: field_default,
        });
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        if tokens.peek().is_none() {
            break;
        }
        let _ = take_attrs(&mut tokens);
        let Some(tt) = tokens.next() else { break };
        let TokenTree::Ident(name) = tt else {
            panic!("expected variant name, got {tt:?}");
        };
        let fields = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = g.stream();
                tokens.next();
                Some(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("tuple enum variants are not supported by the serde stub");
            }
            _ => None,
        };
        // Trailing comma / discriminant are not expected beyond `,`.
        if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            tokens.next();
        }
        variants.push(Variant {
            name: name.to_string(),
            fields,
        });
    }
    variants
}

fn parse_container(input: TokenStream) -> Container {
    let mut tokens = input.into_iter().peekable();
    let (attrs, _) = take_attrs(&mut tokens);
    skip_visibility(&mut tokens);
    let Some(TokenTree::Ident(kind)) = tokens.next() else {
        panic!("expected struct/enum");
    };
    let kind = kind.to_string();
    let Some(TokenTree::Ident(name)) = tokens.next() else {
        panic!("expected type name");
    };
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("generic types are not supported by the serde stub");
    }
    let data = match (kind.as_str(), tokens.next()) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Data::NamedStruct(parse_named_fields(g.stream()))
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            let n = g
                .stream()
                .into_iter()
                .filter(|tt| matches!(tt, TokenTree::Punct(p) if p.as_char() == ','))
                .count()
                + 1;
            assert_eq!(n, 1, "only single-field tuple structs are supported");
            Data::Newtype
        }
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Data::Enum(parse_variants(g.stream()))
        }
        other => panic!("unsupported item shape: {kind} {other:?}"),
    };
    Container {
        name: name.to_string(),
        attrs,
        data,
    }
}

fn snake_case(name: &str) -> String {
    let mut out = String::new();
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.push(c.to_ascii_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

fn variant_key(attrs: &ContainerAttrs, name: &str) -> String {
    if attrs.rename_all_snake {
        snake_case(name)
    } else {
        name.to_string()
    }
}

// ---- code generation ----------------------------------------------------

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let c = parse_container(input);
    let name = &c.name;
    let body = if let Some(proxy) = &c.attrs.into {
        format!(
            "let __proxy: {proxy} = std::convert::Into::into(std::clone::Clone::clone(self));\n\
             serde::Serialize::to_value(&__proxy)"
        )
    } else {
        match &c.data {
            Data::Newtype => "serde::Serialize::to_value(&self.0)".to_string(),
            Data::NamedStruct(fields) => {
                let mut s =
                    String::from("let mut __fields: Vec<(String, serde::Value)> = Vec::new();\n");
                for f in fields {
                    s.push_str(&format!(
                        "__fields.push((\"{0}\".to_string(), serde::Serialize::to_value(&self.{0})));\n",
                        f.name
                    ));
                }
                s.push_str("serde::Value::Object(__fields)");
                s
            }
            Data::Enum(variants) => {
                let mut arms = String::new();
                if let Some(tag) = &c.attrs.tag {
                    for v in variants {
                        let key = variant_key(&c.attrs, &v.name);
                        match &v.fields {
                            None => arms.push_str(&format!(
                                "{name}::{vn} => serde::Value::Object(vec![(\"{tag}\".to_string(), \
                                 serde::Value::String(\"{key}\".to_string()))]),\n",
                                vn = v.name
                            )),
                            Some(fields) => {
                                let pat: Vec<&str> =
                                    fields.iter().map(|f| f.name.as_str()).collect();
                                let mut pushes = String::new();
                                for f in fields {
                                    pushes.push_str(&format!(
                                        "__fields.push((\"{0}\".to_string(), serde::Serialize::to_value({0})));\n",
                                        f.name
                                    ));
                                }
                                arms.push_str(&format!(
                                    "{name}::{vn} {{ {pat} }} => {{\n\
                                     let mut __fields: Vec<(String, serde::Value)> = \
                                     vec![(\"{tag}\".to_string(), serde::Value::String(\"{key}\".to_string()))];\n\
                                     {pushes}serde::Value::Object(__fields)\n}}\n",
                                    vn = v.name,
                                    pat = pat.join(", ")
                                ));
                            }
                        }
                    }
                } else {
                    for v in variants {
                        assert!(
                            v.fields.is_none(),
                            "untagged non-unit enum variants are not supported"
                        );
                        let key = variant_key(&c.attrs, &v.name);
                        arms.push_str(&format!(
                            "{name}::{vn} => serde::Value::String(\"{key}\".to_string()),\n",
                            vn = v.name
                        ));
                    }
                }
                format!("match self {{\n{arms}}}")
            }
        }
    };
    format!(
        "impl serde::Serialize for {name} {{\n\
         fn to_value(&self) -> serde::Value {{\n{body}\n}}\n}}\n"
    )
    .parse()
    .unwrap()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let c = parse_container(input);
    let name = &c.name;
    let body = if let Some(proxy) = &c.attrs.try_from {
        format!(
            "let __proxy = <{proxy} as serde::Deserialize>::from_value(__v)?;\n\
             std::convert::TryFrom::try_from(__proxy)\
             .map_err(|e| serde::DeError(format!(\"{{e}}\")))"
        )
    } else {
        match &c.data {
            Data::Newtype => {
                format!("Ok({name}(serde::Deserialize::from_value(__v)?))")
            }
            Data::NamedStruct(fields) => {
                named_struct_de(name, fields, c.attrs.default, &format!("{name}"))
            }
            Data::Enum(variants) => {
                if let Some(tag) = &c.attrs.tag {
                    let mut arms = String::new();
                    for v in variants {
                        let key = variant_key(&c.attrs, &v.name);
                        match &v.fields {
                            None => arms.push_str(&format!(
                                "\"{key}\" => Ok({name}::{vn}),\n",
                                vn = v.name
                            )),
                            Some(fields) => {
                                let ctor = format!("{name}::{vn}", vn = v.name);
                                let inner = named_variant_de(fields, &ctor);
                                arms.push_str(&format!("\"{key}\" => {{ {inner} }}\n"));
                            }
                        }
                    }
                    format!(
                        "let __tag = __v.get(\"{tag}\").and_then(|t| t.as_str())\
                         .ok_or_else(|| serde::DeError(format!(\"missing tag `{tag}`\")))?;\n\
                         match __tag {{\n{arms}\
                         other => Err(serde::DeError(format!(\"unknown {tag} `{{other}}`\"))),\n}}"
                    )
                } else {
                    let mut arms = String::new();
                    for v in variants {
                        let key = variant_key(&c.attrs, &v.name);
                        arms.push_str(&format!(
                            "Some(\"{key}\") => Ok({name}::{vn}),\n",
                            vn = v.name
                        ));
                    }
                    format!(
                        "match __v.as_str() {{\n{arms}\
                         other => Err(serde::DeError(format!(\"unknown variant {{other:?}}\"))),\n}}"
                    )
                }
            }
        }
    };
    format!(
        "impl serde::Deserialize for {name} {{\n\
         fn from_value(__v: &serde::Value) -> Result<Self, serde::DeError> {{\n{body}\n}}\n}}\n"
    )
    .parse()
    .unwrap()
}

/// Field extraction for a named struct, honoring container- and
/// field-level defaults.
fn named_struct_de(name: &str, fields: &[Field], container_default: bool, ctor: &str) -> String {
    let mut s = String::from(
        "let __fields = match __v {\n\
         serde::Value::Object(f) => f,\n\
         _ => return Err(serde::DeError(format!(\"expected object, got {__v:?}\"))),\n};\n",
    );
    if container_default {
        s.push_str(&format!(
            "let __defaults = <{name} as std::default::Default>::default();\n"
        ));
    }
    let mut ctor_fields = String::new();
    for f in fields {
        let missing = if f.default {
            "std::default::Default::default()".to_string()
        } else if container_default {
            format!("__defaults.{}", f.name)
        } else {
            format!(
                "return Err(serde::DeError(format!(\"missing field `{}`\")))",
                f.name
            )
        };
        s.push_str(&format!(
            "let __f_{0} = match __fields.iter().find(|(k, _)| k == \"{0}\") {{\n\
             Some((_, val)) => serde::Deserialize::from_value(val)\
             .map_err(|e| serde::DeError(format!(\"field `{0}`: {{e}}\")))?,\n\
             None => {missing},\n}};\n",
            f.name
        ));
        ctor_fields.push_str(&format!("{0}: __f_{0}, ", f.name));
    }
    s.push_str(&format!("Ok({ctor} {{ {ctor_fields} }})"));
    s
}

/// Field extraction for a tagged enum's named-field variant (no defaults).
fn named_variant_de(fields: &[Field], ctor: &str) -> String {
    let mut s = String::new();
    let mut ctor_fields = String::new();
    for f in fields {
        s.push_str(&format!(
            "let __f_{0} = match __v.get(\"{0}\") {{\n\
             Some(val) => serde::Deserialize::from_value(val)\
             .map_err(|e| serde::DeError(format!(\"field `{0}`: {{e}}\")))?,\n\
             None => return Err(serde::DeError(format!(\"missing field `{0}`\"))),\n}};\n",
            f.name
        ));
        ctor_fields.push_str(&format!("{0}: __f_{0}, ", f.name));
    }
    s.push_str(&format!("Ok({ctor} {{ {ctor_fields} }})"));
    s
}
