//! Offline stand-in for `serde_json`, backed by the serde stub's [`Value`]
//! tree: a real (small) JSON parser and printer plus the typed entry points
//! the workspace uses. Floats print via Rust's shortest round-trip
//! formatting with a forced `.0` for integral values, so
//! parse(print(x)) == x always holds (the real crate's `float_roundtrip`
//! behavior for the values this workspace produces).

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// Parse or conversion failure.
#[derive(Debug, Clone)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

pub type Result<T> = std::result::Result<T, Error>;

// ---- entry points -------------------------------------------------------

pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    serde::__print::write_value(&value.to_value(), &mut out, None, 0).map_err(Error)?;
    Ok(out)
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    serde::__print::write_value(&value.to_value(), &mut out, Some(2), 0).map_err(Error)?;
    Ok(out)
}

/// Infallible tree conversion (the workspace relies on the direct `Value`
/// return, not real serde_json's `Result`).
pub fn to_value<T: Serialize>(value: T) -> Value {
    value.to_value()
}

#[macro_export]
macro_rules! json {
    ({ $($key:tt : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( ($key.to_string(), $crate::to_value(&$val)) ),*
        ])
    };
    ([ $($val:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$val) ),* ])
    };
    (null) => { $crate::Value::Null };
    ($other:expr) => { $crate::to_value(&$other) };
}

// ---- parser -------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `}}` in object, found {:?} at byte {}",
                        other.map(|c| c as char),
                        self.pos
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `]` in array, found {:?} at byte {}",
                        other.map(|c| c as char),
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error("unterminated string".to_string()));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error("unterminated escape".to_string()));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".to_string()))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error("invalid \\u escape".to_string()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("invalid \\u escape".to_string()))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by this
                            // workspace's payloads; reject rather than
                            // silently mangle.
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error("unsupported \\u surrogate".to_string()))?;
                            out.push(c);
                        }
                        other => {
                            return Err(Error(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Re-sync to char boundary for multi-byte UTF-8.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| Error("truncated UTF-8".to_string()))?;
                    let s = std::str::from_utf8(chunk)
                        .map_err(|_| Error("invalid UTF-8 in string".to_string()))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".to_string()))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }
}

#[inline]
fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_values() {
        let v = json!({
            "a": 1u64,
            "b": -3i64,
            "c": 2.0f64,
            "d": "hi \"there\"\n",
            "e": vec![1u32, 2, 3],
            "f": true,
        });
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        // U64/F64 distinction survives because 2.0 prints as "2.0".
        assert_eq!(back["a"], 1);
        assert_eq!(back["c"], 2.0);
        assert!(matches!(back["c"], Value::F64(_)));
        assert_eq!(back["d"], "hi \"there\"\n");
        assert_eq!(back, v);
    }

    #[test]
    fn float_shortest_repr_round_trips() {
        for &x in &[0.1, 1e-9, 123456.789, f64::MAX, 5e-324, -0.0, 376e-6] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} -> {s}");
        }
    }

    #[test]
    fn rejects_malformed_json() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("nul").is_err());
        assert!(from_str::<Value>("{\"a\" 1}").is_err());
        assert!(from_str::<Value>("\"\\q\"").is_err());
    }

    #[test]
    fn pretty_print_has_indentation() {
        let v = json!({ "x": 1u32 });
        let p = to_string_pretty(&v).unwrap();
        assert!(p.contains("\n  \"x\": 1\n"));
    }
}
