//! Offline stand-in for `rand_chacha` 0.3.1. The block cipher core and the
//! `BlockRng` buffering live in the `rand` stub (`rand::chacha_impl`); this
//! crate only wraps them under the real crate's type names.

use rand::chacha_impl::ChaChaAny;
use rand::{RngCore, SeedableRng};

macro_rules! chacha_rng {
    ($(#[$doc:meta])* $name:ident, $double_rounds:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone)]
        pub struct $name(ChaChaAny<$double_rounds>);

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(seed: [u8; 32]) -> Self {
                $name(ChaChaAny::from_seed_bytes(seed))
            }
        }

        impl RngCore for $name {
            #[inline]
            fn next_u32(&mut self) -> u32 {
                self.0.next_u32()
            }
            #[inline]
            fn next_u64(&mut self) -> u64 {
                self.0.next_u64()
            }
            #[inline]
            fn fill_bytes(&mut self, dest: &mut [u8]) {
                self.0.fill_bytes(dest)
            }
        }
    };
}

chacha_rng! {
    /// ChaCha with 8 rounds — the workspace's deterministic workhorse RNG.
    ChaCha8Rng, 4
}
chacha_rng! {
    /// ChaCha with 12 rounds (rand 0.8's `StdRng` core).
    ChaCha12Rng, 6
}
chacha_rng! {
    /// ChaCha with 20 rounds.
    ChaCha20Rng, 10
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn seed_from_u64_is_deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn f64_samples_are_in_unit_interval() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
