//! Offline stand-in for `proptest`.
//!
//! Functional property testing: strategies generate deterministic
//! pseudo-random inputs (seeded per test case), assertions return
//! `TestCaseError`, and a failing case panics with the case number and the
//! generating seed. Shrinking is not implemented — a failure reports the
//! original inputs via `Debug` instead of a minimized counterexample.

use rand::Rng;
use rand_chacha::ChaCha8Rng;
use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    /// Why a test case failed (or was rejected).
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        Fail(String),
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail<S: Into<String>>(msg: S) -> Self {
            TestCaseError::Fail(msg.into())
        }

        pub fn reject<S: Into<String>>(msg: S) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
                TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
            }
        }
    }

    /// Subset of proptest's runner configuration: the case count.
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }
}

pub use test_runner::{Config as ProptestConfig, TestCaseError};

/// A generator of test inputs. Unlike real proptest there is no value
/// tree — `generate` directly yields a value from the case RNG.
pub trait Strategy {
    type Value: Debug;

    fn generate(&self, rng: &mut ChaCha8Rng) -> Self::Value;

    fn prop_map<U: Debug, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            f,
            reason,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut ChaCha8Rng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut ChaCha8Rng) -> Self::Value {
        (**self).generate(rng)
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut ChaCha8Rng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut ChaCha8Rng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

pub struct Filter<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut ChaCha8Rng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter `{}` rejected 1000 candidates", self.reason);
    }
}

/// A constant strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut ChaCha8Rng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies — the engine behind
/// `prop_oneof!`.
pub struct Union<T: Debug> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T: Debug> Union<T> {
    pub fn empty() -> Self {
        Union {
            options: Vec::new(),
        }
    }

    pub fn or(mut self, s: impl Strategy<Value = T> + 'static) -> Self {
        self.options.push(Box::new(s));
        self
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut ChaCha8Rng) -> T {
        assert!(!self.options.is_empty());
        let pick = rng.gen_range(0..self.options.len());
        self.options[pick].generate(rng)
    }
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::empty()$(.or($strat))+
    };
}

// ---- numeric range strategies ------------------------------------------

macro_rules! int_range_strategy {
    ($($ty:ty),+) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut ChaCha8Rng) -> $ty {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut ChaCha8Rng) -> $ty {
                rng.gen_range(self.clone())
            }
        }
    )+};
}
int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut ChaCha8Rng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut ChaCha8Rng) -> f64 {
        rng.gen_range(*self.start()..self.end().next_up())
    }
}

// Signed ranges go through a width-shifted unsigned draw (the rand stub
// deliberately omits signed `gen_range`).
macro_rules! signed_range_strategy {
    ($($ty:ty => $uty:ty),+) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut ChaCha8Rng) -> $ty {
                assert!(self.start < self.end);
                let span = (self.end as $uty).wrapping_sub(self.start as $uty);
                let off = rng.gen_range(0..span);
                (self.start as $uty).wrapping_add(off) as $ty
            }
        }
        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut ChaCha8Rng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi);
                let span = (hi as $uty).wrapping_sub(lo as $uty);
                let off = if span == <$uty>::MAX {
                    rng.gen::<$uty>()
                } else {
                    rng.gen_range(0..=span)
                };
                (lo as $uty).wrapping_add(off) as $ty
            }
        }
    )+};
}
signed_range_strategy!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

// ---- tuple strategies ---------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut ChaCha8Rng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}
tuple_strategy!(
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
);

// ---- collections --------------------------------------------------------

pub mod collection {
    use super::*;
    use std::collections::HashSet;
    use std::hash::Hash;

    /// Size specification: a fixed count or a (half-open / inclusive) range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }
    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }
    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut ChaCha8Rng) -> usize {
            if self.lo == self.hi_inclusive {
                self.lo
            } else {
                rng.gen_range(self.lo..=self.hi_inclusive)
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `vec(element, size)` — a vector of values from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut ChaCha8Rng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `hash_set(element, size)` — like proptest, the target size is an
    /// upper bound when the element domain is too small to honor it.
    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq + Debug,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut ChaCha8Rng) -> HashSet<S::Value> {
            let target = self.size.pick(rng);
            let mut out = HashSet::new();
            let mut attempts = 0usize;
            while out.len() < target && attempts < 10 * target + 16 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

pub mod bool {
    use super::*;

    /// Strategy for `bool` (50/50).
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = core::primitive::bool;
        fn generate(&self, rng: &mut ChaCha8Rng) -> core::primitive::bool {
            rng.gen::<core::primitive::bool>()
        }
    }
}

/// `any::<T>()` for the handful of types the workspace asks for.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

pub trait Arbitrary: Sized + Debug {
    type Strategy: Strategy<Value = Self>;
    fn arbitrary() -> Self::Strategy;
}

#[derive(Debug, Clone, Copy)]
pub struct StdArbitrary<T>(PhantomData<T>);

macro_rules! arb_via_full_range {
    ($($ty:ty),+) => {$(
        impl Arbitrary for $ty {
            type Strategy = StdArbitrary<$ty>;
            fn arbitrary() -> Self::Strategy {
                StdArbitrary(PhantomData)
            }
        }
        impl Strategy for StdArbitrary<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut ChaCha8Rng) -> $ty {
                rng.gen::<$ty>()
            }
        }
    )+};
}
arb_via_full_range!(
    u8,
    u32,
    u64,
    usize,
    i8,
    i32,
    i64,
    f64,
    core::primitive::bool
);

pub mod strategy {
    pub use super::{Just, Strategy, Union};
}

pub mod prelude {
    pub use super::collection::{hash_set, vec};
    pub use super::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use super::{any, Arbitrary, Just, Strategy, Union};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Derives the per-case RNG seed. Deterministic: same test name + case
/// index ⇒ same inputs, across runs and thread counts.
pub fn case_seed(test_name: &str, case: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^ (u64::from(case) << 1)
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                for __case in 0..config.cases {
                    let __seed = $crate::case_seed(stringify!($name), __case);
                    let mut __rng = <rand_chacha::ChaCha8Rng as rand::SeedableRng>::seed_from_u64(__seed);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    let __debug_inputs = format!(
                        concat!($(stringify!($arg), " = {:?}, "),+),
                        $(&$arg),+
                    );
                    let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body Ok(()) })();
                    match __result {
                        Ok(()) => {}
                        Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest case {}/{} failed: {}\n  inputs: {}",
                                __case + 1, config.cases, msg, __debug_inputs
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::Config::default())]
            $($(#[$meta])* fn $name($($arg in $strat),+) $body)*
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "{} ({:?} vs {:?})",
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::reject(stringify!(
                $cond
            )));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_compose(n in 2usize..=8, x in -5.0f64..5.0, seed in 0u64..100) {
            prop_assert!((2..=8).contains(&n));
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!(seed < 100);
        }

        #[test]
        fn flat_map_and_vec(v in (1usize..=4).prop_flat_map(|n| vec(0u32..10, n))) {
            prop_assert!(!v.is_empty() && v.len() <= 4);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn oneof_picks_from_all(v in prop_oneof![Just(1u32), Just(2u32), Just(3u32)]) {
            prop_assert!((1..=3).contains(&v));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::Strategy;
        let s = (2usize..=8).prop_map(|n| n * 2);
        let mut r1 = <rand_chacha::ChaCha8Rng as rand::SeedableRng>::seed_from_u64(9);
        let mut r2 = <rand_chacha::ChaCha8Rng as rand::SeedableRng>::seed_from_u64(9);
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }
}
