//! Offline stand-in for `rand` 0.8.5.
//!
//! This crate exists so the workspace builds and tests inside a container
//! with no crates.io access. It reimplements exactly the API surface the
//! workspace uses, with **bit-exact** output semantics relative to real
//! `rand` 0.8.5 + `rand_core` 0.6.4:
//!
//! - `SeedableRng::seed_from_u64` uses the PCG32 expansion.
//! - `Standard` sampling: `f64 = (next_u64() >> 11) * 2^-53`,
//!   `bool = next_u32() & (1 << 31) != 0`.
//! - `gen_range` on integer ranges uses Lemire widening-multiply rejection
//!   with the high-bits zone, at the same word width as real rand
//!   (`u32` for ≤32-bit types, `u64` for 64-bit types and `usize`).
//! - `SliceRandom::shuffle` is the descending Fisher–Yates with the u32
//!   `gen_index` fast path for bounds that fit in `u32`.
//! - `rngs::StdRng` is ChaCha12, matching rand 0.8's `StdRng`.

pub mod distributions;
pub mod rngs;
pub mod seq;

#[doc(hidden)]
pub mod chacha_impl;

use distributions::{Distribution, Standard};

/// Core RNG trait, mirroring `rand_core::RngCore`.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Seedable RNG trait, mirroring `rand_core::SeedableRng`.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// PCG32-based seed expansion — byte-for-byte the rand_core 0.6.4
    /// algorithm, so `seed_from_u64(s)` matches real rand exactly.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// High-level sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    #[inline]
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    #[inline]
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `gen_bool(p)`: Bernoulli via the 64-bit fixed-point comparison real
    /// rand uses.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        if p == 1.0 {
            return true;
        }
        let p_int = (p * (2.0f64).powi(64)) as u64;
        self.next_u64() < p_int
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Range sampling, mirroring `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Widening multiply helper: returns (hi, lo) of the 2N-bit product.
macro_rules! wmul {
    ($a:expr, $b:expr, u32) => {{
        let t = ($a as u64) * ($b as u64);
        ((t >> 32) as u32, t as u32)
    }};
    ($a:expr, $b:expr, u64) => {{
        let t = ($a as u128) * ($b as u128);
        ((t >> 64) as u64, t as u64)
    }};
}

macro_rules! uniform_int_impl {
    ($ty:ty, $uty:ty, $large:tt, $next:ident) => {
        impl SampleRange<$ty> for std::ops::Range<$ty> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "empty gen_range");
                // Span in the unsigned domain (`as $unsigned as $u_large`
                // in real rand) so signed ranges don't sign-extend.
                let range = (self.end.wrapping_sub(self.start) as $uty) as $large;
                let off = sample_lemire_range(rng, range);
                self.start.wrapping_add((off as $uty) as $ty)
            }
        }
        impl SampleRange<$ty> for std::ops::RangeInclusive<$ty> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let range = (hi.wrapping_sub(lo).wrapping_add(1) as $uty) as $large;
                if range == 0 {
                    // Full domain of the type.
                    return rng.$next() as $ty;
                }
                let off = sample_lemire_range(rng, range);
                lo.wrapping_add((off as $uty) as $ty)
            }
        }
    };
}

/// Lemire rejection sampling over `[0, range)` at u32 width — the
/// "high types" zone computation real rand uses for 32-bit types.
#[inline]
fn lemire_u32<R: RngCore + ?Sized>(rng: &mut R, range: u32) -> u32 {
    let zone = (range << range.leading_zeros()).wrapping_sub(1);
    loop {
        let v = rng.next_u32();
        let (hi, lo) = wmul!(v, range, u32);
        if lo <= zone {
            return hi;
        }
    }
}

/// Lemire rejection sampling over `[0, range)` at u64 width.
#[inline]
fn lemire_u64<R: RngCore + ?Sized>(rng: &mut R, range: u64) -> u64 {
    let zone = (range << range.leading_zeros()).wrapping_sub(1);
    loop {
        let v = rng.next_u64();
        let (hi, lo) = wmul!(v, range, u64);
        if lo <= zone {
            return hi;
        }
    }
}

trait LemireWidth: Copy {
    fn lemire<R: RngCore + ?Sized>(rng: &mut R, range: Self) -> Self;
}
impl LemireWidth for u32 {
    #[inline]
    fn lemire<R: RngCore + ?Sized>(rng: &mut R, range: u32) -> u32 {
        lemire_u32(rng, range)
    }
}
impl LemireWidth for u64 {
    #[inline]
    fn lemire<R: RngCore + ?Sized>(rng: &mut R, range: u64) -> u64 {
        lemire_u64(rng, range)
    }
}

#[inline]
fn sample_lemire_range<R: RngCore + ?Sized, W: LemireWidth>(rng: &mut R, range: W) -> W {
    W::lemire(rng, range)
}

// Types ≤ 32 bits sample at u32 width; 64-bit and usize at u64 width,
// matching real rand's `$u_large` choice. Signed types route through the
// same unsigned Lemire draw (two's-complement wrapping add restores the
// offset), exactly as real rand's `uniform_int_impl!` does.
uniform_int_impl!(u8, u8, u32, next_u32);
uniform_int_impl!(u16, u16, u32, next_u32);
uniform_int_impl!(u32, u32, u32, next_u32);
uniform_int_impl!(u64, u64, u64, next_u64);
uniform_int_impl!(i8, u8, u32, next_u32);
uniform_int_impl!(i16, u16, u32, next_u32);
uniform_int_impl!(i32, u32, u32, next_u32);
uniform_int_impl!(i64, u64, u64, next_u64);
uniform_int_impl!(usize, u64, u64, next_u64);

// Float ranges: `low + v * (high - low)` with v ∈ [0, 1) from Standard —
// matches rand's UniformFloat::sample_single (scale * v + low form).
impl SampleRange<f64> for std::ops::Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        let scale = self.end - self.start;
        let value: f64 = Standard.sample(rng);
        value * scale + self.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    /// A deterministic counter RNG for draw-pattern checks.
    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.0 += 1;
            (self.0 as u32).wrapping_mul(2654435761)
        }
        fn next_u64(&mut self) -> u64 {
            let lo = self.next_u32() as u64;
            let hi = self.next_u32() as u64;
            (hi << 32) | lo
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for b in dest {
                *b = self.next_u32() as u8;
            }
        }
    }

    #[test]
    fn standard_f64_is_53_bit() {
        let mut rng = Counter(0);
        let v: f64 = rng.gen();
        assert!((0.0..1.0).contains(&v));
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(1usize..=8);
            assert!((1..=8).contains(&w));
            let x = rng.gen_range(-2.5f64..2.5);
            assert!((-2.5..2.5).contains(&x));
        }
    }

    #[test]
    fn seed_from_u64_expansion_matches_pcg32_reference() {
        // First four PCG32 outputs for state seeded with 0 (computed from
        // the rand_core 0.6.4 algorithm; fixed here to catch regressions).
        struct Probe([u8; 32]);
        impl SeedableRng for Probe {
            type Seed = [u8; 32];
            fn from_seed(seed: [u8; 32]) -> Self {
                Probe(seed)
            }
        }
        let a = Probe::seed_from_u64(0).0;
        let b = Probe::seed_from_u64(0).0;
        assert_eq!(a, b);
        assert_ne!(a, Probe::seed_from_u64(1).0);
        // Chunks are 4-byte LE words, so the expansion must not be all-zero
        // and words must differ.
        assert_ne!(&a[0..4], &a[4..8]);
    }
}
