//! The `Standard` distribution for the primitive types the workspace
//! samples with `rng.gen::<T>()`, bit-exact with rand 0.8.5.

use crate::RngCore;

pub trait Distribution<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Uniform over the "natural" domain of the type (`[0, 1)` for floats).
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    /// 53-bit multiply: `(next_u64() >> 11) * 2^-53`.
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let scale = 1.0 / ((1u64 << 53) as f64);
        let value = rng.next_u64() >> 11;
        scale * value as f64
    }
}

impl Distribution<f32> for Standard {
    /// 24-bit multiply: `(next_u32() >> 8) * 2^-24`.
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        let scale = 1.0 / ((1u32 << 24) as f32);
        let value = rng.next_u32() >> 8;
        scale * value as f32
    }
}

impl Distribution<bool> for Standard {
    /// Most significant bit of one `next_u32` draw.
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u32() & (1 << 31) != 0
    }
}

impl Distribution<u8> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u8 {
        rng.next_u32() as u8
    }
}

impl Distribution<u16> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u16 {
        rng.next_u32() as u16
    }
}

impl Distribution<u32> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<u64> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<usize> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Distribution<i8> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i8 {
        rng.next_u32() as i8
    }
}

impl Distribution<i32> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i32 {
        rng.next_u32() as i32
    }
}

impl Distribution<i64> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i64 {
        rng.next_u64() as i64
    }
}
