//! `StdRng` — ChaCha12, matching rand 0.8's choice of standard RNG.

use crate::chacha_impl::ChaChaAny;
use crate::{RngCore, SeedableRng};

/// The standard RNG: ChaCha with 12 rounds.
#[derive(Debug, Clone)]
pub struct StdRng(ChaChaAny<6>);

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        StdRng(ChaChaAny::from_seed_bytes(seed))
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.0.fill_bytes(dest)
    }
}
