//! Slice shuffling, matching rand 0.8.5's `SliceRandom::shuffle`:
//! descending Fisher–Yates with a `u32`-width index draw whenever the
//! bound fits in `u32` (it always does on this workspace's sizes).

use crate::{Rng, RngCore};

pub trait SliceRandom {
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, gen_index(rng, i + 1));
        }
    }
}

/// Uniform `[0, ubound)` index with rand's u32 fast path.
#[inline]
fn gen_index<R: RngCore + ?Sized>(rng: &mut R, ubound: usize) -> usize {
    if ubound <= (u32::MAX as usize) {
        rng.gen_range(0..ubound as u32) as usize
    } else {
        rng.gen_range(0..ubound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation_and_deterministic() {
        let mut a: Vec<u32> = (0..50).collect();
        let mut b: Vec<u32> = (0..50).collect();
        a.shuffle(&mut StdRng::seed_from_u64(9));
        b.shuffle(&mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
