//! ChaCha block cipher core with the exact `rand_chacha` 0.3 /
//! `rand_core::block::BlockRng` buffering semantics:
//!
//! - 32-byte key from the seed, 64-bit block counter in state words 12–13,
//!   64-bit stream id in words 14–15 (djb variant), both starting at 0.
//! - Each refill produces **four** consecutive blocks (64 `u32` results);
//!   the counter advances by 4 per refill.
//! - `next_u32` consumes one buffered word; `next_u64` consumes two
//!   consecutive words (low then high) and, when exactly one word remains,
//!   combines it (low) with the first word of the next refill (high).
//!
//! Validated against the known ChaCha8/12/20 zero-key keystream vectors in
//! the tests below.

/// ChaCha core generic over the number of double-rounds (4 ⇒ ChaCha8,
/// 6 ⇒ ChaCha12, 10 ⇒ ChaCha20).
#[derive(Debug, Clone)]
pub struct ChaChaAny<const DOUBLE_ROUNDS: usize> {
    key: [u32; 8],
    counter: u64,
    stream: u64,
    buf: [u32; 64],
    index: usize,
}

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[cfg(not(target_arch = "x86_64"))]
#[inline(always)]
fn quarter(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl<const DOUBLE_ROUNDS: usize> ChaChaAny<DOUBLE_ROUNDS> {
    pub fn from_seed_bytes(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        ChaChaAny {
            key,
            counter: 0,
            stream: 0,
            buf: [0; 64],
            // Start "empty" so the first draw triggers a refill.
            index: 64,
        }
    }

    /// Computes the four blocks of one refill in lock-step: every state
    /// word holds one 32-bit lane per block, `counter + 0..4`. On x86_64
    /// the lanes live in a 128-bit SSE2 vector (SSE2 is part of the
    /// x86_64 baseline, so no feature detection is needed) — the same
    /// wide-block layout upstream `rand_chacha` uses. Elsewhere a
    /// plain-array fallback computes the identical bytes. Output matches
    /// four sequential single-block evaluations exactly.
    #[cfg(target_arch = "x86_64")]
    fn refill(&mut self) {
        use std::arch::x86_64::*;
        // SAFETY: only baseline SSE2 intrinsics, unconditionally available
        // on x86_64; the store below writes 16 aligned-`u32`s worth of
        // bytes through `_mm_storeu_si128` into a live `[u32; 4]`.
        unsafe {
            #[inline(always)]
            unsafe fn rot<const L: i32, const R: i32>(x: __m128i) -> __m128i {
                _mm_or_si128(_mm_slli_epi32(x, L), _mm_srli_epi32(x, R))
            }
            macro_rules! q {
                ($s:ident, $a:expr, $b:expr, $c:expr, $d:expr) => {
                    $s[$a] = _mm_add_epi32($s[$a], $s[$b]);
                    $s[$d] = rot::<16, 16>(_mm_xor_si128($s[$d], $s[$a]));
                    $s[$c] = _mm_add_epi32($s[$c], $s[$d]);
                    $s[$b] = rot::<12, 20>(_mm_xor_si128($s[$b], $s[$c]));
                    $s[$a] = _mm_add_epi32($s[$a], $s[$b]);
                    $s[$d] = rot::<8, 24>(_mm_xor_si128($s[$d], $s[$a]));
                    $s[$c] = _mm_add_epi32($s[$c], $s[$d]);
                    $s[$b] = rot::<7, 25>(_mm_xor_si128($s[$b], $s[$c]));
                };
            }
            let mut state = [_mm_setzero_si128(); 16];
            for (w, &c) in CONSTANTS.iter().enumerate() {
                state[w] = _mm_set1_epi32(c as i32);
            }
            for (w, &k) in self.key.iter().enumerate() {
                state[w + 4] = _mm_set1_epi32(k as i32);
            }
            let ctr = |b: u64| self.counter.wrapping_add(b);
            state[12] = _mm_set_epi32(
                ctr(3) as u32 as i32,
                ctr(2) as u32 as i32,
                ctr(1) as u32 as i32,
                ctr(0) as u32 as i32,
            );
            state[13] = _mm_set_epi32(
                (ctr(3) >> 32) as u32 as i32,
                (ctr(2) >> 32) as u32 as i32,
                (ctr(1) >> 32) as u32 as i32,
                (ctr(0) >> 32) as u32 as i32,
            );
            state[14] = _mm_set1_epi32(self.stream as u32 as i32);
            state[15] = _mm_set1_epi32((self.stream >> 32) as u32 as i32);
            let initial = state;
            for _ in 0..DOUBLE_ROUNDS {
                q!(state, 0, 4, 8, 12);
                q!(state, 1, 5, 9, 13);
                q!(state, 2, 6, 10, 14);
                q!(state, 3, 7, 11, 15);
                q!(state, 0, 5, 10, 15);
                q!(state, 1, 6, 11, 12);
                q!(state, 2, 7, 8, 13);
                q!(state, 3, 4, 9, 14);
            }
            for w in 0..16 {
                let mut lanes = [0u32; 4];
                _mm_storeu_si128(
                    lanes.as_mut_ptr().cast(),
                    _mm_add_epi32(state[w], initial[w]),
                );
                for b in 0..4 {
                    self.buf[b * 16 + w] = lanes[b];
                }
            }
        }
        self.counter = self.counter.wrapping_add(4);
    }

    /// Portable fallback: the same four blocks computed sequentially.
    #[cfg(not(target_arch = "x86_64"))]
    fn refill(&mut self) {
        for b in 0..4u64 {
            let counter = self.counter.wrapping_add(b);
            let mut state = [0u32; 16];
            state[..4].copy_from_slice(&CONSTANTS);
            state[4..12].copy_from_slice(&self.key);
            state[12] = counter as u32;
            state[13] = (counter >> 32) as u32;
            state[14] = self.stream as u32;
            state[15] = (self.stream >> 32) as u32;
            let initial = state;
            for _ in 0..DOUBLE_ROUNDS {
                quarter(&mut state, 0, 4, 8, 12);
                quarter(&mut state, 1, 5, 9, 13);
                quarter(&mut state, 2, 6, 10, 14);
                quarter(&mut state, 3, 7, 11, 15);
                quarter(&mut state, 0, 5, 10, 15);
                quarter(&mut state, 1, 6, 11, 12);
                quarter(&mut state, 2, 7, 8, 13);
                quarter(&mut state, 3, 4, 9, 14);
            }
            let lo = (b as usize) * 16;
            for (w, (s, i)) in state.iter().zip(initial.iter()).enumerate() {
                self.buf[lo + w] = s.wrapping_add(*i);
            }
        }
        self.counter = self.counter.wrapping_add(4);
    }

    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        if self.index >= 64 {
            self.refill();
            self.index = 0;
        }
        let v = self.buf[self.index];
        self.index += 1;
        v
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let index = self.index;
        if index < 63 {
            self.index += 2;
            (u64::from(self.buf[index + 1]) << 32) | u64::from(self.buf[index])
        } else if index >= 64 {
            self.refill();
            self.index = 2;
            (u64::from(self.buf[1]) << 32) | u64::from(self.buf[0])
        } else {
            // Straddle: last word of the old batch is the low half, first
            // word of the fresh batch the high half.
            let x = u64::from(self.buf[63]);
            self.refill();
            self.index = 1;
            let y = u64::from(self.buf[0]);
            (y << 32) | x
        }
    }

    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        // Simple word-by-word fill; the workspace never calls this on the
        // hot path and never relies on its exact byte alignment semantics.
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let w = self.next_u32().to_le_bytes();
            rem.copy_from_slice(&w[..rem.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// First 16 keystream bytes for zero key / zero nonce / counter 0
    /// (Strömbergson ChaCha test vectors, TC1).
    fn first16<const DR: usize>() -> [u8; 16] {
        let mut c = ChaChaAny::<DR>::from_seed_bytes([0u8; 32]);
        let mut out = [0u8; 16];
        for i in 0..4 {
            out[i * 4..i * 4 + 4].copy_from_slice(&c.next_u32().to_le_bytes());
        }
        out
    }

    #[test]
    fn chacha20_zero_key_keystream_matches_reference() {
        assert_eq!(
            first16::<10>(),
            [
                0x76, 0xb8, 0xe0, 0xad, 0xa0, 0xf1, 0x3d, 0x90, 0x40, 0x5d, 0x6a, 0xe5, 0x53, 0x86,
                0xbd, 0x28
            ]
        );
    }

    #[test]
    fn chacha8_zero_key_keystream_matches_reference() {
        assert_eq!(
            first16::<4>(),
            [
                0x3e, 0x00, 0xef, 0x2f, 0x89, 0x5f, 0x40, 0xd6, 0x7f, 0x5b, 0xb8, 0xe8, 0x1f, 0x09,
                0xa5, 0xa1
            ]
        );
    }

    #[test]
    fn chacha12_zero_key_keystream_matches_reference() {
        assert_eq!(
            first16::<6>(),
            [
                0x9b, 0xf4, 0x9a, 0x6a, 0x07, 0x55, 0xf9, 0x53, 0x81, 0x1f, 0xce, 0x12, 0x5f, 0x26,
                0x83, 0xd5
            ]
        );
    }

    #[test]
    fn next_u64_straddles_refill_like_block_rng() {
        let mut a = ChaChaAny::<4>::from_seed_bytes([7u8; 32]);
        let mut b = ChaChaAny::<4>::from_seed_bytes([7u8; 32]);
        // Drain 63 words from `a`, then next_u64 must combine word 63 (low)
        // with word 0 of the next batch (high).
        for _ in 0..63 {
            a.next_u32();
        }
        let straddled = a.next_u64();
        let mut all = Vec::new();
        for _ in 0..128 {
            all.push(b.next_u32());
        }
        assert_eq!(straddled, (u64::from(all[64]) << 32) | u64::from(all[63]));
        // And afterwards `a` continues at word 1 of the new batch.
        assert_eq!(a.next_u32(), all[65]);
    }
}
