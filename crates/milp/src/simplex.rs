//! Dense two-phase primal simplex with bounded variables.
//!
//! Minimises `c·x` subject to sparse linear constraints and box bounds
//! `0 ≤ x_j ≤ u_j` (upper bounds handled *implicitly*: non-basic variables
//! may rest at either bound, so the `y ≤ 1`-style rows the MQO/QUBO models
//! would otherwise need never enter the tableau).
//!
//! Phase 1 drives artificial variables (added for `=` and `≥` rows) to zero;
//! phase 2 optimises the true objective. Pricing is Dantzig's rule with an
//! automatic switch to Bland's rule after a run of degenerate pivots, which
//! guarantees termination.
//!
//! This solver backs the LP relaxations of the branch-and-bound in
//! [`crate::bb`], playing the role of the commercial ILP solver used for the
//! paper's LIN-MQO and LIN-QUB baselines.

use crate::model::{LinearProgram, Sense};

/// Solver tolerances and limits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimplexConfig {
    /// Reduced-cost optimality tolerance.
    pub cost_tol: f64,
    /// Minimum absolute pivot element.
    pub pivot_tol: f64,
    /// Feasibility tolerance for declaring phase 1 successful.
    pub feas_tol: f64,
    /// Hard iteration cap across both phases (0 = automatic).
    pub max_iterations: usize,
    /// Consecutive degenerate pivots before switching to Bland's rule.
    pub bland_threshold: usize,
}

impl Default for SimplexConfig {
    fn default() -> Self {
        SimplexConfig {
            cost_tol: 1e-9,
            pivot_tol: 1e-8,
            feas_tol: 1e-6,
            max_iterations: 0,
            bland_threshold: 64,
        }
    }
}

/// An optimal LP solution.
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolution {
    /// Values of the structural variables.
    pub x: Vec<f64>,
    /// Objective value `c·x`.
    pub objective: f64,
    /// Simplex iterations used (both phases).
    pub iterations: usize,
}

/// Result of an LP solve.
#[derive(Debug, Clone, PartialEq)]
pub enum LpOutcome {
    /// Proved optimal.
    Optimal(LpSolution),
    /// No feasible point exists.
    Infeasible,
    /// The objective is unbounded below.
    Unbounded,
    /// The iteration cap was reached before convergence.
    IterationLimit,
}

impl LpOutcome {
    /// The solution if optimal.
    pub fn optimal(self) -> Option<LpSolution> {
        match self {
            LpOutcome::Optimal(s) => Some(s),
            _ => None,
        }
    }
}

/// Solves with default configuration.
pub fn solve(lp: &LinearProgram) -> LpOutcome {
    solve_with(lp, &SimplexConfig::default())
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum VarState {
    Basic(usize),
    AtLower,
    AtUpper,
}

struct Tableau {
    m: usize,
    total: usize,
    /// Row-major `m × total` current tableau (`B⁻¹A`).
    a: Vec<f64>,
    /// Current values of the basic variables, row-indexed.
    xb: Vec<f64>,
    basis: Vec<usize>,
    state: Vec<VarState>,
    upper: Vec<f64>,
    /// First artificial column (artificials occupy `art_start..total`).
    art_start: usize,
    cfg: SimplexConfig,
    iterations: usize,
    degenerate_streak: usize,
}

enum PhaseEnd {
    Optimal,
    Unbounded,
    IterationLimit,
}

impl Tableau {
    fn row(&self, i: usize) -> &[f64] {
        &self.a[i * self.total..(i + 1) * self.total]
    }

    fn at(&self, i: usize, j: usize) -> f64 {
        self.a[i * self.total + j]
    }

    fn build(lp: &LinearProgram, cfg: SimplexConfig) -> Tableau {
        let n = lp.num_vars();
        let m = lp.constraints.len();

        // Normalise rows to non-negative rhs, count extra columns.
        type Row = (Vec<(usize, f64)>, Sense, f64);
        let mut rows: Vec<Row> = lp
            .constraints
            .iter()
            .map(|c| {
                if c.rhs < 0.0 {
                    let coeffs = c.coeffs.iter().map(|&(v, a)| (v, -a)).collect();
                    let sense = match c.sense {
                        Sense::Le => Sense::Ge,
                        Sense::Eq => Sense::Eq,
                        Sense::Ge => Sense::Le,
                    };
                    (coeffs, sense, -c.rhs)
                } else {
                    (c.coeffs.clone(), c.sense, c.rhs)
                }
            })
            .collect();

        let n_slack = rows
            .iter()
            .filter(|(_, s, _)| matches!(s, Sense::Le | Sense::Ge))
            .count();
        let n_art = rows
            .iter()
            .filter(|(_, s, _)| matches!(s, Sense::Eq | Sense::Ge))
            .count();
        let art_start = n + n_slack;
        let total = art_start + n_art;

        let mut a = vec![0.0; m * total];
        let mut xb = vec![0.0; m];
        let mut basis = vec![0usize; m];
        let mut upper = lp.upper.clone();
        upper.resize(total, f64::INFINITY);
        let mut state = vec![VarState::AtLower; total];

        let mut next_slack = n;
        let mut next_art = art_start;
        for (i, (coeffs, sense, rhs)) in rows.drain(..).enumerate() {
            let row = &mut a[i * total..(i + 1) * total];
            for (v, coeff) in coeffs {
                row[v] += coeff;
            }
            xb[i] = rhs;
            match sense {
                Sense::Le => {
                    row[next_slack] = 1.0;
                    basis[i] = next_slack;
                    next_slack += 1;
                }
                Sense::Ge => {
                    row[next_slack] = -1.0;
                    next_slack += 1;
                    row[next_art] = 1.0;
                    basis[i] = next_art;
                    next_art += 1;
                }
                Sense::Eq => {
                    row[next_art] = 1.0;
                    basis[i] = next_art;
                    next_art += 1;
                }
            }
            state[basis[i]] = VarState::Basic(i);
        }

        Tableau {
            m,
            total,
            a,
            xb,
            basis,
            state,
            upper,
            art_start,
            cfg,
            iterations: 0,
            degenerate_streak: 0,
        }
    }

    /// Reduced costs for a cost vector over all columns.
    fn reduced_costs(&self, cost: &[f64]) -> Vec<f64> {
        let mut d = cost.to_vec();
        for i in 0..self.m {
            let cb = cost[self.basis[i]];
            if cb != 0.0 {
                let row = self.row(i);
                for (dj, &aij) in d.iter_mut().zip(row) {
                    *dj -= cb * aij;
                }
            }
        }
        d
    }

    fn max_iterations(&self) -> usize {
        if self.cfg.max_iterations > 0 {
            self.cfg.max_iterations
        } else {
            5_000 + 40 * (self.m + self.total)
        }
    }

    /// Runs the simplex loop on reduced-cost row `d` until optimality.
    fn optimise(&mut self, d: &mut [f64]) -> PhaseEnd {
        loop {
            if self.iterations >= self.max_iterations() {
                return PhaseEnd::IterationLimit;
            }
            let bland = self.degenerate_streak >= self.cfg.bland_threshold;

            // Pricing.
            let mut entering: Option<(usize, f64, f64)> = None; // (col, |d|, dir)
            for (j, &dj) in d.iter().enumerate() {
                let movable = self.upper[j] > 0.0; // fixed columns cannot move
                if !movable {
                    continue;
                }
                let dir = match self.state[j] {
                    VarState::AtLower if dj < -self.cfg.cost_tol => 1.0,
                    VarState::AtUpper if dj > self.cfg.cost_tol => -1.0,
                    _ => continue,
                };
                if bland {
                    entering = Some((j, dj.abs(), dir));
                    break;
                }
                if entering.is_none_or(|(_, best, _)| dj.abs() > best) {
                    entering = Some((j, dj.abs(), dir));
                }
            }
            let Some((j, _, dir)) = entering else {
                return PhaseEnd::Optimal;
            };

            // Ratio test.
            let mut delta = self.upper[j]; // bound-flip span (may be ∞)
            let mut leave: Option<(usize, bool, f64)> = None; // (row, hits_upper, |pivot|)
            for i in 0..self.m {
                let coeff = self.at(i, j);
                if coeff.abs() < self.cfg.pivot_tol {
                    continue;
                }
                let change = dir * coeff; // xb[i] decreases by change·δ
                let (limit, hits_upper) = if change > 0.0 {
                    (self.xb[i].max(0.0) / change, false)
                } else {
                    let ub = self.upper[self.basis[i]];
                    if ub.is_infinite() {
                        continue;
                    }
                    (((ub - self.xb[i]).max(0.0)) / (-change), true)
                };
                let better = match leave {
                    None => limit < delta - 1e-12,
                    Some((_, _, best_pivot)) => {
                        limit < delta - 1e-12
                            || (limit <= delta + 1e-12 && coeff.abs() > best_pivot)
                    }
                };
                if better {
                    delta = delta.min(limit);
                    leave = Some((i, hits_upper, coeff.abs()));
                }
            }

            if delta.is_infinite() {
                return PhaseEnd::Unbounded;
            }
            let delta = delta.max(0.0);
            self.iterations += 1;
            if delta < self.cfg.feas_tol {
                self.degenerate_streak += 1;
            } else {
                self.degenerate_streak = 0;
            }

            // Apply the step to the basic values.
            for i in 0..self.m {
                let coeff = self.at(i, j);
                if coeff != 0.0 {
                    self.xb[i] -= dir * coeff * delta;
                }
            }

            match leave {
                None => {
                    // Bound flip: entering travels to its other bound.
                    self.state[j] = match self.state[j] {
                        VarState::AtLower => VarState::AtUpper,
                        VarState::AtUpper => VarState::AtLower,
                        VarState::Basic(_) => unreachable!("entering is non-basic"),
                    };
                }
                Some((r, hits_upper, _)) => {
                    let entering_value = match self.state[j] {
                        VarState::AtLower => delta,
                        VarState::AtUpper => self.upper[j] - delta,
                        VarState::Basic(_) => unreachable!("entering is non-basic"),
                    };
                    let leaving = self.basis[r];
                    self.state[leaving] = if hits_upper {
                        VarState::AtUpper
                    } else {
                        VarState::AtLower
                    };

                    // Row reduction.
                    let pivot = self.at(r, j);
                    let inv = 1.0 / pivot;
                    for v in &mut self.a[r * self.total..(r + 1) * self.total] {
                        *v *= inv;
                    }
                    for i in 0..self.m {
                        if i == r {
                            continue;
                        }
                        let f = self.at(i, j);
                        if f != 0.0 {
                            let (head, tail) = self.a.split_at_mut(r.max(i) * self.total);
                            let (row_a, row_b) = if i < r {
                                (
                                    &mut head[i * self.total..(i + 1) * self.total],
                                    &tail[..self.total],
                                )
                            } else {
                                (
                                    &mut tail[..self.total],
                                    &head[r * self.total..(r + 1) * self.total],
                                )
                            };
                            for (x, &y) in row_a.iter_mut().zip(row_b) {
                                *x -= f * y;
                            }
                        }
                    }
                    let dj = d[j];
                    if dj != 0.0 {
                        let row = &self.a[r * self.total..(r + 1) * self.total];
                        for (x, &y) in d.iter_mut().zip(row) {
                            *x -= dj * y;
                        }
                    }

                    self.basis[r] = j;
                    self.state[j] = VarState::Basic(r);
                    self.xb[r] = entering_value;
                }
            }
        }
    }

    fn extract(&self, lp: &LinearProgram) -> LpSolution {
        let n = lp.num_vars();
        let mut x = vec![0.0; n];
        for (j, xj) in x.iter_mut().enumerate() {
            *xj = match self.state[j] {
                VarState::Basic(i) => self.xb[i].max(0.0),
                VarState::AtLower => 0.0,
                VarState::AtUpper => self.upper[j],
            };
        }
        let objective = lp.objective_value(&x);
        LpSolution {
            x,
            objective,
            iterations: self.iterations,
        }
    }
}

/// Solves the LP with an explicit configuration.
pub fn solve_with(lp: &LinearProgram, cfg: &SimplexConfig) -> LpOutcome {
    let mut t = Tableau::build(lp, *cfg);

    // Phase 1: minimise the sum of artificials (skipped when none exist).
    if t.art_start < t.total {
        let mut c1 = vec![0.0; t.total];
        for c in &mut c1[t.art_start..] {
            *c = 1.0;
        }
        let mut d1 = t.reduced_costs(&c1);
        match t.optimise(&mut d1) {
            PhaseEnd::Optimal => {}
            // Phase 1 is bounded below by 0, so Unbounded cannot happen.
            PhaseEnd::Unbounded => unreachable!("phase 1 objective is bounded"),
            PhaseEnd::IterationLimit => return LpOutcome::IterationLimit,
        }
        let infeasibility: f64 = (0..t.m)
            .filter(|&i| t.basis[i] >= t.art_start)
            .map(|i| t.xb[i].max(0.0))
            .sum();
        if infeasibility > cfg.feas_tol {
            return LpOutcome::Infeasible;
        }
        // Freeze artificials at zero for phase 2.
        for j in t.art_start..t.total {
            t.upper[j] = 0.0;
        }
        t.degenerate_streak = 0;
    }

    // Phase 2: the real objective.
    let mut c2 = vec![0.0; t.total];
    c2[..lp.num_vars()].copy_from_slice(&lp.objective);
    let mut d2 = t.reduced_costs(&c2);
    match t.optimise(&mut d2) {
        PhaseEnd::Optimal => LpOutcome::Optimal(t.extract(lp)),
        PhaseEnd::Unbounded => LpOutcome::Unbounded,
        PhaseEnd::IterationLimit => LpOutcome::IterationLimit,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LinearProgram, Sense};

    fn lp(obj: &[f64], upper: &[f64]) -> LinearProgram {
        LinearProgram {
            objective: obj.to_vec(),
            constraints: vec![],
            upper: upper.to_vec(),
        }
    }

    #[test]
    fn pure_bounds_problem() {
        // min −2x₀ + x₁, 0 ≤ x ≤ 1: x₀ = 1 (bound flip), x₁ = 0.
        let p = lp(&[-2.0, 1.0], &[1.0, 1.0]);
        let s = solve(&p).optimal().unwrap();
        assert_eq!(s.x, vec![1.0, 0.0]);
        assert_eq!(s.objective, -2.0);
    }

    #[test]
    fn unbounded_without_upper_bound() {
        let p = lp(&[-1.0], &[f64::INFINITY]);
        assert_eq!(solve(&p), LpOutcome::Unbounded);
    }

    #[test]
    fn classic_two_variable_maximisation() {
        // max 3x + 5y (min −3x − 5y) s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18.
        // Optimum (2, 6) with value 36.
        let mut p = lp(&[-3.0, -5.0], &[f64::INFINITY, f64::INFINITY]);
        p.add_constraint(vec![(0, 1.0)], Sense::Le, 4.0);
        p.add_constraint(vec![(1, 2.0)], Sense::Le, 12.0);
        p.add_constraint(vec![(0, 3.0), (1, 2.0)], Sense::Le, 18.0);
        let s = solve(&p).optimal().unwrap();
        assert!((s.x[0] - 2.0).abs() < 1e-7, "{:?}", s.x);
        assert!((s.x[1] - 6.0).abs() < 1e-7);
        assert!((s.objective + 36.0).abs() < 1e-7);
    }

    #[test]
    fn equality_constraints_with_phase_one() {
        // min x + 2y s.t. x + y = 10, x − y ≥ 2 → x = 6, y = 4? Check:
        // minimise ⇒ push y down: y as small as possible with x + y = 10,
        // x − y ≥ 2 ⇒ y ≤ 4 ⇒ y can be 0? x = 10, x − y = 10 ≥ 2 ok.
        // Value 10. (y = 0.)
        let mut p = lp(&[1.0, 2.0], &[f64::INFINITY, f64::INFINITY]);
        p.add_constraint(vec![(0, 1.0), (1, 1.0)], Sense::Eq, 10.0);
        p.add_constraint(vec![(0, 1.0), (1, -1.0)], Sense::Ge, 2.0);
        let s = solve(&p).optimal().unwrap();
        assert!((s.x[0] - 10.0).abs() < 1e-7);
        assert!(s.x[1].abs() < 1e-7);
        assert!((s.objective - 10.0).abs() < 1e-7);
    }

    #[test]
    fn detects_infeasibility() {
        // x ≤ 1 and x ≥ 3 with x ≥ 0.
        let mut p = lp(&[1.0], &[f64::INFINITY]);
        p.add_constraint(vec![(0, 1.0)], Sense::Le, 1.0);
        p.add_constraint(vec![(0, 1.0)], Sense::Ge, 3.0);
        assert_eq!(solve(&p), LpOutcome::Infeasible);
    }

    #[test]
    fn negative_rhs_rows_are_normalised() {
        // −x ≤ −5  ⇔  x ≥ 5; min x → 5.
        let mut p = lp(&[1.0], &[f64::INFINITY]);
        p.add_constraint(vec![(0, -1.0)], Sense::Le, -5.0);
        let s = solve(&p).optimal().unwrap();
        assert!((s.x[0] - 5.0).abs() < 1e-7);
    }

    #[test]
    fn upper_bounds_are_respected_without_explicit_rows() {
        // min −x₀ − x₁ s.t. x₀ + x₁ ≤ 1.5, 0 ≤ x ≤ 1.
        // Optimum 1.5 split across the two variables.
        let mut p = lp(&[-1.0, -1.0], &[1.0, 1.0]);
        p.add_constraint(vec![(0, 1.0), (1, 1.0)], Sense::Le, 1.5);
        let s = solve(&p).optimal().unwrap();
        assert!((s.objective + 1.5).abs() < 1e-7);
        assert!(s.x.iter().all(|&v| (0.0..=1.0 + 1e-9).contains(&v)));
    }

    #[test]
    fn assignment_polytope_relaxation_is_integral() {
        // Two queries × two plans, one-plan-per-query equalities: the LP
        // optimum is a vertex, i.e. integral.
        let mut p = lp(&[3.0, 1.0, 2.0, 5.0], &[1.0; 4]);
        p.add_constraint(vec![(0, 1.0), (1, 1.0)], Sense::Eq, 1.0);
        p.add_constraint(vec![(2, 1.0), (3, 1.0)], Sense::Eq, 1.0);
        let s = solve(&p).optimal().unwrap();
        assert_eq!(
            s.x.iter().map(|&v| (v > 0.5) as u8).collect::<Vec<_>>(),
            vec![0, 1, 1, 0]
        );
        assert!((s.objective - 3.0).abs() < 1e-7);
    }

    #[test]
    fn degenerate_problems_terminate() {
        // Many redundant rows through the origin — classic cycling bait.
        let mut p = lp(&[-1.0, -1.0, -1.0], &[f64::INFINITY; 3]);
        for _ in 0..5 {
            p.add_constraint(vec![(0, 1.0), (1, -1.0)], Sense::Le, 0.0);
            p.add_constraint(vec![(1, 1.0), (2, -1.0)], Sense::Le, 0.0);
        }
        p.add_constraint(vec![(0, 1.0), (1, 1.0), (2, 1.0)], Sense::Le, 3.0);
        let s = solve(&p).optimal().unwrap();
        assert!((s.objective + 3.0).abs() < 1e-6, "{}", s.objective);
    }

    #[test]
    fn solves_an_mqo_relaxation_to_its_integral_optimum() {
        use crate::model::mqo_to_ilp;
        use mqo_core::problem::MqoProblem;
        let mut b = MqoProblem::builder();
        let q1 = b.add_query(&[2.0, 4.0]);
        let q2 = b.add_query(&[3.0, 1.0]);
        let p2 = b.plans_of(q1)[1];
        let p3 = b.plans_of(q2)[0];
        b.add_saving(p2, p3, 5.0).unwrap();
        let problem = b.build().unwrap();
        let ilp = mqo_to_ilp(&problem);
        let s = solve(&ilp.program.relaxation).optimal().unwrap();
        // Relaxation bound can be ≤ the ILP optimum (2.0)...
        assert!(s.objective <= 2.0 + 1e-9);
        // ...and must beat the no-sharing bound.
        assert!(s.objective >= -3.0);
    }

    #[test]
    fn random_ilps_lp_bound_never_exceeds_integer_optimum() {
        // Deterministic pseudo-random small binary programs; compare the LP
        // relaxation against exhaustive enumeration.
        let mut seed = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for case in 0..25 {
            let n = 3 + (next() % 4) as usize; // 3..=6 vars
            let m = 2 + (next() % 3) as usize;
            let mut p = LinearProgram::default();
            for _ in 0..n {
                p.add_var(((next() % 21) as f64) - 10.0, 1.0);
            }
            for _ in 0..m {
                let coeffs: Vec<(usize, f64)> = (0..n)
                    .filter_map(|j| {
                        let c = ((next() % 9) as f64) - 4.0;
                        (c != 0.0).then_some((j, c))
                    })
                    .collect();
                let rhs = ((next() % 7) as f64) - 1.0;
                p.add_constraint(coeffs, Sense::Le, rhs);
            }
            // Integer optimum by enumeration.
            let mut best = f64::INFINITY;
            for mask in 0u32..(1 << n) {
                let x: Vec<f64> = (0..n)
                    .map(|j| f64::from(u8::from(mask & (1 << j) != 0)))
                    .collect();
                if p.is_feasible(&x, 1e-9) {
                    best = best.min(p.objective_value(&x));
                }
            }
            match solve(&p) {
                LpOutcome::Optimal(s) => {
                    if best.is_finite() {
                        assert!(
                            s.objective <= best + 1e-6,
                            "case {case}: LP {} > ILP {best}",
                            s.objective
                        );
                    }
                    assert!(
                        p.is_feasible(&s.x, 1e-5),
                        "case {case}: LP point infeasible"
                    );
                }
                LpOutcome::Infeasible => {
                    assert!(best.is_infinite(), "case {case}: LP infeasible but ILP not");
                }
                other => panic!("case {case}: unexpected outcome {other:?}"),
            }
        }
    }

    #[test]
    fn iteration_limit_is_reported() {
        let mut p = lp(&[-3.0, -5.0], &[f64::INFINITY, f64::INFINITY]);
        p.add_constraint(vec![(0, 1.0)], Sense::Le, 4.0);
        p.add_constraint(vec![(1, 2.0)], Sense::Le, 12.0);
        p.add_constraint(vec![(0, 3.0), (1, 2.0)], Sense::Le, 18.0);
        let cfg = SimplexConfig {
            max_iterations: 1,
            ..SimplexConfig::default()
        };
        assert_eq!(solve_with(&p, &cfg), LpOutcome::IterationLimit);
    }
}
