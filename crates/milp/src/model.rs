//! Linear-program and integer-program model types, plus the two model
//! builders the paper's evaluation needs:
//!
//! * [`mqo_to_ilp`] — the direct MQO formulation solved by "LIN-MQO":
//!   binary `x_p` per plan with `Σ_{p∈Pq} x_p = 1`, plus a linking variable
//!   `y_{p1,p2} ≤ x_p1, y ≤ x_p2` per sharing pair, minimising
//!   `Σ c_p x_p − Σ s_{p1,p2} y_{p1,p2}`;
//! * [`qubo_to_ilp`] — the linearisation of a QUBO used by "LIN-QUB"
//!   (following Dash's note on QUBO instances defined on Chimera graphs):
//!   one `y_ij` per quadratic term with `y ≤ x_i`, `y ≤ x_j` for negative
//!   weights and `y ≥ x_i + x_j − 1`, `y ≥ 0` for positive weights.

use mqo_core::ids::PlanId;
use mqo_core::problem::MqoProblem;
use mqo_core::qubo::Qubo;

/// Direction of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// `Σ aᵢxᵢ ≤ b`
    Le,
    /// `Σ aᵢxᵢ = b`
    Eq,
    /// `Σ aᵢxᵢ ≥ b`
    Ge,
}

/// One sparse linear constraint.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    /// Sparse coefficients as `(variable, coefficient)` pairs.
    pub coeffs: Vec<(usize, f64)>,
    /// Constraint direction.
    pub sense: Sense,
    /// Right-hand side.
    pub rhs: f64,
}

/// A linear program: minimise `c·x` subject to constraints and
/// `0 ≤ x_j ≤ upper_j` (use `f64::INFINITY` for free-above variables).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LinearProgram {
    /// Objective coefficients (minimisation).
    pub objective: Vec<f64>,
    /// The constraint rows.
    pub constraints: Vec<Constraint>,
    /// Per-variable upper bounds (lower bounds are all 0).
    pub upper: Vec<f64>,
}

impl LinearProgram {
    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.objective.len()
    }

    /// Adds a variable with the given objective coefficient and upper bound;
    /// returns its index.
    pub fn add_var(&mut self, objective: f64, upper: f64) -> usize {
        assert!(upper >= 0.0, "upper bound below the implicit lower bound 0");
        self.objective.push(objective);
        self.upper.push(upper);
        self.objective.len() - 1
    }

    /// Adds a constraint row.
    pub fn add_constraint(&mut self, coeffs: Vec<(usize, f64)>, sense: Sense, rhs: f64) {
        debug_assert!(coeffs.iter().all(|&(v, _)| v < self.num_vars()));
        self.constraints.push(Constraint { coeffs, sense, rhs });
    }

    /// Objective value of a point.
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        self.objective.iter().zip(x).map(|(c, v)| c * v).sum()
    }

    /// Checks feasibility of a point within tolerance.
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        if x.len() != self.num_vars() {
            return false;
        }
        for (j, &v) in x.iter().enumerate() {
            if v < -tol || v > self.upper[j] + tol {
                return false;
            }
        }
        self.constraints.iter().all(|c| {
            let lhs: f64 = c.coeffs.iter().map(|&(j, a)| a * x[j]).sum();
            match c.sense {
                Sense::Le => lhs <= c.rhs + tol,
                Sense::Eq => (lhs - c.rhs).abs() <= tol,
                Sense::Ge => lhs >= c.rhs - tol,
            }
        })
    }
}

/// A 0/1 integer program: the LP relaxation plus the set of variables that
/// must be integral (here always binary, since all models are 0/1).
#[derive(Debug, Clone, PartialEq)]
pub struct BinaryProgram {
    /// The LP relaxation (binary variables have upper bound 1).
    pub relaxation: LinearProgram,
    /// Indices of variables required to be 0/1.
    pub binary: Vec<usize>,
}

/// How ILP variables map back to MQO plans in [`mqo_to_ilp`].
#[derive(Debug, Clone)]
pub struct MqoIlp {
    /// The program: plan variables first (index = plan id), then one linking
    /// variable per savings pair in `MqoProblem::savings` order.
    pub program: BinaryProgram,
    /// Number of plan variables (`x` block).
    pub num_plan_vars: usize,
}

/// Builds the direct MQO integer program (LIN-MQO).
pub fn mqo_to_ilp(problem: &MqoProblem) -> MqoIlp {
    let mut lp = LinearProgram::default();
    for p in problem.plans() {
        lp.add_var(problem.plan_cost(p), 1.0);
    }
    // One plan per query.
    for q in problem.queries() {
        let coeffs = problem.plans_of(q).map(|p| (p.index(), 1.0)).collect();
        lp.add_constraint(coeffs, Sense::Eq, 1.0);
    }
    // Linking variables: the objective rewards y = 1 (coefficient −s < 0),
    // so only the `y ≤ x` directions are binding.
    for &(p1, p2, s) in problem.savings() {
        let y = lp.add_var(-s, 1.0);
        lp.add_constraint(vec![(y, 1.0), (p1.index(), -1.0)], Sense::Le, 0.0);
        lp.add_constraint(vec![(y, 1.0), (p2.index(), -1.0)], Sense::Le, 0.0);
    }
    let num_plan_vars = problem.num_plans();
    // Linking variables need not be declared integral: with binary x they
    // take integral optimal values automatically.
    let binary = (0..num_plan_vars).collect();
    MqoIlp {
        program: BinaryProgram {
            relaxation: lp,
            binary,
        },
        num_plan_vars,
    }
}

/// Extracts the plan-selection part of an ILP point produced by a solver run
/// on [`mqo_to_ilp`] output.
pub fn ilp_point_to_plans(ilp: &MqoIlp, x: &[f64]) -> Vec<PlanId> {
    (0..ilp.num_plan_vars)
        .filter(|&p| x[p] > 0.5)
        .map(PlanId::new)
        .collect()
}

/// How ILP variables map back to QUBO variables in [`qubo_to_ilp`].
#[derive(Debug, Clone)]
pub struct QuboIlp {
    /// The program: QUBO variables first, then one linearisation variable
    /// per quadratic term in `Qubo::quadratic` order.
    pub program: BinaryProgram,
    /// Number of original QUBO variables.
    pub num_qubo_vars: usize,
}

/// Builds the linearised QUBO integer program (LIN-QUB).
pub fn qubo_to_ilp(qubo: &Qubo) -> QuboIlp {
    let mut lp = LinearProgram::default();
    for &c in qubo.linear() {
        lp.add_var(c, 1.0);
    }
    for &(i, j, w) in qubo.quadratic() {
        let y = lp.add_var(w, 1.0);
        if w < 0.0 {
            // Objective pushes y up; cap it at both factors.
            lp.add_constraint(vec![(y, 1.0), (i.index(), -1.0)], Sense::Le, 0.0);
            lp.add_constraint(vec![(y, 1.0), (j.index(), -1.0)], Sense::Le, 0.0);
        } else {
            // Objective pushes y down; force y ≥ x_i + x_j − 1 (y ≥ 0 is the
            // variable bound).
            lp.add_constraint(
                vec![(y, 1.0), (i.index(), -1.0), (j.index(), -1.0)],
                Sense::Ge,
                -1.0,
            );
        }
    }
    QuboIlp {
        program: BinaryProgram {
            relaxation: lp,
            binary: (0..qubo.num_vars()).collect(),
        },
        num_qubo_vars: qubo.num_vars(),
    }
}

/// Evaluates a QUBO assignment as the equivalent ILP point (filling in the
/// linearisation variables), mostly for tests.
pub fn qubo_assignment_to_ilp_point(qubo: &Qubo, x: &[bool]) -> Vec<f64> {
    let mut point: Vec<f64> = x.iter().map(|&b| f64::from(u8::from(b))).collect();
    for &(i, j, _) in qubo.quadratic() {
        point.push(f64::from(u8::from(x[i.index()] && x[j.index()])));
    }
    point
}

/// Convenience: the VarId-indexed assignment from the binary block of an ILP
/// point.
pub fn ilp_point_to_assignment(num_vars: usize, x: &[f64]) -> Vec<bool> {
    (0..num_vars).map(|i| x[i] > 0.5).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqo_core::ids::VarId;

    fn example_problem() -> MqoProblem {
        let mut b = MqoProblem::builder();
        let q1 = b.add_query(&[2.0, 4.0]);
        let q2 = b.add_query(&[3.0, 1.0]);
        let p2 = b.plans_of(q1)[1];
        let p3 = b.plans_of(q2)[0];
        b.add_saving(p2, p3, 5.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn mqo_ilp_shape_matches_the_formulation() {
        let p = example_problem();
        let ilp = mqo_to_ilp(&p);
        let lp = &ilp.program.relaxation;
        // 4 plan vars + 1 linking var; 2 equality + 2 linking rows.
        assert_eq!(lp.num_vars(), 5);
        assert_eq!(lp.constraints.len(), 4);
        assert_eq!(ilp.num_plan_vars, 4);
        assert_eq!(lp.objective, vec![2.0, 4.0, 3.0, 1.0, -5.0]);
    }

    #[test]
    fn mqo_ilp_objective_matches_mqo_cost_on_integral_points() {
        let p = example_problem();
        let ilp = mqo_to_ilp(&p);
        // Select p2 and p3, y = 1: cost 4 + 3 − 5 = 2.
        let x = vec![0.0, 1.0, 1.0, 0.0, 1.0];
        assert!(ilp.program.relaxation.is_feasible(&x, 1e-9));
        assert_eq!(ilp.program.relaxation.objective_value(&x), 2.0);
        assert_eq!(ilp_point_to_plans(&ilp, &x), vec![PlanId(1), PlanId(2)]);
        // y = 1 without x_p2 = 1 is infeasible.
        let bad = vec![0.0, 0.0, 1.0, 1.0, 1.0];
        assert!(!ilp.program.relaxation.is_feasible(&bad, 1e-9));
    }

    #[test]
    fn qubo_ilp_matches_energy_on_all_assignments() {
        let mut b = Qubo::builder(3);
        b.add_linear(VarId(0), 1.5);
        b.add_linear(VarId(1), -2.0);
        b.add_quadratic(VarId(0), VarId(1), 3.0); // positive → Ge row
        b.add_quadratic(VarId(1), VarId(2), -1.0); // negative → Le rows
        let qubo = b.build();
        let ilp = qubo_to_ilp(&qubo);
        for mask in 0u32..8 {
            let x: Vec<bool> = (0..3).map(|i| mask & (1 << i) != 0).collect();
            let point = qubo_assignment_to_ilp_point(&qubo, &x);
            assert!(
                ilp.program.relaxation.is_feasible(&point, 1e-9),
                "point for {x:?} infeasible"
            );
            assert!(
                (ilp.program.relaxation.objective_value(&point) - qubo.energy(&x)).abs() < 1e-12
            );
            assert_eq!(ilp_point_to_assignment(3, &point), x);
        }
    }

    #[test]
    fn qubo_ilp_forbids_cheating_on_positive_terms() {
        // x_i = x_j = 1 must force y = 1 on positive terms.
        let mut b = Qubo::builder(2);
        b.add_quadratic(VarId(0), VarId(1), 2.0);
        let qubo = b.build();
        let ilp = qubo_to_ilp(&qubo);
        let cheat = vec![1.0, 1.0, 0.0];
        assert!(!ilp.program.relaxation.is_feasible(&cheat, 1e-9));
        let honest = vec![1.0, 1.0, 1.0];
        assert!(ilp.program.relaxation.is_feasible(&honest, 1e-9));
    }

    #[test]
    fn feasibility_checks_bounds() {
        let mut lp = LinearProgram::default();
        lp.add_var(1.0, 1.0);
        assert!(lp.is_feasible(&[1.0], 1e-9));
        assert!(!lp.is_feasible(&[1.5], 1e-9));
        assert!(!lp.is_feasible(&[-0.5], 1e-9));
        assert!(!lp.is_feasible(&[], 1e-9));
    }
}
