//! Exact anytime branch-and-bound on a (linearised) QUBO — the role of
//! "LIN-QUB" in the paper's figures: the integer-programming solver applied
//! to the *transformed* problem the quantum annealer sees, rather than to
//! the MQO instance directly.
//!
//! The paper observes that LIN-QUB consistently trails LIN-MQO because the
//! QUBO reformulation blows up the search space with invalid selections that
//! the penalty terms must rule out; the same effect appears here through the
//! much looser decomposable bound over the penalty-laden energy formula.

use crate::bound::qubo_bound;
use mqo_core::ids::VarId;
use mqo_core::qubo::Qubo;
use mqo_core::trace::Trace;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

pub use crate::bb_mqo::StopReason;

/// Configuration for [`solve`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuboBbConfig {
    /// Wall-clock budget; `None` runs to completion.
    pub deadline: Option<Duration>,
    /// Hard cap on explored nodes (0 = unlimited).
    pub node_limit: u64,
    /// Numerical slack when pruning against the incumbent.
    pub tolerance: f64,
    /// Cap on simultaneously open nodes; beyond it the worst-bound half is
    /// discarded (the optimality certificate is lost and the run reports
    /// [`StopReason::NodeLimit`] instead of `Optimal`).
    pub max_open_nodes: usize,
}

impl Default for QuboBbConfig {
    fn default() -> Self {
        QuboBbConfig {
            deadline: None,
            node_limit: 0,
            tolerance: 1e-9,
            max_open_nodes: 200_000,
        }
    }
}

/// Outcome of a QUBO branch-and-bound run.
#[derive(Debug, Clone)]
pub struct QuboBbOutcome {
    /// Best assignment found, with its energy.
    pub best: Option<(Vec<bool>, f64)>,
    /// Incumbent-improvement trace (energy over wall-clock time).
    pub trace: Trace,
    /// Whether and why the search terminated.
    pub stop: StopReason,
    /// Nodes expanded.
    pub nodes: u64,
    /// Root lower bound.
    pub root_bound: f64,
}

struct Node {
    bound: f64,
    depth: usize,
    /// Values for `order[0..depth]`.
    values: Vec<bool>,
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .bound
            .total_cmp(&self.bound)
            .then_with(|| self.depth.cmp(&other.depth))
    }
}

/// Runs branch-and-bound on a QUBO.
pub fn solve(qubo: &Qubo, config: &QuboBbConfig) -> QuboBbOutcome {
    let start = Instant::now();
    let n = qubo.num_vars();
    let mut trace = Trace::new();

    // Static branching order: most "influential" variables first.
    let mut order: Vec<usize> = (0..n).collect();
    let influence: Vec<f64> = (0..n)
        .map(|i| {
            qubo.linear()[i].abs()
                + qubo
                    .neighbours(VarId::new(i))
                    .iter()
                    .map(|(_, w)| w.abs())
                    .sum::<f64>()
        })
        .collect();
    order.sort_by(|&a, &b| influence[b].total_cmp(&influence[a]));

    let mut fixed: Vec<Option<bool>> = vec![None; n];
    let root_bound = qubo_bound(qubo, &fixed);

    // Root incumbent.
    let greedy = greedy_completion(qubo, &fixed, &order);
    let greedy_energy = qubo.energy(&greedy);
    trace.record(start.elapsed(), greedy_energy);
    let mut best: Option<(Vec<bool>, f64)> = Some((greedy, greedy_energy));

    let mut heap = BinaryHeap::new();
    heap.push(Node {
        bound: root_bound,
        depth: 0,
        values: Vec::new(),
    });

    let mut nodes = 0u64;
    let mut stop = StopReason::Optimal;
    let mut certificate_lost = false;
    while let Some(node) = heap.pop() {
        let incumbent = best.as_ref().map_or(f64::INFINITY, |(_, e)| *e);
        if node.bound >= incumbent - config.tolerance {
            break;
        }
        if let Some(deadline) = config.deadline {
            if start.elapsed() >= deadline {
                stop = StopReason::Deadline;
                break;
            }
        }
        nodes += 1;
        if config.node_limit > 0 && nodes > config.node_limit {
            stop = StopReason::NodeLimit;
            break;
        }
        if node.depth == n {
            continue; // complete leaf; bound was exact
        }

        // Materialise the node's fixation.
        fixed.fill(None);
        for (d, &v) in node.values.iter().enumerate() {
            fixed[order[d]] = Some(v);
        }

        // Incumbent from a greedy dive.
        let completion = greedy_completion(qubo, &fixed, &order);
        let energy = qubo.energy(&completion);
        if energy < incumbent - config.tolerance {
            trace.record(start.elapsed(), energy);
            best = Some((completion, energy));
        }

        let var = order[node.depth];
        for value in [false, true] {
            fixed[var] = Some(value);
            let child_bound = qubo_bound(qubo, &fixed);
            let incumbent = best.as_ref().map_or(f64::INFINITY, |(_, e)| *e);
            if child_bound < incumbent - config.tolerance {
                let mut values = node.values.clone();
                values.push(value);
                heap.push(Node {
                    bound: child_bound,
                    depth: node.depth + 1,
                    values,
                });
            }
        }
        fixed[var] = None;

        if config.max_open_nodes > 0 && heap.len() > config.max_open_nodes {
            let mut nodes_vec = heap.into_vec();
            nodes_vec.sort_by(|a, b| a.bound.total_cmp(&b.bound));
            nodes_vec.truncate(config.max_open_nodes / 2);
            heap = BinaryHeap::from(nodes_vec);
            certificate_lost = true;
        }
    }
    if certificate_lost && stop == StopReason::Optimal {
        stop = StopReason::NodeLimit;
    }

    QuboBbOutcome {
        best,
        trace,
        stop,
        nodes,
        root_bound,
    }
}

/// Greedy completion: unfixed variables (in branching order) take the value
/// minimising their local field against everything decided so far.
fn greedy_completion(qubo: &Qubo, fixed: &[Option<bool>], order: &[usize]) -> Vec<bool> {
    let n = qubo.num_vars();
    let mut x: Vec<bool> = (0..n).map(|i| fixed[i] == Some(true)).collect();
    let mut decided: Vec<bool> = fixed.iter().map(Option::is_some).collect();
    for &i in order {
        if decided[i] {
            continue;
        }
        let mut field = qubo.linear()[i];
        for &(j, w) in qubo.neighbours(VarId::new(i)) {
            if decided[j.index()] && x[j.index()] {
                field += w;
            }
        }
        x[i] = field < 0.0;
        decided[i] = true;
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng_stream(seed: u64) -> impl FnMut() -> u64 {
        let mut s = seed | 1;
        move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        }
    }

    fn random_qubo(next: &mut impl FnMut() -> u64, n: usize, density: u64) -> Qubo {
        let mut b = Qubo::builder(n);
        for i in 0..n {
            b.add_linear(VarId::new(i), ((next() % 15) as f64) - 7.0);
            for j in i + 1..n {
                if next() % 100 < density {
                    b.add_quadratic(VarId::new(i), VarId::new(j), ((next() % 9) as f64) - 4.0);
                }
            }
        }
        b.build()
    }

    #[test]
    fn finds_and_proves_the_minimum_on_random_quboss() {
        let mut next = rng_stream(0xBADA55);
        for case in 0..25 {
            let q = random_qubo(&mut next, 4 + (case % 7), 60);
            let (_, opt) = q.brute_force_minimum();
            let out = solve(&q, &QuboBbConfig::default());
            assert_eq!(out.stop, StopReason::Optimal, "case {case}");
            let (x, e) = out.best.expect("solution");
            assert!((e - opt).abs() < 1e-9, "case {case}: {e} vs {opt}");
            assert!((q.energy(&x) - e).abs() < 1e-9);
            assert!(out.root_bound <= opt + 1e-9);
        }
    }

    #[test]
    fn solves_the_paper_example_qubo() {
        use mqo_core::logical::LogicalMapping;
        use mqo_core::problem::MqoProblem;
        let mut b = MqoProblem::builder();
        let q1 = b.add_query(&[2.0, 4.0]);
        let q2 = b.add_query(&[3.0, 1.0]);
        let p2 = b.plans_of(q1)[1];
        let p3 = b.plans_of(q2)[0];
        b.add_saving(p2, p3, 5.0).unwrap();
        let p = b.build().unwrap();
        let m = LogicalMapping::new(&p, 0.25);
        let out = solve(m.qubo(), &QuboBbConfig::default());
        let (x, _) = out.best.unwrap();
        assert_eq!(x, vec![false, true, true, false]);
        assert_eq!(out.stop, StopReason::Optimal);
    }

    #[test]
    fn deadline_preserves_an_incumbent() {
        let mut next = rng_stream(0x747);
        let q = random_qubo(&mut next, 30, 30);
        let out = solve(
            &q,
            &QuboBbConfig {
                deadline: Some(Duration::ZERO),
                ..QuboBbConfig::default()
            },
        );
        assert_eq!(out.stop, StopReason::Deadline);
        let (x, e) = out.best.unwrap();
        assert!((q.energy(&x) - e).abs() < 1e-9);
    }

    #[test]
    fn trace_is_strictly_improving() {
        let mut next = rng_stream(0x31337);
        let q = random_qubo(&mut next, 12, 70);
        let out = solve(&q, &QuboBbConfig::default());
        let pts = out.trace.points();
        assert!(!pts.is_empty());
        assert!(pts.windows(2).all(|w| w[1].value < w[0].value));
    }

    #[test]
    fn node_limit_is_honoured() {
        let mut next = rng_stream(0x888);
        let q = random_qubo(&mut next, 20, 50);
        let out = solve(
            &q,
            &QuboBbConfig {
                node_limit: 5,
                ..QuboBbConfig::default()
            },
        );
        assert!(out.nodes <= 6);
    }

    #[test]
    fn greedy_completion_respects_fixed_values() {
        let mut next = rng_stream(0x2222);
        let q = random_qubo(&mut next, 8, 60);
        let mut fixed = vec![None; 8];
        fixed[3] = Some(true);
        fixed[5] = Some(false);
        let order: Vec<usize> = (0..8).collect();
        let x = greedy_completion(&q, &fixed, &order);
        assert!(x[3]);
        assert!(!x[5]);
    }
}
