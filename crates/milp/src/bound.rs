//! Admissible lower bounds used by the branch-and-bound engines.
//!
//! Both bounds are *decomposable*: given a partial assignment they split into
//! per-query (resp. per-variable) minima plus exactly-counted fixed terms, so
//! a node bound costs `O(|P| + |S|)` — cheap enough for millions of nodes.
//! Validity proofs are in the doc comments; admissibility is also enforced by
//! randomised tests against exhaustive enumeration.

use mqo_core::ids::{PlanId, QueryId};
use mqo_core::problem::MqoProblem;
use mqo_core::qubo::Qubo;

/// Lower bound for MQO under a partial plan fixation.
///
/// Let `F` be the set of fixed plans (one per fixed query) and `U` the
/// unfixed queries. Because a valid solution selects exactly one plan per
/// query, a plan `p` can realise at most `P(p, q') = max_{p'∈P_{q'}}
/// s_{p,p'}` of saving towards query `q'` — the *sum* over `q'`'s plans
/// vastly overstates it. With
///
/// ```text
/// val(p) = c_p − Σ_{p'∈F} s_{p,p'} − ½ Σ_{q'∈U, q'≠q(p)} P(p, q')
/// C(Pe) ≥ cost(F) + Σ_{q∈U} min_{p∈P_q} val(p)
/// ```
///
/// for every completion `Pe ⊇ F`: fixed–fixed savings are counted exactly
/// in `cost(F)`, fixed–unfixed savings exactly once inside `val`, and each
/// unfixed–unfixed saving `s_{p1,p2}` at most once in total (½ at each
/// endpoint, each capped by the per-query-pair maximum).
#[derive(Debug)]
pub struct MqoBound<'a> {
    problem: &'a MqoProblem,
    /// Scratch: whether each *query* is currently fixed.
    query_fixed: Vec<bool>,
    /// CSR over plans: for each plan, its `(neighbour query, P(p, q'))`
    /// entries (queries deduplicated, `P` = max saving into that query).
    pot_offsets: Vec<u32>,
    pot_entries: Vec<(QueryId, f64)>,
}

impl<'a> MqoBound<'a> {
    /// Creates a bound evaluator for a problem (precomputes the per-plan
    /// per-query saving caps in `O(|S| log)`) .
    pub fn new(problem: &'a MqoProblem) -> Self {
        let mut pot_offsets = Vec::with_capacity(problem.num_plans() + 1);
        let mut pot_entries = Vec::new();
        pot_offsets.push(0u32);
        let mut scratch: std::collections::BTreeMap<QueryId, f64> =
            std::collections::BTreeMap::new();
        for p in problem.plans() {
            scratch.clear();
            for &(p2, s) in problem.savings_of(p) {
                let q2 = problem.query_of(p2);
                let entry = scratch.entry(q2).or_insert(0.0);
                *entry = entry.max(s);
            }
            pot_entries.extend(scratch.iter().map(|(&q, &m)| (q, m)));
            pot_offsets.push(pot_entries.len() as u32);
        }
        MqoBound {
            problem,
            query_fixed: vec![false; problem.num_queries()],
            pot_offsets,
            pot_entries,
        }
    }

    /// The `(neighbour query, max saving)` caps of a plan.
    fn potentials(&self, p: PlanId) -> &[(QueryId, f64)] {
        let lo = self.pot_offsets[p.index()] as usize;
        let hi = self.pot_offsets[p.index() + 1] as usize;
        &self.pot_entries[lo..hi]
    }

    /// Computes the lower bound for the partial assignment `fixed`
    /// (`fixed[k]` = plan chosen for the query it belongs to). Every plan's
    /// query is derived from the problem, so the caller only supplies plans.
    ///
    /// Also returns, for each unfixed query, its best plan under `val` — the
    /// branching heuristics reuse them.
    pub fn evaluate(&mut self, fixed: &[PlanId]) -> MqoBoundResult {
        let problem = self.problem;
        self.query_fixed.fill(false);
        let mut fixed_selected = vec![false; problem.num_plans()];
        for &p in fixed {
            let q = problem.query_of(p);
            debug_assert!(!self.query_fixed[q.index()], "query fixed twice");
            self.query_fixed[q.index()] = true;
            fixed_selected[p.index()] = true;
        }

        // Exact fixed part.
        let mut base = 0.0;
        for &p in fixed {
            base += problem.plan_cost(p);
            for &(p2, s) in problem.savings_of(p) {
                if fixed_selected[p2.index()] {
                    base -= s / 2.0; // symmetric visit → each pair halved twice
                }
            }
        }

        // Per-query minima over val(p).
        let mut bound = base;
        let mut per_query = Vec::new();
        for q in problem.queries() {
            if self.query_fixed[q.index()] {
                continue;
            }
            let mut best = f64::INFINITY;
            let mut best_plan = None;
            let mut second = f64::INFINITY;
            for p in problem.plans_of(q) {
                let mut val = problem.plan_cost(p);
                // Fixed–unfixed savings: exact per selected fixed plan.
                for &(p2, s) in problem.savings_of(p) {
                    if fixed_selected[p2.index()] {
                        val -= s;
                    }
                }
                // Unfixed–unfixed potential: capped per neighbour query.
                for &(q2, cap) in self.potentials(p) {
                    if !self.query_fixed[q2.index()] && q2 != q {
                        val -= cap / 2.0;
                    }
                }
                if val < best {
                    second = best;
                    best = val;
                    best_plan = Some(p);
                } else if val < second {
                    second = val;
                }
            }
            bound += best;
            per_query.push(QueryBound {
                query: q,
                best_plan: best_plan.expect("non-empty query"),
                best,
                regret: if second.is_finite() {
                    second - best
                } else {
                    0.0
                },
            });
        }

        MqoBoundResult {
            bound,
            fixed_cost: base,
            per_query,
        }
    }
}

/// Best-plan information for one unfixed query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryBound {
    /// The query this entry describes.
    pub query: QueryId,
    /// Plan achieving the per-query minimum.
    pub best_plan: PlanId,
    /// The per-query minimum value.
    pub best: f64,
    /// Gap to the second-best plan (0 for single-plan queries) — the
    /// branching regret.
    pub regret: f64,
}

/// Result of one MQO bound evaluation.
#[derive(Debug, Clone)]
pub struct MqoBoundResult {
    /// Admissible lower bound on any completion's execution cost.
    pub bound: f64,
    /// Exact cost of the fixed part alone.
    pub fixed_cost: f64,
    /// Per-unfixed-query minima (empty when everything is fixed).
    pub per_query: Vec<QueryBound>,
}

/// Lower bound for a QUBO under a partial 0/1 fixation.
///
/// With `U` the unfixed variables, `f_i` the field from fixed-at-1
/// neighbours, and `w⁻_ij = min(w_ij, 0)`:
///
/// ```text
/// E(x) ≥ E_fixed + Σ_{i∈U} min(0, w_i + f_i + ½ Σ_{j∈U} w⁻_ij)
/// ```
///
/// using `x_i x_j ≤ (x_i + x_j)/2` for binary variables to split each
/// negative unfixed–unfixed term across its endpoints, and dropping positive
/// unfixed–unfixed terms (they only increase energy).
pub fn qubo_bound(qubo: &Qubo, fixed: &[Option<bool>]) -> f64 {
    assert_eq!(fixed.len(), qubo.num_vars());
    // Exact fixed-fixed part.
    let mut energy = 0.0;
    for (i, &w) in qubo.linear().iter().enumerate() {
        if fixed[i] == Some(true) {
            energy += w;
        }
    }
    for &(i, j, w) in qubo.quadratic() {
        if fixed[i.index()] == Some(true) && fixed[j.index()] == Some(true) {
            energy += w;
        }
    }
    // Per-unfixed-variable minima.
    for i in 0..qubo.num_vars() {
        if fixed[i].is_some() {
            continue;
        }
        let mut field = qubo.linear()[i];
        for &(j, w) in qubo.neighbours(mqo_core::ids::VarId::new(i)) {
            match fixed[j.index()] {
                Some(true) => field += w,
                Some(false) => {}
                None => field += 0.5 * w.min(0.0),
            }
        }
        energy += field.min(0.0);
    }
    energy
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqo_core::ids::VarId;
    use mqo_core::solution::Selection;

    fn rng_stream(seed: u64) -> impl FnMut() -> u64 {
        let mut s = seed | 1;
        move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        }
    }

    fn random_problem(next: &mut impl FnMut() -> u64) -> MqoProblem {
        let queries = 3 + (next() % 3) as usize;
        let plans = 2 + (next() % 2) as usize;
        let mut b = MqoProblem::builder();
        for _ in 0..queries {
            let costs: Vec<f64> = (0..plans).map(|_| (next() % 10) as f64).collect();
            b.add_query(&costs);
        }
        let total = queries * plans;
        for _ in 0..(2 * queries) {
            let p1 = (next() % total as u64) as usize;
            let p2 = (next() % total as u64) as usize;
            let s = 1.0 + (next() % 3) as f64;
            let _ = b.add_saving(PlanId::new(p1), PlanId::new(p2), s);
        }
        b.build().unwrap()
    }

    #[test]
    fn mqo_bound_is_admissible_on_random_instances() {
        let mut next = rng_stream(0xDEADBEEF);
        for case in 0..40 {
            let p = random_problem(&mut next);
            let (_, opt) = p.brute_force_optimum();
            let mut bound = MqoBound::new(&p);
            // Root bound.
            let root = bound.evaluate(&[]);
            assert!(
                root.bound <= opt + 1e-9,
                "case {case}: root bound {} exceeds optimum {opt}",
                root.bound
            );
            // Bound with the first query fixed to each of its plans must not
            // exceed the best completion under that fixation.
            for p0 in p.plans_of(QueryId(0)) {
                let node = bound.evaluate(&[p0]);
                let mut best_completion = f64::INFINITY;
                enumerate_completions(&p, vec![p0], &mut best_completion);
                assert!(
                    node.bound <= best_completion + 1e-9,
                    "case {case}: node bound {} exceeds best completion {best_completion}",
                    node.bound
                );
            }
        }
    }

    fn enumerate_completions(p: &MqoProblem, prefix: Vec<PlanId>, best: &mut f64) {
        let q = prefix.len();
        if q == p.num_queries() {
            *best = best.min(p.selection_cost(&Selection::new(prefix)));
            return;
        }
        for plan in p.plans_of(QueryId::new(q)) {
            let mut next = prefix.clone();
            next.push(plan);
            enumerate_completions(p, next, best);
        }
    }

    #[test]
    fn mqo_bound_is_exact_when_everything_is_fixed() {
        let mut next = rng_stream(0x1234);
        let p = random_problem(&mut next);
        let all: Vec<PlanId> = p.queries().map(|q| p.plans_of(q).next().unwrap()).collect();
        let mut bound = MqoBound::new(&p);
        let r = bound.evaluate(&all);
        let cost = p.selection_cost(&Selection::new(all));
        assert!((r.bound - cost).abs() < 1e-9);
        assert!((r.fixed_cost - cost).abs() < 1e-9);
        assert!(r.per_query.is_empty());
    }

    #[test]
    fn mqo_bound_tightens_as_queries_get_fixed() {
        // Fixing the bound's own best plans can only raise (or keep) the
        // bound — a sanity property best-first search relies on.
        let mut next = rng_stream(0xABCD);
        for _ in 0..20 {
            let p = random_problem(&mut next);
            let mut bound = MqoBound::new(&p);
            let root = bound.evaluate(&[]);
            let first_choice = root.per_query[0].best_plan;
            let child = bound.evaluate(&[first_choice]);
            assert!(child.bound >= root.bound - 1e-9);
        }
    }

    #[test]
    fn qubo_bound_is_admissible_on_random_instances() {
        let mut next = rng_stream(0x77777);
        for case in 0..40 {
            let n = 3 + (next() % 5) as usize;
            let mut b = Qubo::builder(n);
            for i in 0..n {
                b.add_linear(VarId::new(i), ((next() % 15) as f64) - 7.0);
                for j in i + 1..n {
                    let w = ((next() % 9) as f64) - 4.0;
                    b.add_quadratic(VarId::new(i), VarId::new(j), w);
                }
            }
            let q = b.build();
            let (_, opt) = q.brute_force_minimum();
            // Root.
            let root = qubo_bound(&q, &vec![None; n]);
            assert!(root <= opt + 1e-9, "case {case}: {root} > {opt}");
            // Every single fixation must bound its sub-space.
            for i in 0..n {
                for value in [false, true] {
                    let mut fixed = vec![None; n];
                    fixed[i] = Some(value);
                    let node = qubo_bound(&q, &fixed);
                    let mut best = f64::INFINITY;
                    for mask in 0u32..(1 << n) {
                        let x: Vec<bool> = (0..n).map(|k| mask & (1 << k) != 0).collect();
                        if x[i] == value {
                            best = best.min(q.energy(&x));
                        }
                    }
                    assert!(
                        node <= best + 1e-9,
                        "case {case}: fix x{i}={value}: {node} > {best}"
                    );
                }
            }
        }
    }

    #[test]
    fn qubo_bound_is_exact_when_fully_fixed() {
        let mut b = Qubo::builder(3);
        b.add_linear(VarId(0), 2.0);
        b.add_linear(VarId(1), -1.0);
        b.add_quadratic(VarId(0), VarId(1), -3.0);
        b.add_quadratic(VarId(1), VarId(2), 4.0);
        let q = b.build();
        for mask in 0u32..8 {
            let x: Vec<bool> = (0..3).map(|k| mask & (1 << k) != 0).collect();
            let fixed: Vec<Option<bool>> = x.iter().map(|&v| Some(v)).collect();
            assert!((qubo_bound(&q, &fixed) - q.energy(&x)).abs() < 1e-12);
        }
    }
}
