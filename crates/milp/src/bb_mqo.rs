//! Exact anytime branch-and-bound on the direct MQO formulation — the role
//! of "LIN-MQO" (integer linear programming applied to MQO) in the paper's
//! figures.
//!
//! Best-first search over per-query plan fixations. Node bounds come from
//! the decomposable [`MqoBound`]; an optional root LP relaxation (the actual
//! `mqo_to_ilp` model solved with the in-crate simplex) tightens the root
//! certificate on instances small enough for a dense tableau. Every node
//! greedily completes its partial assignment, so incumbents improve from the
//! first milliseconds on — the anytime behaviour Figures 4 and 5 plot.

use crate::bound::{MqoBound, MqoBoundResult};
use crate::model::mqo_to_ilp;
use crate::simplex::{self, LpOutcome};
use mqo_core::ids::{PlanId, QueryId};
use mqo_core::problem::MqoProblem;
use mqo_core::solution::Selection;
use mqo_core::trace::Trace;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

/// Configuration for [`solve`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MqoBbConfig {
    /// Wall-clock budget; `None` runs to completion.
    pub deadline: Option<Duration>,
    /// Hard cap on explored nodes (0 = unlimited).
    pub node_limit: u64,
    /// Solve the root LP relaxation when the model has at most this many LP
    /// variables (plans + linking variables); 0 disables the LP entirely.
    pub lp_var_limit: usize,
    /// Numerical slack when pruning against the incumbent.
    pub tolerance: f64,
    /// Cap on simultaneously open nodes; beyond it the worst-bound half is
    /// discarded (memory stays bounded, the optimality certificate is lost
    /// and the run reports [`StopReason::NodeLimit`] instead of `Optimal`).
    pub max_open_nodes: usize,
}

impl Default for MqoBbConfig {
    fn default() -> Self {
        MqoBbConfig {
            deadline: None,
            node_limit: 0,
            lp_var_limit: 400,
            tolerance: 1e-9,
            max_open_nodes: 200_000,
        }
    }
}

/// Why the search stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The search space was exhausted: the incumbent is proved optimal.
    Optimal,
    /// The deadline expired first.
    Deadline,
    /// The node limit was reached first.
    NodeLimit,
}

/// Outcome of a branch-and-bound run.
#[derive(Debug, Clone)]
pub struct MqoBbOutcome {
    /// Best solution found, with its cost.
    pub best: Option<(Selection, f64)>,
    /// Incumbent-improvement trace (cost over wall-clock time).
    pub trace: Trace,
    /// Whether and why the search terminated.
    pub stop: StopReason,
    /// Nodes expanded.
    pub nodes: u64,
    /// The root lower bound (combinatorial, possibly improved by the LP).
    pub root_bound: f64,
}

struct Node {
    bound: f64,
    /// Plans fixed so far, one per fixed query (queries identified via the
    /// plan's owner).
    fixed: Vec<PlanId>,
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on bound; deeper nodes win ties (dive towards leaves).
        other
            .bound
            .total_cmp(&self.bound)
            .then_with(|| self.fixed.len().cmp(&other.fixed.len()))
    }
}

/// Runs branch-and-bound on an MQO instance.
pub fn solve(problem: &MqoProblem, config: &MqoBbConfig) -> MqoBbOutcome {
    let start = Instant::now();
    let mut bound = MqoBound::new(problem);
    let mut trace = Trace::new();
    let mut nodes = 0u64;

    let root = bound.evaluate(&[]);
    let mut root_bound = root.bound;

    // Optional LP tightening at the root (the genuine ILP relaxation).
    let ilp = mqo_to_ilp(problem);
    if config.lp_var_limit > 0 && ilp.program.relaxation.num_vars() <= config.lp_var_limit {
        if let LpOutcome::Optimal(sol) = simplex::solve(&ilp.program.relaxation) {
            root_bound = root_bound.max(sol.objective);
        }
    }

    // Root incumbent.
    let greedy = greedy_completion(problem, &[]);
    let greedy_cost = problem.selection_cost(&greedy);
    trace.record(start.elapsed(), greedy_cost);
    let mut best: Option<(Selection, f64)> = Some((greedy, greedy_cost));

    let mut heap = BinaryHeap::new();
    heap.push(Node {
        bound: root.bound,
        fixed: Vec::new(),
    });

    let mut stop = StopReason::Optimal;
    let mut certificate_lost = false;
    while let Some(node) = heap.pop() {
        let incumbent = best.as_ref().map_or(f64::INFINITY, |(_, c)| *c);
        if node.bound >= incumbent - config.tolerance {
            // Best-first: every remaining node is at least as bad.
            break;
        }
        if let Some(deadline) = config.deadline {
            if start.elapsed() >= deadline {
                stop = StopReason::Deadline;
                break;
            }
        }
        nodes += 1;
        if config.node_limit > 0 && nodes > config.node_limit {
            stop = StopReason::NodeLimit;
            break;
        }

        let eval = bound.evaluate(&node.fixed);
        if eval.per_query.is_empty() {
            // Leaf: a complete assignment. (Bound == exact cost here.)
            continue;
        }

        // Greedy incumbent from this node's fixation.
        let completion = greedy_completion(problem, &node.fixed);
        let cost = problem.selection_cost(&completion);
        if cost < incumbent - config.tolerance {
            trace.record(start.elapsed(), cost);
            best = Some((completion, cost));
        }

        // Branch on the unfixed query with the largest regret.
        let target = branch_query(&eval);
        for plan in problem.plans_of(target) {
            let mut fixed = node.fixed.clone();
            fixed.push(plan);
            let child = bound.evaluate(&fixed);
            let incumbent = best.as_ref().map_or(f64::INFINITY, |(_, c)| *c);
            if child.bound < incumbent - config.tolerance {
                heap.push(Node {
                    bound: child.bound,
                    fixed,
                });
            }
        }

        if config.max_open_nodes > 0 && heap.len() > config.max_open_nodes {
            // Keep the best-bound half; the proof is gone but the anytime
            // behaviour (and memory) survive.
            let mut nodes_vec = heap.into_vec();
            nodes_vec.sort_by(|a, b| a.bound.total_cmp(&b.bound));
            nodes_vec.truncate(config.max_open_nodes / 2);
            heap = BinaryHeap::from(nodes_vec);
            certificate_lost = true;
        }
    }
    if certificate_lost && stop == StopReason::Optimal {
        stop = StopReason::NodeLimit;
    }

    MqoBbOutcome {
        best,
        trace,
        stop,
        nodes,
        root_bound,
    }
}

fn branch_query(eval: &MqoBoundResult) -> QueryId {
    eval.per_query
        .iter()
        .max_by(|a, b| a.regret.total_cmp(&b.regret))
        .expect("at least one unfixed query")
        .query
}

/// Completes a partial fixation greedily: remaining queries (in id order)
/// pick the plan with the lowest marginal cost against everything chosen so
/// far. `O(|P| + |S|)`.
pub fn greedy_completion(problem: &MqoProblem, fixed: &[PlanId]) -> Selection {
    let mut chosen: Vec<Option<PlanId>> = vec![None; problem.num_queries()];
    let mut selected = vec![false; problem.num_plans()];
    for &p in fixed {
        chosen[problem.query_of(p).index()] = Some(p);
        selected[p.index()] = true;
    }
    for q in problem.queries() {
        if chosen[q.index()].is_some() {
            continue;
        }
        let mut best = f64::INFINITY;
        let mut best_plan = None;
        for p in problem.plans_of(q) {
            let mut marginal = problem.plan_cost(p);
            for &(p2, s) in problem.savings_of(p) {
                if selected[p2.index()] {
                    marginal -= s;
                }
            }
            if marginal < best {
                best = marginal;
                best_plan = Some(p);
            }
        }
        let p = best_plan.expect("non-empty query");
        chosen[q.index()] = Some(p);
        selected[p.index()] = true;
    }
    Selection::new(chosen.into_iter().map(|p| p.expect("all fixed")).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng_stream(seed: u64) -> impl FnMut() -> u64 {
        let mut s = seed | 1;
        move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        }
    }

    fn random_problem(next: &mut impl FnMut() -> u64, queries: usize, plans: usize) -> MqoProblem {
        let mut b = MqoProblem::builder();
        for _ in 0..queries {
            let costs: Vec<f64> = (0..plans).map(|_| 1.0 + (next() % 9) as f64).collect();
            b.add_query(&costs);
        }
        let total = queries * plans;
        for _ in 0..(3 * queries) {
            let p1 = (next() % total as u64) as usize;
            let p2 = (next() % total as u64) as usize;
            let _ = b.add_saving(PlanId::new(p1), PlanId::new(p2), 1.0 + (next() % 2) as f64);
        }
        b.build().unwrap()
    }

    #[test]
    fn finds_and_proves_the_optimum_on_random_small_instances() {
        let mut next = rng_stream(0xFEED);
        for case in 0..25 {
            let p = random_problem(&mut next, 3 + (case % 4), 2 + (case % 2));
            let (_, opt) = p.brute_force_optimum();
            let out = solve(&p, &MqoBbConfig::default());
            assert_eq!(out.stop, StopReason::Optimal, "case {case}");
            let (sel, cost) = out.best.expect("solution");
            assert!((cost - opt).abs() < 1e-9, "case {case}: {cost} vs {opt}");
            assert!(p.validate_selection(&sel).is_ok());
            assert!((p.selection_cost(&sel) - cost).abs() < 1e-9);
            assert!(out.root_bound <= opt + 1e-9);
        }
    }

    #[test]
    fn solves_the_paper_example() {
        let mut b = MqoProblem::builder();
        let q1 = b.add_query(&[2.0, 4.0]);
        let q2 = b.add_query(&[3.0, 1.0]);
        let p2 = b.plans_of(q1)[1];
        let p3 = b.plans_of(q2)[0];
        b.add_saving(p2, p3, 5.0).unwrap();
        let p = b.build().unwrap();
        let out = solve(&p, &MqoBbConfig::default());
        let (sel, cost) = out.best.unwrap();
        assert_eq!(cost, 2.0);
        assert_eq!(sel.plans(), &[PlanId(1), PlanId(2)]);
        assert_eq!(out.stop, StopReason::Optimal);
    }

    #[test]
    fn trace_is_monotone_and_ends_at_the_optimum() {
        let mut next = rng_stream(0xBEE);
        let p = random_problem(&mut next, 8, 3);
        let out = solve(&p, &MqoBbConfig::default());
        let points = out.trace.points();
        assert!(!points.is_empty());
        assert!(points.windows(2).all(|w| w[1].value < w[0].value));
        let (_, cost) = out.best.unwrap();
        assert_eq!(out.trace.best(), Some(cost));
    }

    #[test]
    fn deadline_stops_the_search_but_keeps_an_incumbent() {
        let mut next = rng_stream(0xACE);
        let p = random_problem(&mut next, 14, 3);
        let out = solve(
            &p,
            &MqoBbConfig {
                deadline: Some(Duration::ZERO),
                ..MqoBbConfig::default()
            },
        );
        assert_eq!(out.stop, StopReason::Deadline);
        let (sel, _) = out.best.expect("greedy incumbent always exists");
        assert!(p.validate_selection(&sel).is_ok());
    }

    #[test]
    fn node_limit_is_honoured() {
        let mut next = rng_stream(0xC0FFEE);
        let p = random_problem(&mut next, 12, 3);
        let out = solve(
            &p,
            &MqoBbConfig {
                node_limit: 3,
                lp_var_limit: 0,
                ..MqoBbConfig::default()
            },
        );
        assert!(out.nodes <= 4);
        if out.stop == StopReason::NodeLimit {
            assert!(out.best.is_some());
        }
    }

    #[test]
    fn greedy_completion_respects_fixed_plans() {
        let mut next = rng_stream(0x5151);
        let p = random_problem(&mut next, 5, 2);
        let fix = p.plans_of(QueryId(2)).nth(1).unwrap();
        let sel = greedy_completion(&p, &[fix]);
        assert_eq!(sel.plan_of(QueryId(2)), fix);
        assert!(p.validate_selection(&sel).is_ok());
    }

    #[test]
    fn lp_root_bound_never_exceeds_the_optimum() {
        let mut next = rng_stream(0x909);
        for _ in 0..10 {
            let p = random_problem(&mut next, 5, 2);
            let (_, opt) = p.brute_force_optimum();
            let out = solve(&p, &MqoBbConfig::default());
            assert!(out.root_bound <= opt + 1e-6);
        }
    }

    #[test]
    fn larger_instances_with_sparse_savings_are_proved_quickly() {
        // A 40-query chain-structured instance — shaped like the paper's
        // hardware-adjacent workloads.
        let mut b = MqoProblem::builder();
        let mut plans = Vec::new();
        for i in 0..40 {
            let q = b.add_query(&[2.0 + (i % 3) as f64, 3.0]);
            plans.push(b.plans_of(q));
        }
        for w in plans.windows(2) {
            b.add_saving(w[0][1], w[1][1], 2.0).unwrap();
        }
        let p = b.build().unwrap();
        let out = solve(&p, &MqoBbConfig::default());
        assert_eq!(out.stop, StopReason::Optimal);
        // The all-shared selection: every query picks plan 1 at cost 3,
        // saving 2 per adjacent pair: 40·3 − 39·2 = 42. The alternative
        // no-sharing floor is Σ min(c) ≥ 40·2 = 80 > 42 only when i%3==0...
        // just verify against greedy and bound consistency.
        let (_, cost) = out.best.unwrap();
        assert!(cost <= 42.0 + 1e-9);
        assert!(out.root_bound <= cost + 1e-9);
    }
}
