#![warn(missing_docs)]

//! # mqo-milp
//!
//! A from-scratch mathematical-programming stack standing in for the
//! commercial integer-linear-programming solver the paper benchmarks
//! against (Section 7.1):
//!
//! * [`model`] — LP/ILP model types plus the two formulations the paper
//!   uses: the direct MQO program ("LIN-MQO") and the Dash-style QUBO
//!   linearisation ("LIN-QUB");
//! * [`simplex`] — dense two-phase primal simplex with implicitly bounded
//!   variables;
//! * [`bound`] — decomposable admissible lower bounds for both search
//!   spaces;
//! * [`bb_mqo`] / [`bb_qubo`] — exact anytime branch-and-bound engines with
//!   greedy incumbent dives, deadlines, and [`mqo_core::trace::Trace`]
//!   recording for the cost-vs-time figures.
//!
//! ```
//! use mqo_milp::bb_mqo::{self, MqoBbConfig};
//! use mqo_core::MqoProblem;
//!
//! let mut b = MqoProblem::builder();
//! let q1 = b.add_query(&[2.0, 4.0]);
//! let q2 = b.add_query(&[3.0, 1.0]);
//! let (p2, p3) = (b.plans_of(q1)[1], b.plans_of(q2)[0]);
//! b.add_saving(p2, p3, 5.0).unwrap();
//! let problem = b.build().unwrap();
//!
//! let out = bb_mqo::solve(&problem, &MqoBbConfig::default());
//! let (selection, cost) = out.best.unwrap();
//! assert_eq!(cost, 2.0);
//! assert_eq!(problem.selection_cost(&selection), 2.0);
//! ```

pub mod bb_mqo;
pub mod bb_qubo;
pub mod bound;
pub mod model;
pub mod simplex;

pub use bb_mqo::{MqoBbConfig, MqoBbOutcome, StopReason};
pub use bb_qubo::{QuboBbConfig, QuboBbOutcome};
pub use model::{mqo_to_ilp, qubo_to_ilp, BinaryProgram, LinearProgram, Sense};
pub use simplex::{solve as solve_lp, LpOutcome, LpSolution, SimplexConfig};
