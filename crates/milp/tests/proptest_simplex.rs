//! Property-based tests of the simplex solver and the branch-and-bound
//! engines against exhaustive enumeration.

use mqo_core::ids::{PlanId, VarId};
use mqo_core::problem::MqoProblem;
use mqo_core::qubo::Qubo;
use mqo_milp::model::{mqo_to_ilp, qubo_to_ilp, LinearProgram, Sense};
use mqo_milp::{bb_mqo, bb_qubo, simplex, MqoBbConfig, QuboBbConfig, StopReason};
use proptest::prelude::*;

/// Strategy: random bounded LPs over binary boxes with ≤ 6 vars / ≤ 5 rows.
fn arb_binary_box_lp() -> impl Strategy<Value = LinearProgram> {
    (2usize..=6, 1usize..=5).prop_flat_map(|(n, m)| {
        let objective = proptest::collection::vec(-10.0f64..10.0, n);
        let rows = proptest::collection::vec(
            (
                proptest::collection::vec(-4.0f64..4.0, n),
                prop_oneof![Just(Sense::Le), Just(Sense::Ge), Just(Sense::Eq)],
                -3.0f64..6.0,
            ),
            m,
        );
        (objective, rows).prop_map(move |(objective, rows)| {
            let mut lp = LinearProgram {
                objective,
                constraints: vec![],
                upper: vec![1.0; n],
            };
            for (coeffs, sense, rhs) in rows {
                let sparse: Vec<(usize, f64)> = coeffs
                    .into_iter()
                    .enumerate()
                    .filter(|(_, c)| c.abs() > 0.25)
                    .collect();
                if !sparse.is_empty() {
                    lp.add_constraint(sparse, sense, rhs);
                }
            }
            lp
        })
    })
}

/// Strategy: a random MQO instance (2–5 queries × 2–3 plans, sparse savings).
fn arb_problem() -> impl Strategy<Value = MqoProblem> {
    let queries = proptest::collection::vec(proptest::collection::vec(0.0f64..10.0, 2..=3), 2..=5);
    (
        queries,
        proptest::collection::vec((0usize..64, 0usize..64, 0.5f64..4.0), 0..=8),
    )
        .prop_map(|(costs, savings)| {
            let mut b = MqoProblem::builder();
            for q in &costs {
                b.add_query(q);
            }
            let total = b.num_plans();
            for (x, y, s) in savings {
                let _ = b.add_saving(PlanId::new(x % total), PlanId::new(y % total), s);
            }
            b.build().unwrap()
        })
}

fn arb_qubo() -> impl Strategy<Value = Qubo> {
    (2usize..=7).prop_flat_map(|n| {
        let linear = proptest::collection::vec(-8.0f64..8.0, n);
        let quad = proptest::collection::vec(((0..n, 0..n), -5.0f64..5.0), 0..=n);
        (Just(n), linear, quad).prop_map(|(n, linear, quad)| {
            let mut b = Qubo::builder(n);
            for (i, w) in linear.into_iter().enumerate() {
                b.add_linear(VarId::new(i), w);
            }
            for ((i, j), w) in quad {
                if i != j {
                    b.add_quadratic(VarId::new(i), VarId::new(j), w);
                }
            }
            b.build()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// On box-bounded LPs, the simplex optimum (a) is feasible, (b) never
    /// exceeds the best binary point (the LP relaxes the box's vertices).
    #[test]
    fn simplex_relaxation_bounds_binary_optimum(lp in arb_binary_box_lp()) {
        let n = lp.num_vars();
        let mut best = f64::INFINITY;
        for mask in 0u32..(1 << n) {
            let x: Vec<f64> = (0..n).map(|j| f64::from(u8::from(mask & (1 << j) != 0))).collect();
            if lp.is_feasible(&x, 1e-9) {
                best = best.min(lp.objective_value(&x));
            }
        }
        match simplex::solve(&lp) {
            simplex::LpOutcome::Optimal(s) => {
                prop_assert!(lp.is_feasible(&s.x, 1e-5));
                if best.is_finite() {
                    prop_assert!(s.objective <= best + 1e-6,
                        "LP {} above binary optimum {best}", s.objective);
                }
            }
            simplex::LpOutcome::Infeasible => {
                prop_assert!(best.is_infinite(),
                    "simplex claims infeasible but a binary point exists");
            }
            other => prop_assert!(false, "unexpected outcome {other:?}"),
        }
    }

    /// LIN-MQO (branch-and-bound) always matches brute force and proves it.
    #[test]
    fn bb_mqo_matches_brute_force(problem in arb_problem()) {
        let (_, optimum) = problem.brute_force_optimum();
        let out = bb_mqo::solve(&problem, &MqoBbConfig::default());
        prop_assert_eq!(out.stop, StopReason::Optimal);
        let (sel, cost) = out.best.unwrap();
        prop_assert!((cost - optimum).abs() < 1e-9);
        prop_assert!(problem.validate_selection(&sel).is_ok());
        prop_assert!(out.root_bound <= optimum + 1e-9);
    }

    /// LIN-QUB (branch-and-bound on the QUBO) matches brute force too.
    #[test]
    fn bb_qubo_matches_brute_force(qubo in arb_qubo()) {
        let (_, optimum) = qubo.brute_force_minimum();
        let out = bb_qubo::solve(&qubo, &QuboBbConfig::default());
        prop_assert_eq!(out.stop, StopReason::Optimal);
        let (x, e) = out.best.unwrap();
        prop_assert!((e - optimum).abs() < 1e-9);
        prop_assert!((qubo.energy(&x) - e).abs() < 1e-9);
    }

    /// The MQO ILP model evaluates integral selections to their true cost.
    #[test]
    fn mqo_ilp_objective_matches_cost(problem in arb_problem()) {
        let ilp = mqo_to_ilp(&problem);
        let (sel, optimum) = problem.brute_force_optimum();
        // Build the matching ILP point: x for plans, y = both-selected.
        let mut point = vec![0.0; ilp.program.relaxation.num_vars()];
        for &p in sel.plans() {
            point[p.index()] = 1.0;
        }
        for (k, &(p1, p2, _)) in problem.savings().iter().enumerate() {
            let selected = |p: PlanId| sel.plans().contains(&p);
            if selected(p1) && selected(p2) {
                point[ilp.num_plan_vars + k] = 1.0;
            }
        }
        prop_assert!(ilp.program.relaxation.is_feasible(&point, 1e-9));
        prop_assert!((ilp.program.relaxation.objective_value(&point) - optimum).abs() < 1e-9);
    }

    /// The QUBO linearisation evaluates every assignment to its energy.
    #[test]
    fn qubo_ilp_matches_energy(qubo in arb_qubo()) {
        let ilp = qubo_to_ilp(&qubo);
        let n = qubo.num_vars();
        for mask in 0u32..(1 << n) {
            let x: Vec<bool> = (0..n).map(|i| mask & (1 << i) != 0).collect();
            let point = mqo_milp::model::qubo_assignment_to_ilp_point(&qubo, &x);
            prop_assert!(ilp.program.relaxation.is_feasible(&point, 1e-9));
            prop_assert!(
                (ilp.program.relaxation.objective_value(&point) - qubo.energy(&x)).abs() < 1e-9
            );
        }
    }
}
