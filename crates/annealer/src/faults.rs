//! Deterministic fault injection for the simulated device.
//!
//! The paper's D-Wave 2X was a flaky physical machine: 55 of 1152 qubits
//! were dead, calibrations drifted between programmings, and reads came
//! back with broken chains. The static broken-qubit set on
//! [`mqo_chimera::graph::ChimeraGraph`] models the *permanent* defects;
//! this module models the *transient* ones, so the pipeline's resilience
//! story (retry, re-embed, classical fallback) can be exercised and tested
//! without real hardware.
//!
//! Fault taxonomy (all independently configurable, all off by default):
//!
//! * **Qubit dropout** — a qubit dies between two gauge programmings and
//!   stays dead for the rest of the run; its reads turn into noise.
//! * **Readout bit flips** — each read bit flips independently at a fixed
//!   rate, after gauge undo (i.e. in the reported frame).
//! * **Programming rejections** — a gauge batch fails to program and is
//!   retried after a simulated backoff; exhausting the per-gauge attempt
//!   budget aborts the whole run with
//!   [`crate::device::DeviceError::ProgrammingFailed`].
//! * **Stuck reads** — an entire read returns a garbage configuration
//!   unrelated to the programmed problem.
//!
//! Every roll derives from `(run_seed, stream, indices)` via
//! [`crate::parallel::derive_seed`] — the same scheme the device uses for
//! its annealing randomness — so injected faults are a pure function of the
//! run seed and the fault configuration: bit-identical at any thread count,
//! and completely absent (with the clean RNG streams untouched) when the
//! configuration is inert.

use crate::parallel::{derive_seed, splitmix64};

/// Stream tag for programming-cycle rejection rolls.
pub const STREAM_FAULT_PROGRAM: u64 = 0x4650_524f_4721_0004;
/// Stream tag for qubit-dropout rolls.
pub const STREAM_FAULT_DROPOUT: u64 = 0x4644_524f_5021_0005;
/// Stream tag for per-read fault randomness (stuck reads, dead-qubit noise,
/// readout bit flips).
pub const STREAM_FAULT_READ: u64 = 0x4652_4541_4421_0006;

/// Maps a derived seed to one uniform sample in `[0, 1)` through an extra
/// SplitMix64 round — a single probability roll without an RNG object.
#[must_use]
pub fn unit_uniform(seed: u64) -> f64 {
    (splitmix64(seed) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Fault-injection model of one device run. The default (all rates zero)
/// injects nothing and leaves the device bit-identical to the fault-free
/// code path.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
#[serde(default)]
pub struct FaultConfig {
    /// Per-qubit, per-gauge probability that a qubit drops dead before the
    /// gauge is programmed. Dropouts are cumulative for the rest of the run.
    pub qubit_dropout_rate: f64,
    /// Per-bit probability that a read-out bit is flipped.
    pub readout_flip_rate: f64,
    /// Per-attempt probability that a gauge programming is rejected.
    pub programming_reject_rate: f64,
    /// Per-read probability that the whole read is a garbage configuration.
    pub stuck_read_rate: f64,
    /// Programming attempts per gauge before the run is aborted with
    /// [`crate::device::DeviceError::ProgrammingFailed`]. Must be positive.
    pub max_programming_attempts: usize,
    /// Simulated device time charged per rejected programming, microseconds.
    /// Delays shift the timestamps of every subsequent read.
    pub reprogram_backoff_us: f64,
}

/// The inert fault model (no faults, no delays).
impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::NONE
    }
}

impl FaultConfig {
    /// No faults at all: the device takes the exact fault-free code path.
    pub const NONE: FaultConfig = FaultConfig {
        qubit_dropout_rate: 0.0,
        readout_flip_rate: 0.0,
        programming_reject_rate: 0.0,
        stuck_read_rate: 0.0,
        max_programming_attempts: 4,
        reprogram_backoff_us: 7_000.0,
    };

    /// All four fault classes at the same `rate` — the harness's
    /// `--fault-rate` knob.
    #[must_use]
    pub fn uniform(rate: f64) -> FaultConfig {
        FaultConfig {
            qubit_dropout_rate: rate,
            readout_flip_rate: rate,
            programming_reject_rate: rate,
            stuck_read_rate: rate,
            ..FaultConfig::NONE
        }
    }

    /// Whether this configuration can never inject anything. Inert configs
    /// skip fault-plan construction entirely, so the clean RNG streams are
    /// consumed exactly as in the fault-free device.
    #[must_use]
    pub fn is_inert(&self) -> bool {
        self.qubit_dropout_rate <= 0.0
            && self.readout_flip_rate <= 0.0
            && self.programming_reject_rate <= 0.0
            && self.stuck_read_rate <= 0.0
    }

    /// Validates rates and budgets; the device surfaces violations as
    /// [`crate::device::DeviceError::InvalidConfig`].
    pub fn validate(&self) -> Result<(), &'static str> {
        let rate_ok = |r: f64| (0.0..=1.0).contains(&r);
        if !rate_ok(self.qubit_dropout_rate)
            || !rate_ok(self.readout_flip_rate)
            || !rate_ok(self.programming_reject_rate)
            || !rate_ok(self.stuck_read_rate)
        {
            return Err("fault rates must lie in [0, 1]");
        }
        if self.max_programming_attempts == 0 {
            return Err("max_programming_attempts must be positive");
        }
        if !self.reprogram_backoff_us.is_finite() || self.reprogram_backoff_us < 0.0 {
            return Err("reprogram_backoff_us must be finite and non-negative");
        }
        Ok(())
    }
}

/// Everything a device run injected, aggregated for the caller.
///
/// The pipeline merges the events of every retry/re-embed run it performs,
/// so `dropped_qubits` may mix dense physical indices from different
/// embeddings; the *count* is the meaningful aggregate.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FaultEvents {
    /// Dense physical indices of qubits that dropped out during the run.
    pub dropped_qubits: Vec<usize>,
    /// Read-out bits flipped by injected noise, across all reads.
    pub readout_flips: usize,
    /// Reads replaced wholesale by garbage configurations.
    pub stuck_reads: usize,
    /// Rejected programming attempts absorbed by device-side retries.
    pub programming_rejects: usize,
    /// Total simulated delay added by re-programming backoffs, microseconds.
    pub delay_us: f64,
}

impl FaultEvents {
    /// Total number of injected fault events.
    #[must_use]
    pub fn total(&self) -> usize {
        self.dropped_qubits.len() + self.readout_flips + self.stuck_reads + self.programming_rejects
    }

    /// Whether no fault was injected.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.total() == 0
    }

    /// Folds another run's events into this aggregate. Dropped-qubit
    /// indices are kept without deduplication across runs (each run has its
    /// own physical index space).
    pub fn merge(&mut self, other: &FaultEvents) {
        self.dropped_qubits.extend_from_slice(&other.dropped_qubits);
        self.readout_flips += other.readout_flips;
        self.stuck_reads += other.stuck_reads;
        self.programming_rejects += other.programming_rejects;
        self.delay_us += other.delay_us;
    }
}

/// A gauge programming exhausted its attempt budget; the device aborts the
/// run (the pipeline decides whether to retry the whole job).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RejectedProgramming {
    /// Index of the gauge batch that failed to program.
    pub gauge: usize,
    /// Programming attempts consumed (equals the configured maximum).
    pub attempts: usize,
}

/// The precomputed fault schedule of one run: which qubits are dead during
/// each gauge batch, how many programming attempts each gauge consumed, and
/// the cumulative backoff delay in front of each gauge's reads.
///
/// Building the plan up front (it is cheap: `O(gauges × qubits)`) keeps the
/// read phase embarrassingly parallel — a read only consults the plan, it
/// never updates shared fault state.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    dead_by_gauge: Vec<Vec<bool>>,
    attempts_by_gauge: Vec<usize>,
    delay_before_gauge_us: Vec<f64>,
}

impl FaultPlan {
    /// Rolls the full fault schedule for a run of `num_gauges` gauge batches
    /// over `num_spins` physical variables. Fails if any gauge exhausts its
    /// programming-attempt budget.
    pub fn build(
        cfg: &FaultConfig,
        run_seed: u64,
        num_gauges: usize,
        num_spins: usize,
    ) -> Result<FaultPlan, RejectedProgramming> {
        let mut dead = vec![false; num_spins];
        let mut dead_by_gauge = Vec::with_capacity(num_gauges);
        let mut attempts_by_gauge = Vec::with_capacity(num_gauges);
        let mut delay_before_gauge_us = Vec::with_capacity(num_gauges);
        let mut delay = 0.0;
        for g in 0..num_gauges {
            if cfg.qubit_dropout_rate > 0.0 {
                for (q, slot) in dead.iter_mut().enumerate() {
                    if !*slot {
                        let roll = unit_uniform(derive_seed(
                            run_seed,
                            STREAM_FAULT_DROPOUT,
                            g as u64,
                            q as u64,
                        ));
                        *slot = roll < cfg.qubit_dropout_rate;
                    }
                }
            }
            dead_by_gauge.push(dead.clone());

            let mut attempts = 0usize;
            loop {
                attempts += 1;
                let rejected = cfg.programming_reject_rate > 0.0
                    && unit_uniform(derive_seed(
                        run_seed,
                        STREAM_FAULT_PROGRAM,
                        g as u64,
                        attempts as u64,
                    )) < cfg.programming_reject_rate;
                if !rejected {
                    break;
                }
                if attempts >= cfg.max_programming_attempts {
                    return Err(RejectedProgramming { gauge: g, attempts });
                }
            }
            delay += (attempts - 1) as f64 * cfg.reprogram_backoff_us;
            delay_before_gauge_us.push(delay);
            attempts_by_gauge.push(attempts);
        }
        Ok(FaultPlan {
            dead_by_gauge,
            attempts_by_gauge,
            delay_before_gauge_us,
        })
    }

    /// Qubits dead while `gauge` is active (cumulative over the run), as a
    /// mask over dense physical indices.
    #[must_use]
    pub fn dead_mask(&self, gauge: usize) -> &[bool] {
        &self.dead_by_gauge[gauge]
    }

    /// Cumulative re-programming delay in front of `gauge`'s reads,
    /// microseconds (includes this gauge's own rejected attempts).
    #[must_use]
    pub fn delay_before_us(&self, gauge: usize) -> f64 {
        self.delay_before_gauge_us[gauge]
    }

    /// All qubits that dropped out at any point of the run, in index order.
    #[must_use]
    pub fn dropped_qubits(&self) -> Vec<usize> {
        match self.dead_by_gauge.last() {
            Some(mask) => mask
                .iter()
                .enumerate()
                .filter_map(|(q, &d)| d.then_some(q))
                .collect(),
            None => Vec::new(),
        }
    }

    /// Total rejected programming attempts across all gauges.
    #[must_use]
    pub fn programming_rejects(&self) -> usize {
        self.attempts_by_gauge.iter().map(|&a| a - 1).sum()
    }

    /// Total simulated delay injected by re-programming, microseconds.
    #[must_use]
    pub fn total_delay_us(&self) -> f64 {
        self.delay_before_gauge_us.last().copied().unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_uniform_lands_in_the_half_open_interval() {
        for seed in 0..10_000u64 {
            let u = unit_uniform(seed);
            assert!((0.0..1.0).contains(&u), "{u}");
        }
    }

    #[test]
    fn inert_configs_are_detected() {
        assert!(FaultConfig::NONE.is_inert());
        assert!(FaultConfig::default().is_inert());
        assert!(FaultConfig::uniform(0.0).is_inert());
        assert!(!FaultConfig::uniform(0.01).is_inert());
        let only_flips = FaultConfig {
            readout_flip_rate: 0.1,
            ..FaultConfig::NONE
        };
        assert!(!only_flips.is_inert());
    }

    #[test]
    fn validate_rejects_bad_rates_and_budgets() {
        assert!(FaultConfig::NONE.validate().is_ok());
        assert!(FaultConfig::uniform(1.0).validate().is_ok());
        assert!(FaultConfig::uniform(1.5).validate().is_err());
        assert!(FaultConfig::uniform(-0.1).validate().is_err());
        assert!(FaultConfig::uniform(f64::NAN).validate().is_err());
        let no_attempts = FaultConfig {
            max_programming_attempts: 0,
            ..FaultConfig::NONE
        };
        assert!(no_attempts.validate().is_err());
        let bad_backoff = FaultConfig {
            reprogram_backoff_us: f64::INFINITY,
            ..FaultConfig::NONE
        };
        assert!(bad_backoff.validate().is_err());
    }

    #[test]
    fn plans_are_deterministic_in_the_seed() {
        let cfg = FaultConfig::uniform(0.2);
        let a = FaultPlan::build(&cfg, 7, 5, 12);
        let b = FaultPlan::build(&cfg, 7, 5, 12);
        assert_eq!(a, b);
        let c = FaultPlan::build(&cfg, 8, 5, 12);
        assert_ne!(a, c, "different seeds should roll different faults");
    }

    #[test]
    fn dropouts_are_cumulative_across_gauges() {
        let cfg = FaultConfig {
            qubit_dropout_rate: 0.3,
            ..FaultConfig::NONE
        };
        let plan = FaultPlan::build(&cfg, 3, 6, 20).expect("no programming faults configured");
        for g in 1..6 {
            for q in 0..20 {
                assert!(
                    !plan.dead_mask(g - 1)[q] || plan.dead_mask(g)[q],
                    "qubit {q} resurrected at gauge {g}"
                );
            }
        }
        let dropped = plan.dropped_qubits();
        assert_eq!(
            dropped,
            plan.dead_mask(5)
                .iter()
                .enumerate()
                .filter_map(|(q, &d)| d.then_some(q))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn certain_dropout_kills_every_qubit_at_gauge_zero() {
        let cfg = FaultConfig {
            qubit_dropout_rate: 1.0,
            ..FaultConfig::NONE
        };
        let plan = FaultPlan::build(&cfg, 0, 2, 5).unwrap();
        assert!(plan.dead_mask(0).iter().all(|&d| d));
        assert_eq!(plan.dropped_qubits(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn certain_rejection_exhausts_the_attempt_budget() {
        let cfg = FaultConfig {
            programming_reject_rate: 1.0,
            max_programming_attempts: 3,
            ..FaultConfig::NONE
        };
        let err = FaultPlan::build(&cfg, 1, 4, 8).unwrap_err();
        assert_eq!(
            err,
            RejectedProgramming {
                gauge: 0,
                attempts: 3
            }
        );
    }

    #[test]
    fn rejections_accumulate_backoff_delay() {
        // Moderate rejection rate: some gauges reprogram, none exhaust the
        // (generous) budget for this seed sweep.
        let cfg = FaultConfig {
            programming_reject_rate: 0.4,
            max_programming_attempts: 64,
            reprogram_backoff_us: 100.0,
            ..FaultConfig::NONE
        };
        let mut saw_reject = false;
        for seed in 0..20 {
            let plan = FaultPlan::build(&cfg, seed, 8, 4).expect("budget of 64 never exhausts");
            let rejects = plan.programming_rejects();
            saw_reject |= rejects > 0;
            assert!((plan.total_delay_us() - 100.0 * rejects as f64).abs() < 1e-9);
            // Delays are non-decreasing over gauges.
            for g in 1..8 {
                assert!(plan.delay_before_us(g) >= plan.delay_before_us(g - 1));
            }
        }
        assert!(saw_reject, "40% rejection over 20 seeds must fire");
    }

    #[test]
    fn fault_events_merge_and_count() {
        let mut a = FaultEvents {
            dropped_qubits: vec![1, 4],
            readout_flips: 3,
            stuck_reads: 1,
            programming_rejects: 2,
            delay_us: 200.0,
        };
        assert_eq!(a.total(), 8);
        assert!(!a.is_empty());
        let b = FaultEvents {
            dropped_qubits: vec![0],
            readout_flips: 1,
            stuck_reads: 0,
            programming_rejects: 1,
            delay_us: 100.0,
        };
        a.merge(&b);
        assert_eq!(a.dropped_qubits, vec![1, 4, 0]);
        assert_eq!(a.readout_flips, 4);
        assert_eq!(a.programming_rejects, 3);
        assert!((a.delay_us - 300.0).abs() < 1e-12);
        assert!(FaultEvents::default().is_empty());
    }
}
