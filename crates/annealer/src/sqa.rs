//! Simulated quantum annealing: path-integral quantum Monte Carlo (PIQMC)
//! for the transverse-field Ising model.
//!
//! This is the standard classical surrogate for the physics the D-Wave
//! machine implements in hardware (and the reference point of several of the
//! is-it-quantum studies the paper cites). The quantum system at inverse
//! temperature `β` with transverse field `Γ` is Trotter-decomposed into `P`
//! coupled replicas ("slices") of the classical problem:
//!
//! ```text
//! H_eff = Σ_k H_problem(s^k)/P − J⊥(Γ) Σ_k Σ_i s_i^k s_i^{k+1}
//! J⊥(Γ) = −(1/2β) · ln tanh(βΓ/P)   (ferromagnetic, → ∞ as Γ → 0)
//! ```
//!
//! One annealing run sweeps Metropolis updates over all slices while `Γ`
//! decreases from `gamma_init` to `gamma_final`, mirroring the adiabatic
//! transformation from the trivially-minimised driver Hamiltonian to the
//! problem Hamiltonian (Section 2 of the paper). The read-out returns the
//! slice with the lowest problem energy.

use crate::sampler::{metropolis_accept, ProgrammedSampler, ReadScratch, Sampler, SamplerHints};
use mqo_core::ids::VarId;
use mqo_core::ising::Ising;
use rand::{Rng, RngCore};
use rand_chacha::ChaCha8Rng;

/// Configuration for [`PathIntegralQmcSampler`]. Field strengths are
/// *relative* to the problem's maximum absolute weight, so one configuration
/// works across differently scaled instances.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SqaConfig {
    /// Number of Trotter slices `P`.
    pub slices: usize,
    /// Monte-Carlo sweeps over all slices during the anneal.
    pub sweeps: usize,
    /// Inverse temperature (relative to `max|w|`).
    pub beta: f64,
    /// Initial transverse field (relative); strong enough to decouple spins.
    pub gamma_init: f64,
    /// Final transverse field (relative); close to zero.
    pub gamma_final: f64,
    /// Enable cluster updates: groups of spins connected by strong
    /// ferromagnetic couplings (|J| ≥ `cluster_threshold · max|J|`, J < 0)
    /// are additionally flipped as single Metropolis moves. Minor-embedding
    /// chains are exactly such clusters, so this halves the energy barrier
    /// of logical-variable flips — the discrete-time analogue of the
    /// collective dynamics strongly coupled qubits exhibit in hardware.
    pub cluster_updates: bool,
    /// Relative strength above which a ferromagnetic bond joins a cluster.
    pub cluster_threshold: f64,
}

impl Default for SqaConfig {
    fn default() -> Self {
        // Calibrated against the paper's D-Wave 2X anchors (first read
        // within ~1.5% of the run's best, final within ~0.4% of optimum on
        // MQO instances) — see the `calibrate` harness binary.
        SqaConfig {
            slices: 8,
            sweeps: 256,
            beta: 32.0,
            gamma_init: 3.0,
            gamma_final: 0.01,
            cluster_updates: true,
            cluster_threshold: 0.5,
        }
    }
}

use crate::clusters::strong_bond_clusters;

/// Path-integral quantum Monte Carlo sampler.
#[derive(Debug, Clone, Default)]
pub struct PathIntegralQmcSampler {
    config: SqaConfig,
}

impl PathIntegralQmcSampler {
    /// Creates a sampler with the given configuration.
    pub fn new(config: SqaConfig) -> Self {
        assert!(config.slices >= 2, "need at least two Trotter slices");
        assert!(config.sweeps > 0, "need at least one sweep");
        assert!(
            config.gamma_init > config.gamma_final && config.gamma_final > 0.0,
            "transverse field must decrease towards (but not reach) zero"
        );
        assert!(config.beta > 0.0, "temperature must be finite and positive");
        PathIntegralQmcSampler { config }
    }

    /// The active configuration.
    pub fn config(&self) -> SqaConfig {
        self.config
    }
}

impl Sampler for PathIntegralQmcSampler {
    type Programmed = ProgrammedSqa;

    fn program(
        &self,
        ising: Ising,
        _hints: &SamplerHints<'_>,
        _rng: &mut dyn RngCore,
    ) -> ProgrammedSqa {
        let n = ising.num_spins();
        // Strong-bond clusters for collective moves, with an O(1)
        // membership map — computed once per programming, shared by all
        // reads of the batch.
        let clusters = if self.config.cluster_updates {
            strong_bond_clusters(&ising, self.config.cluster_threshold)
        } else {
            Vec::new()
        };
        let mut cluster_of = vec![u32::MAX; n];
        for (c, members) in clusters.iter().enumerate() {
            for &i in members {
                cluster_of[i] = c as u32;
            }
        }
        let scale = ising.max_abs_weight().max(f64::MIN_POSITIVE);
        let beta = self.config.beta / scale;
        let p = self.config.slices;
        // Per-sweep inter-slice coupling J⊥ (from the linear Γ ramp, the
        // textbook SQA schedule; J⊥ diverges as Γ → 0), resolved once per
        // programming instead of one tanh/ln pair per sweep per read.
        let j_perp = (0..self.config.sweeps)
            .map(|sweep| {
                let t = sweep as f64 / (self.config.sweeps - 1).max(1) as f64;
                let gamma =
                    scale * (self.config.gamma_init * (1.0 - t) + self.config.gamma_final * t);
                -0.5 / beta * (beta * gamma / p as f64).tanh().ln()
            })
            .collect();
        ProgrammedSqa {
            config: self.config,
            beta,
            j_perp,
            clusters,
            cluster_of,
            ising,
        }
    }

    fn name(&self) -> &'static str {
        "path-integral-qmc"
    }
}

/// [`PathIntegralQmcSampler`] programmed with one problem: the cluster
/// decomposition, temperature scale, and per-sweep inter-slice couplings
/// are resolved once and reused by every read.
#[derive(Debug, Clone)]
pub struct ProgrammedSqa {
    pub(crate) config: SqaConfig,
    pub(crate) beta: f64,
    pub(crate) j_perp: Vec<f64>,
    pub(crate) clusters: Vec<Vec<usize>>,
    pub(crate) cluster_of: Vec<u32>,
    pub(crate) ising: Ising,
}

impl ProgrammedSqa {
    /// The PIQMC kernel, generic over the RNG (monomorphized over
    /// [`ChaCha8Rng`] on the device hot path, `dyn RngCore` otherwise).
    ///
    /// Replica configurations live in one flat `slices` buffer (`k·n + i`),
    /// and each slice maintains its per-spin local fields incrementally: a
    /// single-spin proposal reads the cached field instead of rescanning
    /// the neighbourhood, and only accepted flips pay `O(deg)`. Cluster
    /// moves evaluate their external field from scratch exactly as before
    /// (both kernels share that arithmetic) and patch the fields of every
    /// affected neighbourhood when accepted.
    fn anneal<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        out: &mut [i8],
        slices: &mut Vec<i8>,
        fields: &mut Vec<f64>,
        energies: &mut Vec<f64>,
    ) {
        let ising = &self.ising;
        let n = ising.num_spins();
        debug_assert_eq!(out.len(), n);
        if n == 0 {
            return;
        }
        let p = self.config.slices;
        let p_f = p as f64;
        let beta = self.beta;
        let (offsets, idx, w) = ising.adjacency();

        // Replica-coupled configuration, flattened: slices[k * n + i].
        slices.clear();
        slices.extend((0..p * n).map(|_| if rng.gen::<bool>() { 1i8 } else { -1 }));
        // Per-slice local fields, same layout.
        fields.clear();
        fields.reserve(p * n);
        for k in 0..p {
            let slice = &slices[k * n..(k + 1) * n];
            fields.extend((0..n).map(|i| ising.local_field(slice, VarId::new(i))));
        }

        for &j_perp in &self.j_perp {
            for k in 0..p {
                let up = (k + p - 1) % p;
                let down = (k + 1) % p;
                let base = k * n;
                for i in 0..n {
                    let si = f64::from(slices[base + i]);
                    let classical = -2.0 * si * fields[base + i] / p_f;
                    let neighbours =
                        f64::from(slices[up * n + i]) + f64::from(slices[down * n + i]);
                    let quantum = 2.0 * j_perp * si * neighbours;
                    let delta = classical + quantum;
                    if metropolis_accept(rng, beta, delta) {
                        let flipped = -slices[base + i];
                        slices[base + i] = flipped;
                        let step = f64::from(flipped);
                        let (lo, hi) = (offsets[i] as usize, offsets[i + 1] as usize);
                        for e in lo..hi {
                            fields[base + idx[e] as usize] += 2.0 * w[e] * step;
                        }
                    }
                }

                // Collective moves: flip an entire strong-bond cluster.
                // Intra-cluster couplings are invariant under a joint flip,
                // so only external fields and the inter-slice terms enter.
                for (c, members) in self.clusters.iter().enumerate() {
                    let mut delta = 0.0;
                    for &i in members {
                        let si = f64::from(slices[base + i]);
                        let mut ext_field = ising.fields()[i];
                        let (lo, hi) = (offsets[i] as usize, offsets[i + 1] as usize);
                        for e in lo..hi {
                            let j = idx[e] as usize;
                            if self.cluster_of[j] != c as u32 {
                                ext_field += w[e] * f64::from(slices[base + j]);
                            }
                        }
                        delta += -2.0 * si * ext_field / p_f;
                        let neighbours =
                            f64::from(slices[up * n + i]) + f64::from(slices[down * n + i]);
                        delta += 2.0 * j_perp * si * neighbours;
                    }
                    if metropolis_accept(rng, beta, delta) {
                        for &i in members {
                            slices[base + i] = -slices[base + i];
                        }
                        for &i in members {
                            let step = f64::from(slices[base + i]);
                            let (lo, hi) = (offsets[i] as usize, offsets[i + 1] as usize);
                            for e in lo..hi {
                                fields[base + idx[e] as usize] += 2.0 * w[e] * step;
                            }
                        }
                    }
                }
            }
        }

        // Read-out: the first slice attaining the lowest problem energy.
        // Energies are evaluated once per slice (the previous min_by
        // comparator re-evaluated them per comparison).
        energies.clear();
        energies.extend((0..p).map(|k| ising.energy(&slices[k * n..(k + 1) * n])));
        let mut best = 0usize;
        for k in 1..p {
            if energies[k].total_cmp(&energies[best]) == std::cmp::Ordering::Less {
                best = k;
            }
        }
        out.copy_from_slice(&slices[best * n..(best + 1) * n]);
    }
}

impl ProgrammedSampler for ProgrammedSqa {
    fn num_spins(&self) -> usize {
        self.ising.num_spins()
    }

    fn sample_into(&self, rng: &mut dyn RngCore, out: &mut [i8]) {
        self.anneal(rng, out, &mut Vec::new(), &mut Vec::new(), &mut Vec::new());
    }

    fn sample_into_fast(&self, rng: &mut ChaCha8Rng, out: &mut [i8], scratch: &mut ReadScratch) {
        let ReadScratch {
            fields,
            spins,
            energies,
            mask: _,
            spinf: _,
        } = scratch;
        self.anneal(rng, out, spins, fields, energies);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqo_core::ising::spins_to_bits;
    use mqo_core::qubo::Qubo;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn frustrated_qubo() -> Qubo {
        let mut b = Qubo::builder(6);
        for i in 0..6u32 {
            b.add_linear(VarId(i), (i as f64) - 2.5);
        }
        for i in 0..6u32 {
            for j in (i + 1)..6 {
                b.add_quadratic(VarId(i), VarId(j), ((i + 2 * j) % 5) as f64 - 2.0);
            }
        }
        b.build()
    }

    #[test]
    fn sqa_finds_the_ground_state_of_a_small_frustrated_problem() {
        let qubo = frustrated_qubo();
        let ising = Ising::from_qubo(&qubo);
        let (_, best_e) = qubo.brute_force_minimum();
        let sampler = PathIntegralQmcSampler::default();
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        let mut hits = 0;
        for _ in 0..20 {
            let s = sampler.sample(&ising, &mut rng);
            if (qubo.energy(&spins_to_bits(&s)) - best_e).abs() < 1e-9 {
                hits += 1;
            }
        }
        assert!(hits >= 14, "SQA found the optimum only {hits}/20 times");
    }

    #[test]
    fn sqa_solves_a_ferromagnetic_chain_exactly() {
        // All couplings −1, no fields: ground states are the two aligned
        // configurations with energy −(n−1).
        let n = 24;
        let couplings = (0..n - 1)
            .map(|i| (VarId::new(i), VarId::new(i + 1), -1.0))
            .collect();
        let ising = Ising::new(vec![0.0; n], couplings, 0.0);
        let sampler = PathIntegralQmcSampler::default();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let s = sampler.sample(&ising, &mut rng);
        assert_eq!(ising.energy(&s), -(n as f64 - 1.0));
    }

    #[test]
    fn sampling_is_deterministic_given_the_seed() {
        let ising = Ising::from_qubo(&frustrated_qubo());
        let sampler = PathIntegralQmcSampler::default();
        let a = sampler.sample(&ising, &mut ChaCha8Rng::seed_from_u64(9));
        let b = sampler.sample(&ising, &mut ChaCha8Rng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn cluster_updates_help_on_chain_structured_problems() {
        // Two logical spins, each a 3-qubit ferromagnetic chain, coupled
        // antiferromagnetically: the ground states need whole chains to
        // move together. Compare ground-state hit rates with and without
        // collective moves under a deliberately short anneal.
        let mut couplings = Vec::new();
        for base in [0usize, 3] {
            couplings.push((VarId::new(base), VarId::new(base + 1), -3.0));
            couplings.push((VarId::new(base + 1), VarId::new(base + 2), -3.0));
        }
        couplings.push((VarId::new(2), VarId::new(3), 1.0));
        let h = vec![0.6, 0.0, 0.0, 0.6, 0.0, 0.0];
        let ising = Ising::new(h, couplings, 0.0);
        // Ground state by exhaustion.
        let mut best = f64::INFINITY;
        for mask in 0u32..64 {
            let s: Vec<i8> = (0..6)
                .map(|i| if mask & (1 << i) != 0 { 1 } else { -1 })
                .collect();
            best = best.min(ising.energy(&s));
        }
        let hit_rate = |cluster_updates: bool, seed: u64| {
            let sampler = PathIntegralQmcSampler::new(SqaConfig {
                sweeps: 8,
                cluster_updates,
                ..SqaConfig::default()
            });
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            (0..40)
                .filter(|_| (ising.energy(&sampler.sample(&ising, &mut rng)) - best).abs() < 1e-9)
                .count()
        };
        let with = hit_rate(true, 3);
        let without = hit_rate(false, 3);
        assert!(
            with >= without,
            "cluster updates should not hurt: {with} vs {without}"
        );
        assert!(
            with >= 20,
            "collective moves should find the ground state often ({with}/40)"
        );
    }

    #[test]
    fn handles_empty_problems() {
        let ising = Ising::new(vec![], vec![], 0.0);
        let sampler = PathIntegralQmcSampler::default();
        assert!(sampler
            .sample(&ising, &mut ChaCha8Rng::seed_from_u64(0))
            .is_empty());
    }

    #[test]
    #[should_panic(expected = "at least two Trotter slices")]
    fn single_slice_is_rejected() {
        PathIntegralQmcSampler::new(SqaConfig {
            slices: 1,
            ..SqaConfig::default()
        });
    }

    #[test]
    #[should_panic(expected = "transverse field must decrease")]
    fn increasing_field_is_rejected() {
        PathIntegralQmcSampler::new(SqaConfig {
            gamma_init: 0.1,
            gamma_final: 1.0,
            ..SqaConfig::default()
        });
    }
}
