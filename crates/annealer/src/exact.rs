//! Exhaustive "sampler" for tests: always returns a true ground state.

use crate::sampler::{ProgrammedSampler, Sampler, SamplerHints};
use mqo_core::ising::Ising;
use rand::RngCore;

/// Brute-force ground-state finder (`n ≤ 24`), used as an oracle in tests
/// and to measure how close stochastic samplers get.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExactSampler;

impl Sampler for ExactSampler {
    type Programmed = ProgrammedExact;

    fn program(
        &self,
        ising: Ising,
        _hints: &SamplerHints<'_>,
        _rng: &mut dyn RngCore,
    ) -> ProgrammedExact {
        // The enumeration runs once per programming; reads replay it.
        let n = ising.num_spins();
        assert!(n <= 24, "exact sampling is limited to 24 spins");
        let mut best: Vec<i8> = vec![-1; n];
        let mut best_e = ising.energy(&best);
        let mut s = vec![-1i8; n];
        for mask in 1u32..(1u32 << n) {
            for (i, si) in s.iter_mut().enumerate() {
                *si = if mask & (1 << i) != 0 { 1 } else { -1 };
            }
            let e = ising.energy(&s);
            if e < best_e {
                best_e = e;
                best.clone_from(&s);
            }
        }
        ProgrammedExact { ground: best }
    }

    fn name(&self) -> &'static str {
        "exact"
    }
}

/// [`ExactSampler`] programmed with one problem: the ground state has been
/// enumerated and every read returns it verbatim.
#[derive(Debug, Clone)]
pub struct ProgrammedExact {
    ground: Vec<i8>,
}

impl ProgrammedSampler for ProgrammedExact {
    fn num_spins(&self) -> usize {
        self.ground.len()
    }

    fn sample_into(&self, _rng: &mut dyn RngCore, out: &mut [i8]) {
        out.copy_from_slice(&self.ground);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqo_core::ids::VarId;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn exact_sampler_returns_the_ground_state() {
        let ising = Ising::new(
            vec![0.5, -1.0, 0.25],
            vec![(VarId(0), VarId(1), 1.0), (VarId(1), VarId(2), -0.75)],
            0.0,
        );
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let s = ExactSampler.sample(&ising, &mut rng);
        // Verify against explicit enumeration.
        let mut best = f64::INFINITY;
        for mask in 0u32..8 {
            let cand: Vec<i8> = (0..3)
                .map(|i| if mask & (1 << i) != 0 { 1 } else { -1 })
                .collect();
            best = best.min(ising.energy(&cand));
        }
        assert_eq!(ising.energy(&s), best);
    }

    #[test]
    #[should_panic(expected = "limited to 24 spins")]
    fn refuses_large_problems() {
        let ising = Ising::new(vec![0.0; 30], vec![], 0.0);
        let _ = ExactSampler.sample(&ising, &mut ChaCha8Rng::seed_from_u64(0));
    }
}
