//! The simulated D-Wave 2X device: programming validation, the gauge/read
//! protocol, control-error noise, and the per-read timing model.
//!
//! **Substitution note.** This is the one place the reproduction replaces
//! hardware with software. The device model keeps every *externally
//! observable* contract of the machine the paper used:
//!
//! * only problems whose couplings lie on usable Chimera couplers are
//!   programmable;
//! * each read costs `129 µs` of annealing plus `247 µs` of read-out
//!   (376 µs total) of simulated device time;
//! * runs are split into gauge-transformation batches (10 × 100 reads by
//!   default) with fresh control-error noise per programming;
//! * samples are noisy low-energy configurations of the programmed problem,
//!   produced by a pluggable annealing back-end (classical SA by default,
//!   path-integral QMC for the physics-faithful variant).
//!
//! Reported times for the quantum track are *simulated device* times, just
//! as the paper counts annealing time rather than the (much larger) host
//! round-trip latency.
//!
//! **Execution model.** Every gauge batch and every read draws its
//! randomness from an RNG seeded by [`crate::parallel::derive_seed`] over
//! `(run seed, stream, gauge index, read index)` rather than from one
//! shared sequential stream. Reads are therefore independent by
//! construction, and the device fans them out over a scoped worker pool
//! ([`DeviceConfig::threads`]) while reassembling results in chronological
//! order — a run is bit-identical at any thread count.

use crate::faults::{FaultConfig, FaultEvents, FaultPlan, STREAM_FAULT_READ};
use crate::gauge::Gauge;
use crate::noise::ControlErrorModel;
use crate::parallel::{derive_seed, parallel_map_with, resolve_threads, STREAM_GAUGE, STREAM_READ};
use crate::sampler::{ProgrammedSampler, Read, ReadScratch, SampleSet, Sampler, SamplerHints};
use mqo_chimera::graph::ChimeraGraph;
use mqo_chimera::physical::PhysicalMapping;
use mqo_core::ising::{spins_to_bits, Ising};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Device-level configuration. Defaults follow Section 7.1 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
#[serde(default)]
pub struct DeviceConfig {
    /// Annealing time per run, microseconds (paper default: 129).
    pub anneal_time_us: f64,
    /// Read-out time per run, microseconds (paper default: 247).
    pub readout_time_us: f64,
    /// Total annealing runs per instance (paper: 1000).
    pub num_reads: usize,
    /// Number of gauge transformations the reads are partitioned into
    /// (paper: 10 batches of 100).
    pub num_gauges: usize,
    /// Relative control-error noise applied at each programming.
    pub control_error: ControlErrorModel,
    /// Worker threads for gauge programming and read execution
    /// (`0` = available parallelism). Results are identical at any value.
    pub threads: usize,
    /// Deterministic fault injection (see [`crate::faults`]). Inert by
    /// default; an inert model leaves runs bit-identical to the fault-free
    /// device.
    pub faults: FaultConfig,
}

impl Default for DeviceConfig {
    fn default() -> Self {
        DeviceConfig {
            anneal_time_us: 129.0,
            readout_time_us: 247.0,
            num_reads: 1000,
            num_gauges: 10,
            // Calibrated with the behavioural back-end against the paper's
            // quality anchors (first read ≈ +1.5 % of a run's best, final
            // solution ≈ +0.4 % of optimum); see the `calibrate` and
            // `probe` harness binaries.
            control_error: ControlErrorModel {
                relative_sigma: 0.0025,
            },
            threads: 0,
            faults: FaultConfig::NONE,
        }
    }
}

impl DeviceConfig {
    /// Simulated device time consumed by one annealing run plus read-out.
    pub fn time_per_read_us(&self) -> f64 {
        self.anneal_time_us + self.readout_time_us
    }
}

/// Errors raised when a problem cannot be programmed onto the device.
#[derive(Debug, Clone, PartialEq)]
pub enum DeviceError {
    /// A quadratic term connects two qubits without a usable coupler.
    NotProgrammable {
        /// Index of the offending physical variable pair.
        phys_a: usize,
        /// Second physical variable of the pair.
        phys_b: usize,
    },
    /// The configuration is degenerate (zero reads or gauges, bad fault
    /// rates).
    InvalidConfig(&'static str),
    /// A gauge batch exhausted its programming-attempt budget (injected
    /// fault); the run was aborted before any read.
    ProgrammingFailed {
        /// Index of the gauge batch that failed to program.
        gauge: usize,
        /// Programming attempts consumed before giving up.
        attempts: usize,
    },
}

impl std::fmt::Display for DeviceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeviceError::NotProgrammable { phys_a, phys_b } => write!(
                f,
                "physical variables {phys_a} and {phys_b} are coupled in the formula \
                 but share no usable hardware coupler"
            ),
            DeviceError::InvalidConfig(msg) => write!(f, "invalid device configuration: {msg}"),
            DeviceError::ProgrammingFailed { gauge, attempts } => write!(
                f,
                "gauge batch {gauge} failed to program after {attempts} attempts"
            ),
        }
    }
}

impl std::error::Error for DeviceError {}

/// Host wall-clock spent in each phase of one device run (distinct from the
/// *simulated* device time on the reads): programming the gauge batches,
/// executing the reads, and reassembling the chronological sample set.
#[derive(Debug, Clone, Copy, Default, serde::Serialize, serde::Deserialize)]
pub struct PhaseTimings {
    /// Seconds spent programming all gauge batches (gauge draw, noise
    /// perturbation, `Sampler::program`).
    pub program_s: f64,
    /// Seconds spent executing all annealing reads.
    pub read_s: f64,
    /// Seconds spent reassembling reads and fault events into the set.
    pub assemble_s: f64,
}

/// The simulated annealer device.
#[derive(Debug, Clone)]
pub struct QuantumAnnealer<S> {
    config: DeviceConfig,
    sampler: S,
}

impl<S: Sampler> QuantumAnnealer<S> {
    /// Builds a device with the given protocol configuration and annealing
    /// back-end.
    pub fn new(config: DeviceConfig, sampler: S) -> Self {
        QuantumAnnealer { config, sampler }
    }

    /// The device configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// The annealing back-end.
    pub fn sampler(&self) -> &S {
        &self.sampler
    }

    /// Programs a physically mapped problem and executes the full
    /// gauge/read protocol. Returns reads in chronological order with
    /// simulated device timestamps; energies are evaluated against the true
    /// (noise-free) physical formula.
    pub fn run(
        &self,
        pm: &PhysicalMapping,
        graph: &ChimeraGraph,
        seed: u64,
    ) -> Result<SampleSet, DeviceError> {
        // Programming validation: every coupling must sit on real hardware.
        for &(i, j, _) in pm.physical_qubo().quadratic() {
            let qa = pm.qubit_of_phys(i.index());
            let qb = pm.qubit_of_phys(j.index());
            if !graph.has_coupler(qa, qb) {
                return Err(DeviceError::NotProgrammable {
                    phys_a: i.index(),
                    phys_b: j.index(),
                });
            }
        }
        let true_ising = Ising::from_qubo(pm.physical_qubo());
        // Host-side embedding knowledge: chains in dense physical indices.
        let chains = pm.dense_chains();
        self.run_ising_hinted(
            &true_ising,
            pm.physical_qubo(),
            &SamplerHints { chains: &chains },
            seed,
        )
    }

    /// Runs the protocol on a raw Ising problem without hardware validation
    /// (used for ablations and tests). `true_qubo` is the noise-free
    /// objective that read energies are reported against.
    pub fn run_ising(
        &self,
        true_ising: &Ising,
        true_qubo: &mqo_core::qubo::Qubo,
        seed: u64,
    ) -> Result<SampleSet, DeviceError> {
        self.run_ising_hinted(true_ising, true_qubo, &SamplerHints::default(), seed)
    }

    /// [`QuantumAnnealer::run_ising`] with explicit embedding hints.
    pub fn run_ising_hinted(
        &self,
        true_ising: &Ising,
        true_qubo: &mqo_core::qubo::Qubo,
        hints: &SamplerHints<'_>,
        seed: u64,
    ) -> Result<SampleSet, DeviceError> {
        self.run_ising_timed(true_ising, true_qubo, hints, seed)
            .map(|(set, _)| set)
    }

    /// [`QuantumAnnealer::run_ising_hinted`] with a host wall-clock
    /// breakdown per protocol phase (used by the throughput benchmarks).
    pub fn run_ising_timed(
        &self,
        true_ising: &Ising,
        true_qubo: &mqo_core::qubo::Qubo,
        hints: &SamplerHints<'_>,
        seed: u64,
    ) -> Result<(SampleSet, PhaseTimings), DeviceError> {
        if self.config.num_reads == 0 {
            return Err(DeviceError::InvalidConfig("num_reads must be positive"));
        }
        if self.config.num_gauges == 0 || self.config.num_gauges > self.config.num_reads {
            return Err(DeviceError::InvalidConfig(
                "num_gauges must be in 1..=num_reads",
            ));
        }
        self.config
            .faults
            .validate()
            .map_err(DeviceError::InvalidConfig)?;
        let n = true_ising.num_spins();
        let reads_per_gauge = self.config.num_reads / self.config.num_gauges;
        let remainder = self.config.num_reads % self.config.num_gauges;
        let threads = resolve_threads(self.config.threads);

        // Fault schedule — rolled up front so the read phase stays
        // embarrassingly parallel. Inert configs skip the plan entirely and
        // take the exact fault-free code path below.
        let faults_cfg = self.config.faults;
        let fault_plan = if faults_cfg.is_inert() {
            None
        } else {
            match FaultPlan::build(&faults_cfg, seed, self.config.num_gauges, n) {
                Ok(plan) => Some(plan),
                Err(rejected) => {
                    return Err(DeviceError::ProgrammingFailed {
                        gauge: rejected.gauge,
                        attempts: rejected.attempts,
                    })
                }
            }
        };

        // Phase A — one programming per gauge batch, each from its own
        // derived RNG stream. Hardware re-programs (and therefore re-draws
        // analog error) once per gauge batch. Programmings are stored
        // unboxed (`S::Programmed`), so the read loop below dispatches
        // statically.
        let t0 = std::time::Instant::now();
        let programmed: Vec<(Gauge, S::Programmed)> = parallel_map_with(
            self.config.num_gauges,
            threads,
            || (),
            |_, gauge_idx| {
                let mut rng =
                    ChaCha8Rng::seed_from_u64(derive_seed(seed, STREAM_GAUGE, gauge_idx as u64, 0));
                let gauge = Gauge::random(n, &mut rng);
                let realised = self.config.control_error.perturb(true_ising, &mut rng);
                let prog = self
                    .sampler
                    .program(gauge.apply(&realised), hints, &mut rng);
                (gauge, prog)
            },
        );
        let t1 = std::time::Instant::now();

        // Phase B — every read runs independently on its own derived
        // stream; timestamps come from the read's chronological index, so
        // reassembly in index order reproduces the serial protocol exactly.
        // The first `remainder` gauges serve one extra read each.
        let boundary = remainder * (reads_per_gauge + 1);
        let locate = |idx: usize| -> (usize, usize) {
            if idx < boundary {
                (idx / (reads_per_gauge + 1), idx % (reads_per_gauge + 1))
            } else {
                (
                    remainder + (idx - boundary) / reads_per_gauge,
                    (idx - boundary) % reads_per_gauge,
                )
            }
        };
        let time_per_read = self.config.time_per_read_us();
        let executed = parallel_map_with(
            self.config.num_reads,
            threads,
            // One spin buffer and one scratch per worker, reused across that
            // worker's whole chunk of reads — the read loop allocates only
            // the outgoing assignment.
            || (vec![0i8; n], ReadScratch::default()),
            |(spins, scratch): &mut (Vec<i8>, ReadScratch), idx| {
                let (gauge_idx, read_in_gauge) = locate(idx);
                let (gauge, prog) = &programmed[gauge_idx];
                let mut rng = ChaCha8Rng::seed_from_u64(derive_seed(
                    seed,
                    STREAM_READ,
                    gauge_idx as u64,
                    read_in_gauge as u64,
                ));
                let mut flips = 0usize;
                let mut stuck = false;
                let mut delay_us = 0.0;
                match fault_plan.as_ref() {
                    None => {
                        prog.sample_into_fast(&mut rng, spins, scratch);
                        gauge.transform_spins_in_place(spins);
                    }
                    Some(plan) => {
                        // Fault randomness lives on its own derived stream;
                        // the clean read stream above is consumed exactly as
                        // in the fault-free path. Roll order is fixed:
                        // stuck → dead-qubit noise → per-bit flips.
                        delay_us = plan.delay_before_us(gauge_idx);
                        let mut frng = ChaCha8Rng::seed_from_u64(derive_seed(
                            seed,
                            STREAM_FAULT_READ,
                            gauge_idx as u64,
                            read_in_gauge as u64,
                        ));
                        stuck = faults_cfg.stuck_read_rate > 0.0
                            && frng.gen::<f64>() < faults_cfg.stuck_read_rate;
                        if stuck {
                            for s in spins.iter_mut() {
                                *s = if frng.gen::<bool>() { 1 } else { -1 };
                            }
                        } else {
                            prog.sample_into_fast(&mut rng, spins, scratch);
                            gauge.transform_spins_in_place(spins);
                            for (s, &is_dead) in spins.iter_mut().zip(plan.dead_mask(gauge_idx)) {
                                if is_dead {
                                    *s = if frng.gen::<bool>() { 1 } else { -1 };
                                }
                            }
                        }
                        if faults_cfg.readout_flip_rate > 0.0 {
                            for s in spins.iter_mut() {
                                if frng.gen::<f64>() < faults_cfg.readout_flip_rate {
                                    *s = -*s;
                                    flips += 1;
                                }
                            }
                        }
                    }
                }
                let assignment = spins_to_bits(spins);
                let energy = true_qubo.energy(&assignment);
                let read = Read {
                    assignment,
                    energy,
                    elapsed_us: (idx + 1) as f64 * time_per_read + delay_us,
                    gauge: gauge_idx,
                };
                (read, flips, stuck)
            },
        );

        let t2 = std::time::Instant::now();

        let mut events = match fault_plan.as_ref() {
            Some(plan) => FaultEvents {
                dropped_qubits: plan.dropped_qubits(),
                programming_rejects: plan.programming_rejects(),
                delay_us: plan.total_delay_us(),
                ..FaultEvents::default()
            },
            None => FaultEvents::default(),
        };
        let mut reads = Vec::with_capacity(executed.len());
        for (read, flips, stuck) in executed {
            events.readout_flips += flips;
            if stuck {
                events.stuck_reads += 1;
            }
            reads.push(read);
        }
        let set = SampleSet::with_faults(reads, events);
        let timings = PhaseTimings {
            program_s: (t1 - t0).as_secs_f64(),
            read_s: (t2 - t1).as_secs_f64(),
            assemble_s: t2.elapsed().as_secs_f64(),
        };
        Ok((set, timings))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sa::SimulatedAnnealingSampler;
    use mqo_chimera::embedding::triad;
    use mqo_core::ids::VarId;
    use mqo_core::qubo::Qubo;

    fn small_physical() -> (PhysicalMapping, ChimeraGraph, Qubo) {
        let mut b = Qubo::builder(4);
        b.add_linear(VarId(0), -1.0);
        b.add_linear(VarId(1), 0.5);
        b.add_quadratic(VarId(0), VarId(1), 2.0);
        b.add_quadratic(VarId(1), VarId(2), -1.0);
        b.add_quadratic(VarId(2), VarId(3), 1.5);
        b.add_quadratic(VarId(0), VarId(3), -0.5);
        let logical = b.build();
        let graph = ChimeraGraph::new(2, 2);
        let e = triad::triad(&graph, 0, 0, 4).unwrap();
        let pm = PhysicalMapping::new(&logical, e, &graph, 0.25).unwrap();
        (pm, graph, logical)
    }

    fn device(reads: usize, gauges: usize) -> QuantumAnnealer<SimulatedAnnealingSampler> {
        QuantumAnnealer::new(
            DeviceConfig {
                num_reads: reads,
                num_gauges: gauges,
                ..DeviceConfig::default()
            },
            SimulatedAnnealingSampler::default(),
        )
    }

    #[test]
    fn run_produces_the_requested_number_of_timed_reads() {
        let (pm, graph, _) = small_physical();
        let set = device(50, 10).run(&pm, &graph, 7).unwrap();
        assert_eq!(set.len(), 50);
        let reads = set.reads();
        assert!((reads[0].elapsed_us - 376.0).abs() < 1e-9);
        assert!((reads[49].elapsed_us - 50.0 * 376.0).abs() < 1e-9);
        // Gauge indices partition the reads evenly.
        for g in 0..10 {
            assert_eq!(reads.iter().filter(|r| r.gauge == g).count(), 5);
        }
    }

    #[test]
    fn best_read_reaches_the_true_physical_optimum() {
        let (pm, graph, logical) = small_physical();
        let set = device(100, 10).run(&pm, &graph, 3).unwrap();
        let (_, phys_opt) = pm.physical_qubo().brute_force_minimum();
        let best = set.best().unwrap();
        assert!(
            (best.energy - phys_opt).abs() < 1e-9,
            "best read {} vs optimum {}",
            best.energy,
            phys_opt
        );
        // And it decodes to the logical optimum.
        let un = pm.unembed(&best.assignment);
        let (_, logical_opt) = logical.brute_force_minimum();
        assert!((logical.energy(&un.logical) - logical_opt).abs() < 1e-9);
    }

    #[test]
    fn runs_are_reproducible_from_the_seed() {
        let (pm, graph, _) = small_physical();
        let a = device(30, 3).run(&pm, &graph, 42).unwrap();
        let b = device(30, 3).run(&pm, &graph, 42).unwrap();
        let ea: Vec<f64> = a.reads().iter().map(|r| r.energy).collect();
        let eb: Vec<f64> = b.reads().iter().map(|r| r.energy).collect();
        assert_eq!(ea, eb);
        let c = device(30, 3).run(&pm, &graph, 43).unwrap();
        let ec: Vec<f64> = c.reads().iter().map(|r| r.energy).collect();
        assert_ne!(ea, ec, "different seeds should differ somewhere");
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let (pm, graph, _) = small_physical();
        let run_with = |threads: usize| {
            QuantumAnnealer::new(
                DeviceConfig {
                    num_reads: 25,
                    num_gauges: 4,
                    threads,
                    ..DeviceConfig::default()
                },
                SimulatedAnnealingSampler::default(),
            )
            .run(&pm, &graph, 11)
            .unwrap()
        };
        let serial = run_with(1);
        for threads in [2, 3, 8] {
            let parallel = run_with(threads);
            assert_eq!(serial.reads(), parallel.reads());
        }
    }

    #[test]
    fn non_hardware_couplings_are_rejected() {
        // Build a mapping whose logical edge lands on a non-existent coupler
        // by breaking the graph *after* the mapping was created.
        let (pm, graph, _) = small_physical();
        let some_used_qubit = pm.qubit_of_phys(0);
        let broken = graph.clone().with_broken(&[some_used_qubit]);
        let err = device(10, 2).run(&pm, &broken, 0).unwrap_err();
        assert!(matches!(err, DeviceError::NotProgrammable { .. }));
    }

    #[test]
    fn degenerate_configs_are_rejected() {
        let (pm, graph, _) = small_physical();
        assert_eq!(
            device(0, 1).run(&pm, &graph, 0).unwrap_err(),
            DeviceError::InvalidConfig("num_reads must be positive")
        );
        assert!(matches!(
            device(5, 10).run(&pm, &graph, 0).unwrap_err(),
            DeviceError::InvalidConfig(_)
        ));
    }

    #[test]
    fn uneven_gauge_batches_still_cover_all_reads() {
        let (pm, graph, _) = small_physical();
        let set = device(10, 3).run(&pm, &graph, 1).unwrap();
        assert_eq!(set.len(), 10);
        let counts: Vec<usize> = (0..3)
            .map(|g| set.reads().iter().filter(|r| r.gauge == g).count())
            .collect();
        assert_eq!(counts.iter().sum::<usize>(), 10);
        assert!(counts.iter().all(|&c| c == 3 || c == 4));
    }

    #[test]
    fn paper_default_config_timing() {
        let c = DeviceConfig::default();
        assert!((c.time_per_read_us() - 376.0).abs() < 1e-12);
        assert_eq!(c.num_reads, 1000);
        assert_eq!(c.num_gauges, 10);
        assert!(c.faults.is_inert());
    }

    fn faulty_device(
        reads: usize,
        gauges: usize,
        faults: FaultConfig,
    ) -> QuantumAnnealer<SimulatedAnnealingSampler> {
        QuantumAnnealer::new(
            DeviceConfig {
                num_reads: reads,
                num_gauges: gauges,
                faults,
                ..DeviceConfig::default()
            },
            SimulatedAnnealingSampler::default(),
        )
    }

    #[test]
    fn inert_fault_config_is_bit_identical_to_the_default() {
        let (pm, graph, _) = small_physical();
        let clean = device(20, 4).run(&pm, &graph, 9).unwrap();
        // Non-default inert knobs (budget, backoff) must not change a thing.
        let inert = FaultConfig {
            max_programming_attempts: 17,
            reprogram_backoff_us: 123.0,
            ..FaultConfig::NONE
        };
        let injected = faulty_device(20, 4, inert).run(&pm, &graph, 9).unwrap();
        assert_eq!(clean.reads(), injected.reads());
        assert!(injected.faults().is_empty());
    }

    #[test]
    fn fault_injected_runs_are_reproducible_and_accounted() {
        let (pm, graph, _) = small_physical();
        let faults = FaultConfig {
            readout_flip_rate: 0.1,
            stuck_read_rate: 0.1,
            ..FaultConfig::NONE
        };
        let a = faulty_device(60, 6, faults).run(&pm, &graph, 5).unwrap();
        let b = faulty_device(60, 6, faults).run(&pm, &graph, 5).unwrap();
        assert_eq!(a.reads(), b.reads());
        assert_eq!(a.faults(), b.faults());
        // At 10% rates over 60 reads × 8 qubits, something must fire.
        assert!(a.faults().readout_flips > 0);
        assert!(a.faults().stuck_reads > 0);
        assert!(a.faults().dropped_qubits.is_empty());
        assert_eq!(a.faults().programming_rejects, 0);
    }

    #[test]
    fn certain_dropout_is_reported_and_reads_still_flow() {
        let (pm, graph, _) = small_physical();
        let faults = FaultConfig {
            qubit_dropout_rate: 1.0,
            ..FaultConfig::NONE
        };
        let set = faulty_device(12, 3, faults).run(&pm, &graph, 2).unwrap();
        assert_eq!(set.len(), 12);
        let n = pm.num_physical_vars();
        assert_eq!(set.faults().dropped_qubits, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn certain_rejection_fails_the_run_with_a_typed_error() {
        let (pm, graph, _) = small_physical();
        let faults = FaultConfig {
            programming_reject_rate: 1.0,
            ..FaultConfig::NONE
        };
        let err = faulty_device(12, 3, faults)
            .run(&pm, &graph, 2)
            .unwrap_err();
        assert_eq!(
            err,
            DeviceError::ProgrammingFailed {
                gauge: 0,
                attempts: FaultConfig::NONE.max_programming_attempts
            }
        );
    }

    #[test]
    fn reprogramming_delays_shift_read_timestamps() {
        let (pm, graph, _) = small_physical();
        let faults = FaultConfig {
            programming_reject_rate: 0.5,
            max_programming_attempts: 64,
            reprogram_backoff_us: 1_000.0,
            ..FaultConfig::NONE
        };
        // Find a seed whose plan actually rejects at least once.
        let mut checked = false;
        for seed in 0..20u64 {
            let set = match faulty_device(12, 4, faults).run(&pm, &graph, seed) {
                Ok(s) => s,
                Err(_) => continue,
            };
            if set.faults().programming_rejects == 0 {
                continue;
            }
            checked = true;
            let expected_delay = set.faults().delay_us;
            assert!(expected_delay >= 1_000.0);
            let last = set.reads().last().unwrap();
            assert!((last.elapsed_us - (12.0 * 376.0 + expected_delay)).abs() < 1e-6);
            // Chronological order survives the injected delays.
            let times: Vec<f64> = set.reads().iter().map(|r| r.elapsed_us).collect();
            assert!(times.windows(2).all(|w| w[0] <= w[1]));
            break;
        }
        assert!(checked, "50% rejection over 20 seeds must fire");
    }

    #[test]
    fn invalid_fault_rates_are_rejected() {
        let (pm, graph, _) = small_physical();
        let err = faulty_device(10, 2, FaultConfig::uniform(2.0))
            .run(&pm, &graph, 0)
            .unwrap_err();
        assert_eq!(
            err,
            DeviceError::InvalidConfig("fault rates must lie in [0, 1]")
        );
    }
}
