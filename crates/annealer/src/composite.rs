//! Composite programming: several packed tenants annealed in one
//! programming cycle, demultiplexed back into per-tenant sample sets.
//!
//! The chip-packing placer (`mqo_chimera::packing`) gives each tenant a
//! disjoint cell region of one Chimera graph. This module runs the whole
//! batch through the device protocol *once*: per gauge batch there is one
//! composite programming cycle covering every tenant, and each of the
//! `num_reads` read slots anneals and reads out all tenants together —
//! amortizing the per-cycle programming and read-out overhead across the
//! batch exactly like request batching in an inference server.
//!
//! **The composite program.** [`assemble_ising`] concatenates the tenants'
//! Ising blocks with offset spin indices into one block-diagonal problem —
//! the artifact a real chip would be programmed with. Tenants share no
//! couplers (regions are disjoint and coupler validation runs per tenant),
//! so the merged program factorises exactly and each tenant's marginal is
//! untouched by its batchmates.
//!
//! **Bit-identity discipline.** A packed run must return, for every tenant,
//! samples bit-identical to a solo [`QuantumAnnealer::run`] with the same
//! seed. All device randomness is derived from `(tenant seed, stream,
//! gauge, read)` and fault plans are keyed on dense spin indices — never on
//! chip location — so the only way to break identity would be to share RNG
//! streams across tenants. The composite cycle therefore programs each
//! tenant's block from that tenant's own gauge stream and anneals each
//! tenant's segment of the composite spin buffer from that tenant's own
//! read stream; the demultiplexer then slices the buffer back into
//! per-tenant reads. The externally observable protocol is one programming
//! cycle per gauge and one shared timestamp sequence per read slot, and
//! every tenant's samples are exactly its solo samples.
//!
//! Failure isolation mirrors the solo device: a tenant whose couplings fall
//! off the hardware or whose fault plan rejects programming gets its own
//! `Err` slot; its batchmates anneal unaffected.

use crate::device::{DeviceError, QuantumAnnealer};
use crate::faults::{FaultEvents, FaultPlan, STREAM_FAULT_READ};
use crate::gauge::Gauge;
use crate::parallel::{derive_seed, parallel_map_with, resolve_threads, STREAM_GAUGE, STREAM_READ};
use crate::sampler::{ProgrammedSampler, Read, ReadScratch, SampleSet, Sampler, SamplerHints};
use mqo_chimera::graph::ChimeraGraph;
use mqo_chimera::physical::PhysicalMapping;
use mqo_core::ids::VarId;
use mqo_core::ising::{spins_to_bits, Ising};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Dense spin-index layout of a composite program: tenant `t` owns the
/// contiguous segment `offset(t) .. offset(t) + size(t)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompositeLayout {
    /// Prefix sums: `offsets[t]` is where tenant `t`'s block starts;
    /// `offsets[len]` is the total spin count.
    offsets: Vec<usize>,
}

impl CompositeLayout {
    /// Builds the layout for tenants with the given per-tenant spin counts.
    pub fn new(sizes: &[usize]) -> Self {
        let mut offsets = Vec::with_capacity(sizes.len() + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for &s in sizes {
            acc += s;
            offsets.push(acc);
        }
        CompositeLayout { offsets }
    }

    /// Number of tenants in the layout.
    pub fn num_tenants(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total composite spin count.
    pub fn total_spins(&self) -> usize {
        *self.offsets.last().expect("offsets always holds the total")
    }

    /// The composite index range tenant `t` owns.
    pub fn segment(&self, t: usize) -> std::ops::Range<usize> {
        self.offsets[t]..self.offsets[t + 1]
    }

    /// The tenant owning a composite spin index, if any. Every index below
    /// [`CompositeLayout::total_spins`] belongs to exactly one tenant — the
    /// demux-partition invariant.
    pub fn tenant_of(&self, spin: usize) -> Option<usize> {
        if spin >= self.total_spins() {
            return None;
        }
        // offsets is sorted; find the last offset ≤ spin.
        Some(match self.offsets.binary_search(&spin) {
            Ok(t) => {
                // Empty tenants share an offset; skip to the one that
                // actually contains the index.
                (t..self.num_tenants())
                    .find(|&u| self.segment(u).contains(&spin))
                    .expect("spin below total lies in some segment")
            }
            Err(insert) => insert - 1,
        })
    }
}

/// Concatenates per-tenant Ising blocks into the single block-diagonal
/// composite program: fields are concatenated, couplings are offset into
/// each tenant's segment, offsets (constant energy terms) add. There are no
/// cross-tenant couplings by construction, so the composite energy of a
/// concatenated spin vector is the sum of the per-tenant energies.
pub fn assemble_ising(blocks: &[&Ising]) -> Ising {
    let layout = CompositeLayout::new(&blocks.iter().map(|b| b.num_spins()).collect::<Vec<_>>());
    let mut h = Vec::with_capacity(layout.total_spins());
    let mut couplings = Vec::new();
    let mut offset = 0.0;
    for (t, block) in blocks.iter().enumerate() {
        let base = layout.segment(t).start;
        h.extend_from_slice(block.fields());
        couplings.extend(block.couplings().iter().map(|&(i, j, w)| {
            (
                VarId::new(i.index() + base),
                VarId::new(j.index() + base),
                w,
            )
        }));
        offset += block.offset();
    }
    // Each block's canonical list is sorted with i < j; blocks are appended
    // in segment order, so the concatenation is already canonical.
    Ising::from_canonical(h, couplings, offset)
}

/// One tenant of a packed run: a physically mapped instance (placed on a
/// disjoint region by the packer) and the request seed its RNG streams
/// derive from.
#[derive(Debug, Clone, Copy)]
pub struct PackedTenant<'a> {
    /// The tenant's physical mapping on the shared graph.
    pub pm: &'a PhysicalMapping,
    /// The tenant's run seed — the same seed a solo run would use.
    pub seed: u64,
}

struct TenantState<'a> {
    ising: Ising,
    qubo: &'a mqo_core::qubo::Qubo,
    chains: Vec<Vec<usize>>,
    seed: u64,
    plan: Option<FaultPlan>,
}

/// Runs the full gauge/read protocol once for a batch of disjointly placed
/// tenants and demultiplexes the composite reads into per-tenant sample
/// sets.
///
/// The outer `Err` covers batch-level misconfiguration (degenerate
/// read/gauge counts, invalid fault rates, overlapping tenants); per-tenant
/// errors (unusable couplers, programming rejection) occupy that tenant's
/// slot and leave its batchmates running. Each tenant's `Ok` sample set is
/// bit-identical to [`QuantumAnnealer::run`] on the same mapping and seed.
pub fn run_packed<S: Sampler>(
    device: &QuantumAnnealer<S>,
    graph: &ChimeraGraph,
    tenants: &[PackedTenant<'_>],
) -> Result<Vec<Result<SampleSet, DeviceError>>, DeviceError> {
    let config = *device.config();
    if tenants.is_empty() {
        return Ok(Vec::new());
    }
    if config.num_reads == 0 {
        return Err(DeviceError::InvalidConfig("num_reads must be positive"));
    }
    if config.num_gauges == 0 || config.num_gauges > config.num_reads {
        return Err(DeviceError::InvalidConfig(
            "num_gauges must be in 1..=num_reads",
        ));
    }
    let faults_cfg = config.faults;
    faults_cfg.validate().map_err(DeviceError::InvalidConfig)?;

    // Tenants must not share hardware: overlapping placements would couple
    // the blocks and poison both tenants' samples.
    let mut claimed = vec![false; graph.num_qubits()];
    for t in tenants {
        for i in 0..t.pm.num_physical_vars() {
            let q = t.pm.qubit_of_phys(i);
            if claimed[q.index()] {
                return Err(DeviceError::InvalidConfig(
                    "packed tenants overlap on physical qubits",
                ));
            }
            claimed[q.index()] = true;
        }
    }

    // Per-tenant validation and setup; a failing tenant occupies its own
    // error slot and drops out of the composite cycle.
    let mut slots: Vec<Result<TenantState<'_>, DeviceError>> = Vec::with_capacity(tenants.len());
    for t in tenants {
        slots.push(validate_tenant(t, graph, &config));
    }
    let active: Vec<usize> = (0..slots.len()).filter(|&i| slots[i].is_ok()).collect();
    if active.is_empty() {
        return Ok(slots
            .into_iter()
            .map(|s| s.map(|_| unreachable!("no active tenants")))
            .collect());
    }
    let states: Vec<&TenantState<'_>> = active
        .iter()
        .map(|&i| slots[i].as_ref().expect("active slots hold states"))
        .collect();

    let layout = CompositeLayout::new(
        &states
            .iter()
            .map(|s| s.ising.num_spins())
            .collect::<Vec<_>>(),
    );
    // The single composite program of a cycle. Runtime behaviour never
    // reads it — per-tenant blocks are programmed from per-tenant gauge
    // streams to preserve bit-identity — but its block-diagonal shape is
    // the contract the demultiplexer relies on.
    debug_assert_eq!(
        assemble_ising(&states.iter().map(|s| &s.ising).collect::<Vec<_>>()).num_spins(),
        layout.total_spins()
    );

    let threads = resolve_threads(config.threads);
    let reads_per_gauge = config.num_reads / config.num_gauges;
    let remainder = config.num_reads % config.num_gauges;
    let boundary = remainder * (reads_per_gauge + 1);
    let locate = |idx: usize| -> (usize, usize) {
        if idx < boundary {
            (idx / (reads_per_gauge + 1), idx % (reads_per_gauge + 1))
        } else {
            (
                remainder + (idx - boundary) / reads_per_gauge,
                (idx - boundary) % reads_per_gauge,
            )
        }
    };

    // Phase A — one composite programming cycle per gauge batch: every
    // tenant's block is programmed from that tenant's own derived gauge
    // stream, exactly as its solo run would program it.
    let programmed: Vec<Vec<(Gauge, S::Programmed)>> = parallel_map_with(
        config.num_gauges,
        threads,
        || (),
        |_, gauge_idx| {
            states
                .iter()
                .map(|st| {
                    let mut rng = ChaCha8Rng::seed_from_u64(derive_seed(
                        st.seed,
                        STREAM_GAUGE,
                        gauge_idx as u64,
                        0,
                    ));
                    let gauge = Gauge::random(st.ising.num_spins(), &mut rng);
                    let realised = config.control_error.perturb(&st.ising, &mut rng);
                    let prog = device.sampler().program(
                        gauge.apply(&realised),
                        &SamplerHints { chains: &st.chains },
                        &mut rng,
                    );
                    (gauge, prog)
                })
                .collect()
        },
    );

    // Phase B — every composite read slot anneals all tenants into one
    // shared spin buffer (each tenant's segment from its own read stream)
    // and demultiplexes the segments into per-tenant reads. Timestamps are
    // shared: slot `idx` completes at `(idx + 1) · time_per_read` plus the
    // tenant's own reprogramming delays, exactly as solo.
    let time_per_read = config.time_per_read_us();
    let executed: Vec<Vec<(Read, usize, bool)>> = parallel_map_with(
        config.num_reads,
        threads,
        || (vec![0i8; layout.total_spins()], ReadScratch::default()),
        |(buf, scratch): &mut (Vec<i8>, ReadScratch), idx| {
            let (gauge_idx, read_in_gauge) = locate(idx);
            let progs = &programmed[gauge_idx];
            states
                .iter()
                .enumerate()
                .map(|(a, st)| {
                    let spins = &mut buf[layout.segment(a)];
                    let (gauge, prog) = &progs[a];
                    let mut rng = ChaCha8Rng::seed_from_u64(derive_seed(
                        st.seed,
                        STREAM_READ,
                        gauge_idx as u64,
                        read_in_gauge as u64,
                    ));
                    let mut flips = 0usize;
                    let mut stuck = false;
                    let mut delay_us = 0.0;
                    match st.plan.as_ref() {
                        None => {
                            prog.sample_into_fast(&mut rng, spins, scratch);
                            gauge.transform_spins_in_place(spins);
                        }
                        Some(plan) => {
                            delay_us = plan.delay_before_us(gauge_idx);
                            let mut frng = ChaCha8Rng::seed_from_u64(derive_seed(
                                st.seed,
                                STREAM_FAULT_READ,
                                gauge_idx as u64,
                                read_in_gauge as u64,
                            ));
                            stuck = faults_cfg.stuck_read_rate > 0.0
                                && frng.gen::<f64>() < faults_cfg.stuck_read_rate;
                            if stuck {
                                for s in spins.iter_mut() {
                                    *s = if frng.gen::<bool>() { 1 } else { -1 };
                                }
                            } else {
                                prog.sample_into_fast(&mut rng, spins, scratch);
                                gauge.transform_spins_in_place(spins);
                                for (s, &is_dead) in spins.iter_mut().zip(plan.dead_mask(gauge_idx))
                                {
                                    if is_dead {
                                        *s = if frng.gen::<bool>() { 1 } else { -1 };
                                    }
                                }
                            }
                            if faults_cfg.readout_flip_rate > 0.0 {
                                for s in spins.iter_mut() {
                                    if frng.gen::<f64>() < faults_cfg.readout_flip_rate {
                                        *s = -*s;
                                        flips += 1;
                                    }
                                }
                            }
                        }
                    }
                    let assignment = spins_to_bits(spins);
                    let energy = st.qubo.energy(&assignment);
                    let read = Read {
                        assignment,
                        energy,
                        elapsed_us: (idx + 1) as f64 * time_per_read + delay_us,
                        gauge: gauge_idx,
                    };
                    (read, flips, stuck)
                })
                .collect()
        },
    );

    // Demultiplex: regroup slot-major results into per-tenant chronological
    // sample sets with per-tenant fault accounting.
    let mut per_tenant_reads: Vec<Vec<Read>> = states
        .iter()
        .map(|_| Vec::with_capacity(config.num_reads))
        .collect();
    let mut flips_total = vec![0usize; states.len()];
    let mut stuck_total = vec![0usize; states.len()];
    for slot in executed {
        for (a, (read, flips, stuck)) in slot.into_iter().enumerate() {
            per_tenant_reads[a].push(read);
            flips_total[a] += flips;
            if stuck {
                stuck_total[a] += 1;
            }
        }
    }

    let mut sets: Vec<Option<SampleSet>> = Vec::with_capacity(states.len());
    for (a, st) in states.iter().enumerate() {
        let mut events = match st.plan.as_ref() {
            Some(plan) => FaultEvents {
                dropped_qubits: plan.dropped_qubits(),
                programming_rejects: plan.programming_rejects(),
                delay_us: plan.total_delay_us(),
                ..FaultEvents::default()
            },
            None => FaultEvents::default(),
        };
        events.readout_flips = flips_total[a];
        events.stuck_reads = stuck_total[a];
        sets.push(Some(SampleSet::with_faults(
            std::mem::take(&mut per_tenant_reads[a]),
            events,
        )));
    }

    let mut sets_iter = sets.into_iter();
    Ok(slots
        .into_iter()
        .map(|slot| {
            slot.map(|_| {
                sets_iter
                    .next()
                    .flatten()
                    .expect("one sample set per active tenant")
            })
        })
        .collect())
}

fn validate_tenant<'a>(
    tenant: &PackedTenant<'a>,
    graph: &ChimeraGraph,
    config: &crate::device::DeviceConfig,
) -> Result<TenantState<'a>, DeviceError> {
    let pm = tenant.pm;
    for &(i, j, _) in pm.physical_qubo().quadratic() {
        let qa = pm.qubit_of_phys(i.index());
        let qb = pm.qubit_of_phys(j.index());
        if !graph.has_coupler(qa, qb) {
            return Err(DeviceError::NotProgrammable {
                phys_a: i.index(),
                phys_b: j.index(),
            });
        }
    }
    let ising = Ising::from_qubo(pm.physical_qubo());
    let plan = if config.faults.is_inert() {
        None
    } else {
        match FaultPlan::build(
            &config.faults,
            tenant.seed,
            config.num_gauges,
            ising.num_spins(),
        ) {
            Ok(plan) => Some(plan),
            Err(rejected) => {
                return Err(DeviceError::ProgrammingFailed {
                    gauge: rejected.gauge,
                    attempts: rejected.attempts,
                })
            }
        }
    };
    Ok(TenantState {
        ising,
        qubo: pm.physical_qubo(),
        chains: pm.dense_chains(),
        seed: tenant.seed,
        plan,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceConfig;
    use crate::faults::FaultConfig;
    use crate::sa::SimulatedAnnealingSampler;
    use mqo_chimera::packing;
    use mqo_core::ids::VarId;
    use mqo_core::qubo::Qubo;

    fn tenant_qubo(num_vars: usize, salt: u64) -> Qubo {
        let mut b = Qubo::builder(num_vars);
        for v in 0..num_vars {
            b.add_linear(VarId::new(v), (salt as f64 + v as f64).sin());
        }
        for v in 0..num_vars {
            for w in v + 1..num_vars {
                b.add_quadratic(
                    VarId::new(v),
                    VarId::new(w),
                    ((salt + 1) as f64 * (v + w) as f64).cos(),
                );
            }
        }
        b.build()
    }

    fn packed_mappings(graph: &ChimeraGraph, sizes: &[usize]) -> (Vec<PhysicalMapping>, Vec<Qubo>) {
        let placements = packing::pack(graph, sizes);
        let qubos: Vec<Qubo> = sizes
            .iter()
            .enumerate()
            .map(|(i, &n)| tenant_qubo(n, i as u64))
            .collect();
        let pms = placements
            .into_iter()
            .zip(&qubos)
            .map(|(p, q)| PhysicalMapping::new(q, p.expect("fits").embedding, graph, 0.25).unwrap())
            .collect();
        (pms, qubos)
    }

    fn device(
        reads: usize,
        gauges: usize,
        threads: usize,
    ) -> QuantumAnnealer<SimulatedAnnealingSampler> {
        QuantumAnnealer::new(
            DeviceConfig {
                num_reads: reads,
                num_gauges: gauges,
                threads,
                ..DeviceConfig::default()
            },
            SimulatedAnnealingSampler::default(),
        )
    }

    #[test]
    fn layout_partitions_every_composite_spin() {
        let layout = CompositeLayout::new(&[3, 5, 1, 4]);
        assert_eq!(layout.num_tenants(), 4);
        assert_eq!(layout.total_spins(), 13);
        for spin in 0..13 {
            let t = layout.tenant_of(spin).expect("in range");
            assert!(layout.segment(t).contains(&spin));
            // No other tenant claims it.
            for u in 0..4 {
                if u != t {
                    assert!(!layout.segment(u).contains(&spin));
                }
            }
        }
        assert_eq!(layout.tenant_of(13), None);
    }

    #[test]
    fn assembled_ising_energy_is_the_sum_of_block_energies() {
        let a = Ising::new(vec![0.5, -1.0], vec![(VarId(0), VarId(1), 2.0)], 0.25);
        let b = Ising::new(
            vec![1.0, 0.0, -0.5],
            vec![(VarId(0), VarId(2), -1.5), (VarId(1), VarId(2), 0.5)],
            -1.0,
        );
        let merged = assemble_ising(&[&a, &b]);
        assert_eq!(merged.num_spins(), 5);
        let sa = [1i8, -1];
        let sb = [-1i8, 1, -1];
        let combined = [1i8, -1, -1, 1, -1];
        assert!(
            (merged.energy(&combined) - (a.energy(&sa) + b.energy(&sb))).abs() < 1e-12,
            "block-diagonal energies must add"
        );
    }

    #[test]
    fn single_tenant_packed_run_matches_solo() {
        let graph = ChimeraGraph::new(2, 2);
        let (pms, _) = packed_mappings(&graph, &[4]);
        let dev = device(20, 4, 1);
        let solo = dev.run(&pms[0], &graph, 7).unwrap();
        let packed = run_packed(
            &dev,
            &graph,
            &[PackedTenant {
                pm: &pms[0],
                seed: 7,
            }],
        )
        .unwrap();
        let set = packed[0].as_ref().unwrap();
        assert_eq!(solo.reads(), set.reads());
        assert_eq!(solo.faults(), set.faults());
    }

    #[test]
    fn every_tenant_is_bit_identical_to_its_solo_run() {
        let graph = ChimeraGraph::new(4, 4);
        let sizes = [5, 4, 3, 2];
        let (pms, _) = packed_mappings(&graph, &sizes);
        let dev = device(15, 3, 2);
        let tenants: Vec<PackedTenant<'_>> = pms
            .iter()
            .enumerate()
            .map(|(i, pm)| PackedTenant {
                pm,
                seed: 100 + i as u64,
            })
            .collect();
        let packed = run_packed(&dev, &graph, &tenants).unwrap();
        for (i, pm) in pms.iter().enumerate() {
            let solo = dev.run(pm, &graph, 100 + i as u64).unwrap();
            let set = packed[i].as_ref().unwrap();
            assert_eq!(solo.reads(), set.reads(), "tenant {i}");
            assert_eq!(solo.faults(), set.faults(), "tenant {i}");
        }
    }

    #[test]
    fn fault_injected_tenants_stay_bit_identical_to_solo() {
        let graph = ChimeraGraph::new(4, 4);
        let sizes = [4, 5, 2];
        let (pms, _) = packed_mappings(&graph, &sizes);
        let faults = FaultConfig {
            readout_flip_rate: 0.05,
            stuck_read_rate: 0.05,
            qubit_dropout_rate: 0.05,
            ..FaultConfig::NONE
        };
        let dev = QuantumAnnealer::new(
            DeviceConfig {
                num_reads: 12,
                num_gauges: 3,
                faults,
                ..DeviceConfig::default()
            },
            SimulatedAnnealingSampler::default(),
        );
        let tenants: Vec<PackedTenant<'_>> = pms
            .iter()
            .enumerate()
            .map(|(i, pm)| PackedTenant {
                pm,
                seed: 40 + i as u64,
            })
            .collect();
        let packed = run_packed(&dev, &graph, &tenants).unwrap();
        for (i, pm) in pms.iter().enumerate() {
            match (&packed[i], dev.run(pm, &graph, 40 + i as u64)) {
                (Ok(set), Ok(solo)) => {
                    assert_eq!(solo.reads(), set.reads(), "tenant {i}");
                    assert_eq!(solo.faults(), set.faults(), "tenant {i}");
                }
                (Err(e), Err(solo_e)) => assert_eq!(e, &solo_e, "tenant {i}"),
                (packed, solo) => {
                    panic!("tenant {i}: packed {packed:?} vs solo {solo:?} disagree")
                }
            }
        }
    }

    #[test]
    fn a_failing_tenant_never_poisons_its_batchmates() {
        let graph = ChimeraGraph::new(4, 4);
        let sizes = [4, 4];
        let (pms, _) = packed_mappings(&graph, &sizes);
        // Break a qubit tenant 0 uses, after mapping: its couplings fall
        // off the hardware while tenant 1 is untouched.
        let dead = pms[0].qubit_of_phys(0);
        let broken = graph.clone().with_broken(&[dead]);
        let dev = device(10, 2, 1);
        let tenants = [
            PackedTenant {
                pm: &pms[0],
                seed: 1,
            },
            PackedTenant {
                pm: &pms[1],
                seed: 2,
            },
        ];
        let packed = run_packed(&dev, &broken, &tenants).unwrap();
        assert!(matches!(
            packed[0],
            Err(DeviceError::NotProgrammable { .. })
        ));
        let solo = dev.run(&pms[1], &broken, 2).unwrap();
        assert_eq!(solo.reads(), packed[1].as_ref().unwrap().reads());
    }

    #[test]
    fn overlapping_tenants_are_rejected_at_the_batch_level() {
        let graph = ChimeraGraph::new(2, 2);
        let (pms, _) = packed_mappings(&graph, &[4]);
        let dev = device(10, 2, 1);
        let tenants = [
            PackedTenant {
                pm: &pms[0],
                seed: 1,
            },
            PackedTenant {
                pm: &pms[0],
                seed: 2,
            },
        ];
        let err = run_packed(&dev, &graph, &tenants).unwrap_err();
        assert_eq!(
            err,
            DeviceError::InvalidConfig("packed tenants overlap on physical qubits")
        );
    }

    #[test]
    fn thread_count_does_not_change_packed_results() {
        let graph = ChimeraGraph::new(4, 4);
        let sizes = [3, 4, 5];
        let (pms, _) = packed_mappings(&graph, &sizes);
        let run_with = |threads: usize| {
            let dev = device(14, 4, threads);
            let tenants: Vec<PackedTenant<'_>> = pms
                .iter()
                .enumerate()
                .map(|(i, pm)| PackedTenant {
                    pm,
                    seed: 9 + i as u64,
                })
                .collect();
            run_packed(&dev, &graph, &tenants).unwrap()
        };
        let serial = run_with(1);
        for threads in [2, 3, 8] {
            let parallel = run_with(threads);
            for (a, b) in serial.iter().zip(&parallel) {
                assert_eq!(a.as_ref().unwrap().reads(), b.as_ref().unwrap().reads());
            }
        }
    }

    #[test]
    fn degenerate_configs_fail_the_whole_batch() {
        let graph = ChimeraGraph::new(2, 2);
        let (pms, _) = packed_mappings(&graph, &[4]);
        let tenants = [PackedTenant {
            pm: &pms[0],
            seed: 0,
        }];
        assert_eq!(
            run_packed(&device(0, 1, 1), &graph, &tenants).unwrap_err(),
            DeviceError::InvalidConfig("num_reads must be positive")
        );
        assert!(matches!(
            run_packed(&device(5, 10, 1), &graph, &tenants).unwrap_err(),
            DeviceError::InvalidConfig(_)
        ));
        assert!(run_packed(&device(5, 2, 1), &graph, &[])
            .unwrap()
            .is_empty());
    }
}
