//! Naive reference implementations of the annealing kernels.
//!
//! The hot kernels in [`crate::sa`], [`crate::sqa`], and
//! [`crate::behavioral`] are written for throughput: monomorphized RNGs,
//! flat SoA adjacency slices, reusable scratch buffers, and (for SA) an
//! early exit once the system freezes. The implementations here are the
//! *straight-line transcription* of the same algorithms — trait-object RNG,
//! the [`Ising::neighbours`] iterator, fresh allocations per call, no early
//! exit — kept as executable documentation and as oracles: the proptest
//! suite (`tests/proptest_kernels.rs`) asserts that fast and reference
//! kernels produce **bit-identical** sample streams from the same RNG
//! state.
//!
//! Shared pieces guarantee the identity by construction: both sides use
//! [`crate::sampler::metropolis_accept`] (same draw-skipping rules), the
//! same delta expressions, and the same field-update expressions applied in
//! the same CSR neighbour order. SA's early-freeze exit needs no mirror
//! here — a frozen sweep consumes no randomness and flips nothing, so the
//! reference's remaining sweeps are exact no-ops.

use crate::behavioral::ProgrammedBehavioral;
use crate::sa::ProgrammedSa;
use crate::sampler::metropolis_accept;
use crate::sqa::ProgrammedSqa;
use mqo_core::ids::VarId;
use rand::{Rng, RngCore};

impl ProgrammedSa {
    /// Reference transcription of the SA kernel. Bit-identical to
    /// [`crate::sampler::ProgrammedSampler::sample_into`] on the same RNG
    /// state.
    pub fn sample_into_reference(&self, rng: &mut dyn RngCore, out: &mut [i8]) {
        let ising = &self.ising;
        let n = ising.num_spins();
        debug_assert_eq!(out.len(), n);
        for s in out.iter_mut() {
            *s = if rng.gen::<bool>() { 1 } else { -1 };
        }
        if n == 0 {
            return;
        }
        let mut fields: Vec<f64> = (0..n)
            .map(|i| ising.local_field(out, VarId::new(i)))
            .collect();
        for &beta in &self.betas {
            for i in 0..n {
                let delta = -2.0 * f64::from(out[i]) * fields[i];
                if metropolis_accept(rng, beta, delta) {
                    let flipped = -out[i];
                    out[i] = flipped;
                    let step = f64::from(flipped);
                    for (j, w) in ising.neighbours(VarId::new(i)) {
                        fields[j.index()] += 2.0 * w * step;
                    }
                }
            }
        }
    }
}

impl ProgrammedSqa {
    /// Reference transcription of the PIQMC kernel. Bit-identical to
    /// [`crate::sampler::ProgrammedSampler::sample_into`] on the same RNG
    /// state.
    pub fn sample_into_reference(&self, rng: &mut dyn RngCore, out: &mut [i8]) {
        let ising = &self.ising;
        let n = ising.num_spins();
        debug_assert_eq!(out.len(), n);
        if n == 0 {
            return;
        }
        let p = self.config.slices;
        let beta = self.beta;

        let mut slices: Vec<Vec<i8>> = (0..p)
            .map(|_| {
                (0..n)
                    .map(|_| if rng.gen::<bool>() { 1i8 } else { -1 })
                    .collect()
            })
            .collect();
        let mut fields: Vec<Vec<f64>> = slices
            .iter()
            .map(|s| {
                (0..n)
                    .map(|i| ising.local_field(s, VarId::new(i)))
                    .collect()
            })
            .collect();

        for &j_perp in &self.j_perp {
            for k in 0..p {
                let up = (k + p - 1) % p;
                let down = (k + 1) % p;
                for i in 0..n {
                    let si = f64::from(slices[k][i]);
                    let classical = -2.0 * si * fields[k][i] / p as f64;
                    let neighbours = f64::from(slices[up][i]) + f64::from(slices[down][i]);
                    let quantum = 2.0 * j_perp * si * neighbours;
                    let delta = classical + quantum;
                    if metropolis_accept(rng, beta, delta) {
                        slices[k][i] = -slices[k][i];
                        let step = f64::from(slices[k][i]);
                        for (j, w) in ising.neighbours(VarId::new(i)) {
                            fields[k][j.index()] += 2.0 * w * step;
                        }
                    }
                }

                for (c, members) in self.clusters.iter().enumerate() {
                    let mut delta = 0.0;
                    for &i in members {
                        let si = f64::from(slices[k][i]);
                        let mut ext_field = ising.fields()[i];
                        for (j, w) in ising.neighbours(VarId::new(i)) {
                            if self.cluster_of[j.index()] != c as u32 {
                                ext_field += w * f64::from(slices[k][j.index()]);
                            }
                        }
                        delta += -2.0 * si * ext_field / p as f64;
                        let neighbours = f64::from(slices[up][i]) + f64::from(slices[down][i]);
                        delta += 2.0 * j_perp * si * neighbours;
                    }
                    if metropolis_accept(rng, beta, delta) {
                        for &i in members {
                            slices[k][i] = -slices[k][i];
                        }
                        for &i in members {
                            let step = f64::from(slices[k][i]);
                            for (j, w) in ising.neighbours(VarId::new(i)) {
                                fields[k][j.index()] += 2.0 * w * step;
                            }
                        }
                    }
                }
            }
        }

        let energies: Vec<f64> = slices.iter().map(|s| ising.energy(s)).collect();
        let mut best = 0usize;
        for k in 1..p {
            if energies[k].total_cmp(&energies[best]) == std::cmp::Ordering::Less {
                best = k;
            }
        }
        out.copy_from_slice(&slices[best]);
    }
}

impl ProgrammedBehavioral {
    /// Reference transcription of the behavioural read kernel.
    /// Bit-identical to
    /// [`crate::sampler::ProgrammedSampler::sample_into`] on the same RNG
    /// state.
    pub fn sample_into_reference(&self, rng: &mut dyn RngCore, out: &mut [i8]) {
        let ising = &self.ising;
        let units = &self.units;
        let n = ising.num_spins();
        debug_assert_eq!(out.len(), n);
        if n == 0 {
            return;
        }
        out.copy_from_slice(self.oracle());
        let beta = self.beta;
        let mut fields: Vec<f64> = (0..n)
            .map(|i| ising.local_field(out, VarId::new(i)))
            .collect();
        for _ in 0..self.config.read_sweeps {
            for i in 0..n {
                let delta = -2.0 * f64::from(out[i]) * fields[i];
                if metropolis_accept(rng, beta, delta) {
                    let flipped = -out[i];
                    out[i] = flipped;
                    let step = f64::from(flipped);
                    for (j, w) in ising.neighbours(VarId::new(i)) {
                        fields[j.index()] += 2.0 * w * step;
                    }
                }
            }
            for u in 0..units.len() {
                if units.members[u].len() < 2 {
                    continue;
                }
                let delta = units.flip_delta(ising, out, u);
                if metropolis_accept(rng, beta, delta) {
                    units.apply_flip(out, u);
                    for &i in &units.members[u] {
                        let step = f64::from(out[i]);
                        for (j, w) in ising.neighbours(VarId::new(i)) {
                            fields[j.index()] += 2.0 * w * step;
                        }
                    }
                }
            }
        }
    }
}
