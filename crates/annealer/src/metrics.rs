//! Standard annealer benchmarking metrics from the literature the paper
//! builds on: *time-to-solution* (Rønnow et al., "Defining and detecting
//! quantum speedup", Science 2014) and *time-to-target* (King et al.,
//! "Benchmarking a quantum annealing processor with the time-to-target
//! metric", 2015) — both discussed in the paper's Sections 1 and 8.
//!
//! Time-to-solution answers: given that one annealing run succeeds with
//! probability `p`, how much total device time is needed to see at least one
//! success with confidence `c`? `TTS(c) = t_read · ln(1−c) / ln(1−p)`.
//! Time-to-target is simpler and closer to the paper's own Figures 4–6
//! reading: device time until the first read at or below a target energy.

use crate::sampler::SampleSet;
use std::time::Duration;

/// Tolerance used when comparing energies against targets.
pub const ENERGY_TOL: f64 = 1e-9;

/// Empirical per-read success probability: the fraction of reads with
/// energy ≤ `target` (within tolerance). Returns `None` on an empty set.
pub fn success_probability(samples: &SampleSet, target: f64) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    let hits = samples
        .reads()
        .iter()
        .filter(|r| r.energy <= target + ENERGY_TOL)
        .count();
    Some(hits as f64 / samples.len() as f64)
}

/// Expected number of annealing runs for one success at `confidence`
/// (the `R99` statistic when `confidence = 0.99`). `None` when no read ever
/// succeeded (the estimate would be unbounded) or the set is empty.
pub fn runs_to_solution(samples: &SampleSet, target: f64, confidence: f64) -> Option<f64> {
    assert!((0.0..1.0).contains(&confidence) && confidence > 0.0);
    let p = success_probability(samples, target)?;
    if p <= 0.0 {
        return None;
    }
    if p >= 1.0 {
        return Some(1.0);
    }
    Some(((1.0 - confidence).ln() / (1.0 - p).ln()).max(1.0))
}

/// Time-to-solution: total device time for one success at `confidence`,
/// assuming each read costs `time_per_read`.
pub fn time_to_solution(
    samples: &SampleSet,
    target: f64,
    confidence: f64,
    time_per_read: Duration,
) -> Option<Duration> {
    let runs = runs_to_solution(samples, target, confidence)?;
    Some(Duration::from_secs_f64(runs * time_per_read.as_secs_f64()))
}

/// Time-to-target: device time at which the first read reached `target`.
/// `None` when no read did.
pub fn time_to_target(samples: &SampleSet, target: f64) -> Option<Duration> {
    samples
        .reads()
        .iter()
        .find(|r| r.energy <= target + ENERGY_TOL)
        .map(|r| Duration::from_secs_f64(r.elapsed_us * 1e-6))
}

/// Residual energy statistics of a sample set relative to a reference
/// optimum: `(mean, min, max)` of `energy − optimum`. `None` on empty sets.
pub fn residual_energy(samples: &SampleSet, optimum: f64) -> Option<(f64, f64, f64)> {
    if samples.is_empty() {
        return None;
    }
    let residuals: Vec<f64> = samples.reads().iter().map(|r| r.energy - optimum).collect();
    let mean = residuals.iter().sum::<f64>() / residuals.len() as f64;
    let min = residuals.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = residuals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    Some((mean, min, max))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::Read;

    fn set(energies: &[f64]) -> SampleSet {
        SampleSet::new(
            energies
                .iter()
                .enumerate()
                .map(|(i, &e)| Read {
                    assignment: vec![],
                    energy: e,
                    elapsed_us: 376.0 * (i + 1) as f64,
                    gauge: 0,
                })
                .collect(),
        )
    }

    #[test]
    fn success_probability_counts_hits() {
        let s = set(&[5.0, 3.0, 3.0, 4.0]);
        assert_eq!(success_probability(&s, 3.0), Some(0.5));
        assert_eq!(success_probability(&s, 2.0), Some(0.0));
        assert_eq!(success_probability(&s, 10.0), Some(1.0));
        assert_eq!(success_probability(&SampleSet::default(), 0.0), None);
    }

    #[test]
    fn runs_to_solution_follows_the_geometric_formula() {
        let s = set(&[3.0, 5.0, 5.0, 5.0]); // p = 0.25
        let r = runs_to_solution(&s, 3.0, 0.99).unwrap();
        let expect = (0.01f64).ln() / (0.75f64).ln();
        assert!((r - expect).abs() < 1e-9, "{r} vs {expect}");
        // Guaranteed success → one run.
        assert_eq!(runs_to_solution(&s, 10.0, 0.99), Some(1.0));
        // Never succeeded → unbounded.
        assert_eq!(runs_to_solution(&s, 0.0, 0.99), None);
    }

    #[test]
    fn time_to_solution_scales_with_read_time() {
        let s = set(&[3.0, 5.0]); // p = 0.5 → R99 = ln(0.01)/ln(0.5) ≈ 6.64
        let tts = time_to_solution(&s, 3.0, 0.99, Duration::from_micros(376)).unwrap();
        let expect = ((0.01f64).ln() / (0.5f64).ln()) * 376e-6;
        assert!((tts.as_secs_f64() - expect).abs() < 1e-9);
    }

    #[test]
    fn time_to_target_finds_the_first_crossing() {
        let s = set(&[5.0, 4.0, 3.0, 3.0]);
        assert_eq!(
            time_to_target(&s, 3.0),
            Some(Duration::from_secs_f64(3.0 * 376e-6))
        );
        assert_eq!(
            time_to_target(&s, 4.5),
            Some(Duration::from_secs_f64(2.0 * 376e-6))
        );
        assert_eq!(time_to_target(&s, 1.0), None);
    }

    #[test]
    fn residual_statistics() {
        let s = set(&[5.0, 3.0, 4.0]);
        let (mean, min, max) = residual_energy(&s, 3.0).unwrap();
        assert!((mean - 1.0).abs() < 1e-12);
        assert_eq!(min, 0.0);
        assert_eq!(max, 2.0);
        assert!(residual_energy(&SampleSet::default(), 0.0).is_none());
    }

    #[test]
    fn higher_confidence_needs_more_runs() {
        let s = set(&[3.0, 5.0, 5.0, 5.0]);
        let r90 = runs_to_solution(&s, 3.0, 0.90).unwrap();
        let r99 = runs_to_solution(&s, 3.0, 0.99).unwrap();
        assert!(r99 > r90);
    }
}
