//! The behavioural device back-end: calibrated sample quality at any scale.
//!
//! **Why this exists.** Faithful classical simulation of 1000-qubit quantum
//! annealing is computationally infeasible — that infeasibility is the very
//! premise of the paper. The physics back-ends ([`crate::sqa`],
//! [`crate::sa`]) reproduce the hardware's behaviour on small problems but
//! fall off at full machine scale (quantified by the `calibrate`/`probe`
//! harness binaries). For full-scale experiments the device model therefore
//! switches to a *behavioural* back-end, in the same way an I/O simulator
//! models a disk by its latency distribution rather than its magnetics:
//!
//! 1. **Oracle phase** (once per programming, i.e. per gauge batch): a
//!    strong, domain-agnostic local search over the *programmed* problem —
//!    greedy descent over single spins, strong-bond cluster flips (chains),
//!    and coupled cluster-pair flips (which is what a logical plan swap
//!    looks like physically), from multiple random starts. This runs inside
//!    [`Sampler::program`], so the expensive search executes exactly once
//!    per gauge batch and its result is shared — immutably — by all reads.
//! 2. **Read phase** (per annealing run): the oracle state is perturbed by
//!    a short Metropolis equilibration at the calibrated inverse
//!    temperature, producing the run-to-run spread. Because the programmed
//!    problem carries gauge-specific control-error noise, reads from
//!    different gauge batches land on genuinely different near-optima of
//!    the *true* problem — exactly the mechanism behind the hardware's
//!    observed residuals (first read ≈ +1.5 % of run best, best-of-1000 ≈
//!    +0.4 % of optimum on MQO instances).
//!
//! Samples never use any information beyond the programmed Ising problem;
//! the MQO semantics, embeddings, and true (noise-free) objective stay
//! invisible, so the device-model contract is identical to the physics
//! back-ends.

use crate::clusters::Units;
use crate::sampler::{metropolis_accept, ProgrammedSampler, ReadScratch, Sampler, SamplerHints};
use mqo_core::ids::VarId;
use mqo_core::ising::Ising;
use rand::{Rng, RngCore};
use rand_chacha::ChaCha8Rng;

/// Configuration for [`BehavioralSampler`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BehavioralConfig {
    /// Random restarts of the oracle local search per programming.
    pub oracle_restarts: usize,
    /// Metropolis sweeps applied to each read for thermal spread.
    pub read_sweeps: usize,
    /// Inverse temperature of the read equilibration, relative to `max|w|`.
    pub beta: f64,
    /// Relative strength above which a ferromagnetic bond joins a cluster.
    pub cluster_threshold: f64,
}

impl Default for BehavioralConfig {
    fn default() -> Self {
        BehavioralConfig {
            oracle_restarts: 12,
            read_sweeps: 8,
            beta: 40.0,
            cluster_threshold: 0.5,
        }
    }
}

/// The behavioural sampler. The oracle search runs in
/// [`Sampler::program`] — once per gauge batch — and the programmed state
/// is immutable thereafter, so reads can execute concurrently.
#[derive(Debug, Clone, Default)]
pub struct BehavioralSampler {
    config: BehavioralConfig,
}

impl BehavioralSampler {
    /// Creates a sampler with the given configuration.
    pub fn new(config: BehavioralConfig) -> Self {
        assert!(config.oracle_restarts >= 1);
        assert!(config.beta > 0.0);
        BehavioralSampler { config }
    }

    /// The active configuration.
    pub fn config(&self) -> BehavioralConfig {
        self.config
    }

    /// Greedy descent over single spins, unit flips, and coupled unit-pair
    /// flips until no move improves.
    fn descend(ising: &Ising, units: &Units, s: &mut [i8]) {
        // Unit pairs worth trying: units linked by at least one coupling.
        let mut pair_set = std::collections::BTreeSet::new();
        for &(a, b, _) in ising.couplings() {
            let ua = units.unit_of[a.index()];
            let ub = units.unit_of[b.index()];
            if ua != ub {
                pair_set.insert(if ua < ub { (ua, ub) } else { (ub, ua) });
            }
        }
        let pairs: Vec<(u32, u32)> = pair_set.into_iter().collect();

        loop {
            let mut improved = false;
            for i in 0..ising.num_spins() {
                if ising.flip_delta(s, VarId::new(i)) < -1e-12 {
                    s[i] = -s[i];
                    improved = true;
                }
            }
            for u in 0..units.len() {
                if units.members[u].len() < 2 {
                    continue;
                }
                if units.flip_delta(ising, s, u) < -1e-12 {
                    units.apply_flip(s, u);
                    improved = true;
                }
                // Align moves repair broken chains that whole-unit flips
                // leave locally stable.
                for v in [1i8, -1] {
                    if units.align_delta(ising, s, u, v) < -1e-12 {
                        units.apply_align(s, u, v);
                        improved = true;
                    }
                }
            }
            for &(a, b) in &pairs {
                if units.pair_flip_delta(ising, s, a as usize, b as usize) < -1e-12 {
                    units.apply_flip(s, a as usize);
                    units.apply_flip(s, b as usize);
                    improved = true;
                }
            }
            if !improved {
                return;
            }
        }
    }

    fn run_oracle(&self, ising: &Ising, units: &Units, rng: &mut dyn RngCore) -> Vec<i8> {
        let n = ising.num_spins();
        let mut best: Option<(f64, Vec<i8>)> = None;
        for _ in 0..self.config.oracle_restarts {
            let mut s: Vec<i8> = (0..n)
                .map(|_| if rng.gen::<bool>() { 1 } else { -1 })
                .collect();
            Self::descend(ising, units, &mut s);
            let e = ising.energy(&s);
            if best.as_ref().is_none_or(|(be, _)| e < *be) {
                best = Some((e, s));
            }
        }
        let (energy, state) = best.expect("at least one restart");
        if std::env::var_os("MQO_B_DEBUG").is_some() {
            eprintln!("[behavioral] oracle energy {energy:.1}");
        }
        state
    }
}

impl Sampler for BehavioralSampler {
    type Programmed = ProgrammedBehavioral;

    fn program(
        &self,
        ising: Ising,
        hints: &SamplerHints<'_>,
        rng: &mut dyn RngCore,
    ) -> ProgrammedBehavioral {
        let units = if hints.chains.is_empty() {
            Units::detect(&ising, self.config.cluster_threshold)
        } else {
            Units::from_chains(&ising, hints.chains)
        };
        if std::env::var_os("MQO_B_DEBUG").is_some() {
            let multi = units.members.iter().filter(|m| m.len() >= 2).count();
            eprintln!(
                "[behavioral] spins={} units={} multi_qubit_units={}",
                ising.num_spins(),
                units.len(),
                multi
            );
        }
        let oracle = if ising.num_spins() == 0 {
            Vec::new()
        } else {
            self.run_oracle(&ising, &units, rng)
        };
        let beta = self.config.beta / ising.max_abs_weight().max(f64::MIN_POSITIVE);
        ProgrammedBehavioral {
            config: self.config,
            beta,
            oracle,
            units,
            ising,
        }
    }

    fn name(&self) -> &'static str {
        "behavioral"
    }
}

/// [`BehavioralSampler`] programmed with one problem: the oracle state has
/// been computed and every read equilibrates around it independently.
#[derive(Debug, Clone)]
pub struct ProgrammedBehavioral {
    pub(crate) config: BehavioralConfig,
    pub(crate) beta: f64,
    pub(crate) oracle: Vec<i8>,
    pub(crate) units: Units,
    pub(crate) ising: Ising,
}

impl ProgrammedBehavioral {
    /// The oracle state this programming equilibrates reads around.
    pub fn oracle(&self) -> &[i8] {
        &self.oracle
    }

    /// The read-phase equilibration kernel, generic over the RNG
    /// (monomorphized over [`ChaCha8Rng`] on the device hot path).
    ///
    /// Per-spin local fields are maintained incrementally: single-spin
    /// proposals read the cached field, and accepted flips — single-spin
    /// or whole-unit — patch the affected neighbourhoods in `O(deg)`.
    /// Unit-flip deltas are still evaluated by [`Units::flip_delta`] so
    /// the arithmetic matches the reference kernel exactly.
    fn equilibrate<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut [i8], fields: &mut Vec<f64>) {
        let ising = &self.ising;
        let units = &self.units;
        let n = ising.num_spins();
        debug_assert_eq!(out.len(), n);
        if n == 0 {
            return;
        }

        // Read phase: short thermal equilibration around the oracle state.
        out.copy_from_slice(&self.oracle);
        let beta = self.beta;
        ising.local_fields_into(out, fields);
        let (offsets, idx, w) = ising.adjacency();
        for _ in 0..self.config.read_sweeps {
            for i in 0..n {
                let delta = -2.0 * f64::from(out[i]) * fields[i];
                if metropolis_accept(rng, beta, delta) {
                    let flipped = -out[i];
                    out[i] = flipped;
                    let step = f64::from(flipped);
                    let (lo, hi) = (offsets[i] as usize, offsets[i + 1] as usize);
                    for k in lo..hi {
                        fields[idx[k] as usize] += 2.0 * w[k] * step;
                    }
                }
            }
            for u in 0..units.len() {
                if units.members[u].len() < 2 {
                    continue;
                }
                let delta = units.flip_delta(ising, out, u);
                if metropolis_accept(rng, beta, delta) {
                    units.apply_flip(out, u);
                    for &i in &units.members[u] {
                        let step = f64::from(out[i]);
                        let (lo, hi) = (offsets[i] as usize, offsets[i + 1] as usize);
                        for k in lo..hi {
                            fields[idx[k] as usize] += 2.0 * w[k] * step;
                        }
                    }
                }
            }
        }
    }
}

impl ProgrammedSampler for ProgrammedBehavioral {
    fn num_spins(&self) -> usize {
        self.ising.num_spins()
    }

    fn sample_into(&self, rng: &mut dyn RngCore, out: &mut [i8]) {
        self.equilibrate(rng, out, &mut Vec::new());
    }

    fn sample_into_fast(&self, rng: &mut ChaCha8Rng, out: &mut [i8], scratch: &mut ReadScratch) {
        self.equilibrate(rng, out, &mut scratch.fields);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqo_core::ising::spins_to_bits;
    use mqo_core::qubo::Qubo;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn frustrated_qubo() -> Qubo {
        let mut b = Qubo::builder(6);
        for i in 0..6u32 {
            b.add_linear(VarId(i), (i as f64) - 2.5);
        }
        for i in 0..6u32 {
            for j in (i + 1)..6 {
                b.add_quadratic(VarId(i), VarId(j), ((i + 2 * j) % 5) as f64 - 2.0);
            }
        }
        b.build()
    }

    #[test]
    fn finds_the_ground_state_of_small_problems() {
        let qubo = frustrated_qubo();
        let ising = Ising::from_qubo(&qubo);
        let (_, opt) = qubo.brute_force_minimum();
        let sampler = BehavioralSampler::default();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut hits = 0;
        for _ in 0..20 {
            let s = sampler.sample(&ising, &mut rng);
            if (qubo.energy(&spins_to_bits(&s)) - opt).abs() < 1e-9 {
                hits += 1;
            }
        }
        assert!(hits >= 15, "only {hits}/20 ground-state reads");
    }

    #[test]
    fn reads_have_thermal_spread() {
        let ising = Ising::from_qubo(&frustrated_qubo());
        let sampler = BehavioralSampler::new(BehavioralConfig {
            beta: 2.0, // hot → visible spread
            ..BehavioralConfig::default()
        });
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let energies: std::collections::BTreeSet<i64> = (0..40)
            .map(|_| (ising.energy(&sampler.sample(&ising, &mut rng)) * 1000.0) as i64)
            .collect();
        assert!(energies.len() > 1, "reads must not be identical");
    }

    #[test]
    fn oracle_runs_once_per_programming() {
        // With zero read sweeps, every read returns the oracle state
        // verbatim — so all reads of one programming must be identical,
        // and the expensive search demonstrably runs in `program`, not
        // per read.
        let ising = Ising::from_qubo(&frustrated_qubo());
        let sampler = BehavioralSampler::new(BehavioralConfig {
            read_sweeps: 0,
            ..BehavioralConfig::default()
        });
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let programmed = sampler.program(ising.clone(), &SamplerHints::default(), &mut rng);
        let mut a = vec![0i8; ising.num_spins()];
        let mut b = vec![0i8; ising.num_spins()];
        programmed.sample_into(&mut ChaCha8Rng::seed_from_u64(1), &mut a);
        programmed.sample_into(&mut ChaCha8Rng::seed_from_u64(2), &mut b);
        assert_eq!(a, b, "reads with no sweeps must replay the oracle state");

        // A fresh programming of a different problem yields its own oracle.
        let other = Ising::new(vec![1.0, -1.0], vec![], 0.0);
        let p2 = sampler.program(other, &SamplerHints::default(), &mut rng);
        assert_eq!(p2.num_spins(), 2);
        let mut c = vec![0i8; 2];
        p2.sample_into(&mut ChaCha8Rng::seed_from_u64(3), &mut c);
        assert_eq!(c, vec![-1, 1], "descent solves the trivial field problem");
    }

    #[test]
    fn descent_reaches_pairwise_local_minima() {
        let ising = Ising::from_qubo(&frustrated_qubo());
        let units = Units::detect(&ising, 0.5);
        let mut s = vec![1i8; 6];
        BehavioralSampler::descend(&ising, &units, &mut s);
        for i in 0..6 {
            assert!(ising.flip_delta(&s, VarId::new(i)) >= -1e-9);
        }
        for u in 0..units.len() {
            assert!(units.flip_delta(&ising, &s, u) >= -1e-9);
        }
    }

    #[test]
    fn handles_empty_problems() {
        let ising = Ising::new(vec![], vec![], 0.0);
        let sampler = BehavioralSampler::default();
        assert!(sampler
            .sample(&ising, &mut ChaCha8Rng::seed_from_u64(0))
            .is_empty());
    }
}
