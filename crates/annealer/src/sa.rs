//! Classical simulated annealing on the Ising problem.
//!
//! One [`Sampler::sample`] call is one annealing run: a random initial
//! configuration relaxed through a geometric inverse-temperature schedule
//! with Metropolis single-spin flips. This is the standard software
//! counterpart the paper contrasts quantum annealing against (Section 2) and
//! the default back-end of the device model: on sparse Chimera-structured
//! problems it reproduces the qualitative behaviour the paper reports for
//! hardware runs — near-optimal samples from the very first read with a
//! small spread across reads.

use crate::sampler::{metropolis_accept, ProgrammedSampler, ReadScratch, Sampler, SamplerHints};
use mqo_core::ising::Ising;
use rand::{Rng, RngCore};
use rand_chacha::ChaCha8Rng;

/// Configuration for [`SimulatedAnnealingSampler`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SaConfig {
    /// Number of full sweeps over all spins.
    pub sweeps: usize,
    /// Initial inverse temperature, relative to the problem's maximum
    /// absolute weight (`β₀ = beta_init / max|w|`).
    pub beta_init: f64,
    /// Final inverse temperature, relative likewise.
    pub beta_final: f64,
}

impl Default for SaConfig {
    fn default() -> Self {
        // The final inverse temperature must freeze out energy differences
        // far below max|w|: MQO QUBOs put constraint penalties (wL, wM) and
        // chain strengths at max|w| while the cost differences that decide
        // solution quality are one to two orders of magnitude smaller.
        SaConfig {
            sweeps: 256,
            beta_init: 0.05,
            beta_final: 400.0,
        }
    }
}

/// Single-spin-flip Metropolis annealer.
#[derive(Debug, Clone, Default)]
pub struct SimulatedAnnealingSampler {
    config: SaConfig,
}

impl SimulatedAnnealingSampler {
    /// Creates a sampler with the given schedule.
    pub fn new(config: SaConfig) -> Self {
        assert!(config.sweeps > 0, "need at least one sweep");
        assert!(
            config.beta_init > 0.0 && config.beta_final >= config.beta_init,
            "schedule must heat up monotonically"
        );
        SimulatedAnnealingSampler { config }
    }

    /// The active configuration.
    pub fn config(&self) -> SaConfig {
        self.config
    }
}

impl Sampler for SimulatedAnnealingSampler {
    type Programmed = ProgrammedSa;

    fn program(
        &self,
        ising: Ising,
        _hints: &SamplerHints<'_>,
        _rng: &mut dyn RngCore,
    ) -> ProgrammedSa {
        // Pre-resolve the full temperature schedule once per programming;
        // the per-sweep `powf` would otherwise cost as much as several
        // spin updates in every read.
        let scale = ising.max_abs_weight().max(f64::MIN_POSITIVE);
        let beta0 = self.config.beta_init / scale;
        let ratio = (self.config.beta_final / scale) / beta0;
        let betas = (0..self.config.sweeps)
            .map(|sweep| {
                let t = sweep as f64 / (self.config.sweeps - 1).max(1) as f64;
                beta0 * ratio.powf(t)
            })
            .collect();
        ProgrammedSa { betas, ising }
    }

    fn name(&self) -> &'static str {
        "simulated-annealing"
    }
}

/// [`SimulatedAnnealingSampler`] programmed with one problem: the full beta
/// schedule is resolved once and shared by every read.
#[derive(Debug, Clone)]
pub struct ProgrammedSa {
    pub(crate) betas: Vec<f64>,
    pub(crate) ising: Ising,
}

impl ProgrammedSa {
    /// The annealing kernel, generic over the RNG so the device's hot path
    /// monomorphizes over [`ChaCha8Rng`] while the trait-object path reuses
    /// the same code through `dyn RngCore` — identical draws either way.
    ///
    /// Each spin's local field is maintained incrementally: a proposal
    /// costs `O(1)` (one load of the cached field) and only an *accepted*
    /// flip pays `O(deg)` to update the neighbours' fields.
    ///
    /// Sweeps run in two regimes. While no spin is frozen (the hot phase —
    /// typically the first half of the schedule) a sweep is a plain linear
    /// scan over `0..n`: no bitmask reads, no bit-scanning chain, perfectly
    /// predicted loop control. Once freezing begins, sweeps iterate the
    /// *active-spin bitmask* instead. A spin whose proposal hits the
    /// [`metropolis_accept`] cutoff (`−β·delta` below the point where the
    /// 32-bit draw can no longer accept) is frozen: its field is unchanged
    /// until a neighbour flips, and betas are non-decreasing, so every
    /// later sweep would reject it deterministically without consuming
    /// randomness — dropping it from the scan is a pure time saving with
    /// bit-identical output. Accepted flips reactivate their neighbours.
    /// Once the mask drains empty the kernel exits: all remaining sweeps
    /// are draw-free no-ops.
    ///
    /// The regime split is stream-exact: freezes only ever happen at the
    /// scan position, so during a sweep that *starts* with nothing frozen,
    /// every not-yet-visited spin is still active and the linear scan
    /// visits exactly the spins a full-mask scan would.
    ///
    /// Spins are kept as `±1.0` doubles (`sf`) for the duration of the
    /// anneal so the proposal's critical path — load spin, load field,
    /// two multiplies, compare — contains no `i8 → f64` conversion; `out`
    /// is materialized once at the end. `sf[i]` always equals
    /// `f64::from(out[i])` of the i8 formulation exactly, so every product
    /// matches the reference kernel bit for bit.
    ///
    /// The hot loop uses unchecked indexing. Safety rests on invariants
    /// [`Ising`] asserts at construction: every CSR neighbour index is
    /// `< n`, `offsets` is monotone with `offsets[n] == idx.len() ==
    /// w.len()`, and `out`/`fields`/`mask` are sized to `n` spins (and
    /// `n.div_ceil(64)` words) right here.
    fn anneal<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        out: &mut [i8],
        fields: &mut Vec<f64>,
        mask: &mut Vec<u64>,
        sf: &mut Vec<f64>,
    ) {
        let n = self.ising.num_spins();
        assert_eq!(out.len(), n);
        sf.clear();
        sf.extend((0..n).map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 }));
        if n == 0 {
            return;
        }
        let (offsets, idx, w) = self.ising.adjacency();
        let h = self.ising.fields();
        // Same expression and accumulation order as `Ising::local_field`,
        // with `sf[j]` standing in for `f64::from(s[j])`.
        fields.clear();
        fields.extend((0..n).map(|i| {
            let mut f = h[i];
            for k in offsets[i] as usize..offsets[i + 1] as usize {
                f += w[k] * sf[idx[k] as usize];
            }
            f
        }));
        let words = n.div_ceil(64);
        mask.clear();
        mask.resize(words, !0u64);
        if !n.is_multiple_of(64) {
            mask[words - 1] = !0u64 >> (64 - n % 64);
        }
        let mut frozen = 0usize;
        'schedule: for &beta in &self.betas {
            if frozen == 0 {
                // Hot regime: linear sweep. Freezes that happen mid-sweep
                // are always behind the scan position, so no skipping logic
                // is needed within the sweep itself.
                for i in 0..n {
                    // SAFETY: `i < n` and all buffers hold `n` elements.
                    let delta = unsafe { -2.0 * *sf.get_unchecked(i) * fields.get_unchecked(i) };
                    if delta > 0.0 && -beta * delta < crate::sampler::METROPOLIS_EXP_CUTOFF {
                        mask[i / 64] &= !(1u64 << (i % 64)); // frozen without a draw
                        frozen += 1;
                        continue;
                    }
                    if metropolis_accept(rng, beta, delta) {
                        // SAFETY: `i < n`; `offsets[i] <= offsets[i + 1] <=
                        // idx.len() == w.len()`; every `idx[k] < n`.
                        unsafe {
                            let step = -*sf.get_unchecked(i);
                            *sf.get_unchecked_mut(i) = step;
                            let lo = *offsets.get_unchecked(i) as usize;
                            let hi = *offsets.get_unchecked(i + 1) as usize;
                            if frozen == 0 {
                                for k in lo..hi {
                                    let j = *idx.get_unchecked(k) as usize;
                                    *fields.get_unchecked_mut(j) += 2.0 * w.get_unchecked(k) * step;
                                }
                            } else {
                                // A spin froze earlier in this same sweep;
                                // flips from here on must reactivate.
                                for k in lo..hi {
                                    let j = *idx.get_unchecked(k) as usize;
                                    *fields.get_unchecked_mut(j) += 2.0 * w.get_unchecked(k) * step;
                                    let (wj, bj) = (j / 64, (j % 64) as u32);
                                    let word = *mask.get_unchecked(wj);
                                    let set = word | 1u64 << bj;
                                    frozen -= usize::from(word != set);
                                    *mask.get_unchecked_mut(wj) = set;
                                }
                            }
                        }
                    }
                }
                continue;
            }
            // Cold regime: bitmask sweep over the remaining active spins.
            let mut active = false;
            for wi in 0..words {
                // Snapshot the word's bits: freezes only clear the bit
                // being visited, so the snapshot stays valid until an
                // accepted flip reactivates a not-yet-visited neighbour in
                // this same word — only then is it re-synced from `mask`.
                let mut pending = mask[wi];
                while pending != 0 {
                    let bit = pending.trailing_zeros();
                    pending &= pending - 1;
                    let i = wi * 64 + bit as usize;
                    // SAFETY: `i < n` because the tail word's bits beyond
                    // `n` were cleared at mask init and are never set
                    // (reactivation only sets bits of real neighbours).
                    let delta = unsafe { -2.0 * *sf.get_unchecked(i) * fields.get_unchecked(i) };
                    if delta > 0.0 && -beta * delta < crate::sampler::METROPOLIS_EXP_CUTOFF {
                        mask[wi] &= !(1u64 << bit); // frozen without a draw
                        frozen += 1;
                        continue;
                    }
                    active = true;
                    if metropolis_accept(rng, beta, delta) {
                        // SAFETY: as in the hot regime.
                        let mut resync = false;
                        unsafe {
                            let step = -*sf.get_unchecked(i);
                            *sf.get_unchecked_mut(i) = step;
                            let lo = *offsets.get_unchecked(i) as usize;
                            let hi = *offsets.get_unchecked(i + 1) as usize;
                            for k in lo..hi {
                                let j = *idx.get_unchecked(k) as usize;
                                *fields.get_unchecked_mut(j) += 2.0 * w.get_unchecked(k) * step;
                                let (wj, bj) = (j / 64, (j % 64) as u32);
                                let word = *mask.get_unchecked(wj);
                                let set = word | 1u64 << bj;
                                frozen -= usize::from(word != set);
                                *mask.get_unchecked_mut(wj) = set;
                                resync |= wj == wi && bj > bit;
                            }
                        }
                        if resync {
                            // A neighbour ahead of `i` in this word woke
                            // up; this sweep must still visit it.
                            pending = mask[wi] & (!0u64 << bit << 1);
                        }
                    }
                }
            }
            if !active {
                // Frozen: no draw was consumed and no spin moved, and betas
                // are non-decreasing, so all remaining sweeps are no-ops.
                break 'schedule;
            }
        }
        for (o, &s) in out.iter_mut().zip(sf.iter()) {
            *o = s as i8;
        }
    }
}

impl ProgrammedSampler for ProgrammedSa {
    fn num_spins(&self) -> usize {
        self.ising.num_spins()
    }

    fn sample_into(&self, rng: &mut dyn RngCore, out: &mut [i8]) {
        self.anneal(rng, out, &mut Vec::new(), &mut Vec::new(), &mut Vec::new());
    }

    fn sample_into_fast(&self, rng: &mut ChaCha8Rng, out: &mut [i8], scratch: &mut ReadScratch) {
        self.anneal(
            rng,
            out,
            &mut scratch.fields,
            &mut scratch.mask,
            &mut scratch.spinf,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqo_core::ids::VarId;
    use mqo_core::ising::spins_to_bits;
    use mqo_core::qubo::Qubo;
    use rand::SeedableRng;

    fn frustrated_qubo() -> Qubo {
        // 6 variables with competing couplings; ground state known by brute
        // force.
        let mut b = Qubo::builder(6);
        for i in 0..6u32 {
            b.add_linear(VarId(i), (i as f64) - 2.5);
        }
        for i in 0..6u32 {
            for j in (i + 1)..6 {
                b.add_quadratic(VarId(i), VarId(j), ((i + 2 * j) % 5) as f64 - 2.0);
            }
        }
        b.build()
    }

    #[test]
    fn sa_finds_the_ground_state_of_a_small_frustrated_problem() {
        let qubo = frustrated_qubo();
        let ising = Ising::from_qubo(&qubo);
        let (_, best_e) = qubo.brute_force_minimum();
        let sampler = SimulatedAnnealingSampler::default();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mut hits = 0;
        for _ in 0..20 {
            let s = sampler.sample(&ising, &mut rng);
            let x = spins_to_bits(&s);
            if (qubo.energy(&x) - best_e).abs() < 1e-9 {
                hits += 1;
            }
        }
        assert!(hits >= 15, "SA found the optimum only {hits}/20 times");
    }

    #[test]
    fn sampling_is_deterministic_given_the_seed() {
        let ising = Ising::from_qubo(&frustrated_qubo());
        let sampler = SimulatedAnnealingSampler::default();
        let a = sampler.sample(&ising, &mut ChaCha8Rng::seed_from_u64(3));
        let b = sampler.sample(&ising, &mut ChaCha8Rng::seed_from_u64(3));
        assert_eq!(a, b);
    }

    #[test]
    fn more_sweeps_do_not_hurt_average_quality() {
        let ising = Ising::from_qubo(&frustrated_qubo());
        let avg = |sweeps: usize, seed: u64| {
            let sampler = SimulatedAnnealingSampler::new(SaConfig {
                sweeps,
                ..SaConfig::default()
            });
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            (0..30)
                .map(|_| ising.energy(&sampler.sample(&ising, &mut rng)))
                .sum::<f64>()
                / 30.0
        };
        assert!(avg(128, 5) <= avg(2, 5) + 1e-9);
    }

    #[test]
    fn handles_empty_problems() {
        let ising = Ising::new(vec![], vec![], 0.0);
        let sampler = SimulatedAnnealingSampler::default();
        let s = sampler.sample(&ising, &mut ChaCha8Rng::seed_from_u64(0));
        assert!(s.is_empty());
    }

    #[test]
    #[should_panic(expected = "heat up monotonically")]
    fn inverted_schedule_is_rejected() {
        SimulatedAnnealingSampler::new(SaConfig {
            sweeps: 10,
            beta_init: 5.0,
            beta_final: 1.0,
        });
    }
}
