//! Classical simulated annealing on the Ising problem.
//!
//! One [`Sampler::sample`] call is one annealing run: a random initial
//! configuration relaxed through a geometric inverse-temperature schedule
//! with Metropolis single-spin flips. This is the standard software
//! counterpart the paper contrasts quantum annealing against (Section 2) and
//! the default back-end of the device model: on sparse Chimera-structured
//! problems it reproduces the qualitative behaviour the paper reports for
//! hardware runs — near-optimal samples from the very first read with a
//! small spread across reads.

use crate::sampler::{ProgrammedSampler, Sampler, SamplerHints};
use mqo_core::ids::VarId;
use mqo_core::ising::Ising;
use rand::{Rng, RngCore};

/// Configuration for [`SimulatedAnnealingSampler`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SaConfig {
    /// Number of full sweeps over all spins.
    pub sweeps: usize,
    /// Initial inverse temperature, relative to the problem's maximum
    /// absolute weight (`β₀ = beta_init / max|w|`).
    pub beta_init: f64,
    /// Final inverse temperature, relative likewise.
    pub beta_final: f64,
}

impl Default for SaConfig {
    fn default() -> Self {
        // The final inverse temperature must freeze out energy differences
        // far below max|w|: MQO QUBOs put constraint penalties (wL, wM) and
        // chain strengths at max|w| while the cost differences that decide
        // solution quality are one to two orders of magnitude smaller.
        SaConfig {
            sweeps: 256,
            beta_init: 0.05,
            beta_final: 400.0,
        }
    }
}

/// Single-spin-flip Metropolis annealer.
#[derive(Debug, Clone, Default)]
pub struct SimulatedAnnealingSampler {
    config: SaConfig,
}

impl SimulatedAnnealingSampler {
    /// Creates a sampler with the given schedule.
    pub fn new(config: SaConfig) -> Self {
        assert!(config.sweeps > 0, "need at least one sweep");
        assert!(
            config.beta_init > 0.0 && config.beta_final >= config.beta_init,
            "schedule must heat up monotonically"
        );
        SimulatedAnnealingSampler { config }
    }

    /// The active configuration.
    pub fn config(&self) -> SaConfig {
        self.config
    }
}

impl Sampler for SimulatedAnnealingSampler {
    fn program(
        &self,
        ising: Ising,
        _hints: &SamplerHints<'_>,
        _rng: &mut dyn RngCore,
    ) -> Box<dyn ProgrammedSampler> {
        // Pre-resolve the temperature schedule once per programming.
        let scale = ising.max_abs_weight().max(f64::MIN_POSITIVE);
        let beta0 = self.config.beta_init / scale;
        let ratio = (self.config.beta_final / scale) / beta0;
        Box::new(ProgrammedSa {
            config: self.config,
            beta0,
            ratio,
            ising,
        })
    }

    fn name(&self) -> &'static str {
        "simulated-annealing"
    }
}

/// [`SimulatedAnnealingSampler`] programmed with one problem.
#[derive(Debug, Clone)]
pub struct ProgrammedSa {
    config: SaConfig,
    beta0: f64,
    ratio: f64,
    ising: Ising,
}

impl ProgrammedSampler for ProgrammedSa {
    fn num_spins(&self) -> usize {
        self.ising.num_spins()
    }

    fn sample_into(&self, rng: &mut dyn RngCore, out: &mut [i8]) {
        let n = self.ising.num_spins();
        debug_assert_eq!(out.len(), n);
        for s in out.iter_mut() {
            *s = if rng.gen::<bool>() { 1 } else { -1 };
        }
        if n == 0 {
            return;
        }
        for sweep in 0..self.config.sweeps {
            let t = sweep as f64 / (self.config.sweeps - 1).max(1) as f64;
            let beta = self.beta0 * self.ratio.powf(t);
            for i in 0..n {
                let delta = self.ising.flip_delta(out, VarId::new(i));
                if delta <= 0.0 || rng.gen::<f64>() < (-beta * delta).exp() {
                    out[i] = -out[i];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqo_core::ising::spins_to_bits;
    use mqo_core::qubo::Qubo;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn frustrated_qubo() -> Qubo {
        // 6 variables with competing couplings; ground state known by brute
        // force.
        let mut b = Qubo::builder(6);
        for i in 0..6u32 {
            b.add_linear(VarId(i), (i as f64) - 2.5);
        }
        for i in 0..6u32 {
            for j in (i + 1)..6 {
                b.add_quadratic(VarId(i), VarId(j), ((i + 2 * j) % 5) as f64 - 2.0);
            }
        }
        b.build()
    }

    #[test]
    fn sa_finds_the_ground_state_of_a_small_frustrated_problem() {
        let qubo = frustrated_qubo();
        let ising = Ising::from_qubo(&qubo);
        let (_, best_e) = qubo.brute_force_minimum();
        let sampler = SimulatedAnnealingSampler::default();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mut hits = 0;
        for _ in 0..20 {
            let s = sampler.sample(&ising, &mut rng);
            let x = spins_to_bits(&s);
            if (qubo.energy(&x) - best_e).abs() < 1e-9 {
                hits += 1;
            }
        }
        assert!(hits >= 15, "SA found the optimum only {hits}/20 times");
    }

    #[test]
    fn sampling_is_deterministic_given_the_seed() {
        let ising = Ising::from_qubo(&frustrated_qubo());
        let sampler = SimulatedAnnealingSampler::default();
        let a = sampler.sample(&ising, &mut ChaCha8Rng::seed_from_u64(3));
        let b = sampler.sample(&ising, &mut ChaCha8Rng::seed_from_u64(3));
        assert_eq!(a, b);
    }

    #[test]
    fn more_sweeps_do_not_hurt_average_quality() {
        let ising = Ising::from_qubo(&frustrated_qubo());
        let avg = |sweeps: usize, seed: u64| {
            let sampler = SimulatedAnnealingSampler::new(SaConfig {
                sweeps,
                ..SaConfig::default()
            });
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            (0..30)
                .map(|_| ising.energy(&sampler.sample(&ising, &mut rng)))
                .sum::<f64>()
                / 30.0
        };
        assert!(avg(128, 5) <= avg(2, 5) + 1e-9);
    }

    #[test]
    fn handles_empty_problems() {
        let ising = Ising::new(vec![], vec![], 0.0);
        let sampler = SimulatedAnnealingSampler::default();
        let s = sampler.sample(&ising, &mut ChaCha8Rng::seed_from_u64(0));
        assert!(s.is_empty());
    }

    #[test]
    #[should_panic(expected = "heat up monotonically")]
    fn inverted_schedule_is_rejected() {
        SimulatedAnnealingSampler::new(SaConfig {
            sweeps: 10,
            beta_init: 5.0,
            beta_final: 1.0,
        });
    }
}
