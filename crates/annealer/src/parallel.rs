//! Deterministic fan-out over a scoped worker pool.
//!
//! The device model and the benchmark harness both execute large batches of
//! independent slots (reads, gauge programmings, benchmark instances). Each
//! slot derives its own RNG seed from `(run_seed, stream, indices)`, so the
//! result of a slot depends only on its index — never on execution order —
//! and a run is bit-identical whether it executes on one thread or many.
//!
//! Built on `std::thread::scope`; no external thread-pool dependency.

/// Stream tag for per-gauge programming randomness.
pub const STREAM_GAUGE: u64 = 0x4741_5547_4521_0001;
/// Stream tag for per-read annealing randomness.
pub const STREAM_READ: u64 = 0x5245_4144_2121_0002;
/// Stream tag for per-instance randomness in the benchmark harness.
pub const STREAM_INSTANCE: u64 = 0x494e_5354_4143_0003;
/// Stream tag for pipeline-level retry/re-embed/fallback randomness.
pub const STREAM_RETRY: u64 = 0x5245_5452_5921_0007;

/// SplitMix64 output function — the standard finalizer used to expand one
/// seed into decorrelated streams.
#[inline]
#[must_use]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives an independent RNG seed for slot `(a, b)` of `stream` within the
/// run identified by `run_seed`.
///
/// The derivation chains SplitMix64 over the inputs, so nearby indices (and
/// nearby run seeds) yield unrelated streams. Two slots collide only if the
/// full `(run_seed, stream, a, b)` tuples collide under the hash, which is
/// astronomically unlikely and — more importantly — *stable*: the same
/// tuple always yields the same seed, regardless of thread count.
#[must_use]
pub fn derive_seed(run_seed: u64, stream: u64, a: u64, b: u64) -> u64 {
    let mut x = run_seed;
    for v in [stream, a, b] {
        x = splitmix64(x ^ v);
    }
    x
}

/// Resolves a requested worker count: `0` means "use the machine's
/// available parallelism", anything else is taken literally.
#[must_use]
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        requested
    }
}

/// Maps `f` over the slot indices `0..n` using up to `threads` workers,
/// returning the results in index order.
///
/// Each worker owns one reusable scratch state built by `init` (e.g. a spin
/// buffer), threading it through every slot it processes — this is how the
/// device model avoids per-read allocations. `f` must derive all randomness
/// from the slot index so the output is independent of the thread count;
/// with `threads <= 1` (or `n <= 1`) the map runs inline on the caller's
/// thread, which is the reference behaviour the parallel path must match.
pub fn parallel_map_with<S, T, I, F>(n: usize, threads: usize, init: I, f: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    let workers = threads.min(n).max(1);
    if workers == 1 {
        let mut state = init();
        return (0..n).map(|i| f(&mut state, i)).collect();
    }

    let mut results: Vec<Option<T>> = Vec::with_capacity(n);
    results.resize_with(n, || None);

    // Contiguous chunks: worker w handles indices [w*chunk, ...), clamped.
    let chunk = n.div_ceil(workers);
    std::thread::scope(|scope| {
        for (w, slots) in results.chunks_mut(chunk).enumerate() {
            let init = &init;
            let f = &f;
            scope.spawn(move || {
                let mut state = init();
                let base = w * chunk;
                for (j, slot) in slots.iter_mut().enumerate() {
                    *slot = Some(f(&mut state, base + j));
                }
            });
        }
    });

    results
        .into_iter()
        .map(|r| r.expect("every slot is filled by exactly one worker"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_seed_is_stable_and_index_sensitive() {
        let s = derive_seed(42, STREAM_READ, 3, 7);
        assert_eq!(s, derive_seed(42, STREAM_READ, 3, 7));
        assert_ne!(s, derive_seed(42, STREAM_READ, 3, 8));
        assert_ne!(s, derive_seed(42, STREAM_READ, 4, 7));
        assert_ne!(s, derive_seed(42, STREAM_GAUGE, 3, 7));
        assert_ne!(s, derive_seed(43, STREAM_READ, 3, 7));
    }

    #[test]
    fn resolve_threads_honours_explicit_requests() {
        assert_eq!(resolve_threads(1), 1);
        assert_eq!(resolve_threads(7), 7);
        assert!(resolve_threads(0) >= 1);
    }

    #[test]
    fn map_results_are_in_index_order_for_any_thread_count() {
        let serial = parallel_map_with(
            13,
            1,
            || 0u64,
            |acc, i| {
                *acc += 1;
                (i, *acc)
            },
        );
        for threads in [2, 3, 8, 32] {
            let parallel = parallel_map_with(
                13,
                threads,
                || 0u64,
                |acc, i| {
                    *acc += 1;
                    (i, *acc)
                },
            );
            let idx: Vec<usize> = parallel.iter().map(|&(i, _)| i).collect();
            assert_eq!(idx, (0..13).collect::<Vec<_>>());
            // Per-worker state is chunk-local, so counters restart per chunk;
            // only the index column must match the serial run.
            assert_eq!(serial.iter().map(|&(i, _)| i).collect::<Vec<_>>(), idx);
        }
    }

    #[test]
    fn map_handles_empty_and_single_slots() {
        let empty: Vec<usize> = parallel_map_with(0, 4, || (), |_, i| i);
        assert!(empty.is_empty());
        let one = parallel_map_with(1, 4, || (), |_, i| i * 10);
        assert_eq!(one, vec![0]);
    }
}
