//! Deterministic fan-out over a persistent worker pool.
//!
//! The device model and the benchmark harness both execute large batches of
//! independent slots (reads, gauge programmings, benchmark instances). Each
//! slot derives its own RNG seed from `(run_seed, stream, indices)`, so the
//! result of a slot depends only on its index — never on execution order —
//! and a run is bit-identical whether it executes on one thread or many.
//!
//! Work is executed by one process-wide pool of persistent worker threads
//! (spawned lazily on first use, parked between batches), instead of
//! spawning and joining a `std::thread::scope` per call: a device run makes
//! two fan-out calls per batch (programmings, then reads), and at
//! high-throughput read rates the per-call thread spawn/join cost becomes
//! measurable. The *chunking* of slots depends only on `(n, threads)` —
//! never on the pool's actual size — which is what keeps results
//! bit-identical across machines and thread counts.

use std::cell::{Cell, UnsafeCell};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex, MutexGuard, OnceLock};

/// Stream tag for per-gauge programming randomness.
pub const STREAM_GAUGE: u64 = 0x4741_5547_4521_0001;
/// Stream tag for per-read annealing randomness.
pub const STREAM_READ: u64 = 0x5245_4144_2121_0002;
/// Stream tag for per-instance randomness in the benchmark harness.
pub const STREAM_INSTANCE: u64 = 0x494e_5354_4143_0003;
/// Stream tag for pipeline-level retry/re-embed/fallback randomness.
pub const STREAM_RETRY: u64 = 0x5245_5452_5921_0007;

/// SplitMix64 output function — the standard finalizer used to expand one
/// seed into decorrelated streams.
#[inline]
#[must_use]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives an independent RNG seed for slot `(a, b)` of `stream` within the
/// run identified by `run_seed`.
///
/// The derivation chains SplitMix64 over the inputs, so nearby indices (and
/// nearby run seeds) yield unrelated streams. Two slots collide only if the
/// full `(run_seed, stream, a, b)` tuples collide under the hash, which is
/// astronomically unlikely and — more importantly — *stable*: the same
/// tuple always yields the same seed, regardless of thread count.
#[must_use]
pub fn derive_seed(run_seed: u64, stream: u64, a: u64, b: u64) -> u64 {
    let mut x = run_seed;
    for v in [stream, a, b] {
        x = splitmix64(x ^ v);
    }
    x
}

/// Resolves a requested worker count: `0` means "use the machine's
/// available parallelism", anything else is taken literally.
#[must_use]
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        requested
    }
}

/// The unit of work the pool schedules: "execute chunk `c` of the current
/// batch". The reference points at a stack closure of the submitting
/// `parallel_map_with` frame; the submitter does not return until every
/// claimed chunk has finished and the task has been uninstalled, so the
/// `'static` extension (done at submission) never outlives the referent.
type TaskRef = &'static (dyn Fn(usize) + Sync);

struct ActiveTask {
    func: TaskRef,
    /// Next unclaimed chunk index.
    next: usize,
    /// Total chunk count of this batch.
    total: usize,
    /// Chunks currently executing (claimed, not yet finished).
    running: usize,
    /// First panic payload caught from a chunk, replayed by the submitter.
    panic: Option<Box<dyn std::any::Any + Send>>,
    /// Set on the first panic: unclaimed chunks are abandoned.
    cancelled: bool,
}

#[derive(Default)]
struct PoolInner {
    task: Option<ActiveTask>,
}

/// Process-wide persistent worker pool. One batch runs at a time
/// (submissions are serialized by `submit`); workers and the submitting
/// thread claim chunks from the shared counter until the batch drains.
struct Pool {
    inner: Mutex<PoolInner>,
    /// Signalled when a batch is installed (workers wake and claim).
    work: Condvar,
    /// Signalled when the last running chunk of a batch finishes.
    done: Condvar,
    /// Serializes submitters; held for the full duration of a batch.
    submit: Mutex<()>,
}

thread_local! {
    /// True while this thread is executing a chunk (as a pool worker or as
    /// a participating submitter). A nested `parallel_map_with` from such a
    /// context must not block on `submit` — the outer batch would be
    /// waiting for this very chunk — so it runs inline instead.
    static IN_CHUNK: Cell<bool> = const { Cell::new(false) };
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Pool {
    fn global() -> &'static Pool {
        static POOL: OnceLock<Pool> = OnceLock::new();
        POOL.get_or_init(|| Pool {
            inner: Mutex::new(PoolInner::default()),
            work: Condvar::new(),
            done: Condvar::new(),
            submit: Mutex::new(()),
        })
    }

    /// Lazily spawns the worker threads (once). The submitter participates
    /// too, so the pool spawns one thread fewer than the machine's
    /// available parallelism — on a single-core host that is zero threads
    /// and the submitter simply drains every chunk itself.
    fn ensure_workers(&'static self) {
        static SPAWNED: OnceLock<()> = OnceLock::new();
        SPAWNED.get_or_init(|| {
            let workers = resolve_threads(0).saturating_sub(1);
            for w in 0..workers {
                std::thread::Builder::new()
                    .name(format!("mqo-pool-{w}"))
                    .spawn(move || self.worker_loop())
                    .expect("spawning a pool worker");
            }
        });
    }

    fn worker_loop(&self) {
        loop {
            let mut guard = lock(&self.inner);
            loop {
                let claimable = guard
                    .task
                    .as_ref()
                    .is_some_and(|t| !t.cancelled && t.next < t.total);
                if claimable {
                    break;
                }
                guard = self
                    .work
                    .wait(guard)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            self.claim_and_run(guard);
        }
    }

    /// Claims the next chunk of the installed task (the caller has checked
    /// one is claimable), runs it outside the lock, and records the result.
    fn claim_and_run(&self, mut guard: MutexGuard<'_, PoolInner>) {
        let task = guard.task.as_mut().expect("claimable task");
        let chunk = task.next;
        task.next += 1;
        task.running += 1;
        let func = task.func;
        drop(guard);

        let result = catch_unwind(AssertUnwindSafe(|| {
            IN_CHUNK.with(|f| f.set(true));
            func(chunk);
        }));
        IN_CHUNK.with(|f| f.set(false));

        let mut guard = lock(&self.inner);
        let task = guard.task.as_mut().expect("task outlives its chunks");
        task.running -= 1;
        if let Err(payload) = result {
            if task.panic.is_none() {
                task.panic = Some(payload);
            }
            task.cancelled = true;
        }
        if task.running == 0 && (task.cancelled || task.next >= task.total) {
            self.done.notify_all();
        }
    }

    /// Runs `run_chunk(0..num_chunks)` across the pool, with the calling
    /// thread participating. Returns once every chunk has finished;
    /// re-raises the first chunk panic on the caller.
    fn run_batch(&'static self, num_chunks: usize, run_chunk: &(dyn Fn(usize) + Sync)) {
        self.ensure_workers();
        let _submission = lock(&self.submit);
        {
            let mut guard = lock(&self.inner);
            debug_assert!(guard.task.is_none(), "submissions are serialized");
            // SAFETY: the reference is only reachable through `inner.task`,
            // which this function empties again before returning — and it
            // does not return until `running == 0`, so no worker still
            // holds the reference either.
            let func: TaskRef =
                unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), TaskRef>(run_chunk) };
            guard.task = Some(ActiveTask {
                func,
                next: 0,
                total: num_chunks,
                running: 0,
                panic: None,
                cancelled: false,
            });
        }
        self.work.notify_all();

        // Participate: claim chunks alongside the workers.
        loop {
            let guard = lock(&self.inner);
            let task = guard.task.as_ref().expect("task installed above");
            if task.cancelled || task.next >= task.total {
                break;
            }
            self.claim_and_run(guard);
        }

        // Drain: wait for chunks still running on workers.
        let mut guard = lock(&self.inner);
        while guard.task.as_ref().expect("task installed above").running > 0 {
            guard = self
                .done
                .wait(guard)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        let task = guard.task.take().expect("task installed above");
        drop(guard);
        if let Some(payload) = task.panic {
            resume_unwind(payload);
        }
    }
}

/// One chunk's result buffer, padded to its own pair of cache lines so
/// workers filling adjacent chunks never false-share.
#[repr(align(128))]
struct ChunkSlot<T>(UnsafeCell<Vec<T>>);

// SAFETY: each chunk index is claimed by exactly one thread, which is the
// only writer of slot `c`; the submitter reads the slots only after the
// batch has fully drained.
unsafe impl<T: Send> Sync for ChunkSlot<T> {}

/// Maps `f` over the slot indices `0..n` using up to `threads` workers,
/// returning the results in index order.
///
/// Each *chunk* of slots owns one reusable scratch state built by `init`
/// (e.g. a spin buffer plus annealing scratch), threaded through every slot
/// of the chunk — this is how the device model avoids per-read allocations.
/// `f` must derive all randomness from the slot index so the output is
/// independent of the thread count; with `threads <= 1` (or `n <= 1`) the
/// map runs inline on the caller's thread, which is the reference behaviour
/// the parallel path must match. Chunking depends only on `(n, threads)`,
/// so results are bit-identical no matter how many pool workers actually
/// execute the chunks — including nested calls, which run inline through
/// the same chunked path.
pub fn parallel_map_with<S, T, I, F>(n: usize, threads: usize, init: I, f: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    let workers = threads.min(n).max(1);
    if workers == 1 {
        let mut state = init();
        return (0..n).map(|i| f(&mut state, i)).collect();
    }

    // Contiguous chunks: chunk c covers [c*chunk, ...), clamped to n.
    let chunk = n.div_ceil(workers);
    let num_chunks = n.div_ceil(chunk);
    let slots: Vec<ChunkSlot<T>> = (0..num_chunks)
        .map(|_| ChunkSlot(UnsafeCell::new(Vec::new())))
        .collect();
    let run_chunk = |c: usize| {
        let base = c * chunk;
        let end = (base + chunk).min(n);
        let mut state = init();
        let mut out = Vec::with_capacity(end - base);
        for i in base..end {
            out.push(f(&mut state, i));
        }
        // SAFETY: chunk `c` is claimed exactly once (see ChunkSlot).
        unsafe { *slots[c].0.get() = out };
    };

    if IN_CHUNK.with(Cell::get) {
        // Nested fan-out from inside a chunk: the outer batch holds the
        // pool, so execute this batch inline — through the same chunked
        // code path, preserving the per-chunk state semantics.
        for c in 0..num_chunks {
            run_chunk(c);
        }
    } else {
        Pool::global().run_batch(num_chunks, &run_chunk);
    }

    slots.into_iter().flat_map(|s| s.0.into_inner()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_seed_is_stable_and_index_sensitive() {
        let s = derive_seed(42, STREAM_READ, 3, 7);
        assert_eq!(s, derive_seed(42, STREAM_READ, 3, 7));
        assert_ne!(s, derive_seed(42, STREAM_READ, 3, 8));
        assert_ne!(s, derive_seed(42, STREAM_READ, 4, 7));
        assert_ne!(s, derive_seed(42, STREAM_GAUGE, 3, 7));
        assert_ne!(s, derive_seed(43, STREAM_READ, 3, 7));
    }

    #[test]
    fn resolve_threads_honours_explicit_requests() {
        assert_eq!(resolve_threads(1), 1);
        assert_eq!(resolve_threads(7), 7);
        assert!(resolve_threads(0) >= 1);
    }

    #[test]
    fn map_results_are_in_index_order_for_any_thread_count() {
        let serial = parallel_map_with(
            13,
            1,
            || 0u64,
            |acc, i| {
                *acc += 1;
                (i, *acc)
            },
        );
        for threads in [2, 3, 8, 32] {
            let parallel = parallel_map_with(
                13,
                threads,
                || 0u64,
                |acc, i| {
                    *acc += 1;
                    (i, *acc)
                },
            );
            let idx: Vec<usize> = parallel.iter().map(|&(i, _)| i).collect();
            assert_eq!(idx, (0..13).collect::<Vec<_>>());
            // Per-worker state is chunk-local, so counters restart per chunk;
            // only the index column must match the serial run.
            assert_eq!(serial.iter().map(|&(i, _)| i).collect::<Vec<_>>(), idx);
        }
    }

    #[test]
    fn map_handles_empty_and_single_slots() {
        let empty: Vec<usize> = parallel_map_with(0, 4, || (), |_, i| i);
        assert!(empty.is_empty());
        let one = parallel_map_with(1, 4, || (), |_, i| i * 10);
        assert_eq!(one, vec![0]);
    }

    #[test]
    fn chunk_state_restarts_per_chunk_regardless_of_pool_size() {
        // 8 slots at 4 threads → chunk size 2; every chunk's counter starts
        // at zero, so the state column is 1,2,1,2,... regardless of which
        // pool worker ran which chunk.
        let out = parallel_map_with(
            8,
            4,
            || 0u64,
            |acc, i| {
                *acc += 1;
                (i, *acc)
            },
        );
        let states: Vec<u64> = out.iter().map(|&(_, s)| s).collect();
        assert_eq!(states, vec![1, 2, 1, 2, 1, 2, 1, 2]);
    }

    #[test]
    fn nested_fanout_does_not_deadlock_and_preserves_order() {
        let out = parallel_map_with(
            6,
            3,
            || (),
            |_, i| {
                let inner = parallel_map_with(4, 2, || (), |_, j| i * 10 + j);
                inner.iter().sum::<usize>()
            },
        );
        let expected: Vec<usize> = (0..6).map(|i| (0..4).map(|j| i * 10 + j).sum()).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn concurrent_top_level_batches_are_serialized_not_deadlocked() {
        let handles: Vec<_> = (0..3)
            .map(|t| {
                std::thread::spawn(move || parallel_map_with(10, 4, || (), move |_, i| t * 100 + i))
            })
            .collect();
        for (t, h) in handles.into_iter().enumerate() {
            let out = h.join().expect("no panic");
            assert_eq!(out, (0..10).map(|i| t * 100 + i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn chunk_panics_propagate_to_the_caller_and_the_pool_survives() {
        let result = std::panic::catch_unwind(|| {
            parallel_map_with(
                8,
                4,
                || (),
                |_, i| {
                    assert!(i != 5, "boom at slot 5");
                    i
                },
            )
        });
        assert!(result.is_err(), "the slot-5 panic must reach the caller");
        // The pool keeps working after a panicked batch.
        let out = parallel_map_with(6, 3, || (), |_, i| i * 2);
        assert_eq!(out, vec![0, 2, 4, 6, 8, 10]);
    }
}
