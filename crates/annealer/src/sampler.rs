//! The sampler abstraction: anything that can draw low-energy spin
//! configurations from an Ising problem.
//!
//! The real D-Wave 2X performs one *annealing run* per read; a sampler here
//! plays the role of one such run. The device model in [`crate::device`]
//! wraps a sampler with gauge transformations, control-error noise, and the
//! per-read timing model.

use crate::faults::FaultEvents;
use mqo_core::ising::Ising;
use rand::{Rng, RngCore};
use rand_chacha::ChaCha8Rng;

/// Below this Metropolis exponent the acceptance test is decided without
/// drawing. The acceptance draw is a 32-bit uniform compared against
/// `⌊exp(arg)·2³²⌋`, and that floor is `0` for every `arg < −32·ln 2 ≈
/// −22.1807`: an uphill move this unlikely *cannot* be accepted at the
/// draw's resolution, so it is rejected outright and the RNG stream is not
/// advanced. (The constant sits a margin below `−32·ln 2` so the rounding
/// of `exp` itself can never produce a non-zero floor past the cutoff.)
/// Frozen-phase sweeps therefore cost no random draws and no `exp` calls —
/// and a sweep that consumes no randomness and accepts nothing is invariant
/// under any further cooling, which is what makes the early-freeze exit in
/// the kernels exact rather than approximate.
pub const METROPOLIS_EXP_CUTOFF: f64 = -22.181;

/// The shared Metropolis acceptance rule of every annealing kernel.
///
/// Downhill and neutral moves (`delta <= 0`) are accepted without a draw;
/// hopeless uphill moves (`−β·delta` below [`METROPOLIS_EXP_CUTOFF`]) are
/// rejected without a draw; everything else draws one 32-bit uniform `u`
/// and accepts iff `u < ⌊exp(−β·delta)·2³²⌋` (the saturating `as u32`
/// cast *is* that floor for this argument range). A 32-bit acceptance
/// draw quantizes probabilities to multiples of `2⁻³²` — far below
/// anything an annealing schedule can resolve — and costs half the
/// random bytes of a 53-bit uniform. Fast and reference kernels both
/// call this helper, so their draw sequences and outputs are
/// bit-identical by construction.
#[inline]
pub fn metropolis_accept<R: Rng + ?Sized>(rng: &mut R, beta: f64, delta: f64) -> bool {
    if delta <= 0.0 {
        return true;
    }
    let arg = -beta * delta;
    if arg < METROPOLIS_EXP_CUTOFF {
        return false;
    }
    rng.next_u32() < (arg.exp() * 4_294_967_296.0) as u32
}

/// Reusable per-worker buffers threaded through
/// [`ProgrammedSampler::sample_into_fast`], so hot read loops allocate
/// nothing per read. A device worker owns one `ReadScratch` for its whole
/// chunk of reads; kernels resize the buffers they need and overwrite them
/// completely, so stale contents never leak between reads.
#[derive(Debug, Clone, Default)]
pub struct ReadScratch {
    /// Per-spin local fields (`num_spins`, or `slices · num_spins` for
    /// replica kernels).
    pub fields: Vec<f64>,
    /// Spin configurations (replica kernels store all slices flattened).
    pub spins: Vec<i8>,
    /// Per-slice energies for replica read-out.
    pub energies: Vec<f64>,
    /// Active-spin bitmask words for kernels that skip frozen spins.
    pub mask: Vec<u64>,
    /// Spin configurations as `±1.0` doubles, for kernels whose hot loop
    /// avoids `i8 ↔ f64` conversion entirely.
    pub spinf: Vec<f64>,
}

/// Host-side structure hints the device may hand to a sampler.
///
/// The host *programmed* the minor embedding, so host-side machinery (like
/// D-Wave's own chain-aware unembedding and postprocessing tools) knows
/// which spins form chains. Samplers may use this for collective moves;
/// chain strengths alone cannot reveal it, because Choi's per-chain bound
/// makes chains of cheap-to-deselect variables arbitrarily weak.
#[derive(Debug, Clone, Copy, Default)]
pub struct SamplerHints<'a> {
    /// Spin groups (by dense spin index) that represent one logical
    /// variable each. Empty when the problem was not minor-embedded.
    pub chains: &'a [Vec<usize>],
}

/// Draws low-energy spin configurations from an Ising problem.
///
/// The interface mirrors the device's two-phase protocol: [`Sampler::program`]
/// is called once per programming cycle (gauge batch) and may run arbitrary
/// per-problem precomputation; the returned [`ProgrammedSampler`] then serves
/// many independent reads. Both phases must be deterministic given the RNG
/// stream, so that experiments are reproducible from a seed, and programmed
/// samplers must be shareable across threads — the device fans reads out over
/// a worker pool.
pub trait Sampler: Send + Sync {
    /// The programmed form of this sampler. A concrete associated type
    /// (instead of `Box<dyn ProgrammedSampler>`) lets the device store
    /// per-gauge programmings unboxed and dispatch reads statically.
    type Programmed: ProgrammedSampler;

    /// Programs the sampler with one (noise-perturbed, gauged) problem.
    ///
    /// Takes the Ising model by value so the programmed state is
    /// self-contained and can outlive the caller's borrow. `rng` is the
    /// *programming* stream; per-read randomness comes from the streams
    /// handed to [`ProgrammedSampler::sample_into`].
    fn program(
        &self,
        ising: Ising,
        hints: &SamplerHints<'_>,
        rng: &mut dyn RngCore,
    ) -> Self::Programmed;

    /// Human-readable sampler name for experiment logs.
    fn name(&self) -> &'static str;

    /// Convenience: programs the problem and performs a single annealing
    /// run, returning the final spin configuration (`±1` per spin).
    fn sample(&self, ising: &Ising, rng: &mut dyn RngCore) -> Vec<i8> {
        self.sample_hinted(ising, &SamplerHints::default(), rng)
    }

    /// Like [`Sampler::sample`], with embedding hints available.
    fn sample_hinted(
        &self,
        ising: &Ising,
        hints: &SamplerHints<'_>,
        rng: &mut dyn RngCore,
    ) -> Vec<i8> {
        let programmed = self.program(ising.clone(), hints, rng);
        let mut out = vec![0i8; ising.num_spins()];
        programmed.sample_into(rng, &mut out);
        out
    }
}

/// A sampler that has been programmed with one problem and now serves
/// independent reads.
///
/// Reads must depend only on the programmed state and the per-read RNG
/// stream — never on interior mutability carried between calls — so that
/// reads can execute concurrently and in any order with identical results.
pub trait ProgrammedSampler: Send + Sync {
    /// Number of spins in the programmed problem.
    fn num_spins(&self) -> usize;

    /// Performs one annealing run, writing the final spin configuration
    /// (`±1` per spin) into `out`, which has length
    /// [`ProgrammedSampler::num_spins`]. Every element of `out` is
    /// overwritten; the previous contents are scratch.
    fn sample_into(&self, rng: &mut dyn RngCore, out: &mut [i8]);

    /// Monomorphic hot path of [`ProgrammedSampler::sample_into`]: the RNG
    /// is the concrete [`ChaCha8Rng`] every device stream uses (no virtual
    /// call per draw) and `scratch` supplies reusable buffers (no per-read
    /// allocation). Must produce bit-identical output to `sample_into` on
    /// the same RNG state; the default implementation simply delegates.
    fn sample_into_fast(&self, rng: &mut ChaCha8Rng, out: &mut [i8], scratch: &mut ReadScratch) {
        let _ = scratch;
        self.sample_into(rng, out);
    }
}

/// A single annealed-and-read-out configuration with bookkeeping.
#[derive(Debug, Clone, PartialEq)]
pub struct Read {
    /// Spin configuration mapped to binary (QUBO) variables.
    pub assignment: Vec<bool>,
    /// True (noise-free) energy of the assignment under the programmed QUBO.
    pub energy: f64,
    /// Simulated device time elapsed when this read completed, in
    /// microseconds (anneal + read-out, accumulated over the run so far).
    pub elapsed_us: f64,
    /// Which gauge transformation batch produced this read.
    pub gauge: usize,
}

/// An ordered collection of reads from one device run.
#[derive(Debug, Clone, Default)]
pub struct SampleSet {
    reads: Vec<Read>,
    faults: FaultEvents,
}

impl SampleSet {
    /// Wraps reads in chronological order (no faults recorded).
    pub fn new(reads: Vec<Read>) -> Self {
        SampleSet::with_faults(reads, FaultEvents::default())
    }

    /// Wraps reads in chronological order together with the fault events
    /// the device injected while producing them.
    pub fn with_faults(reads: Vec<Read>, faults: FaultEvents) -> Self {
        debug_assert!(reads.windows(2).all(|w| w[0].elapsed_us <= w[1].elapsed_us));
        SampleSet { reads, faults }
    }

    /// Fault events injected during the run (all-zero without injection).
    pub fn faults(&self) -> &FaultEvents {
        &self.faults
    }

    /// All reads in chronological order.
    pub fn reads(&self) -> &[Read] {
        &self.reads
    }

    /// Number of reads.
    pub fn len(&self) -> usize {
        self.reads.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.reads.is_empty()
    }

    /// The lowest-energy read overall.
    pub fn best(&self) -> Option<&Read> {
        self.reads
            .iter()
            .min_by(|a, b| a.energy.total_cmp(&b.energy))
    }

    /// The lowest-energy read among those completed within `elapsed_us`
    /// simulated device time — the anytime view used in Figures 4 and 5.
    pub fn best_within(&self, elapsed_us: f64) -> Option<&Read> {
        self.reads
            .iter()
            .take_while(|r| r.elapsed_us <= elapsed_us)
            .min_by(|a, b| a.energy.total_cmp(&b.energy))
    }

    /// Iterates `(elapsed_us, best_energy_so_far)` — the quality-vs-time
    /// trajectory of the run.
    pub fn trajectory(&self) -> Vec<(f64, f64)> {
        let mut out = Vec::with_capacity(self.reads.len());
        let mut best = f64::INFINITY;
        for r in &self.reads {
            if r.energy < best {
                best = r.energy;
            }
            out.push((r.elapsed_us, best));
        }
        out
    }

    /// Per-chain break statistics over all reads, against the given chains
    /// (dense physical indices per logical variable, e.g. from
    /// `PhysicalMapping::dense_chains`). A chain is *broken* in a read when
    /// its qubits disagree; broken chains are repaired by majority vote,
    /// with exact ties resolved to `true` by convention.
    pub fn chain_break_stats(&self, chains: &[Vec<usize>]) -> ChainBreakStats {
        let mut breaks_per_chain = vec![0usize; chains.len()];
        let mut total_breaks = 0;
        let mut majority_repairs = 0;
        let mut tie_breaks = 0;
        for r in &self.reads {
            for (c, chain) in chains.iter().enumerate() {
                let ones = chain.iter().filter(|&&i| r.assignment[i]).count();
                if ones != 0 && ones != chain.len() {
                    breaks_per_chain[c] += 1;
                    total_breaks += 1;
                    if 2 * ones == chain.len() {
                        tie_breaks += 1;
                    } else {
                        majority_repairs += 1;
                    }
                }
            }
        }
        ChainBreakStats {
            reads: self.reads.len(),
            breaks_per_chain,
            total_breaks,
            majority_repairs,
            tie_breaks,
        }
    }
}

/// Chain-break statistics of one device run, per chain and aggregated.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ChainBreakStats {
    /// Reads the statistics cover.
    pub reads: usize,
    /// Break count per chain (index = logical variable order of the chains
    /// the statistics were computed against).
    pub breaks_per_chain: Vec<usize>,
    /// Total broken-chain observations across all reads and chains.
    pub total_breaks: usize,
    /// Broken chains where a strict qubit majority determined the value.
    pub majority_repairs: usize,
    /// Broken chains with an exact tie, resolved to `true` by convention.
    pub tie_breaks: usize,
}

impl ChainBreakStats {
    /// Number of chains covered.
    #[must_use]
    pub fn num_chains(&self) -> usize {
        self.breaks_per_chain.len()
    }

    /// Mean break probability per (read, chain) cell.
    #[must_use]
    pub fn break_rate(&self) -> f64 {
        let cells = self.reads * self.breaks_per_chain.len();
        if cells == 0 {
            0.0
        } else {
            self.total_breaks as f64 / cells as f64
        }
    }

    /// Break rate of the most fragile chain.
    #[must_use]
    pub fn max_chain_break_rate(&self) -> f64 {
        if self.reads == 0 {
            return 0.0;
        }
        self.breaks_per_chain
            .iter()
            .map(|&b| b as f64 / self.reads as f64)
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read(e: f64, t: f64) -> Read {
        Read {
            assignment: vec![],
            energy: e,
            elapsed_us: t,
            gauge: 0,
        }
    }

    #[test]
    fn best_and_best_within_respect_time_cutoffs() {
        let s = SampleSet::new(vec![read(5.0, 376.0), read(2.0, 752.0), read(3.0, 1128.0)]);
        assert_eq!(s.best().unwrap().energy, 2.0);
        assert_eq!(s.best_within(400.0).unwrap().energy, 5.0);
        assert_eq!(s.best_within(800.0).unwrap().energy, 2.0);
        assert!(s.best_within(100.0).is_none());
    }

    #[test]
    fn trajectory_is_monotone_non_increasing() {
        let s = SampleSet::new(vec![
            read(5.0, 1.0),
            read(7.0, 2.0),
            read(2.0, 3.0),
            read(4.0, 4.0),
        ]);
        let t = s.trajectory();
        assert_eq!(t, vec![(1.0, 5.0), (2.0, 5.0), (3.0, 2.0), (4.0, 2.0)]);
    }

    #[test]
    fn empty_set_behaves() {
        let s = SampleSet::default();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert!(s.best().is_none());
        assert!(s.trajectory().is_empty());
        assert!(s.faults().is_empty());
        let stats = s.chain_break_stats(&[]);
        assert_eq!(stats.break_rate(), 0.0);
        assert_eq!(stats.max_chain_break_rate(), 0.0);
    }

    fn read_bits(bits: &[bool]) -> Read {
        Read {
            assignment: bits.to_vec(),
            energy: 0.0,
            elapsed_us: 376.0,
            gauge: 0,
        }
    }

    #[test]
    fn chain_break_stats_count_breaks_majorities_and_ties() {
        // Chains: [0,1,2] and [3,4]. Read 1: first chain broken 2-vs-1
        // (majority), second intact. Read 2: first intact, second tied.
        let reads = [
            read_bits(&[true, true, false, false, false]),
            read_bits(&[false, false, false, true, false]),
        ];
        let mut r2 = reads[1].clone();
        r2.elapsed_us = 752.0;
        let s = SampleSet::new(vec![reads[0].clone(), r2]);
        let chains = vec![vec![0, 1, 2], vec![3, 4]];
        let stats = s.chain_break_stats(&chains);
        assert_eq!(stats.reads, 2);
        assert_eq!(stats.num_chains(), 2);
        assert_eq!(stats.breaks_per_chain, vec![1, 1]);
        assert_eq!(stats.total_breaks, 2);
        assert_eq!(stats.majority_repairs, 1);
        assert_eq!(stats.tie_breaks, 1);
        assert!((stats.break_rate() - 0.5).abs() < 1e-12);
        assert!((stats.max_chain_break_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn faults_are_carried_by_the_set() {
        let faults = crate::faults::FaultEvents {
            readout_flips: 4,
            ..Default::default()
        };
        let s = SampleSet::with_faults(vec![read(1.0, 376.0)], faults.clone());
        assert_eq!(s.faults(), &faults);
    }
}
