//! The sampler abstraction: anything that can draw low-energy spin
//! configurations from an Ising problem.
//!
//! The real D-Wave 2X performs one *annealing run* per read; a sampler here
//! plays the role of one such run. The device model in [`crate::device`]
//! wraps a sampler with gauge transformations, control-error noise, and the
//! per-read timing model.

use mqo_core::ising::Ising;
use rand::RngCore;

/// Host-side structure hints the device may hand to a sampler.
///
/// The host *programmed* the minor embedding, so host-side machinery (like
/// D-Wave's own chain-aware unembedding and postprocessing tools) knows
/// which spins form chains. Samplers may use this for collective moves;
/// chain strengths alone cannot reveal it, because Choi's per-chain bound
/// makes chains of cheap-to-deselect variables arbitrarily weak.
#[derive(Debug, Clone, Copy, Default)]
pub struct SamplerHints<'a> {
    /// Spin groups (by dense spin index) that represent one logical
    /// variable each. Empty when the problem was not minor-embedded.
    pub chains: &'a [Vec<usize>],
}

/// Draws low-energy spin configurations from an Ising problem.
///
/// The interface mirrors the device's two-phase protocol: [`Sampler::program`]
/// is called once per programming cycle (gauge batch) and may run arbitrary
/// per-problem precomputation; the returned [`ProgrammedSampler`] then serves
/// many independent reads. Both phases must be deterministic given the RNG
/// stream, so that experiments are reproducible from a seed, and programmed
/// samplers must be shareable across threads — the device fans reads out over
/// a worker pool.
pub trait Sampler: Send + Sync {
    /// Programs the sampler with one (noise-perturbed, gauged) problem.
    ///
    /// Takes the Ising model by value so the programmed state is
    /// self-contained and can outlive the caller's borrow. `rng` is the
    /// *programming* stream; per-read randomness comes from the streams
    /// handed to [`ProgrammedSampler::sample_into`].
    fn program(
        &self,
        ising: Ising,
        hints: &SamplerHints<'_>,
        rng: &mut dyn RngCore,
    ) -> Box<dyn ProgrammedSampler>;

    /// Human-readable sampler name for experiment logs.
    fn name(&self) -> &'static str;

    /// Convenience: programs the problem and performs a single annealing
    /// run, returning the final spin configuration (`±1` per spin).
    fn sample(&self, ising: &Ising, rng: &mut dyn RngCore) -> Vec<i8> {
        self.sample_hinted(ising, &SamplerHints::default(), rng)
    }

    /// Like [`Sampler::sample`], with embedding hints available.
    fn sample_hinted(
        &self,
        ising: &Ising,
        hints: &SamplerHints<'_>,
        rng: &mut dyn RngCore,
    ) -> Vec<i8> {
        let programmed = self.program(ising.clone(), hints, rng);
        let mut out = vec![0i8; ising.num_spins()];
        programmed.sample_into(rng, &mut out);
        out
    }
}

/// A sampler that has been programmed with one problem and now serves
/// independent reads.
///
/// Reads must depend only on the programmed state and the per-read RNG
/// stream — never on interior mutability carried between calls — so that
/// reads can execute concurrently and in any order with identical results.
pub trait ProgrammedSampler: Send + Sync {
    /// Number of spins in the programmed problem.
    fn num_spins(&self) -> usize;

    /// Performs one annealing run, writing the final spin configuration
    /// (`±1` per spin) into `out`, which has length
    /// [`ProgrammedSampler::num_spins`]. Every element of `out` is
    /// overwritten; the previous contents are scratch.
    fn sample_into(&self, rng: &mut dyn RngCore, out: &mut [i8]);
}

/// A single annealed-and-read-out configuration with bookkeeping.
#[derive(Debug, Clone, PartialEq)]
pub struct Read {
    /// Spin configuration mapped to binary (QUBO) variables.
    pub assignment: Vec<bool>,
    /// True (noise-free) energy of the assignment under the programmed QUBO.
    pub energy: f64,
    /// Simulated device time elapsed when this read completed, in
    /// microseconds (anneal + read-out, accumulated over the run so far).
    pub elapsed_us: f64,
    /// Which gauge transformation batch produced this read.
    pub gauge: usize,
}

/// An ordered collection of reads from one device run.
#[derive(Debug, Clone, Default)]
pub struct SampleSet {
    reads: Vec<Read>,
}

impl SampleSet {
    /// Wraps reads in chronological order.
    pub fn new(reads: Vec<Read>) -> Self {
        debug_assert!(reads.windows(2).all(|w| w[0].elapsed_us <= w[1].elapsed_us));
        SampleSet { reads }
    }

    /// All reads in chronological order.
    pub fn reads(&self) -> &[Read] {
        &self.reads
    }

    /// Number of reads.
    pub fn len(&self) -> usize {
        self.reads.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.reads.is_empty()
    }

    /// The lowest-energy read overall.
    pub fn best(&self) -> Option<&Read> {
        self.reads
            .iter()
            .min_by(|a, b| a.energy.total_cmp(&b.energy))
    }

    /// The lowest-energy read among those completed within `elapsed_us`
    /// simulated device time — the anytime view used in Figures 4 and 5.
    pub fn best_within(&self, elapsed_us: f64) -> Option<&Read> {
        self.reads
            .iter()
            .take_while(|r| r.elapsed_us <= elapsed_us)
            .min_by(|a, b| a.energy.total_cmp(&b.energy))
    }

    /// Iterates `(elapsed_us, best_energy_so_far)` — the quality-vs-time
    /// trajectory of the run.
    pub fn trajectory(&self) -> Vec<(f64, f64)> {
        let mut out = Vec::with_capacity(self.reads.len());
        let mut best = f64::INFINITY;
        for r in &self.reads {
            if r.energy < best {
                best = r.energy;
            }
            out.push((r.elapsed_us, best));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read(e: f64, t: f64) -> Read {
        Read {
            assignment: vec![],
            energy: e,
            elapsed_us: t,
            gauge: 0,
        }
    }

    #[test]
    fn best_and_best_within_respect_time_cutoffs() {
        let s = SampleSet::new(vec![read(5.0, 376.0), read(2.0, 752.0), read(3.0, 1128.0)]);
        assert_eq!(s.best().unwrap().energy, 2.0);
        assert_eq!(s.best_within(400.0).unwrap().energy, 5.0);
        assert_eq!(s.best_within(800.0).unwrap().energy, 2.0);
        assert!(s.best_within(100.0).is_none());
    }

    #[test]
    fn trajectory_is_monotone_non_increasing() {
        let s = SampleSet::new(vec![
            read(5.0, 1.0),
            read(7.0, 2.0),
            read(2.0, 3.0),
            read(4.0, 4.0),
        ]);
        let t = s.trajectory();
        assert_eq!(t, vec![(1.0, 5.0), (2.0, 5.0), (3.0, 2.0), (4.0, 2.0)]);
    }

    #[test]
    fn empty_set_behaves() {
        let s = SampleSet::default();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert!(s.best().is_none());
        assert!(s.trajectory().is_empty());
    }
}
