//! Gauge transformations (Boixo et al.; paper Section 7.1).
//!
//! A gauge flips the physical sign convention of each qubit independently:
//! `s_i → g_i s_i` with `g_i ∈ {−1, +1}`. Transforming the programmed
//! problem accordingly (`h_i → g_i h_i`, `J_ij → g_i g_j J_ij`) leaves the
//! energy landscape identical while moving any per-qubit hardware bias to a
//! different logical direction. The paper runs 10 gauges × 100 reads per
//! instance to average out such biases; the device model reproduces that
//! protocol, which matters here because the control-error noise is re-drawn
//! per programming just like on hardware.

use mqo_core::ising::Ising;
use rand::{Rng, RngCore};

/// A per-spin sign flip `g ∈ {−1, +1}^n`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gauge {
    signs: Vec<i8>,
}

impl Gauge {
    /// The identity gauge (no flips).
    pub fn identity(n: usize) -> Self {
        Gauge { signs: vec![1; n] }
    }

    /// A uniformly random gauge.
    pub fn random(n: usize, rng: &mut dyn RngCore) -> Self {
        Gauge {
            signs: (0..n)
                .map(|_| if rng.gen::<bool>() { 1 } else { -1 })
                .collect(),
        }
    }

    /// Number of spins covered.
    pub fn len(&self) -> usize {
        self.signs.len()
    }

    /// Whether this gauge covers zero spins.
    pub fn is_empty(&self) -> bool {
        self.signs.is_empty()
    }

    /// The sign applied to spin `i`.
    pub fn sign(&self, i: usize) -> i8 {
        self.signs[i]
    }

    /// Transforms the problem: `h_i → g_i h_i`, `J_ij → g_i g_j J_ij`.
    ///
    /// Sign flips preserve the sparsity pattern exactly, so this reuses the
    /// problem's adjacency structure instead of re-canonicalising from
    /// scratch — programming a gauge batch is `O(nnz)` with no sorting or
    /// map-merging (see [`Ising::gauge_transformed`]).
    pub fn apply(&self, ising: &Ising) -> Ising {
        assert_eq!(self.len(), ising.num_spins(), "gauge/problem size mismatch");
        ising.gauge_transformed(&self.signs)
    }

    /// Maps a configuration between the gauged and ungauged frames
    /// (`s_i → g_i s_i`; the transformation is its own inverse).
    pub fn transform_spins(&self, s: &[i8]) -> Vec<i8> {
        let mut out = s.to_vec();
        self.transform_spins_in_place(&mut out);
        out
    }

    /// In-place variant of [`Gauge::transform_spins`] for allocation-free
    /// read loops.
    pub fn transform_spins_in_place(&self, s: &mut [i8]) {
        assert_eq!(self.len(), s.len(), "gauge/spin size mismatch");
        for (si, &g) in s.iter_mut().zip(&self.signs) {
            *si *= g;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqo_core::ids::VarId;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn problem() -> Ising {
        Ising::new(
            vec![1.0, -0.5, 0.25],
            vec![(VarId(0), VarId(1), 0.75), (VarId(1), VarId(2), -1.25)],
            0.5,
        )
    }

    #[test]
    fn gauged_energy_equals_original_energy_on_transformed_spins() {
        let ising = problem();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let g = Gauge::random(3, &mut rng);
        let gauged = g.apply(&ising);
        for mask in 0u32..8 {
            let s: Vec<i8> = (0..3)
                .map(|i| if mask & (1 << i) != 0 { 1 } else { -1 })
                .collect();
            let gs = g.transform_spins(&s);
            assert!(
                (ising.energy(&s) - gauged.energy(&gs)).abs() < 1e-12,
                "gauge broke energy invariance on {s:?}"
            );
        }
    }

    #[test]
    fn transform_is_an_involution() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let g = Gauge::random(5, &mut rng);
        let s = vec![1i8, -1, 1, 1, -1];
        assert_eq!(g.transform_spins(&g.transform_spins(&s)), s);
    }

    #[test]
    fn identity_gauge_is_a_no_op() {
        let ising = problem();
        let g = Gauge::identity(3);
        assert_eq!(g.apply(&ising), ising);
        let s = vec![1i8, -1, 1];
        assert_eq!(g.transform_spins(&s), s);
    }

    #[test]
    fn random_gauges_differ_across_draws() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let a = Gauge::random(64, &mut rng);
        let b = Gauge::random(64, &mut rng);
        assert_ne!(a, b);
    }
}
