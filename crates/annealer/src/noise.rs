//! Control-error noise: the imperfection that makes annealing runs
//! stochastic.
//!
//! Programming a weight onto a D-Wave qubit or coupler realises it only up to
//! analog control error; together with thermal disturbances this is why "a
//! multitude of runs must be executed before finding an optimal solution"
//! (Section 2). The device model reproduces it by perturbing every
//! programmed field and coupling with independent Gaussian noise of standard
//! deviation `relative_sigma · max|w|`, re-drawn at every programming (i.e.
//! per gauge batch), while sample energies are always evaluated against the
//! *true* problem.

use mqo_core::ising::Ising;
use rand::{Rng, RngCore};

/// Gaussian control-error model.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ControlErrorModel {
    /// Noise standard deviation relative to the largest absolute weight.
    /// D-Wave 2X-era hardware is commonly modelled with a few percent.
    pub relative_sigma: f64,
}

impl ControlErrorModel {
    /// A noiseless model (useful for oracle comparisons).
    pub const NONE: ControlErrorModel = ControlErrorModel {
        relative_sigma: 0.0,
    };

    /// Creates a model with the given relative noise level.
    pub fn new(relative_sigma: f64) -> Self {
        assert!(
            relative_sigma >= 0.0 && relative_sigma.is_finite(),
            "noise level must be a non-negative finite number"
        );
        ControlErrorModel { relative_sigma }
    }

    /// Returns the problem as the hardware would actually realise it.
    pub fn perturb(&self, ising: &Ising, rng: &mut dyn RngCore) -> Ising {
        if self.relative_sigma == 0.0 {
            return ising.clone();
        }
        let sigma = self.relative_sigma * ising.max_abs_weight();
        let h = ising
            .fields()
            .iter()
            .map(|&hi| hi + sigma * standard_normal(rng))
            .collect();
        let couplings = ising
            .couplings()
            .iter()
            .map(|&(i, j, w)| (i, j, w + sigma * standard_normal(rng)))
            .collect();
        // Couplings come straight from an existing problem, so they are
        // already canonical — skip `Ising::new`'s map-merge pass.
        Ising::from_canonical(h, couplings, ising.offset())
    }
}

/// Standard normal deviate via Box–Muller (avoids a rand_distr dependency).
fn standard_normal(rng: &mut dyn RngCore) -> f64 {
    loop {
        let u1: f64 = rng.gen();
        if u1 > f64::MIN_POSITIVE {
            let u2: f64 = rng.gen();
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqo_core::ids::VarId;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn problem() -> Ising {
        Ising::new(vec![1.0, -2.0], vec![(VarId(0), VarId(1), 1.5)], 0.0)
    }

    #[test]
    fn zero_noise_is_the_identity() {
        let ising = problem();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert_eq!(ControlErrorModel::NONE.perturb(&ising, &mut rng), ising);
    }

    #[test]
    fn noise_perturbs_weights_at_the_requested_scale() {
        let ising = problem();
        let model = ControlErrorModel::new(0.05);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut deviations = Vec::new();
        for _ in 0..200 {
            let p = model.perturb(&ising, &mut rng);
            deviations.push(p.fields()[0] - 1.0);
        }
        let mean = deviations.iter().sum::<f64>() / deviations.len() as f64;
        let var =
            deviations.iter().map(|d| (d - mean).powi(2)).sum::<f64>() / deviations.len() as f64;
        // σ = 0.05 · 2.0 = 0.1 → variance 0.01 (±50% tolerance for sampling).
        assert!(mean.abs() < 0.03, "mean deviation {mean}");
        assert!((0.005..0.02).contains(&var), "variance {var}");
    }

    #[test]
    fn structure_is_preserved() {
        let ising = problem();
        let model = ControlErrorModel::new(0.1);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let p = model.perturb(&ising, &mut rng);
        assert_eq!(p.num_spins(), 2);
        assert_eq!(p.couplings().len(), 1);
        assert_eq!(p.couplings()[0].0, VarId(0));
        assert_eq!(p.offset(), 0.0);
    }

    #[test]
    fn standard_normal_moments_are_sane() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "variance {var}");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_noise_is_rejected() {
        ControlErrorModel::new(-0.1);
    }
}
