//! Strong-bond cluster detection over programmed Ising problems.
//!
//! Minor-embedding chains appear in the programmed problem as groups of
//! spins linked by the strongest ferromagnetic couplings. Detecting them
//! *from the couplings alone* lets samplers perform collective moves — the
//! discrete-time counterpart of the joint dynamics strongly coupled qubits
//! exhibit in hardware — without any host-side knowledge of the embedding.

use mqo_core::ids::VarId;
use mqo_core::ising::Ising;

/// Connected components of the subgraph of couplings with
/// `J ≤ −threshold · max|J|` (ferromagnetic and strong). Only components
/// with at least two spins are returned.
pub fn strong_bond_clusters(ising: &Ising, threshold: f64) -> Vec<Vec<usize>> {
    let n = ising.num_spins();
    // Chain bonds are ferromagnetic but their strengths vary per chain
    // (Choi's bound is per-chain), so a threshold relative to the single
    // strongest bond misses weaker chains. The magnitudes are instead
    // bimodal — problem couplings (e.g. shared-work savings) sit well below
    // the weakest chain bond — so split at the largest multiplicative gap
    // in the sorted magnitudes, falling back to `threshold · max` when the
    // distribution shows no clear gap.
    let mut mags: Vec<f64> = ising
        .couplings()
        .iter()
        .filter(|(_, _, w)| *w < 0.0)
        .map(|(_, _, w)| -w)
        .collect();
    if mags.is_empty() {
        return Vec::new();
    }
    mags.sort_by(f64::total_cmp);
    let strongest = *mags.last().expect("non-empty");
    let mut split = threshold * strongest;
    let mut best_ratio = 2.0; // minimum gap worth trusting
    for w in mags.windows(2) {
        let ratio = w[1] / w[0].max(f64::MIN_POSITIVE);
        if ratio > best_ratio {
            best_ratio = ratio;
            split = (w[0] * w[1]).sqrt();
        }
    }
    let cutoff = -split;
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], i: usize) -> usize {
        let mut root = i;
        while parent[root] != root {
            root = parent[root];
        }
        let mut cur = i;
        while parent[cur] != root {
            let next = parent[cur];
            parent[cur] = root;
            cur = next;
        }
        root
    }
    for &(a, b, w) in ising.couplings() {
        if w <= cutoff {
            let ra = find(&mut parent, a.index());
            let rb = find(&mut parent, b.index());
            if ra != rb {
                parent[ra] = rb;
            }
        }
    }
    let mut groups: std::collections::HashMap<usize, Vec<usize>> = std::collections::HashMap::new();
    for i in 0..n {
        let r = find(&mut parent, i);
        groups.entry(r).or_default().push(i);
    }
    let mut clusters: Vec<Vec<usize>> = groups.into_values().filter(|g| g.len() >= 2).collect();
    clusters.iter_mut().for_each(|c| c.sort_unstable());
    clusters.sort();
    clusters
}

/// The *units* of a problem: every strong-bond cluster plus a singleton per
/// remaining spin, together with an O(1) `unit_of` map. Units partition the
/// spins; collective local search moves flip whole units.
#[derive(Debug, Clone)]
pub struct Units {
    /// Spin groups, each flipped as one move.
    pub members: Vec<Vec<usize>>,
    /// `unit_of[spin]` — the unit containing each spin.
    pub unit_of: Vec<u32>,
    /// Internally consistent relative sign per member (parallel to
    /// `members`): the unit's two low-intra-energy states are
    /// `s_i = ±signs[i]`. Under a gauge transformation chain bonds may turn
    /// antiferromagnetic, so "consistent" is *not* always "all equal".
    pub signs: Vec<Vec<i8>>,
}

impl Units {
    /// Builds units from the strong-bond clusters at `threshold`.
    pub fn detect(ising: &Ising, threshold: f64) -> Units {
        Self::from_groups(ising, strong_bond_clusters(ising, threshold))
    }

    /// Builds units from known chains (host-provided embedding hints);
    /// spins outside every chain become singletons.
    pub fn from_chains(ising: &Ising, chains: &[Vec<usize>]) -> Units {
        Self::from_groups(
            ising,
            chains.iter().filter(|c| c.len() >= 2).cloned().collect(),
        )
    }

    fn from_groups(ising: &Ising, groups: Vec<Vec<usize>>) -> Units {
        let n = ising.num_spins();
        let mut unit_of = vec![u32::MAX; n];
        let mut members = Vec::with_capacity(groups.len());
        for group in groups {
            let id = members.len() as u32;
            for &i in &group {
                debug_assert!(unit_of[i] == u32::MAX, "groups must be disjoint");
                unit_of[i] = id;
            }
            members.push(group);
        }
        for (i, u) in unit_of.iter_mut().enumerate() {
            if *u == u32::MAX {
                *u = members.len() as u32;
                members.push(vec![i]);
            }
        }
        let signs = members
            .iter()
            .map(|group| relative_signs(ising, group))
            .collect();
        Units {
            members,
            unit_of,
            signs,
        }
    }

    /// Number of units.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether there are no units (empty problem).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Energy change of jointly flipping every spin of `unit` in `s`
    /// (intra-unit couplings are invariant; only external terms count).
    pub fn flip_delta(&self, ising: &Ising, s: &[i8], unit: usize) -> f64 {
        let id = unit as u32;
        let mut delta = 0.0;
        for &i in &self.members[unit] {
            let si = f64::from(s[i]);
            let mut ext = ising.fields()[i];
            for (j, w) in ising.neighbours(VarId::new(i)) {
                if self.unit_of[j.index()] != id {
                    ext += w * f64::from(s[j.index()]);
                }
            }
            delta += -2.0 * si * ext;
        }
        delta
    }

    /// Energy change of flipping two distinct units jointly: the sum of the
    /// individual deltas corrected by the couplings *between* the two units
    /// (those flip twice, i.e. not at all).
    pub fn pair_flip_delta(&self, ising: &Ising, s: &[i8], a: usize, b: usize) -> f64 {
        debug_assert_ne!(a, b);
        let mut delta = self.flip_delta(ising, s, a) + self.flip_delta(ising, s, b);
        let idb = b as u32;
        for &i in &self.members[a] {
            for (j, w) in ising.neighbours(VarId::new(i)) {
                if self.unit_of[j.index()] == idb {
                    // Both endpoints flip: the product term is invariant,
                    // but each individual delta assumed the other was fixed.
                    delta += 4.0 * w * f64::from(s[i]) * f64::from(s[j.index()]);
                }
            }
        }
        delta
    }

    /// Flips every spin of a unit in place.
    pub fn apply_flip(&self, s: &mut [i8], unit: usize) {
        for &i in &self.members[unit] {
            s[i] = -s[i];
        }
    }

    /// Energy change of *aligning* a unit — setting member `i` to
    /// `v · signs[i]`, its internally consistent state — which repairs
    /// broken chains that plain whole-unit flips cannot fix.
    pub fn align_delta(&self, ising: &Ising, s: &[i8], unit: usize, v: i8) -> f64 {
        // The flipped subset D = members whose current spin differs from
        // the target. Couplings inside D are invariant; everything else
        // (including members staying put) counts as external.
        let members = &self.members[unit];
        let signs = &self.signs[unit];
        let target = |k: usize| -> i8 { v * signs[k] };
        let member_pos = |j: usize| members.iter().position(|&m| m == j);
        let mut delta = 0.0;
        for (k, &i) in members.iter().enumerate() {
            if s[i] == target(k) {
                continue;
            }
            let si = f64::from(s[i]);
            let mut ext = ising.fields()[i];
            for (j, w) in ising.neighbours(VarId::new(i)) {
                let j = j.index();
                // External unless j is another member that also flips.
                let flips_too = self.unit_of[j] == unit as u32
                    && member_pos(j).is_some_and(|kj| s[j] != target(kj));
                if !flips_too {
                    ext += w * f64::from(s[j]);
                }
            }
            delta += -2.0 * si * ext;
        }
        delta
    }

    /// Sets every member of a unit to its consistent state with overall
    /// sign `v`.
    pub fn apply_align(&self, s: &mut [i8], unit: usize, v: i8) {
        for (k, &i) in self.members[unit].iter().enumerate() {
            s[i] = v * self.signs[unit][k];
        }
    }
}

/// Relative signs making a group internally consistent: BFS over the
/// intra-group couplings, following `−sign(J)` across each bond (J < 0 →
/// parallel, J > 0 → antiparallel). Spins unreachable through intra-group
/// bonds default to `+1`.
fn relative_signs(ising: &Ising, group: &[usize]) -> Vec<i8> {
    let pos = |i: usize| group.iter().position(|&g| g == i);
    let mut signs: Vec<i8> = vec![0; group.len()];
    signs[0] = 1;
    let mut queue = std::collections::VecDeque::from([0usize]);
    while let Some(k) = queue.pop_front() {
        for (j, w) in ising.neighbours(VarId::new(group[k])) {
            if let Some(kj) = pos(j.index()) {
                if signs[kj] == 0 {
                    signs[kj] = if w < 0.0 { signs[k] } else { -signs[k] };
                    queue.push_back(kj);
                }
            }
        }
    }
    for s in &mut signs {
        if *s == 0 {
            *s = 1;
        }
    }
    signs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_problem() -> Ising {
        // Two 2-spin chains (J = −4) coupled by a weak +1 bond, plus a
        // free spin.
        Ising::new(
            vec![0.5, 0.0, -0.25, 0.0, 1.0],
            vec![
                (VarId(0), VarId(1), -4.0),
                (VarId(2), VarId(3), -4.0),
                (VarId(1), VarId(2), 1.0),
                (VarId(3), VarId(4), 0.5),
            ],
            0.0,
        )
    }

    #[test]
    fn detects_strong_ferromagnetic_components() {
        let ising = chain_problem();
        let clusters = strong_bond_clusters(&ising, 0.5);
        assert_eq!(clusters, vec![vec![0, 1], vec![2, 3]]);
        // Higher threshold than any bond → none.
        assert!(strong_bond_clusters(&ising, 1.1).is_empty());
        // No couplings at all → none.
        assert!(strong_bond_clusters(&Ising::new(vec![1.0], vec![], 0.0), 0.5).is_empty());
    }

    #[test]
    fn units_partition_all_spins() {
        let ising = chain_problem();
        let units = Units::detect(&ising, 0.5);
        assert_eq!(units.len(), 3); // two chains + singleton spin 4
        let mut covered: Vec<usize> = units.members.iter().flatten().copied().collect();
        covered.sort_unstable();
        assert_eq!(covered, vec![0, 1, 2, 3, 4]);
        for (u, members) in units.members.iter().enumerate() {
            for &i in members {
                assert_eq!(units.unit_of[i], u as u32);
            }
        }
    }

    #[test]
    fn unit_flip_delta_matches_energy_difference() {
        let ising = chain_problem();
        let units = Units::detect(&ising, 0.5);
        for mask in 0u32..32 {
            let s: Vec<i8> = (0..5)
                .map(|i| if mask & (1 << i) != 0 { 1 } else { -1 })
                .collect();
            for u in 0..units.len() {
                let mut t = s.clone();
                units.apply_flip(&mut t, u);
                let expect = ising.energy(&t) - ising.energy(&s);
                let fast = units.flip_delta(&ising, &s, u);
                assert!(
                    (expect - fast).abs() < 1e-9,
                    "unit {u} mask {mask}: {expect} vs {fast}"
                );
            }
        }
    }

    #[test]
    fn align_delta_matches_energy_difference() {
        let ising = chain_problem();
        let units = Units::detect(&ising, 0.5);
        for mask in 0u32..32 {
            let s: Vec<i8> = (0..5)
                .map(|i| if mask & (1 << i) != 0 { 1 } else { -1 })
                .collect();
            for u in 0..units.len() {
                for v in [1i8, -1] {
                    let mut t = s.clone();
                    units.apply_align(&mut t, u, v);
                    let expect = ising.energy(&t) - ising.energy(&s);
                    let fast = units.align_delta(&ising, &s, u, v);
                    assert!(
                        (expect - fast).abs() < 1e-9,
                        "unit {u} v {v} mask {mask}: {expect} vs {fast}"
                    );
                }
            }
        }
    }

    #[test]
    fn pair_flip_delta_matches_energy_difference() {
        let ising = chain_problem();
        let units = Units::detect(&ising, 0.5);
        for mask in 0u32..32 {
            let s: Vec<i8> = (0..5)
                .map(|i| if mask & (1 << i) != 0 { 1 } else { -1 })
                .collect();
            for a in 0..units.len() {
                for b in 0..units.len() {
                    if a == b {
                        continue;
                    }
                    let mut t = s.clone();
                    units.apply_flip(&mut t, a);
                    units.apply_flip(&mut t, b);
                    let expect = ising.energy(&t) - ising.energy(&s);
                    let fast = units.pair_flip_delta(&ising, &s, a, b);
                    assert!(
                        (expect - fast).abs() < 1e-9,
                        "units {a},{b} mask {mask}: {expect} vs {fast}"
                    );
                }
            }
        }
    }
}
