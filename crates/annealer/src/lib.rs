#![warn(missing_docs)]

//! # mqo-annealer
//!
//! A software model of the D-Wave 2X adiabatic quantum annealer — the
//! hardware substitution of this reproduction (see DESIGN.md).
//!
//! The crate provides:
//!
//! * [`sampler::Sampler`] — the "one annealing run" abstraction, with three
//!   back-ends: classical [`sa::SimulatedAnnealingSampler`], physics-faithful
//!   [`sqa::PathIntegralQmcSampler`] (path-integral quantum Monte Carlo of
//!   the transverse-field Ising model), and the brute-force
//!   [`exact::ExactSampler`] oracle for tests;
//! * [`gauge::Gauge`] transformations and the [`noise::ControlErrorModel`],
//!   reproducing the run-to-run variability of real hardware;
//! * [`device::QuantumAnnealer`] — the device model enforcing Chimera
//!   programmability and the paper's protocol: 1000 reads in 10 gauge
//!   batches, 129 µs anneal + 247 µs read-out per read, with read
//!   timestamps in simulated device time;
//! * [`parallel`] — deterministic fan-out primitives: per-slot seed
//!   derivation and a scoped worker pool, used by the device model (and
//!   the benchmark harness) to execute programmings and reads
//!   concurrently with bit-identical results at any thread count.
//!
//! ```
//! use mqo_annealer::device::{DeviceConfig, QuantumAnnealer};
//! use mqo_annealer::sa::SimulatedAnnealingSampler;
//! use mqo_chimera::{graph::ChimeraGraph, embedding::triad, physical::PhysicalMapping};
//! use mqo_core::{Qubo, VarId};
//!
//! let mut b = Qubo::builder(2);
//! b.add_linear(VarId(0), -1.0);
//! b.add_quadratic(VarId(0), VarId(1), 2.0);
//! let logical = b.build();
//!
//! let graph = ChimeraGraph::new(1, 1);
//! let embedding = triad::triad(&graph, 0, 0, 2).unwrap();
//! let pm = PhysicalMapping::new(&logical, embedding, &graph, 0.25).unwrap();
//!
//! let device = QuantumAnnealer::new(
//!     DeviceConfig { num_reads: 20, num_gauges: 2, ..DeviceConfig::default() },
//!     SimulatedAnnealingSampler::default(),
//! );
//! let samples = device.run(&pm, &graph, 0).unwrap();
//! let best = samples.best().unwrap();
//! assert_eq!(pm.unembed(&best.assignment).logical, vec![true, false]);
//! ```

pub mod behavioral;
pub mod clusters;
pub mod composite;
pub mod device;
pub mod exact;
pub mod faults;
pub mod gauge;
pub mod metrics;
pub mod noise;
pub mod parallel;
pub mod reference;
pub mod sa;
pub mod sampler;
pub mod sqa;

pub use behavioral::{BehavioralConfig, BehavioralSampler};
pub use composite::{assemble_ising, run_packed, CompositeLayout, PackedTenant};
pub use device::{DeviceConfig, DeviceError, PhaseTimings, QuantumAnnealer};
pub use exact::ExactSampler;
pub use faults::{FaultConfig, FaultEvents, FaultPlan};
pub use gauge::Gauge;
pub use metrics::{success_probability, time_to_solution, time_to_target};
pub use noise::ControlErrorModel;
pub use parallel::{derive_seed, parallel_map_with, resolve_threads};
pub use sa::{SaConfig, SimulatedAnnealingSampler};
pub use sampler::{
    metropolis_accept, ChainBreakStats, ProgrammedSampler, Read, ReadScratch, SampleSet, Sampler,
    METROPOLIS_EXP_CUTOFF,
};
pub use sqa::{PathIntegralQmcSampler, SqaConfig};
