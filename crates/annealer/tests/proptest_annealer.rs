//! Property-based tests of the device-model building blocks: gauge
//! invariance, noise statistics, protocol accounting, and sampler sanity.

use mqo_annealer::device::{DeviceConfig, QuantumAnnealer};
use mqo_annealer::faults::FaultConfig;
use mqo_annealer::gauge::Gauge;
use mqo_annealer::noise::ControlErrorModel;
use mqo_annealer::sa::SimulatedAnnealingSampler;
use mqo_annealer::sampler::Sampler;
use mqo_core::ids::VarId;
use mqo_core::ising::Ising;
use mqo_core::qubo::Qubo;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn arb_ising() -> impl Strategy<Value = Ising> {
    (2usize..=8).prop_flat_map(|n| {
        let h = proptest::collection::vec(-5.0f64..5.0, n);
        let j = proptest::collection::vec(((0..n, 0..n), -3.0f64..3.0), 0..=2 * n);
        (h, j).prop_map(move |(h, j)| {
            let couplings = j
                .into_iter()
                .filter(|((a, b), _)| a != b)
                .map(|((a, b), w)| (VarId::new(a), VarId::new(b), w))
                .collect();
            Ising::new(h, couplings, 0.0)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Gauge transformations preserve the energy landscape exactly:
    /// `E_gauged(g∘s) = E(s)` for every configuration.
    #[test]
    fn gauge_preserves_the_landscape(ising in arb_ising(), gauge_seed in 0u64..1000) {
        let n = ising.num_spins();
        let mut rng = ChaCha8Rng::seed_from_u64(gauge_seed);
        let g = Gauge::random(n, &mut rng);
        let gauged = g.apply(&ising);
        for mask in 0u32..(1 << n) {
            let s: Vec<i8> = (0..n).map(|i| if mask & (1 << i) != 0 { 1 } else { -1 }).collect();
            let gs = g.transform_spins(&s);
            prop_assert!((ising.energy(&s) - gauged.energy(&gs)).abs() < 1e-9);
        }
    }

    /// Gauging twice with the same gauge is the identity on problems.
    #[test]
    fn gauge_is_involutive_on_problems(ising in arb_ising(), gauge_seed in 0u64..1000) {
        let mut rng = ChaCha8Rng::seed_from_u64(gauge_seed);
        let g = Gauge::random(ising.num_spins(), &mut rng);
        let twice = g.apply(&g.apply(&ising));
        for (a, b) in twice.fields().iter().zip(ising.fields()) {
            prop_assert!((a - b).abs() < 1e-12);
        }
        prop_assert_eq!(twice.couplings().len(), ising.couplings().len());
        for (x, y) in twice.couplings().iter().zip(ising.couplings()) {
            prop_assert_eq!(x.0, y.0);
            prop_assert_eq!(x.1, y.1);
            prop_assert!((x.2 - y.2).abs() < 1e-12);
        }
    }

    /// Perturbation never changes the problem *structure* and zero noise is
    /// the identity.
    #[test]
    fn noise_preserves_structure(ising in arb_ising(), seed in 0u64..1000) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let noisy = ControlErrorModel::new(0.05).perturb(&ising, &mut rng);
        prop_assert_eq!(noisy.num_spins(), ising.num_spins());
        prop_assert_eq!(noisy.couplings().len(), ising.couplings().len());
        let clean = ControlErrorModel::NONE.perturb(&ising, &mut rng);
        prop_assert_eq!(clean, ising.clone());
    }

    /// SA samples always have the right length and ±1 entries, and energies
    /// never fall below the brute-force minimum.
    #[test]
    fn sa_samples_are_wellformed_and_bounded(seed in 0u64..500) {
        let mut b = Qubo::builder(6);
        for i in 0..6u32 {
            b.add_linear(VarId(i), f64::from(i % 3) - 1.0);
            if i > 0 {
                b.add_quadratic(VarId(i - 1), VarId(i), f64::from(i % 2) * 2.0 - 1.0);
            }
        }
        let qubo = b.build();
        let ising = Ising::from_qubo(&qubo);
        let (_, opt) = qubo.brute_force_minimum();
        let sampler = SimulatedAnnealingSampler::default();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let s = sampler.sample(&ising, &mut rng);
        prop_assert_eq!(s.len(), 6);
        prop_assert!(s.iter().all(|&v| v == 1 || v == -1));
        prop_assert!(ising.energy(&s) >= opt - 1e-9);
    }

    /// The device protocol accounting is exact for any read/gauge split:
    /// read count, timing grid, and gauge partition sizes.
    #[test]
    fn device_protocol_accounting(reads in 1usize..60, gauges in 1usize..10, seed in 0u64..100) {
        prop_assume!(gauges <= reads);
        let mut b = Qubo::builder(3);
        b.add_linear(VarId(0), -1.0);
        b.add_quadratic(VarId(0), VarId(1), 1.0);
        b.add_quadratic(VarId(1), VarId(2), -1.0);
        let qubo = b.build();
        let ising = Ising::from_qubo(&qubo);
        let device = QuantumAnnealer::new(
            DeviceConfig {
                num_reads: reads,
                num_gauges: gauges,
                ..DeviceConfig::default()
            },
            SimulatedAnnealingSampler::default(),
        );
        let set = device.run_ising(&ising, &qubo, seed).unwrap();
        prop_assert_eq!(set.len(), reads);
        for (i, r) in set.reads().iter().enumerate() {
            prop_assert!((r.elapsed_us - 376.0 * (i + 1) as f64).abs() < 1e-6);
            prop_assert!(r.gauge < gauges);
            // Reported energy is the true noiseless energy of the sample.
            prop_assert!((qubo.energy(&r.assignment) - r.energy).abs() < 1e-9);
        }
        // Gauge batches differ in size by at most one.
        let counts: Vec<usize> = (0..gauges)
            .map(|g| set.reads().iter().filter(|r| r.gauge == g).count())
            .collect();
        let min = counts.iter().min().unwrap();
        let max = counts.iter().max().unwrap();
        prop_assert!(max - min <= 1);
    }

    /// Parallel read execution is deterministic: for any read/gauge split
    /// and any worker count, a run yields bit-identical reads (assignments,
    /// energies, timestamps, gauge indices) to the single-threaded run.
    #[test]
    fn device_runs_are_thread_count_invariant(
        reads in 1usize..40,
        gauges in 1usize..8,
        threads in 2usize..9,
        seed in 0u64..100,
    ) {
        prop_assume!(gauges <= reads);
        let mut b = Qubo::builder(4);
        b.add_linear(VarId(0), -1.0);
        b.add_linear(VarId(3), 0.5);
        b.add_quadratic(VarId(0), VarId(1), 1.0);
        b.add_quadratic(VarId(1), VarId(2), -1.0);
        b.add_quadratic(VarId(2), VarId(3), 0.75);
        let qubo = b.build();
        let ising = Ising::from_qubo(&qubo);
        let run_with = |t: usize| {
            QuantumAnnealer::new(
                DeviceConfig {
                    num_reads: reads,
                    num_gauges: gauges,
                    threads: t,
                    ..DeviceConfig::default()
                },
                SimulatedAnnealingSampler::default(),
            )
            .run_ising(&ising, &qubo, seed)
            .unwrap()
        };
        let serial = run_with(1);
        let parallel = run_with(threads);
        prop_assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.reads().iter().zip(parallel.reads()) {
            prop_assert_eq!(&a.assignment, &b.assignment);
            prop_assert_eq!(a.energy.to_bits(), b.energy.to_bits());
            prop_assert_eq!(a.elapsed_us.to_bits(), b.elapsed_us.to_bits());
            prop_assert_eq!(a.gauge, b.gauge);
        }
    }

    /// Fault injection stays deterministic and thread-count invariant: for
    /// any fault mix and any worker count, a run is bit-identical to the
    /// single-threaded run — same reads, same fault events — and when a run
    /// fails it fails with the same typed error.
    #[test]
    fn fault_injected_runs_are_thread_count_invariant(
        reads in 1usize..30,
        gauges in 1usize..6,
        threads in 2usize..9,
        seed in 0u64..100,
        dropout in 0.0f64..0.3,
        flip in 0.0f64..0.3,
        reject in 0.0f64..0.5,
        stuck in 0.0f64..0.3,
    ) {
        prop_assume!(gauges <= reads);
        let mut b = Qubo::builder(4);
        b.add_linear(VarId(0), -1.0);
        b.add_quadratic(VarId(0), VarId(1), 1.0);
        b.add_quadratic(VarId(2), VarId(3), -0.5);
        let qubo = b.build();
        let ising = Ising::from_qubo(&qubo);
        let faults = FaultConfig {
            qubit_dropout_rate: dropout,
            readout_flip_rate: flip,
            programming_reject_rate: reject,
            stuck_read_rate: stuck,
            ..FaultConfig::NONE
        };
        let run_with = |t: usize| {
            QuantumAnnealer::new(
                DeviceConfig {
                    num_reads: reads,
                    num_gauges: gauges,
                    threads: t,
                    faults,
                    ..DeviceConfig::default()
                },
                SimulatedAnnealingSampler::default(),
            )
            .run_ising(&ising, &qubo, seed)
        };
        match (run_with(1), run_with(threads)) {
            (Ok(serial), Ok(parallel)) => {
                prop_assert_eq!(serial.len(), parallel.len());
                prop_assert_eq!(serial.faults(), parallel.faults());
                for (a, b) in serial.reads().iter().zip(parallel.reads()) {
                    prop_assert_eq!(&a.assignment, &b.assignment);
                    prop_assert_eq!(a.energy.to_bits(), b.energy.to_bits());
                    prop_assert_eq!(a.elapsed_us.to_bits(), b.elapsed_us.to_bits());
                    prop_assert_eq!(a.gauge, b.gauge);
                }
            }
            (Err(a), Err(b)) => prop_assert_eq!(format!("{a}"), format!("{b}")),
            (a, b) => prop_assert!(
                false,
                "thread count changed the outcome: 1 thread -> {a:?}, \
                 {threads} threads -> {b:?}"
            ),
        }
    }

    /// A fixed (seed, fault configuration) pair fully determines the run:
    /// two executions are bit-identical, and an inert fault configuration
    /// reproduces the no-faults run exactly.
    #[test]
    fn fault_injected_runs_are_reproducible(
        reads in 1usize..30,
        gauges in 1usize..6,
        seed in 0u64..100,
        flip in 0.0f64..0.4,
    ) {
        prop_assume!(gauges <= reads);
        let mut b = Qubo::builder(3);
        b.add_linear(VarId(1), 0.5);
        b.add_quadratic(VarId(0), VarId(2), -1.0);
        let qubo = b.build();
        let ising = Ising::from_qubo(&qubo);
        let run = |faults: FaultConfig| {
            QuantumAnnealer::new(
                DeviceConfig {
                    num_reads: reads,
                    num_gauges: gauges,
                    faults,
                    ..DeviceConfig::default()
                },
                SimulatedAnnealingSampler::default(),
            )
            .run_ising(&ising, &qubo, seed)
            .unwrap()
        };
        let faults = FaultConfig { readout_flip_rate: flip, ..FaultConfig::NONE };
        let a = run(faults);
        let b2 = run(faults);
        prop_assert_eq!(a.reads(), b2.reads());
        prop_assert_eq!(a.faults(), b2.faults());
        // Inert knobs (zero rates, whatever the budgets) change nothing.
        let clean = run(FaultConfig::NONE);
        let inert = run(FaultConfig { max_programming_attempts: 9, ..FaultConfig::NONE });
        prop_assert_eq!(clean.reads(), inert.reads());
        prop_assert!(inert.faults().is_empty());
    }
}
