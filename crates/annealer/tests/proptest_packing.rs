//! Property-based tests of composite programming (the chip-packing
//! subsystem's device layer): the demultiplexer must partition the
//! composite spin buffer exactly, and a packed run must return samples
//! bit-identical to each tenant's solo run with the same seed — across
//! tenant counts, thread counts, and fault rates.

use mqo_annealer::composite::{run_packed, CompositeLayout, PackedTenant};
use mqo_annealer::device::{DeviceConfig, QuantumAnnealer};
use mqo_annealer::faults::FaultConfig;
use mqo_annealer::sa::SimulatedAnnealingSampler;
use mqo_chimera::graph::ChimeraGraph;
use mqo_chimera::packing;
use mqo_chimera::physical::PhysicalMapping;
use mqo_core::ids::VarId;
use mqo_core::qubo::Qubo;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A random tenant problem with `num_vars` logical variables: dense enough
/// that every chain coupler matters, small enough to pack several per chip.
fn tenant_qubo(num_vars: usize, salt: u64) -> Qubo {
    let mut rng = ChaCha8Rng::seed_from_u64(salt);
    let mut b = Qubo::builder(num_vars);
    for v in 0..num_vars {
        b.add_linear(VarId::new(v), rng.gen_range(-2.0..2.0));
    }
    for v in 0..num_vars {
        for w in v + 1..num_vars {
            if rng.gen_bool(0.8) {
                b.add_quadratic(VarId::new(v), VarId::new(w), rng.gen_range(-1.5..1.5));
            }
        }
    }
    b.build()
}

fn device(threads: usize, fault_rate: f64) -> QuantumAnnealer<SimulatedAnnealingSampler> {
    QuantumAnnealer::new(
        DeviceConfig {
            num_reads: 15,
            num_gauges: 3,
            threads,
            faults: FaultConfig {
                readout_flip_rate: fault_rate,
                stuck_read_rate: fault_rate,
                qubit_dropout_rate: fault_rate / 4.0,
                ..FaultConfig::default()
            },
            ..DeviceConfig::default()
        },
        SimulatedAnnealingSampler::default(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The composite layout is an exact partition: every composite spin
    /// index belongs to exactly one tenant's segment, segments are
    /// contiguous and ordered, and out-of-range indices belong to nobody.
    /// Zero-sized tenants occupy empty segments without claiming spins.
    #[test]
    fn layout_segments_partition_the_composite_buffer(
        sizes in proptest::collection::vec(0usize..=9, 1..=8),
    ) {
        let layout = CompositeLayout::new(&sizes);
        prop_assert_eq!(layout.num_tenants(), sizes.len());
        prop_assert_eq!(layout.total_spins(), sizes.iter().sum::<usize>());
        let mut claimed = 0usize;
        for (t, &size) in sizes.iter().enumerate() {
            let seg = layout.segment(t);
            prop_assert_eq!(seg.len(), size);
            prop_assert_eq!(seg.start, claimed, "segments must be contiguous");
            claimed = seg.end;
            for spin in seg.clone() {
                prop_assert_eq!(layout.tenant_of(spin), Some(t));
            }
        }
        prop_assert_eq!(claimed, layout.total_spins());
        prop_assert_eq!(layout.tenant_of(layout.total_spins()), None);
    }

    /// Device-level bit-identity: every tenant of a packed run gets reads
    /// and fault events identical to its own solo run with the same seed,
    /// for any tenant mix, placement order, thread count, and fault rate.
    #[test]
    fn packed_tenants_match_their_solo_runs_bit_for_bit(
        gen_seed in 0u64..4096,
        num_tenants in 2usize..=5,
        packed_threads in 1usize..=4,
        solo_threads in 1usize..=4,
        fault_idx in 0usize..3,
    ) {
        let fault_rate = [0.0, 0.02, 0.05][fault_idx];
        let graph = ChimeraGraph::new(3, 3);
        let mut rng = ChaCha8Rng::seed_from_u64(gen_seed);
        let sizes: Vec<usize> = (0..num_tenants).map(|_| rng.gen_range(2..=5)).collect();
        let qubos: Vec<Qubo> = sizes
            .iter()
            .enumerate()
            .map(|(i, &n)| tenant_qubo(n, gen_seed ^ ((i as u64) << 16)))
            .collect();
        // Tenants the placer declines (chip full) simply don't join the
        // cycle — the subsystem sends them down the solo path.
        let placements = packing::pack(&graph, &sizes);
        let pms: Vec<PhysicalMapping> = placements
            .into_iter()
            .zip(&qubos)
            .filter_map(|(p, q)| {
                p.map(|p| PhysicalMapping::new(q, p.embedding, &graph, 0.25).unwrap())
            })
            .collect();
        let num_placed = pms.len();
        prop_assert!(num_placed >= 2, "a 3x3 chip always hosts at least two tenants");
        let seeds: Vec<u64> = (0..num_placed as u64).map(|i| gen_seed ^ (i << 32)).collect();
        let tenants: Vec<PackedTenant<'_>> = pms
            .iter()
            .zip(&seeds)
            .map(|(pm, &seed)| PackedTenant { pm, seed })
            .collect();

        let packed_dev = device(packed_threads, fault_rate);
        let solo_dev = device(solo_threads, fault_rate);
        let packed = run_packed(&packed_dev, &graph, &tenants).unwrap();
        prop_assert_eq!(packed.len(), num_placed);
        for (t, slot) in packed.iter().enumerate() {
            let solo = solo_dev.run(&pms[t], &graph, seeds[t]);
            match (slot, solo) {
                (Ok(set), Ok(solo)) => {
                    prop_assert_eq!(solo.reads(), set.reads(), "tenant {} reads drifted", t);
                    prop_assert_eq!(solo.faults(), set.faults(), "tenant {} faults drifted", t);
                }
                (Err(_), Err(_)) => {} // both paths reject the same tenant
                (packed_slot, solo) => {
                    return Err(TestCaseError::fail(format!(
                        "tenant {t} diverged: packed={packed_slot:?} solo={solo:?}"
                    )));
                }
            }
        }
    }
}
