//! Property-based bit-identity tests for the fast annealing kernels.
//!
//! The hot kernels (monomorphic RNG, SoA adjacency, incremental local
//! fields, scratch reuse, SA's early-freeze exit) must produce **the exact
//! same bytes** as two independent transcriptions of the algorithm: the
//! trait-object path ([`ProgrammedSampler::sample_into`]) and the naive
//! reference kernels in [`mqo_annealer::reference`]. These tests drive all
//! three from identical RNG states over random problems and assert
//! byte-for-byte equality — and additionally pin the device protocol's
//! thread-count invariance for every back-end, which now rides on the
//! persistent worker pool.

use mqo_annealer::behavioral::BehavioralSampler;
use mqo_annealer::device::{DeviceConfig, QuantumAnnealer};
use mqo_annealer::sa::SimulatedAnnealingSampler;
use mqo_annealer::sampler::{ProgrammedSampler, ReadScratch, Sampler, SamplerHints};
use mqo_annealer::sqa::{PathIntegralQmcSampler, SqaConfig};
use mqo_core::ids::VarId;
use mqo_core::ising::Ising;
use mqo_core::qubo::Qubo;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn arb_ising() -> impl Strategy<Value = Ising> {
    (2usize..=8).prop_flat_map(|n| {
        let h = proptest::collection::vec(-5.0f64..5.0, n);
        let j = proptest::collection::vec(((0..n, 0..n), -3.0f64..3.0), 0..=2 * n);
        (h, j).prop_map(move |(h, j)| {
            let couplings = j
                .into_iter()
                .filter(|((a, b), _)| a != b)
                .map(|((a, b), w)| (VarId::new(a), VarId::new(b), w))
                .collect();
            Ising::new(h, couplings, 0.0)
        })
    })
}

/// Draws one sample through each of the three code paths from the same RNG
/// state and asserts the outputs and final RNG positions agree exactly.
/// `reference` runs the naive transcription for the concrete programmed
/// type (inherent method, so it cannot be dispatched through the trait).
fn assert_three_way_identity<P: ProgrammedSampler>(
    programmed: &P,
    reference: impl Fn(&mut ChaCha8Rng, &mut [i8]),
    read_seed: u64,
    reads: usize,
) -> Result<(), TestCaseError> {
    let n = programmed.num_spins();
    let mut scratch = ReadScratch::default();
    // One persistent RNG + scratch per path, reused across reads — exactly
    // how a device worker consumes its chunk.
    let mut rng_dyn = ChaCha8Rng::seed_from_u64(read_seed);
    let mut rng_fast = ChaCha8Rng::seed_from_u64(read_seed);
    let mut rng_ref = ChaCha8Rng::seed_from_u64(read_seed);
    for read in 0..reads {
        let mut a = vec![0i8; n];
        let mut b = vec![0i8; n];
        let mut c = vec![0i8; n];
        programmed.sample_into(&mut rng_dyn, &mut a);
        programmed.sample_into_fast(&mut rng_fast, &mut b, &mut scratch);
        reference(&mut rng_ref, &mut c);
        prop_assert_eq!(&a, &b, "dyn vs fast diverged at read {}", read);
        prop_assert_eq!(&a, &c, "dyn vs reference diverged at read {}", read);
        // The RNG stream positions must agree too, or later reads on a
        // shared stream would silently diverge.
        let probe_a = rng_dyn.clone().next_u64();
        let probe_b = rng_fast.clone().next_u64();
        let probe_c = rng_ref.clone().next_u64();
        prop_assert_eq!(probe_a, probe_b, "rng position dyn vs fast, read {}", read);
        prop_assert_eq!(probe_a, probe_c, "rng position dyn vs ref, read {}", read);
    }
    Ok(())
}

use rand::RngCore;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// SA: fast, trait-object, and reference kernels are bit-identical,
    /// including RNG stream positions (the early-freeze exit must consume
    /// exactly the draws the reference consumes).
    #[test]
    fn sa_kernels_are_bit_identical(
        ising in arb_ising(),
        prog_seed in 0u64..1000,
        read_seed in 0u64..1000,
    ) {
        let sampler = SimulatedAnnealingSampler::default();
        let mut rng = ChaCha8Rng::seed_from_u64(prog_seed);
        let programmed = sampler.program(ising, &SamplerHints::default(), &mut rng);
        assert_three_way_identity(
            &programmed,
            |rng, out| programmed.sample_into_reference(rng, out),
            read_seed,
            3,
        )?;
    }

    /// PIQMC: fast, trait-object, and reference kernels are bit-identical
    /// across the replica sweep, cluster moves, and read-out argmin.
    #[test]
    fn sqa_kernels_are_bit_identical(
        ising in arb_ising(),
        prog_seed in 0u64..1000,
        read_seed in 0u64..1000,
    ) {
        // Few sweeps/slices keep the case fast; identity must hold anyway.
        let sampler = PathIntegralQmcSampler::new(SqaConfig {
            sweeps: 24,
            slices: 4,
            ..SqaConfig::default()
        });
        let mut rng = ChaCha8Rng::seed_from_u64(prog_seed);
        let programmed = sampler.program(ising, &SamplerHints::default(), &mut rng);
        assert_three_way_identity(
            &programmed,
            |rng, out| programmed.sample_into_reference(rng, out),
            read_seed,
            2,
        )?;
    }

    /// Behavioural back-end: fast, trait-object, and reference read kernels
    /// are bit-identical around the shared oracle state.
    #[test]
    fn behavioral_kernels_are_bit_identical(
        ising in arb_ising(),
        prog_seed in 0u64..1000,
        read_seed in 0u64..1000,
    ) {
        let sampler = BehavioralSampler::default();
        let mut rng = ChaCha8Rng::seed_from_u64(prog_seed);
        let programmed = sampler.program(ising, &SamplerHints::default(), &mut rng);
        assert_three_way_identity(
            &programmed,
            |rng, out| programmed.sample_into_reference(rng, out),
            read_seed,
            3,
        )?;
    }
}

/// Device-protocol thread invariance for one back-end: runs at 1, 2, 3, and
/// 8 threads must be bit-identical (the persistent pool executes chunks,
/// but chunking depends only on the requested thread count).
fn assert_thread_invariant<S: Sampler + Clone>(sampler: S, seed: u64) {
    let mut b = Qubo::builder(5);
    b.add_linear(VarId(0), -1.0);
    b.add_linear(VarId(4), 0.5);
    b.add_quadratic(VarId(0), VarId(1), 1.0);
    b.add_quadratic(VarId(1), VarId(2), -1.0);
    b.add_quadratic(VarId(2), VarId(3), 0.75);
    b.add_quadratic(VarId(3), VarId(4), -0.25);
    let qubo = b.build();
    let ising = Ising::from_qubo(&qubo);
    let run_with = |threads: usize| {
        QuantumAnnealer::new(
            DeviceConfig {
                num_reads: 22,
                num_gauges: 4,
                threads,
                ..DeviceConfig::default()
            },
            sampler.clone(),
        )
        .run_ising(&ising, &qubo, seed)
        .unwrap()
    };
    let serial = run_with(1);
    for threads in [2, 3, 8] {
        let parallel = run_with(threads);
        assert_eq!(
            serial.reads(),
            parallel.reads(),
            "thread count {threads} changed the run"
        );
    }
}

#[test]
fn sa_device_runs_are_thread_invariant() {
    assert_thread_invariant(SimulatedAnnealingSampler::default(), 17);
}

#[test]
fn sqa_device_runs_are_thread_invariant() {
    assert_thread_invariant(
        PathIntegralQmcSampler::new(SqaConfig {
            sweeps: 16,
            slices: 4,
            ..SqaConfig::default()
        }),
        18,
    );
}

#[test]
fn behavioral_device_runs_are_thread_invariant() {
    assert_thread_invariant(BehavioralSampler::default(), 19);
}
