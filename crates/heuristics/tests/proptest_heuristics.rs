//! Property-based tests of the randomised solvers: validity, cost
//! consistency, admissibility against brute force, and trace discipline.

use mqo_core::ids::PlanId;
use mqo_core::problem::MqoProblem;
use mqo_heuristics::{AnytimeHeuristic, GeneticAlgorithm, Greedy, HillClimbing};
use proptest::prelude::*;
use std::time::Duration;

fn arb_problem() -> impl Strategy<Value = MqoProblem> {
    let queries = proptest::collection::vec(proptest::collection::vec(0.0f64..10.0, 1..=4), 2..=6);
    (
        queries,
        proptest::collection::vec((0usize..128, 0usize..128, 0.5f64..4.0), 0..=10),
    )
        .prop_map(|(costs, savings)| {
            let mut b = MqoProblem::builder();
            for q in &costs {
                b.add_query(q);
            }
            let total = b.num_plans();
            for (x, y, s) in savings {
                let _ = b.add_saving(PlanId::new(x % total), PlanId::new(y % total), s);
            }
            b.build().unwrap()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every heuristic returns a valid selection whose reported cost is its
    /// true cost and never beats the brute-force optimum.
    #[test]
    fn heuristics_are_sound(problem in arb_problem(), seed in 0u64..1000) {
        let (_, optimum) = problem.brute_force_optimum();
        let budget = Duration::from_millis(5);
        let solvers: Vec<Box<dyn AnytimeHeuristic>> = vec![
            Box::new(Greedy),
            Box::new(HillClimbing),
            Box::new(GeneticAlgorithm::with_population(10)),
        ];
        for h in &solvers {
            let out = h.run(&problem, budget, seed);
            prop_assert!(problem.validate_selection(&out.best.0).is_ok(), "{}", h.name());
            prop_assert!(
                (problem.selection_cost(&out.best.0) - out.best.1).abs() < 1e-9,
                "{} misreported cost", h.name()
            );
            prop_assert!(out.best.1 >= optimum - 1e-9, "{} beat brute force", h.name());
            // Trace discipline: strictly decreasing, final value = best.
            let pts = out.trace.points();
            prop_assert!(pts.windows(2).all(|w| w[1].value < w[0].value));
            prop_assert_eq!(out.trace.best(), Some(out.best.1));
        }
    }

    /// Hill climbing's result is a true local optimum with respect to
    /// single-query plan swaps whenever its budget wasn't exhausted
    /// mid-climb (it always finishes the final climb on these tiny inputs).
    #[test]
    fn climb_returns_local_optima(problem in arb_problem(), seed in 0u64..100) {
        let out = HillClimbing.run(&problem, Duration::from_millis(10), seed);
        let eval = mqo_core::solution::CostEvaluator::new(&problem, out.best.0.clone());
        for q in problem.queries() {
            for p in problem.plans_of(q) {
                prop_assert!(eval.delta(q, p) >= -1e-9, "improvable at {q} -> {p}");
            }
        }
    }

    /// Greedy is deterministic regardless of seed or budget.
    #[test]
    fn greedy_is_seed_independent(problem in arb_problem(), s1 in 0u64..50, s2 in 50u64..100) {
        let a = Greedy.run(&problem, Duration::from_millis(1), s1);
        let b = Greedy.run(&problem, Duration::from_millis(7), s2);
        prop_assert_eq!(a.best.0, b.best.0);
        prop_assert_eq!(a.best.1, b.best.1);
    }

    /// The memoized climb picks exactly the moves the full-rescan reference
    /// picks: identical final selections and bit-identical costs from every
    /// start, on any problem.
    #[test]
    fn memoized_climb_equals_the_reference_climb(
        problem in arb_problem(),
        start_seed in 0u64..1000,
    ) {
        use mqo_core::solution::Selection;
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(start_seed);
        let plans: Vec<PlanId> = problem
            .queries()
            .map(|q| {
                let of_q: Vec<PlanId> = problem.plans_of(q).collect();
                of_q[rng.gen_range(0..of_q.len())]
            })
            .collect();
        let start = Selection::new(plans);
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        let (fast_sel, fast_cost) = HillClimbing::climb(&problem, start.clone(), deadline);
        let (ref_sel, ref_cost) = HillClimbing::climb_reference(&problem, start, deadline);
        prop_assert_eq!(fast_sel, ref_sel);
        prop_assert_eq!(fast_cost.to_bits(), ref_cost.to_bits());
    }
}
