#![warn(missing_docs)]

//! # mqo-heuristics
//!
//! The randomised classical baselines of the paper's evaluation
//! (Section 7.1), behind one anytime interface:
//!
//! * [`climbing::HillClimbing`] — iterated hill climbing ("CLIMB"): random
//!   restarts, steepest single-query improvement, keep the best local
//!   optimum;
//! * [`genetic::GeneticAlgorithm`] — the genetic algorithm ("GA(50)",
//!   "GA(200)") with the paper's JGAP configuration: single-point crossover
//!   at rate 0.35, mutation 1/12, top-n selection;
//! * [`greedy::Greedy`] — deterministic greedy construction.
//!
//! All solvers record a [`mqo_core::trace::Trace`] of incumbent
//! improvements, which the benchmark harness samples at the paper's
//! time checkpoints.
//!
//! ```
//! use mqo_heuristics::{AnytimeHeuristic, HillClimbing};
//! use mqo_core::MqoProblem;
//! use std::time::Duration;
//!
//! let mut b = MqoProblem::builder();
//! let q1 = b.add_query(&[2.0, 4.0]);
//! let q2 = b.add_query(&[3.0, 1.0]);
//! let (p2, p3) = (b.plans_of(q1)[1], b.plans_of(q2)[0]);
//! b.add_saving(p2, p3, 5.0).unwrap();
//! let problem = b.build().unwrap();
//!
//! let out = HillClimbing.run(&problem, Duration::from_millis(10), 42);
//! assert_eq!(out.best.1, 2.0); // global optimum on this tiny instance
//! ```

pub mod anytime;
pub mod climbing;
pub mod genetic;
pub mod greedy;

pub use anytime::{AnytimeHeuristic, HeuristicOutcome};
pub use climbing::HillClimbing;
pub use genetic::{GaConfig, GeneticAlgorithm};
pub use greedy::Greedy;
