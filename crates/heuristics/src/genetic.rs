//! Genetic algorithm ("GA(50)" / "GA(200)" in the paper's figures).
//!
//! The paper uses the Java Genetic Algorithms Package (JGAP) 3.6.3 with its
//! default configuration: single-point crossover at rate 0.35, per-gene
//! mutation at rate 1/12, and a best-chromosomes (top-n) selection strategy,
//! with population sizes 50 and 200. This module reimplements exactly that
//! configuration: a chromosome is one plan choice per query, fitness is the
//! (negated) execution cost.

use crate::anytime::{random_selection, AnytimeHeuristic, HeuristicOutcome};
use mqo_core::ids::QueryId;
use mqo_core::problem::MqoProblem;
use mqo_core::solution::Selection;
use mqo_core::trace::Trace;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::time::{Duration, Instant};

/// GA hyper-parameters; defaults are the paper's JGAP configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaConfig {
    /// Population size (paper: 50 and 200).
    pub population: usize,
    /// Fraction of the population replaced by crossover offspring each
    /// generation (JGAP default 0.35).
    pub crossover_rate: f64,
    /// Per-gene mutation probability (JGAP default 1/12).
    pub mutation_rate: f64,
    /// Fraction of the population kept by top-n selection.
    pub survivor_fraction: f64,
}

impl Default for GaConfig {
    fn default() -> Self {
        GaConfig {
            population: 50,
            crossover_rate: 0.35,
            mutation_rate: 1.0 / 12.0,
            survivor_fraction: 0.9,
        }
    }
}

/// Single-point-crossover genetic algorithm with top-n selection.
#[derive(Debug, Clone, Copy)]
pub struct GeneticAlgorithm {
    config: GaConfig,
}

impl Default for GeneticAlgorithm {
    fn default() -> Self {
        GeneticAlgorithm::new(GaConfig::default())
    }
}

impl GeneticAlgorithm {
    /// Creates a GA with explicit hyper-parameters.
    pub fn new(config: GaConfig) -> Self {
        assert!(config.population >= 2, "population must hold two parents");
        assert!((0.0..=1.0).contains(&config.crossover_rate));
        assert!((0.0..=1.0).contains(&config.mutation_rate));
        assert!((0.0..1.0).contains(&config.survivor_fraction) && config.survivor_fraction > 0.0);
        GeneticAlgorithm { config }
    }

    /// Convenience constructor matching the paper's labels.
    pub fn with_population(population: usize) -> Self {
        GeneticAlgorithm::new(GaConfig {
            population,
            ..GaConfig::default()
        })
    }

    /// The active configuration.
    pub fn config(&self) -> GaConfig {
        self.config
    }
}

impl AnytimeHeuristic for GeneticAlgorithm {
    fn name(&self) -> String {
        format!("GA({})", self.config.population)
    }

    fn run(&self, problem: &MqoProblem, budget: Duration, seed: u64) -> HeuristicOutcome {
        let start = Instant::now();
        let deadline = start + budget;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut trace = Trace::new();
        let pop_size = self.config.population;

        // Initial population: random valid chromosomes.
        let mut population: Vec<(Selection, f64)> = (0..pop_size)
            .map(|_| {
                let s = random_selection(problem, &mut rng);
                let c = problem.selection_cost(&s);
                (s, c)
            })
            .collect();
        population.sort_by(|a, b| a.1.total_cmp(&b.1));
        let mut best = population[0].clone();
        trace.record(start.elapsed(), best.1);

        let survivors =
            ((pop_size as f64 * self.config.survivor_fraction) as usize).clamp(2, pop_size);
        let offspring_target = (pop_size as f64 * self.config.crossover_rate).ceil() as usize;

        let mut generations = 0u64;
        while Instant::now() < deadline {
            generations += 1;

            // Breed offspring from uniformly chosen surviving parents.
            let mut offspring = Vec::with_capacity(offspring_target);
            for _ in 0..offspring_target {
                let a = rng.gen_range(0..survivors);
                let b = rng.gen_range(0..survivors);
                let child = crossover(problem, &population[a].0, &population[b].0, &mut rng);
                let child = mutate(problem, child, self.config.mutation_rate, &mut rng);
                let cost = problem.selection_cost(&child);
                offspring.push((child, cost));
            }

            // Top-n selection over survivors + offspring.
            population.truncate(survivors);
            population.extend(offspring);
            population.sort_by(|a, b| a.1.total_cmp(&b.1));
            population.truncate(pop_size);
            // Refill with random immigrants if selection shrank the pool.
            while population.len() < pop_size {
                let s = random_selection(problem, &mut rng);
                let c = problem.selection_cost(&s);
                population.push((s, c));
            }

            if population[0].1 < best.1 {
                best = population[0].clone();
                trace.record(start.elapsed(), best.1);
            }
        }

        HeuristicOutcome {
            best,
            trace,
            iterations: generations,
        }
    }
}

/// Single-point crossover on the query-indexed chromosome.
fn crossover(problem: &MqoProblem, a: &Selection, b: &Selection, rng: &mut impl Rng) -> Selection {
    let n = problem.num_queries();
    let point = rng.gen_range(0..n);
    let plans = (0..n)
        .map(|q| {
            if q < point {
                a.plan_of(QueryId::new(q))
            } else {
                b.plan_of(QueryId::new(q))
            }
        })
        .collect();
    Selection::new(plans)
}

/// Mutates each gene to a uniformly random alternative plan with probability
/// `rate`.
fn mutate(problem: &MqoProblem, mut s: Selection, rate: f64, rng: &mut impl Rng) -> Selection {
    for q in problem.queries() {
        if rng.gen::<f64>() < rate {
            let count = problem.num_plans_of(q);
            let pick = rng.gen_range(0..count);
            s.set_plan(q, problem.plans_of(q).nth(pick).expect("in range"));
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sharing_problem(queries: usize) -> MqoProblem {
        let mut b = MqoProblem::builder();
        let mut prev = None;
        for i in 0..queries {
            let q = b.add_query(&[2.0 + (i % 2) as f64, 3.5]);
            let plans = b.plans_of(q);
            if let Some(prev_plan) = prev {
                b.add_saving(prev_plan, plans[1], 2.0).unwrap();
            }
            prev = Some(plans[1]);
        }
        b.build().unwrap()
    }

    #[test]
    fn ga_reaches_the_optimum_on_a_small_instance() {
        let p = sharing_problem(6);
        let (_, opt) = p.brute_force_optimum();
        let out = GeneticAlgorithm::with_population(50).run(&p, Duration::from_millis(100), 1);
        assert!(
            (out.best.1 - opt).abs() < 1e-9,
            "GA best {} vs optimum {opt}",
            out.best.1
        );
        assert!(p.validate_selection(&out.best.0).is_ok());
    }

    #[test]
    fn reported_cost_matches_the_selection() {
        let p = sharing_problem(8);
        let out = GeneticAlgorithm::with_population(20).run(&p, Duration::from_millis(30), 7);
        assert!((p.selection_cost(&out.best.0) - out.best.1).abs() < 1e-9);
        assert_eq!(out.trace.best(), Some(out.best.1));
    }

    #[test]
    fn crossover_takes_a_prefix_from_the_first_parent() {
        let p = sharing_problem(5);
        let a = Selection::new(p.queries().map(|q| p.plans_of(q).next().unwrap()).collect());
        let b = Selection::new(p.queries().map(|q| p.plans_of(q).last().unwrap()).collect());
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let child = crossover(&p, &a, &b, &mut rng);
        assert!(p.validate_selection(&child).is_ok());
        // Every gene comes from one of the parents.
        for q in p.queries() {
            let g = child.plan_of(q);
            assert!(g == a.plan_of(q) || g == b.plan_of(q));
        }
    }

    #[test]
    fn mutation_rate_zero_is_identity() {
        let p = sharing_problem(5);
        let s = Selection::new(p.queries().map(|q| p.plans_of(q).next().unwrap()).collect());
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert_eq!(mutate(&p, s.clone(), 0.0, &mut rng), s);
    }

    #[test]
    fn mutation_rate_one_keeps_selections_valid() {
        let p = sharing_problem(5);
        let s = Selection::new(p.queries().map(|q| p.plans_of(q).next().unwrap()).collect());
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let m = mutate(&p, s, 1.0, &mut rng);
        assert!(p.validate_selection(&m).is_ok());
    }

    #[test]
    fn names_match_the_paper_labels() {
        assert_eq!(GeneticAlgorithm::with_population(50).name(), "GA(50)");
        assert_eq!(GeneticAlgorithm::with_population(200).name(), "GA(200)");
    }

    #[test]
    #[should_panic(expected = "population must hold two parents")]
    fn tiny_population_is_rejected() {
        GeneticAlgorithm::new(GaConfig {
            population: 1,
            ..GaConfig::default()
        });
    }

    #[test]
    fn default_config_matches_the_paper() {
        let c = GaConfig::default();
        assert_eq!(c.crossover_rate, 0.35);
        assert!((c.mutation_rate - 1.0 / 12.0).abs() < 1e-12);
        assert_eq!(c.population, 50);
    }
}
