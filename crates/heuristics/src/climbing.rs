//! Iterated hill climbing ("CLIMB" in the paper's figures).
//!
//! Exactly the paper's description (Section 7.1): repeatedly generate a
//! random plan selection and improve it by hill climbing until a local
//! optimum is reached, keeping the best local optimum seen. Moves change a
//! single query's plan; the climb uses the `O(deg)` delta evaluation from
//! `mqo-core` and accepts the steepest improving move.

use crate::anytime::{random_selection, AnytimeHeuristic, HeuristicOutcome};
use mqo_core::ids::QueryId;
use mqo_core::problem::MqoProblem;
use mqo_core::solution::{CostEvaluator, Selection};
use mqo_core::trace::Trace;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::{Duration, Instant};

/// Iterated (random-restart) hill climbing.
#[derive(Debug, Clone, Copy, Default)]
pub struct HillClimbing;

impl HillClimbing {
    /// Climbs `selection` to a local optimum in place; returns the final
    /// cost. Public so tests and other solvers can reuse the climb.
    ///
    /// Move deltas are memoized per plan: a full `eval.delta` scan runs
    /// once up front, and after each applied move only the *affected*
    /// queries are re-evaluated — the moved query plus every query holding
    /// a savings partner of the old or new plan; all other deltas are
    /// unchanged because [`CostEvaluator::delta`] depends on the selection
    /// only through those plans. Each steepest-descent step therefore
    /// costs `O(plans-of-affected-queries)` instead of `O(total plans)`
    /// delta evaluations, while the argmin scan (same order, same strict
    /// `<`) picks the exact move [`HillClimbing::climb_reference`] picks.
    pub fn climb(
        problem: &MqoProblem,
        selection: Selection,
        deadline: Instant,
    ) -> (Selection, f64) {
        let mut eval = CostEvaluator::new(problem, selection);
        let mut deltas = vec![0.0f64; problem.num_plans()];
        for q in problem.queries() {
            for p in problem.plans_of(q) {
                deltas[p.index()] = eval.delta(q, p);
            }
        }
        // Reused affected-query mark + list, allocated once per climb.
        let mut marked = vec![false; problem.num_queries()];
        let mut affected: Vec<QueryId> = Vec::new();
        loop {
            let mut best_move = None;
            let mut best_delta = -1e-12;
            for q in problem.queries() {
                for p in problem.plans_of(q) {
                    let delta = deltas[p.index()];
                    if delta < best_delta {
                        best_delta = delta;
                        best_move = Some((q, p));
                    }
                }
                if Instant::now() >= deadline {
                    break;
                }
            }
            match best_move {
                Some((q, p)) => {
                    let old = eval.selection().plan_of(q);
                    eval.apply(q, p);
                    affected.clear();
                    let mut mark = |query: QueryId, marked: &mut Vec<bool>| {
                        if !marked[query.index()] {
                            marked[query.index()] = true;
                            affected.push(query);
                        }
                    };
                    mark(q, &mut marked);
                    for plan in [old, p] {
                        for &(partner, _) in problem.savings_of(plan) {
                            mark(problem.query_of(partner), &mut marked);
                        }
                    }
                    for &aq in &affected {
                        marked[aq.index()] = false;
                        for ap in problem.plans_of(aq) {
                            deltas[ap.index()] = eval.delta(aq, ap);
                        }
                    }
                }
                None => break,
            }
            if Instant::now() >= deadline {
                break;
            }
        }
        let cost = eval.cost();
        (eval.selection().clone(), cost)
    }

    /// Steepest-descent climb bounded by a *move count* instead of a
    /// wall-clock deadline: applies at most `max_moves` improving moves and
    /// stops early at a local optimum. Returns the selection, its cost, and
    /// the number of moves applied.
    ///
    /// This is the descent phase of the integrity repair pipeline. A move
    /// bound (unlike a deadline) makes the result a pure function of
    /// `(problem, selection, max_moves)` — bit-identical across thread
    /// counts and hosts — which the repair accounting relies on. The move
    /// selection rule (same scan order, same strict `< −1e-12` threshold)
    /// is identical to [`HillClimbing::climb`], so an unbounded call
    /// (`max_moves = usize::MAX`) matches a deadline-free climb exactly.
    pub fn descend_bounded(
        problem: &MqoProblem,
        selection: Selection,
        max_moves: usize,
    ) -> (Selection, f64, usize) {
        let mut eval = CostEvaluator::new(problem, selection);
        let mut moves = 0usize;
        while moves < max_moves {
            let mut best_move = None;
            let mut best_delta = -1e-12;
            for q in problem.queries() {
                for p in problem.plans_of(q) {
                    let delta = eval.delta(q, p);
                    if delta < best_delta {
                        best_delta = delta;
                        best_move = Some((q, p));
                    }
                }
            }
            match best_move {
                Some((q, p)) => {
                    eval.apply(q, p);
                    moves += 1;
                }
                None => break,
            }
        }
        let cost = eval.cost();
        (eval.selection().clone(), cost, moves)
    }

    /// The straight-line transcription of the climb — every move delta
    /// re-evaluated on every scan. Kept as the oracle the memoized
    /// [`HillClimbing::climb`] is proptested against (identical selections
    /// and costs when neither run hits the deadline).
    pub fn climb_reference(
        problem: &MqoProblem,
        selection: Selection,
        deadline: Instant,
    ) -> (Selection, f64) {
        let mut eval = CostEvaluator::new(problem, selection);
        loop {
            let mut best_move = None;
            let mut best_delta = -1e-12;
            for q in problem.queries() {
                for p in problem.plans_of(q) {
                    let delta = eval.delta(q, p);
                    if delta < best_delta {
                        best_delta = delta;
                        best_move = Some((q, p));
                    }
                }
                if Instant::now() >= deadline {
                    break;
                }
            }
            match best_move {
                Some((q, p)) => {
                    eval.apply(q, p);
                }
                None => break,
            }
            if Instant::now() >= deadline {
                break;
            }
        }
        let cost = eval.cost();
        (eval.selection().clone(), cost)
    }
}

impl AnytimeHeuristic for HillClimbing {
    fn name(&self) -> String {
        "CLIMB".to_string()
    }

    fn run(&self, problem: &MqoProblem, budget: Duration, seed: u64) -> HeuristicOutcome {
        let start = Instant::now();
        let deadline = start + budget;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut trace = Trace::new();
        let mut restarts = 0u64;

        let first = random_selection(problem, &mut rng);
        let (mut best_sel, mut best_cost) = HillClimbing::climb(problem, first, deadline);
        trace.record(start.elapsed(), best_cost);

        while Instant::now() < deadline {
            restarts += 1;
            let candidate = random_selection(problem, &mut rng);
            let (sel, cost) = HillClimbing::climb(problem, candidate, deadline);
            if cost < best_cost {
                best_cost = cost;
                best_sel = sel;
                trace.record(start.elapsed(), best_cost);
            }
        }

        HeuristicOutcome {
            best: (best_sel, best_cost),
            trace,
            iterations: restarts + 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqo_core::ids::PlanId;

    fn sharing_problem() -> MqoProblem {
        // Optimal solution requires coordinated expensive plans.
        let mut b = MqoProblem::builder();
        let q0 = b.add_query(&[2.0, 4.0]);
        let q1 = b.add_query(&[3.0, 1.0]);
        let q2 = b.add_query(&[2.0, 2.0]);
        let (a1, c0) = (b.plans_of(q0)[1], b.plans_of(q1)[0]);
        let e1 = b.plans_of(q2)[1];
        b.add_saving(a1, c0, 5.0).unwrap();
        b.add_saving(c0, e1, 1.5).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn climb_reaches_a_local_optimum() {
        let p = sharing_problem();
        let start = Selection::new(vec![PlanId(0), PlanId(3), PlanId(4)]);
        let deadline = Instant::now() + Duration::from_secs(5);
        let (sel, cost) = HillClimbing::climb(&p, start, deadline);
        // No single-query move may improve further.
        let eval = CostEvaluator::new(&p, sel);
        for q in p.queries() {
            for plan in p.plans_of(q) {
                assert!(eval.delta(q, plan) >= -1e-9);
            }
        }
        assert!((eval.cost() - cost).abs() < 1e-12);
    }

    #[test]
    fn bounded_descent_matches_the_deadline_climb_and_respects_its_bound() {
        let p = sharing_problem();
        // Not a local optimum: q1 switching to its sharing plan improves.
        let start = Selection::new(vec![PlanId(1), PlanId(3), PlanId(4)]);
        let far = Instant::now() + Duration::from_secs(5);
        let (ref_sel, ref_cost) = HillClimbing::climb(&p, start.clone(), far);
        let (sel, cost, moves) = HillClimbing::descend_bounded(&p, start.clone(), usize::MAX);
        assert_eq!(sel, ref_sel);
        assert_eq!(cost, ref_cost);
        assert!(moves > 0);

        // A zero bound is the identity; each extra move never worsens cost.
        let (same, c0, m0) = HillClimbing::descend_bounded(&p, start.clone(), 0);
        assert_eq!(same, start);
        assert_eq!(m0, 0);
        let mut prev = c0;
        for bound in 1..=moves {
            let (_, c, m) = HillClimbing::descend_bounded(&p, start.clone(), bound);
            assert!(c <= prev + 1e-12);
            assert_eq!(m, bound);
            prev = c;
        }
    }

    #[test]
    fn iterated_restarts_find_the_global_optimum_on_a_small_instance() {
        let p = sharing_problem();
        let (_, opt) = p.brute_force_optimum();
        let out = HillClimbing.run(&p, Duration::from_millis(50), 3);
        assert!((out.best.1 - opt).abs() < 1e-9, "{} vs {opt}", out.best.1);
        assert!(p.validate_selection(&out.best.0).is_ok());
        assert!(out.iterations >= 1);
    }

    #[test]
    fn trace_matches_best_cost_and_is_monotone() {
        let p = sharing_problem();
        let out = HillClimbing.run(&p, Duration::from_millis(20), 9);
        assert_eq!(out.trace.best(), Some(out.best.1));
        let pts = out.trace.points();
        assert!(pts.windows(2).all(|w| w[1].value < w[0].value));
    }

    #[test]
    fn deterministic_in_the_seed_for_fixed_restart_counts() {
        // Run with a generous budget on a trivial instance: both runs reach
        // the optimum, regardless of timing jitter.
        let p = sharing_problem();
        let a = HillClimbing.run(&p, Duration::from_millis(30), 5);
        let b = HillClimbing.run(&p, Duration::from_millis(30), 5);
        assert_eq!(a.best.1, b.best.1);
    }
}
