//! Greedy construction heuristic.
//!
//! Queries are processed in descending order of their maximal sharing
//! potential; each picks the plan with the lowest marginal cost against the
//! plans already chosen. Deterministic and `O(|P| + |S|)` — the paper groups
//! this family under "simple greedy heuristics" and it doubles as the
//! incumbent generator inside the exact solvers.

use crate::anytime::{AnytimeHeuristic, HeuristicOutcome};
use mqo_core::ids::PlanId;
use mqo_core::problem::MqoProblem;
use mqo_core::solution::Selection;
use mqo_core::trace::Trace;
use std::time::{Duration, Instant};

/// One-shot greedy construction (ignores the time budget — it always has
/// time to finish — and the seed — it is deterministic).
#[derive(Debug, Clone, Copy, Default)]
pub struct Greedy;

impl Greedy {
    /// Builds the greedy selection.
    pub fn construct(problem: &MqoProblem) -> Selection {
        // Order queries by how much sharing their plans could unlock.
        let mut order: Vec<usize> = (0..problem.num_queries()).collect();
        let potential: Vec<f64> = problem
            .queries()
            .map(|q| {
                problem
                    .plans_of(q)
                    .map(|p| problem.savings_of(p).iter().map(|(_, s)| *s).sum::<f64>())
                    .fold(0.0, f64::max)
            })
            .collect();
        order.sort_by(|&a, &b| potential[b].total_cmp(&potential[a]));

        let mut chosen: Vec<Option<PlanId>> = vec![None; problem.num_queries()];
        let mut selected = vec![false; problem.num_plans()];
        for &qi in &order {
            let q = mqo_core::ids::QueryId::new(qi);
            let mut best = f64::INFINITY;
            let mut best_plan = None;
            for p in problem.plans_of(q) {
                let mut marginal = problem.plan_cost(p);
                for &(p2, s) in problem.savings_of(p) {
                    if selected[p2.index()] {
                        marginal -= s;
                    }
                }
                if marginal < best {
                    best = marginal;
                    best_plan = Some(p);
                }
            }
            let p = best_plan.expect("non-empty query");
            chosen[qi] = Some(p);
            selected[p.index()] = true;
        }
        Selection::new(
            chosen
                .into_iter()
                .map(|p| p.expect("all queries"))
                .collect(),
        )
    }
}

impl AnytimeHeuristic for Greedy {
    fn name(&self) -> String {
        "GREEDY".to_string()
    }

    fn run(&self, problem: &MqoProblem, _budget: Duration, _seed: u64) -> HeuristicOutcome {
        let start = Instant::now();
        let selection = Greedy::construct(problem);
        let cost = problem.selection_cost(&selection);
        let mut trace = Trace::new();
        trace.record(start.elapsed(), cost);
        HeuristicOutcome {
            best: (selection, cost),
            trace,
            iterations: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn greedy_exploits_reachable_sharing() {
        let mut b = MqoProblem::builder();
        let q0 = b.add_query(&[4.0, 2.0]);
        let q1 = b.add_query(&[3.0, 1.0]);
        let (shared_a, shared_b) = (b.plans_of(q0)[1], b.plans_of(q1)[0]);
        b.add_saving(shared_a, shared_b, 5.0).unwrap();
        let p = b.build().unwrap();
        let sel = Greedy::construct(&p);
        // The sharing plan of q0 is also its cheapest, so greedy takes it and
        // the follow-up marginal cost of q1's sharing plan (3 − 5) wins too.
        assert_eq!(p.selection_cost(&sel), 2.0 + 3.0 - 5.0);
    }

    #[test]
    fn greedy_is_myopic_on_the_paper_example() {
        // Example 1 of the paper: the optimum needs q0's *expensive* plan,
        // which a marginal-cost greedy never picks — documenting why greedy
        // alone is a weak baseline.
        let mut b = MqoProblem::builder();
        let q0 = b.add_query(&[2.0, 4.0]);
        let q1 = b.add_query(&[3.0, 1.0]);
        let (p2, p3) = (b.plans_of(q0)[1], b.plans_of(q1)[0]);
        b.add_saving(p2, p3, 5.0).unwrap();
        let p = b.build().unwrap();
        let sel = Greedy::construct(&p);
        assert_eq!(p.selection_cost(&sel), 3.0); // optimum would be 2.0
    }

    #[test]
    fn greedy_is_deterministic_and_valid() {
        let mut b = MqoProblem::builder();
        for i in 0..10 {
            b.add_query(&[1.0 + i as f64, 2.0, 3.0]);
        }
        let p = b.build().unwrap();
        let a = Greedy::construct(&p);
        let b2 = Greedy::construct(&p);
        assert_eq!(a, b2);
        assert!(p.validate_selection(&a).is_ok());
        // Without savings, greedy must pick every query's cheapest plan.
        let expected: f64 = p
            .queries()
            .map(|q| {
                p.plans_of(q)
                    .map(|pl| p.plan_cost(pl))
                    .fold(f64::INFINITY, f64::min)
            })
            .sum();
        assert!((p.selection_cost(&a) - expected).abs() < 1e-12);
    }

    #[test]
    fn anytime_interface_reports_one_iteration() {
        let mut b = MqoProblem::builder();
        b.add_query(&[1.0, 2.0]);
        let p = b.build().unwrap();
        let out = Greedy.run(&p, Duration::from_millis(1), 0);
        assert_eq!(out.iterations, 1);
        assert_eq!(out.trace.best(), Some(out.best.1));
        assert_eq!(Greedy.name(), "GREEDY");
    }
}
