//! The anytime-heuristic interface shared by all randomised MQO solvers.

use mqo_core::problem::MqoProblem;
use mqo_core::solution::Selection;
use mqo_core::trace::Trace;
use std::time::Duration;

/// Result of an anytime heuristic run.
#[derive(Debug, Clone)]
pub struct HeuristicOutcome {
    /// Best selection found and its execution cost.
    pub best: (Selection, f64),
    /// Incumbent-improvement trace over wall-clock time.
    pub trace: Trace,
    /// Algorithm-specific iteration count (restarts, generations, …).
    pub iterations: u64,
}

/// A randomised MQO solver that improves its incumbent until a wall-clock
/// budget expires.
pub trait AnytimeHeuristic {
    /// Short name used in experiment output (e.g. `CLIMB`, `GA(50)`).
    fn name(&self) -> String;

    /// Runs for at most `budget`, deterministically in `seed`.
    fn run(&self, problem: &MqoProblem, budget: Duration, seed: u64) -> HeuristicOutcome;
}

/// A uniformly random valid selection.
pub(crate) fn random_selection(problem: &MqoProblem, rng: &mut impl rand::Rng) -> Selection {
    Selection::new(
        problem
            .queries()
            .map(|q| {
                let count = problem.num_plans_of(q);
                let pick = rng.gen_range(0..count);
                problem.plans_of(q).nth(pick).expect("in range")
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn random_selection_is_valid_and_varies() {
        let mut b = MqoProblem::builder();
        for _ in 0..6 {
            b.add_query(&[1.0, 2.0, 3.0]);
        }
        let p = b.build().unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let a = random_selection(&p, &mut rng);
        let b2 = random_selection(&p, &mut rng);
        assert!(p.validate_selection(&a).is_ok());
        assert!(p.validate_selection(&b2).is_ok());
        assert_ne!(a, b2, "two draws should differ with high probability");
    }
}
