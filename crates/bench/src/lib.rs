#![warn(missing_docs)]

//! # mqo-bench
//!
//! The benchmark harness regenerating every table and figure of the paper's
//! evaluation (Section 7). The library provides the shared machinery; the
//! binaries in `src/bin/` regenerate the individual artifacts:
//!
//! | binary | paper artifact |
//! |---|---|
//! | `topology` | Figures 1–3 (Chimera cell, TRIAD patterns, clustered pattern) |
//! | `table1`   | Table 1 (ms until LIN-MQO finds the optimum) |
//! | `anytime`  | Figures 4 and 5 (cost vs. optimization time, six competitors) |
//! | `speedup`  | Figure 6 (quantum speedup vs. qubits per variable) |
//! | `capacity` | Figure 7 (representable problem dimensions per qubit budget) |
//!
//! Every binary accepts `--help`; defaults run a scaled-down protocol that
//! finishes in minutes, `--full` switches to the paper's exact protocol
//! (20 instances, 100 s classical budgets, the 1097-qubit machine).
//! Criterion micro-benchmarks live in `benches/`.

pub mod algorithms;
pub mod cli;
pub mod harness;
pub mod report;
