//! Rendering experiment results: markdown tables for the terminal /
//! EXPERIMENTS.md and CSV series for plotting.

use crate::harness::{mean_normalised_cost, ClassResult};
use std::fmt::Write as _;
use std::path::Path;
use std::time::Duration;

/// Fault/resilience counters of one class, summed over its instances' QA
/// runs (rates are averaged).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FaultAggregate {
    /// QA runs that reported a resilience summary.
    pub instances: usize,
    /// Total device reads.
    pub reads: usize,
    /// Reads with at least one broken chain.
    pub broken_chain_reads: usize,
    /// Reads whose decoded selection needed repair.
    pub repaired_reads: usize,
    /// Mean per-read-per-chain break rate across instances.
    pub mean_chain_break_rate: f64,
    /// Worst single-chain break rate seen on any instance.
    pub max_chain_break_rate: f64,
    /// Qubits that dropped dead.
    pub dropped_qubits: usize,
    /// Readout bits flipped by injected noise.
    pub readout_flips: usize,
    /// Reads replaced wholesale by garbage.
    pub stuck_reads: usize,
    /// Rejected gauge programmings.
    pub programming_rejects: usize,
    /// Device re-runs after rejected programmings.
    pub retries: usize,
    /// Re-embedding rounds after qubit dropout.
    pub reembeds: usize,
    /// Instances the classical fallback had to answer.
    pub fallbacks: usize,
}

/// Sums the QA resilience counters of a class. `None` when no instance
/// carries a summary (e.g. results deserialized from a pre-fault harness).
pub fn aggregate_resilience(class: &ClassResult) -> Option<FaultAggregate> {
    let mut agg = FaultAggregate::default();
    for inst in &class.instances {
        for run in inst.runs.iter().filter(|r| r.name == "QA") {
            let Some(s) = run.resilience else { continue };
            agg.instances += 1;
            agg.reads += s.reads;
            agg.broken_chain_reads += s.broken_chain_reads;
            agg.repaired_reads += s.repaired_reads;
            agg.mean_chain_break_rate += s.chain_break_rate;
            agg.max_chain_break_rate = agg.max_chain_break_rate.max(s.max_chain_break_rate);
            agg.dropped_qubits += s.dropped_qubits;
            agg.readout_flips += s.readout_flips;
            agg.stuck_reads += s.stuck_reads;
            agg.programming_rejects += s.programming_rejects;
            agg.retries += s.retries;
            agg.reembeds += s.reembeds;
            agg.fallbacks += s.fallback as usize;
        }
    }
    if agg.instances == 0 {
        return None;
    }
    agg.mean_chain_break_rate /= agg.instances as f64;
    Some(agg)
}

/// Markdown table of the fault/resilience accounting per class.
pub fn fault_table(classes: &[ClassResult]) -> String {
    let mut out = String::from("### Fault accounting (QA track)\n");
    let _ = writeln!(
        out,
        "| class | reads | broken chains | repaired | break rate | dropped | \
         flips | stuck | rejects | retries | reembeds | fallbacks |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|---|---|---|---|---|---|---|");
    for class in classes {
        let Some(a) = aggregate_resilience(class) else {
            continue;
        };
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {:.4} | {} | {} | {} | {} | {} | {} | {} |",
            class.label(),
            a.reads,
            a.broken_chain_reads,
            a.repaired_reads,
            a.mean_chain_break_rate,
            a.dropped_qubits,
            a.readout_flips,
            a.stuck_reads,
            a.programming_rejects,
            a.retries,
            a.reembeds,
            a.fallbacks
        );
    }
    out
}

/// CSV of the same counters, one row per class.
pub fn fault_csv(classes: &[ClassResult]) -> String {
    let mut out = String::from(
        "plans,queries,reads,broken_chain_reads,repaired_reads,mean_chain_break_rate,\
         dropped_qubits,readout_flips,stuck_reads,programming_rejects,retries,reembeds,fallbacks\n",
    );
    for class in classes {
        let Some(a) = aggregate_resilience(class) else {
            continue;
        };
        let _ = writeln!(
            out,
            "{},{},{},{},{},{:.6},{},{},{},{},{},{},{}",
            class.plans,
            class.queries,
            a.reads,
            a.broken_chain_reads,
            a.repaired_reads,
            a.mean_chain_break_rate,
            a.dropped_qubits,
            a.readout_flips,
            a.stuck_reads,
            a.programming_rejects,
            a.retries,
            a.reembeds,
            a.fallbacks
        );
    }
    out
}

/// The paper's measurement checkpoints: 1 ms … 100 s (Figures 4 and 5).
pub fn paper_checkpoints() -> Vec<Duration> {
    [1u64, 10, 100, 1_000, 10_000, 100_000]
        .into_iter()
        .map(Duration::from_millis)
        .collect()
}

/// Checkpoints truncated to a budget (fast mode drops the expensive tail).
pub fn checkpoints_up_to(budget: Duration) -> Vec<Duration> {
    let mut cps: Vec<Duration> = paper_checkpoints()
        .into_iter()
        .filter(|c| *c <= budget)
        .collect();
    if cps.last() != Some(&budget) {
        cps.push(budget);
    }
    cps
}

/// The competitor labels in figure order.
pub const ALGORITHMS: [&str; 6] = ["LIN-MQO", "LIN-QUB", "QA", "CLIMB", "GA(50)", "GA(200)"];

fn fmt_duration(d: Duration) -> String {
    let ms = d.as_secs_f64() * 1e3;
    if ms < 1.0 {
        format!("{:.3}ms", ms)
    } else if ms < 1000.0 {
        format!("{:.0}ms", ms)
    } else {
        format!("{:.0}s", ms / 1e3)
    }
}

/// Markdown table: mean normalised cost per competitor per checkpoint — the
/// textual equivalent of one panel of Figure 4/5.
pub fn checkpoint_table(class: &ClassResult, checkpoints: &[Duration]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "### {}", class.label());
    let _ = write!(out, "| algorithm |");
    for c in checkpoints {
        let _ = write!(out, " {} |", fmt_duration(*c));
    }
    let _ = writeln!(out);
    let _ = write!(out, "|---|");
    for _ in checkpoints {
        let _ = write!(out, "---|");
    }
    let _ = writeln!(out);
    for algo in ALGORITHMS {
        let _ = write!(out, "| {algo} |");
        for c in checkpoints {
            match mean_normalised_cost(class, algo, *c) {
                Some(v) => {
                    let _ = write!(out, " {v:.4} |");
                }
                None => {
                    let _ = write!(out, " — |");
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

/// CSV series of the same data: `plans,queries,algorithm,time_ms,mean_norm_cost`.
pub fn checkpoint_csv(class: &ClassResult, checkpoints: &[Duration]) -> String {
    let mut out = String::from("plans,queries,algorithm,time_ms,mean_norm_cost\n");
    for algo in ALGORITHMS {
        for c in checkpoints {
            let value =
                mean_normalised_cost(class, algo, *c).map_or(String::new(), |v| format!("{v:.6}"));
            let _ = writeln!(
                out,
                "{},{},{},{},{}",
                class.plans,
                class.queries,
                algo,
                c.as_secs_f64() * 1e3,
                value
            );
        }
    }
    out
}

/// Aggregates `min / median / max` of a sample (used for Table 1).
pub fn min_median_max(mut samples: Vec<f64>) -> Option<(f64, f64, f64)> {
    if samples.is_empty() {
        return None;
    }
    samples.sort_by(f64::total_cmp);
    let min = samples[0];
    let max = *samples.last().unwrap();
    let n = samples.len();
    let median = if n % 2 == 1 {
        samples[n / 2]
    } else {
        (samples[n / 2 - 1] + samples[n / 2]) / 2.0
    };
    Some((min, median, max))
}

/// Writes `content` under `results/` (created on demand), returning the
/// path; failures surface as a warning on stderr so harness runs never die
/// on IO.
pub fn write_result_file(dir: &Path, name: &str, content: &str) -> Option<std::path::PathBuf> {
    let path = dir.join(name);
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return None;
    }
    match std::fs::write(&path, content) {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!("warning: cannot write {}: {e}", path.display());
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::CompetitorConfig;
    use crate::harness::run_class;
    use mqo_chimera::graph::ChimeraGraph;

    fn tiny_class() -> ClassResult {
        run_class(
            &ChimeraGraph::new(2, 2),
            2,
            1,
            &CompetitorConfig {
                classical_budget: Duration::from_millis(30),
                qa_reads: 30,
                qa_gauges: 3,
                seed: 4,
                ..CompetitorConfig::default()
            },
        )
    }

    #[test]
    fn checkpoint_helpers_respect_the_budget() {
        let cps = checkpoints_up_to(Duration::from_millis(2_000));
        assert_eq!(
            cps,
            vec![
                Duration::from_millis(1),
                Duration::from_millis(10),
                Duration::from_millis(100),
                Duration::from_millis(1_000),
                Duration::from_millis(2_000),
            ]
        );
        assert_eq!(paper_checkpoints().len(), 6);
    }

    #[test]
    fn tables_contain_every_algorithm() {
        let class = tiny_class();
        let cps = checkpoints_up_to(Duration::from_millis(30));
        let md = checkpoint_table(&class, &cps);
        let csv = checkpoint_csv(&class, &cps);
        for algo in ALGORITHMS {
            assert!(md.contains(algo), "markdown missing {algo}");
            assert!(csv.contains(algo), "csv missing {algo}");
        }
        assert_eq!(
            csv.lines().count(),
            1 + ALGORITHMS.len() * cps.len(),
            "csv row count"
        );
    }

    #[test]
    fn fault_accounting_aggregates_the_qa_track() {
        let clean = tiny_class();
        let agg = aggregate_resilience(&clean).expect("QA reports summaries");
        assert_eq!(agg.instances, 1);
        assert_eq!(agg.reads, 30);
        assert_eq!(agg.fallbacks, 0);
        assert_eq!(agg.dropped_qubits + agg.readout_flips + agg.stuck_reads, 0);

        let faulty = run_class(
            &ChimeraGraph::new(2, 2),
            2,
            1,
            &CompetitorConfig {
                classical_budget: Duration::from_millis(30),
                qa_reads: 30,
                qa_gauges: 3,
                seed: 4,
                faults: mqo_annealer::faults::FaultConfig {
                    readout_flip_rate: 0.05,
                    ..mqo_annealer::faults::FaultConfig::NONE
                },
                ..CompetitorConfig::default()
            },
        );
        let agg = aggregate_resilience(&faulty).expect("QA reports summaries");
        assert!(agg.readout_flips > 0);

        let classes = [clean, faulty];
        let md = fault_table(&classes);
        assert!(md.contains("Fault accounting"));
        let csv = fault_csv(&classes);
        assert_eq!(csv.lines().count(), 1 + classes.len());
        assert!(csv.starts_with("plans,queries,reads,"));
    }

    #[test]
    fn min_median_max_handles_odd_even_and_empty() {
        assert_eq!(min_median_max(vec![]), None);
        assert_eq!(min_median_max(vec![3.0]), Some((3.0, 3.0, 3.0)));
        assert_eq!(min_median_max(vec![5.0, 1.0, 3.0]), Some((1.0, 3.0, 5.0)));
        assert_eq!(
            min_median_max(vec![4.0, 1.0, 2.0, 3.0]),
            Some((1.0, 2.5, 4.0))
        );
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_micros(376)), "0.376ms");
        assert_eq!(fmt_duration(Duration::from_millis(100)), "100ms");
        assert_eq!(fmt_duration(Duration::from_secs(10)), "10s");
    }

    #[test]
    fn write_result_file_round_trips() {
        let dir = std::env::temp_dir().join("mqo-bench-test");
        let path = write_result_file(&dir, "probe.csv", "a,b\n1,2\n").unwrap();
        assert_eq!(std::fs::read_to_string(path).unwrap(), "a,b\n1,2\n");
    }
}
