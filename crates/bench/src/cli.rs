//! Minimal dependency-free flag parsing shared by the harness binaries.

use mqo::pipeline::ResilienceConfig;
use mqo_annealer::faults::FaultConfig;
use std::path::PathBuf;
use std::time::Duration;

/// Common harness options.
#[derive(Debug, Clone)]
pub struct HarnessOptions {
    /// Run the paper's full protocol instead of the fast default.
    pub full: bool,
    /// Instances per class (fast default 3; full 20).
    pub instances: usize,
    /// Classical per-algorithm budget (fast default 2 s; full 100 s).
    pub budget: Duration,
    /// Annealing reads (fast 1000 = the paper value; kept configurable).
    pub reads: usize,
    /// Output directory for CSV artifacts.
    pub out_dir: PathBuf,
    /// Base seed.
    pub seed: u64,
    /// Optional single class filter (plans per query).
    pub plans_filter: Option<usize>,
    /// Use the small 4×4 machine instead of the 12×12 paper machine.
    pub small: bool,
    /// Worker threads for device reads and instance batches
    /// (`0` = available parallelism).
    pub threads: usize,
    /// Uniform fault-injection rate for the device model (`0` = clean runs,
    /// bit-identical to the pre-fault harness).
    pub fault_rate: f64,
    /// Device re-runs allowed after rejected programmings before the
    /// classical fallback takes over.
    pub fault_retries: usize,
    /// Audit recorded results against proven optima (exhaustive enumeration
    /// or branch-and-bound proofs) after each class.
    pub cross_check: bool,
}

impl Default for HarnessOptions {
    fn default() -> Self {
        HarnessOptions {
            full: false,
            instances: 3,
            budget: Duration::from_secs(2),
            reads: 1000,
            out_dir: PathBuf::from("results"),
            seed: 0,
            plans_filter: None,
            small: false,
            threads: 0,
            fault_rate: 0.0,
            fault_retries: 2,
            cross_check: false,
        }
    }
}

impl HarnessOptions {
    /// Parses `args` (without the program name). Returns `Err(help_text)`
    /// for `--help` or malformed input.
    pub fn parse(args: &[String]) -> Result<HarnessOptions, String> {
        let mut opts = HarnessOptions::default();
        let mut explicit_instances = false;
        let mut explicit_budget = false;
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--full" => opts.full = true,
                "--small" => opts.small = true,
                "--instances" => {
                    opts.instances = next_value(&mut it, arg)?;
                    explicit_instances = true;
                }
                "--budget-ms" => {
                    let ms: u64 = next_value(&mut it, arg)?;
                    opts.budget = Duration::from_millis(ms);
                    explicit_budget = true;
                }
                "--reads" => opts.reads = next_value(&mut it, arg)?,
                "--seed" => opts.seed = next_value(&mut it, arg)?,
                "--threads" => opts.threads = next_value(&mut it, arg)?,
                "--fault-rate" => {
                    let rate: f64 = next_value(&mut it, arg)?;
                    if !(0.0..=1.0).contains(&rate) {
                        return Err(help(format!("{arg}: must be in [0, 1]")));
                    }
                    opts.fault_rate = rate;
                }
                "--fault-retries" => opts.fault_retries = next_value(&mut it, arg)?,
                "--cross-check" => opts.cross_check = true,
                "--plans" => opts.plans_filter = Some(next_value(&mut it, arg)?),
                "--out" => {
                    opts.out_dir = PathBuf::from(
                        it.next()
                            .ok_or_else(|| help(format!("{arg} needs a value")))?,
                    )
                }
                "--help" | "-h" => return Err(help(String::new())),
                other => return Err(help(format!("unknown flag {other}"))),
            }
        }
        if opts.full {
            if !explicit_instances {
                opts.instances = 20;
            }
            if !explicit_budget {
                opts.budget = Duration::from_secs(100);
            }
        }
        Ok(opts)
    }

    /// Device fault model implied by `--fault-rate` (inert at `0`).
    pub fn fault_config(&self) -> FaultConfig {
        FaultConfig::uniform(self.fault_rate)
    }

    /// Pipeline resilience policy implied by `--fault-retries`.
    pub fn resilience_config(&self) -> ResilienceConfig {
        ResilienceConfig {
            max_retries: self.fault_retries,
            ..ResilienceConfig::default()
        }
    }

    /// Parses `std::env::args`, printing help and exiting on request/error.
    pub fn from_env() -> HarnessOptions {
        let args: Vec<String> = std::env::args().skip(1).collect();
        match HarnessOptions::parse(&args) {
            Ok(o) => o,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(if msg.starts_with("usage") { 0 } else { 2 });
            }
        }
    }
}

fn next_value<T: std::str::FromStr>(
    it: &mut std::slice::Iter<'_, String>,
    flag: &str,
) -> Result<T, String> {
    it.next()
        .ok_or_else(|| help(format!("{flag} needs a value")))?
        .parse()
        .map_err(|_| help(format!("{flag}: invalid value")))
}

fn help(prefix: String) -> String {
    let usage = "usage: <harness> [--full] [--small] [--instances N] [--budget-ms MS] \
                 [--reads N] [--seed S] [--threads N] [--plans L] [--out DIR] \
                 [--fault-rate R] [--fault-retries N] [--cross-check]\n\
                 --full       paper protocol (20 instances, 100 s budgets)\n\
                 --small      4x4 toy machine instead of the 12x12 D-Wave 2X\n\
                 --threads N  worker threads for device reads and instance \
                 batches (0 = all cores); results are thread-count invariant\n\
                 --plans L    run only the class with L plans per query\n\
                 --fault-rate R    inject faults (dropout, readout flips, \
                 rejected programmings, stuck reads) at uniform rate R in \
                 [0, 1]; 0 keeps runs bit-identical to the clean harness\n\
                 --fault-retries N device re-runs after rejected programmings \
                 before the classical fallback answers\n\
                 --cross-check     audit every class against proven optima; \
                 any cost below a proven bound fails the run";
    if prefix.is_empty() {
        usage.to_string()
    } else {
        format!("{prefix}\n{usage}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<HarnessOptions, String> {
        let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        HarnessOptions::parse(&v)
    }

    #[test]
    fn defaults_are_fast_mode() {
        let o = parse(&[]).unwrap();
        assert!(!o.full);
        assert_eq!(o.instances, 3);
        assert_eq!(o.budget, Duration::from_secs(2));
        assert_eq!(o.reads, 1000);
    }

    #[test]
    fn full_mode_upgrades_protocol() {
        let o = parse(&["--full"]).unwrap();
        assert_eq!(o.instances, 20);
        assert_eq!(o.budget, Duration::from_secs(100));
    }

    #[test]
    fn explicit_values_override_full_defaults() {
        let o = parse(&["--full", "--instances", "5", "--budget-ms", "500"]).unwrap();
        assert_eq!(o.instances, 5);
        assert_eq!(o.budget, Duration::from_millis(500));
    }

    #[test]
    fn class_filter_and_seed() {
        let o = parse(&["--plans", "4", "--seed", "99", "--small"]).unwrap();
        assert_eq!(o.plans_filter, Some(4));
        assert_eq!(o.seed, 99);
        assert!(o.small);
    }

    #[test]
    fn threads_flag_defaults_to_auto() {
        assert_eq!(parse(&[]).unwrap().threads, 0);
        assert_eq!(parse(&["--threads", "4"]).unwrap().threads, 4);
        assert!(parse(&["--threads"]).unwrap_err().contains("needs a value"));
    }

    #[test]
    fn fault_flags_parse_and_validate() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.fault_rate, 0.0);
        assert_eq!(o.fault_retries, 2);
        assert!(o.fault_config().is_inert());
        let o = parse(&["--fault-rate", "0.05", "--fault-retries", "7"]).unwrap();
        assert_eq!(o.fault_rate, 0.05);
        assert_eq!(o.fault_retries, 7);
        assert_eq!(o.fault_config(), FaultConfig::uniform(0.05));
        assert_eq!(o.resilience_config().max_retries, 7);
        assert!(parse(&["--fault-rate", "1.5"])
            .unwrap_err()
            .contains("must be in [0, 1]"));
        assert!(parse(&["--fault-rate", "-0.1"])
            .unwrap_err()
            .contains("must be in [0, 1]"));
    }

    #[test]
    fn cross_check_is_opt_in() {
        assert!(!parse(&[]).unwrap().cross_check);
        assert!(parse(&["--cross-check"]).unwrap().cross_check);
    }

    #[test]
    fn help_and_errors() {
        assert!(parse(&["--help"]).unwrap_err().starts_with("usage"));
        assert!(parse(&["--bogus"]).unwrap_err().contains("unknown flag"));
        assert!(parse(&["--instances"])
            .unwrap_err()
            .contains("needs a value"));
        assert!(parse(&["--instances", "x"])
            .unwrap_err()
            .contains("invalid"));
    }
}
