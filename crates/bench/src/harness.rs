//! Experiment driver: paper classes, instance batches, and aggregates.

use crate::algorithms::{run_all, AlgoRun, CompetitorConfig};
use mqo_annealer::parallel::{parallel_map_with, resolve_threads};
use mqo_chimera::graph::ChimeraGraph;
use mqo_core::integrity::{self, DEFAULT_TOLERANCE};
use mqo_milp::{bb_mqo, MqoBbConfig, StopReason};
use mqo_workload::paper::{self, PaperWorkloadConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Seed that fixes the paper machine's broken-qubit pattern across all
/// experiments (the real pattern is proprietary; only the count matters).
pub const MACHINE_SEED: u64 = 0xD_2016;

/// The defective D-Wave 2X all experiments run against.
pub fn paper_machine() -> ChimeraGraph {
    let mut rng = ChaCha8Rng::seed_from_u64(MACHINE_SEED);
    ChimeraGraph::dwave_2x_as_used_in_paper(&mut rng)
}

/// A scaled-down machine for fast harness runs and CI.
pub fn small_machine() -> ChimeraGraph {
    let mut g = ChimeraGraph::new(4, 4);
    let mut rng = ChaCha8Rng::seed_from_u64(MACHINE_SEED);
    g.break_random_qubits(6, &mut rng); // same ~5% defect rate
    g
}

/// Results of one competitor batch on one instance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InstanceResult {
    /// Instance seed.
    pub seed: u64,
    /// Number of queries the machine fit.
    pub queries: usize,
    /// Best cost any competitor reached (the normalisation anchor).
    pub best_known: f64,
    /// Per-competitor traces.
    pub runs: Vec<AlgoRun>,
}

/// Results of one test-case class (fixed plans-per-query).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClassResult {
    /// Plans per query.
    pub plans: usize,
    /// Queries per instance (identical across instances: same machine).
    pub queries: usize,
    /// Average physical qubits per logical variable (Figure 6 x-axis).
    pub qubits_per_variable: f64,
    /// Per-instance results.
    pub instances: Vec<InstanceResult>,
}

impl ClassResult {
    /// Display label in the paper's style, e.g. `537 Queries, 2 Plans`.
    pub fn label(&self) -> String {
        format!("{} Queries, {} Plans", self.queries, self.plans)
    }
}

/// Runs `num_instances` instances of the class with `plans` plans per query
/// on `graph`, executing all six competitors on each.
///
/// Instances fan out over `cfg.threads` workers; each derives its own seed
/// from the instance index, so the generated instances (and the device-time
/// QA traces) are identical at any thread count. Classical competitors are
/// timed on the wall clock, so their traces — but not their final quality
/// within budget — can shift under concurrent execution.
pub fn run_class(
    graph: &ChimeraGraph,
    plans: usize,
    num_instances: usize,
    cfg: &CompetitorConfig,
) -> ClassResult {
    let workload = PaperWorkloadConfig::paper_class(plans);
    let instances = parallel_map_with(
        num_instances,
        resolve_threads(cfg.threads),
        || (),
        |_, i| {
            let seed = cfg.seed.wrapping_add(1000 * i as u64 + 17);
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let inst = paper::generate(graph, &workload, &mut rng)
                .expect("experiment machines host every paper class");
            let run_cfg = CompetitorConfig { seed, ..*cfg };
            let runs = run_all(&inst, graph, &run_cfg);
            let best_known = runs
                .iter()
                .filter_map(|r| r.trace.best())
                .fold(f64::INFINITY, f64::min);
            let result = InstanceResult {
                seed,
                queries: inst.problem.num_queries(),
                best_known,
                runs,
            };
            (result, inst.layout.embedding.qubits_per_variable())
        },
    );
    let queries = instances.last().map_or(0, |(r, _)| r.queries);
    let qubits_per_variable = instances.last().map_or(0.0, |&(_, q)| q);
    ClassResult {
        plans,
        queries,
        qubits_per_variable,
        instances: instances.into_iter().map(|(r, _)| r).collect(),
    }
}

/// Outcome of the opt-in `--cross-check` audit of one class.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CrossCheckSummary {
    /// Instances audited against a proven optimum.
    pub audited: usize,
    /// Instances for which no optimality proof was affordable — reported,
    /// never silently counted as passing.
    pub skipped_unproven: usize,
    /// Human-readable audit failures; empty on honest runs.
    pub violations: Vec<String>,
}

/// Largest plan-combination count the audit will enumerate exhaustively.
const BRUTE_FORCE_CAP: f64 = (1u64 << 21) as f64;

/// Audits a class's recorded results against proven optima.
///
/// The proof obligation is discharged per instance, cheapest source first:
/// the recorded `LIN-MQO` branch-and-bound run when it terminated with an
/// optimality proof; else exhaustive enumeration when the plan-combination
/// space is small enough; else a fresh branch-and-bound run under
/// `proof_budget`. The latter two re-derive the problem from the recorded
/// seed, exactly as `run_class` generated it. No competitor's best reported
/// cost — nor the `best_known` normalisation anchor — may undercut the
/// proven optimum ([`integrity::verify_against_bound`]): a cost below a
/// proven bound is the canonical symptom of a corrupted ledger.
pub fn cross_check_class(
    graph: &ChimeraGraph,
    class: &ClassResult,
    proof_budget: Duration,
) -> CrossCheckSummary {
    let workload = PaperWorkloadConfig::paper_class(class.plans);
    let mut summary = CrossCheckSummary::default();
    for inst in &class.instances {
        let recorded_proof = inst
            .runs
            .iter()
            .find(|r| r.name == "LIN-MQO" && r.proved_optimal)
            .and_then(|r| r.trace.best());
        let bound = match recorded_proof {
            Some(b) => b,
            None => {
                let mut rng = ChaCha8Rng::seed_from_u64(inst.seed);
                let problem = paper::generate(graph, &workload, &mut rng)
                    .expect("audit re-derives the machine's own instances")
                    .problem;
                let combinations = (class.plans as f64).powi(problem.num_queries() as i32);
                if problem.num_queries() <= 24 && combinations <= BRUTE_FORCE_CAP {
                    problem.brute_force_optimum().1
                } else {
                    let out = bb_mqo::solve(
                        &problem,
                        &MqoBbConfig {
                            deadline: Some(proof_budget),
                            lp_var_limit: 0,
                            ..MqoBbConfig::default()
                        },
                    );
                    match (out.stop, out.trace.best()) {
                        (StopReason::Optimal, Some(b)) => b,
                        _ => {
                            summary.skipped_unproven += 1;
                            continue;
                        }
                    }
                }
            }
        };
        summary.audited += 1;
        if let Err(e) = integrity::verify_against_bound(inst.best_known, bound, DEFAULT_TOLERANCE) {
            summary.violations.push(format!(
                "instance {}: best_known anchor {}: {e}",
                inst.seed, inst.best_known
            ));
        }
        for run in &inst.runs {
            let Some(best) = run.trace.best() else {
                continue;
            };
            if let Err(e) = integrity::verify_against_bound(best, bound, DEFAULT_TOLERANCE) {
                summary.violations.push(format!(
                    "instance {}: {} reported {best}: {e}",
                    inst.seed, run.name
                ));
            }
        }
    }
    summary
}

/// Mean normalised cost of a competitor at a checkpoint across a class's
/// instances: `(cost − best_known) / best_known`, or `None` when the
/// competitor had no solution yet on any instance.
pub fn mean_normalised_cost(class: &ClassResult, algo: &str, checkpoint: Duration) -> Option<f64> {
    let mut sum = 0.0;
    let mut n = 0usize;
    for inst in &class.instances {
        let run = inst.runs.iter().find(|r| r.name == algo)?;
        if let Some(value) = run.trace.value_at(checkpoint) {
            let anchor = inst.best_known.abs().max(1e-9);
            sum += (value - inst.best_known) / anchor;
            n += 1;
        }
    }
    (n == class.instances.len() && n > 0).then(|| sum / n as f64)
}

/// The paper's Figure 6 speedup for one instance: time until the *best*
/// classical competitor matches the quality of QA's first annealing run,
/// divided by the duration of that first run. `None` when no classical
/// competitor matched it within budget (the caller reports a `≥` bound).
pub fn quantum_speedup(inst: &InstanceResult, first_read: Duration) -> Option<f64> {
    let qa = inst.runs.iter().find(|r| r.name == "QA")?;
    let target = qa.trace.value_at(first_read)?;
    let fastest_classical = inst
        .runs
        .iter()
        .filter(|r| r.name != "QA")
        .filter_map(|r| r.trace.time_to_reach(target + 1e-9))
        .min()?;
    Some(fastest_classical.as_secs_f64() / first_read.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqo_core::trace::Trace;

    fn fast_cfg() -> CompetitorConfig {
        CompetitorConfig {
            classical_budget: Duration::from_millis(50),
            qa_reads: 50,
            qa_gauges: 5,
            seed: 9,
            ..CompetitorConfig::default()
        }
    }

    #[test]
    fn run_class_produces_full_batches() {
        let g = ChimeraGraph::new(2, 2);
        let res = run_class(&g, 2, 2, &fast_cfg());
        assert_eq!(res.plans, 2);
        assert_eq!(res.instances.len(), 2);
        assert!(res.queries > 0);
        assert!((res.qubits_per_variable - 1.0).abs() < 1e-9);
        for inst in &res.instances {
            assert_eq!(inst.runs.len(), 6);
            assert!(inst.best_known.is_finite());
        }
        assert!(res.label().contains("Queries"));
    }

    #[test]
    fn normalised_cost_is_zero_for_the_best_competitor_at_the_end() {
        let g = ChimeraGraph::new(2, 2);
        let res = run_class(&g, 2, 1, &fast_cfg());
        let end = Duration::from_secs(3600);
        let mins: Vec<f64> = ["LIN-MQO", "LIN-QUB", "QA", "CLIMB", "GA(50)", "GA(200)"]
            .iter()
            .filter_map(|a| mean_normalised_cost(&res, a, end))
            .collect();
        assert_eq!(mins.len(), 6);
        let best = mins.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            best.abs() < 1e-9,
            "someone must sit at the anchor: {mins:?}"
        );
        assert!(mins.iter().all(|&v| v >= -1e-9));
    }

    #[test]
    fn speedup_is_positive_when_classical_matches_qa() {
        let g = ChimeraGraph::new(2, 2);
        let res = run_class(&g, 2, 1, &fast_cfg());
        let first_read = Duration::from_secs_f64(376e-6);
        // On toy instances the classical solvers reach QA quality, so the
        // speedup is defined and positive.
        let s = quantum_speedup(&res.instances[0], first_read);
        if let Some(v) = s {
            assert!(v > 0.0);
        }
    }

    #[test]
    fn cross_check_clears_an_honest_class() {
        let g = ChimeraGraph::new(2, 2);
        let res = run_class(&g, 2, 2, &fast_cfg());
        let audit = cross_check_class(&g, &res, Duration::from_millis(200));
        assert_eq!(audit.audited, 2, "toy instances must all be provable");
        assert_eq!(audit.skipped_unproven, 0);
        assert!(audit.violations.is_empty(), "{:?}", audit.violations);
    }

    #[test]
    fn cross_check_flags_costs_below_the_proven_optimum() {
        let g = ChimeraGraph::new(2, 2);
        let mut res = run_class(&g, 2, 1, &fast_cfg());
        let inst = &mut res.instances[0];
        let mut forged = Trace::new();
        forged.record(Duration::from_millis(1), inst.best_known - 10.0);
        inst.runs.push(AlgoRun {
            name: "FORGED".to_string(),
            trace: forged,
            proved_optimal: false,
            resilience: None,
        });
        inst.best_known -= 10.0;
        let audit = cross_check_class(&g, &res, Duration::from_millis(200));
        assert_eq!(audit.audited, 1);
        assert_eq!(audit.violations.len(), 2, "{:?}", audit.violations);
        assert!(audit.violations[0].contains("best_known anchor"));
        assert!(audit.violations[1].contains("FORGED"));
    }

    #[test]
    fn machines_have_the_documented_scale() {
        assert_eq!(paper_machine().num_working_qubits(), 1097);
        let small = small_machine();
        assert_eq!(small.num_qubits(), 128);
        assert_eq!(small.num_working_qubits(), 122);
    }
}
