//! The six competitors of the paper's evaluation (Section 7.1), each wrapped
//! to produce a comparable cost-over-time [`Trace`]:
//!
//! * `LIN-MQO` — branch-and-bound on the direct MQO formulation (wall time);
//! * `LIN-QUB` — branch-and-bound on the QUBO derived from the instance
//!   (wall time; trace values are energies shifted back by the constant
//!   offset, so valid incumbents read as true MQO costs and invalid interim
//!   incumbents carry their penalty surcharge, which is exactly the
//!   handicap the paper attributes to the QUBO detour);
//! * `QA` — Algorithm 1 on the simulated annealer (simulated device time);
//! * `CLIMB`, `GA(50)`, `GA(200)` — the randomised heuristics (wall time).

use mqo::pipeline::{QuantumMqoOutcome, QuantumMqoSolver, ResilienceConfig};
use mqo_annealer::behavioral::{BehavioralConfig, BehavioralSampler};
use mqo_annealer::device::{DeviceConfig, QuantumAnnealer};
use mqo_annealer::faults::FaultConfig;
use mqo_chimera::graph::ChimeraGraph;
use mqo_core::logical::LogicalMapping;
use mqo_core::problem::MqoProblem;
use mqo_core::trace::Trace;
use mqo_heuristics::{AnytimeHeuristic, GeneticAlgorithm, HillClimbing};
use mqo_milp::{bb_mqo, bb_qubo, MqoBbConfig, QuboBbConfig, StopReason};
use mqo_workload::paper::PaperInstance;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// One competitor's result on one instance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AlgoRun {
    /// Figure label (`LIN-MQO`, `QA`, …).
    pub name: String,
    /// Best-so-far cost over time (wall time for classical algorithms,
    /// simulated device time for `QA`).
    pub trace: Trace,
    /// Whether an exact solver proved optimality within budget.
    pub proved_optimal: bool,
    /// Fault/resilience accounting — `Some` only for the `QA` track.
    #[serde(default)]
    pub resilience: Option<ResilienceSummary>,
}

/// Flattened fault and resilience counters of one QA run, sized for CSV.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ResilienceSummary {
    /// Total reads across all device runs.
    pub reads: usize,
    /// Reads with at least one broken chain.
    pub broken_chain_reads: usize,
    /// Reads whose decoded selection needed repair.
    pub repaired_reads: usize,
    /// Reads whose decoded selection was feasible as sampled.
    #[serde(default)]
    pub verified_clean_reads: usize,
    /// Greedy-descent moves spent polishing repaired reads.
    #[serde(default)]
    pub repair_descent_moves: usize,
    /// Broken chains resolved by a strict majority vote (final run).
    #[serde(default)]
    pub chain_majority_repairs: usize,
    /// Even-length chain ties resolved by the pinned rule (final run).
    #[serde(default)]
    pub chain_tie_breaks: usize,
    /// Mean per-read-per-chain break rate of the final run.
    pub chain_break_rate: f64,
    /// Break rate of the worst single chain in the final run.
    pub max_chain_break_rate: f64,
    /// Qubits that dropped dead during the run(s).
    pub dropped_qubits: usize,
    /// Readout bits flipped by injected noise.
    pub readout_flips: usize,
    /// Reads replaced wholesale by garbage.
    pub stuck_reads: usize,
    /// Rejected gauge programmings (including retried runs).
    pub programming_rejects: usize,
    /// Full device re-runs after rejected programmings.
    pub retries: usize,
    /// Re-embedding rounds after qubit dropout.
    pub reembeds: usize,
    /// Whether the classical fallback produced the final answer.
    pub fallback: bool,
}

impl ResilienceSummary {
    /// Flattens a pipeline outcome into the CSV-ready counters.
    pub fn from_outcome(out: &QuantumMqoOutcome) -> Self {
        ResilienceSummary {
            reads: out.reads,
            broken_chain_reads: out.broken_chain_reads,
            repaired_reads: out.repaired_reads,
            verified_clean_reads: out.integrity.verified_clean,
            repair_descent_moves: out.repair_descent_moves,
            chain_majority_repairs: out.chain_breaks.majority_repairs,
            chain_tie_breaks: out.chain_breaks.tie_breaks,
            chain_break_rate: out.chain_breaks.break_rate(),
            max_chain_break_rate: out.chain_breaks.max_chain_break_rate(),
            dropped_qubits: out.faults.dropped_qubits.len(),
            readout_flips: out.faults.readout_flips,
            stuck_reads: out.faults.stuck_reads,
            programming_rejects: out.faults.programming_rejects,
            retries: out.retries,
            reembeds: out.reembeds,
            fallback: out.fallback,
        }
    }
}

/// Shared experiment parameters.
#[derive(Debug, Clone, Copy)]
pub struct CompetitorConfig {
    /// Wall-clock budget for each classical algorithm.
    pub classical_budget: Duration,
    /// Annealing reads for the QA track (paper: 1000).
    pub qa_reads: usize,
    /// Gauge batches (paper: 10).
    pub qa_gauges: usize,
    /// Relative control-error noise of the device model.
    pub qa_noise: f64,
    /// Thermal-equilibration sweeps per read of the behavioural back-end.
    pub qa_sweeps: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Worker threads for device reads and harness instances
    /// (`0` = available parallelism). Device results are identical at any
    /// value; classical competitors are timed on the wall clock, so heavy
    /// oversubscription can stretch their traces.
    pub threads: usize,
    /// Fault model injected into the QA device (inert by default).
    pub faults: FaultConfig,
    /// Resilience policy of the QA pipeline.
    pub resilience: ResilienceConfig,
}

impl Default for CompetitorConfig {
    fn default() -> Self {
        CompetitorConfig {
            classical_budget: Duration::from_secs(2),
            qa_reads: 1000,
            qa_gauges: 10,
            qa_noise: 0.0025,
            qa_sweeps: 8,
            seed: 0,
            threads: 0,
            faults: FaultConfig::NONE,
            resilience: ResilienceConfig::default(),
        }
    }
}

/// LIN-MQO: exact anytime B&B on the MQO formulation.
pub fn run_lin_mqo(problem: &MqoProblem, cfg: &CompetitorConfig) -> AlgoRun {
    let out = bb_mqo::solve(
        problem,
        &MqoBbConfig {
            deadline: Some(cfg.classical_budget),
            lp_var_limit: 0, // root LP is a separate ablation; keep runs lean
            ..MqoBbConfig::default()
        },
    );
    AlgoRun {
        name: "LIN-MQO".to_string(),
        trace: out.trace,
        proved_optimal: out.stop == StopReason::Optimal,
        resilience: None,
    }
}

/// LIN-QUB: exact anytime B&B on the QUBO reformulation.
pub fn run_lin_qub(problem: &MqoProblem, cfg: &CompetitorConfig) -> AlgoRun {
    let mapping = LogicalMapping::with_default_epsilon(problem);
    let out = bb_qubo::solve(
        mapping.qubo(),
        &QuboBbConfig {
            deadline: Some(cfg.classical_budget),
            ..QuboBbConfig::default()
        },
    );
    // Shift energies back to the MQO cost scale.
    let mut trace = Trace::new();
    for p in out.trace.points() {
        trace.record(p.elapsed, p.value - mapping.energy_offset());
    }
    AlgoRun {
        name: "LIN-QUB".to_string(),
        trace,
        proved_optimal: out.stop == StopReason::Optimal,
        resilience: None,
    }
}

/// QA: Algorithm 1 on the simulated D-Wave 2X with the calibrated
/// behavioural back-end — the physics back-ends (PIQMC, SA) reproduce
/// hardware behaviour only at small scale and are kept for the sampler
/// ablation (see the `calibrate`/`probe` binaries and DESIGN.md). Reuses
/// the instance's own clustered embedding; panics if the instance does not
/// embed (the paper generator guarantees it does).
pub fn run_qa(instance: &PaperInstance, graph: &ChimeraGraph, cfg: &CompetitorConfig) -> AlgoRun {
    let device = QuantumAnnealer::new(
        DeviceConfig {
            num_reads: cfg.qa_reads,
            num_gauges: cfg.qa_gauges,
            control_error: mqo_annealer::noise::ControlErrorModel::new(cfg.qa_noise),
            threads: cfg.threads,
            faults: cfg.faults,
            ..DeviceConfig::default()
        },
        BehavioralSampler::new(BehavioralConfig {
            read_sweeps: cfg.qa_sweeps,
            ..BehavioralConfig::default()
        }),
    );
    let solver = QuantumMqoSolver::new(graph.clone(), device).with_resilience(cfg.resilience);
    let out = solver
        .solve_with_embedding(
            &instance.problem,
            instance.layout.embedding.clone(),
            cfg.seed,
        )
        .expect("paper instances embed on their own graph");
    AlgoRun {
        name: "QA".to_string(),
        resilience: Some(ResilienceSummary::from_outcome(&out)),
        trace: out.trace,
        proved_optimal: false,
    }
}

/// CLIMB / GA(50) / GA(200).
pub fn run_heuristic(
    problem: &MqoProblem,
    heuristic: &dyn AnytimeHeuristic,
    cfg: &CompetitorConfig,
) -> AlgoRun {
    let out = heuristic.run(problem, cfg.classical_budget, cfg.seed);
    AlgoRun {
        name: heuristic.name(),
        trace: out.trace,
        proved_optimal: false,
        resilience: None,
    }
}

/// Runs all six competitors of Figures 4 and 5 on one instance.
pub fn run_all(
    instance: &PaperInstance,
    graph: &ChimeraGraph,
    cfg: &CompetitorConfig,
) -> Vec<AlgoRun> {
    let p = &instance.problem;
    vec![
        run_lin_mqo(p, cfg),
        run_lin_qub(p, cfg),
        run_qa(instance, graph, cfg),
        run_heuristic(p, &HillClimbing, cfg),
        run_heuristic(p, &GeneticAlgorithm::with_population(50), cfg),
        run_heuristic(p, &GeneticAlgorithm::with_population(200), cfg),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqo_workload::paper::{self, PaperWorkloadConfig};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn tiny_instance() -> (PaperInstance, ChimeraGraph) {
        let graph = ChimeraGraph::new(2, 2);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let inst = paper::generate(&graph, &PaperWorkloadConfig::paper_class(2), &mut rng)
            .expect("toy graph hosts the paper class");
        (inst, graph)
    }

    fn fast_cfg() -> CompetitorConfig {
        CompetitorConfig {
            classical_budget: Duration::from_millis(60),
            qa_reads: 60,
            qa_gauges: 6,
            seed: 1,
            ..CompetitorConfig::default()
        }
    }

    #[test]
    fn all_six_competitors_produce_traces_with_consistent_costs() {
        let (inst, graph) = tiny_instance();
        let cfg = fast_cfg();
        let runs = run_all(&inst, &graph, &cfg);
        assert_eq!(runs.len(), 6);
        let names: Vec<&str> = runs.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(
            names,
            ["LIN-MQO", "LIN-QUB", "QA", "CLIMB", "GA(50)", "GA(200)"]
        );
        // On a 16-query toy instance every competitor should land on (or
        // near) the same optimum; LIN-MQO proves it.
        let lin = &runs[0];
        assert!(lin.proved_optimal);
        let opt = lin.trace.best().unwrap();
        for r in &runs {
            let best = r.trace.best().expect("non-empty trace");
            assert!(
                best >= opt - 1e-9,
                "{} reported {best}, below the proved optimum {opt}",
                r.name
            );
            assert!(
                best <= opt + opt.abs() * 0.5 + 5.0,
                "{} stayed far from optimum: {best} vs {opt}",
                r.name
            );
        }
    }

    #[test]
    fn qa_trace_lives_on_the_device_time_axis() {
        let (inst, graph) = tiny_instance();
        let runs = run_qa(&inst, &graph, &fast_cfg());
        let first = runs.trace.points().first().unwrap();
        assert!(first.elapsed <= Duration::from_millis(1));
        assert_eq!(first.elapsed, Duration::from_secs_f64(376e-6));
    }

    #[test]
    fn qa_reports_resilience_counters_and_classical_tracks_do_not() {
        let (inst, graph) = tiny_instance();
        let cfg = fast_cfg();
        assert!(run_lin_mqo(&inst.problem, &cfg).resilience.is_none());
        let clean = run_qa(&inst, &graph, &cfg);
        let summary = clean.resilience.expect("QA always reports a summary");
        assert_eq!(summary.reads, cfg.qa_reads);
        assert_eq!(summary.dropped_qubits + summary.readout_flips, 0);
        assert!(!summary.fallback);
        // Integrity accounting partitions the reads exactly.
        assert_eq!(
            summary.verified_clean_reads + summary.repaired_reads,
            summary.reads
        );
        // A clean (fault-free) device run must not break chains.
        assert_eq!(summary.chain_majority_repairs + summary.chain_tie_breaks, 0);

        let faulty = run_qa(
            &inst,
            &graph,
            &CompetitorConfig {
                faults: FaultConfig {
                    readout_flip_rate: 0.05,
                    ..FaultConfig::NONE
                },
                ..cfg
            },
        );
        let summary = faulty.resilience.expect("QA always reports a summary");
        assert!(summary.readout_flips > 0, "5% flips over 60 reads must hit");
        assert!(!faulty.trace.points().is_empty());
    }

    #[test]
    fn lin_qub_trace_is_on_the_mqo_cost_scale() {
        // Single cell → 4 queries × 2 plans: small enough that the QUBO B&B
        // (whose penalty-laden bound is deliberately weak, cf. the paper's
        // LIN-QUB observations) converges within the test budget.
        let graph = ChimeraGraph::new(1, 1);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let inst = paper::generate(&graph, &PaperWorkloadConfig::paper_class(2), &mut rng)
            .expect("single cell hosts the paper class");
        let cfg = fast_cfg();
        let qub = run_lin_qub(&inst.problem, &cfg);
        let mqo = run_lin_mqo(&inst.problem, &cfg);
        // Both exact solvers must agree on the final cost for a toy
        // instance (QUBO optimum decodes to the MQO optimum).
        assert!(
            (qub.trace.best().unwrap() - mqo.trace.best().unwrap()).abs() < 1e-6,
            "{} vs {}",
            qub.trace.best().unwrap(),
            mqo.trace.best().unwrap()
        );
    }
}
