//! `loadgen` — replays paper-workload request streams against `mqo_serve`
//! and reports throughput plus p50/p99 latency, split by cache hit/miss.
//!
//! ```text
//! loadgen [--addr HOST:PORT] [--requests N] [--clients C] [--structures S]
//!         [--plans P] [--reads N] [--seed S] [--small]
//!         [--keep-alive] [--pipeline N] [--retry N]
//!         [--mixed-sizes] [--tenants T]
//!         [--chaos-seed N] [--chaos-panic-rate F] [--chaos-kill-rate F]
//!         [--chaos-backend-failure-rate F] [--chaos-corruption-rate F]
//!         [--chaos-conn-abort-rate F] [--chaos-slow-rate F]
//!         [--breaker-threshold N] [--breaker-open-ms N]
//! ```
//!
//! Without `--addr` the harness self-hosts a server on a loopback port,
//! so a single invocation produces the full ISSUE-3 acceptance report:
//! repeated identical-structure requests must show up as cache hits with
//! measurably lower latency than the cold (embedding) requests.
//!
//! Chaos mode (ISSUE-5): the server-side `--chaos-*` rates inject worker
//! panics/deaths and backend failures (self-host only — against `--addr`
//! pass the same flags to `mqo_serve` itself); the client-side
//! `--chaos-conn-abort-rate` and `--chaos-slow-rate` abort or trickle a
//! deterministic subset of connections. All schedules are keyed on the
//! request index via the shared SplitMix64 chaos streams, so a fixed
//! `(--chaos-seed, --requests)` pair aborts exactly the same requests at
//! any `--clients` count. Under chaos the run asserts a clean drain:
//! every request ends as a solve, a typed error, or a deliberate abort.
//!
//! Packing mode (ISSUE-8): `--mixed-sizes` cycles the structures through
//! the paper's plan classes 2–5 (at one or two queries each) so request
//! footprints vary from one Chimera cell to several; `--tenants T`
//! self-hosts with chip packing enabled and up to `T` tenants per
//! programming cycle. The report gains a `packing` section — packed
//! batches, tenants packed, placer declines, and occupancy in tenants per
//! cycle — and a clean self-hosted run with a backlog asserts occupancy
//! exceeded 1.0.
//!
//! Keep-alive mode (ISSUE-9): `--keep-alive` gives every client thread one
//! persistent HTTP/1.1 connection for its whole request stream, and
//! `--pipeline N` (implies keep-alive) writes N requests back-to-back
//! before reading the N responses. Connect time is measured separately
//! from request time in both modes — the latency percentiles cover the
//! request/response exchange only, and the report carries a `connect`
//! section (count, mean, p50/p99) so connection churn is visible instead
//! of smeared into the solve latencies.
//!
//! Fleet mode (ISSUE-10): point `--addr` at an `mqo_router` front and pass
//! `--retry N` to give every request a client-side replay budget. Shed or
//! failed requests (429/5xx, or a reset connection from a cell dying
//! mid-solve) are re-sent — honouring the server's `Retry-After` header,
//! capped at 2 s — and the report gains a `failover` block, separate from
//! the error ledger: client retries, how many waits honoured `Retry-After`,
//! how many requests completed only after a retry, plus the router-side
//! failover/respawn/cache counters scraped from `/metrics`. Because solves
//! are deterministic by `(problem, seed)`, retries are idempotent; a run
//! with retries still asserts the zero-loss books — every request ends as
//! exactly one final outcome.
//!
//! Integrity mode (ISSUE-7): `--chaos-corruption-rate` mangles a
//! deterministic subset of successful answers at the server's API
//! boundary. The report surfaces the integrity and chain-repair counters,
//! and a self-hosted run asserts the books reconcile — every injected
//! corruption was flagged and repaired or rejected; a fault-free run
//! asserts those counters are exactly zero.

use mqo_chimera::graph::ChimeraGraph;
use mqo_service::chaos::{chaos_roll, ChaosConfig, STREAM_CHAOS_CONN};
use mqo_service::engine::EngineConfig;
use mqo_service::http::{read_response, render_request, roundtrip, KeepAliveClient};
use mqo_service::server::{Server, ServerConfig};
use mqo_workload::paper::{self, PaperWorkloadConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeMap;
use std::io::Write;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

struct Options {
    addr: Option<String>,
    requests: usize,
    clients: usize,
    structures: usize,
    plans: usize,
    reads: usize,
    seed: u64,
    small: bool,
    keep_alive: bool,
    pipeline: usize,
    retry: u32,
    mixed_sizes: bool,
    tenants: usize,
    chaos: ChaosConfig,
    conn_abort_rate: f64,
    slow_rate: f64,
    breaker_threshold: u32,
    breaker_open_ms: u64,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            addr: None,
            requests: 64,
            clients: 4,
            structures: 4,
            plans: 2,
            reads: 50,
            seed: 7,
            small: true,
            keep_alive: false,
            pipeline: 1,
            retry: 0,
            mixed_sizes: false,
            tenants: 0,
            chaos: ChaosConfig::NONE,
            conn_abort_rate: 0.0,
            slow_rate: 0.0,
            breaker_threshold: 5,
            breaker_open_ms: 1_000,
        }
    }
}

impl Options {
    /// Whether any chaos — server- or client-side — is active.
    fn chaos_active(&self) -> bool {
        !self.chaos.is_inert() || self.conn_abort_rate > 0.0 || self.slow_rate > 0.0
    }
}

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("loadgen: {msg}");
    std::process::exit(2);
}

fn parse_options() -> Options {
    let mut opts = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| fail(format!("{flag} needs a value")))
        };
        fn num<T: std::str::FromStr>(v: String, flag: &str) -> T {
            v.parse()
                .unwrap_or_else(|_| fail(format!("{flag}: cannot parse {v:?}")))
        }
        match flag.as_str() {
            "--addr" => opts.addr = Some(value("--addr")),
            "--requests" => opts.requests = num(value("--requests"), "--requests"),
            "--clients" => opts.clients = num(value("--clients"), "--clients"),
            "--structures" => opts.structures = num(value("--structures"), "--structures"),
            "--plans" => opts.plans = num(value("--plans"), "--plans"),
            "--reads" => opts.reads = num(value("--reads"), "--reads"),
            "--seed" => opts.seed = num(value("--seed"), "--seed"),
            "--small" => opts.small = true,
            "--full" => opts.small = false,
            "--keep-alive" => opts.keep_alive = true,
            "--pipeline" => {
                opts.pipeline = num(value("--pipeline"), "--pipeline");
                opts.keep_alive = true;
            }
            "--retry" => opts.retry = num(value("--retry"), "--retry"),
            "--mixed-sizes" => opts.mixed_sizes = true,
            "--tenants" => opts.tenants = num(value("--tenants"), "--tenants"),
            "--chaos-seed" => opts.chaos.seed = num(value("--chaos-seed"), "--chaos-seed"),
            "--chaos-panic-rate" => {
                opts.chaos.worker_panic_rate =
                    num(value("--chaos-panic-rate"), "--chaos-panic-rate")
            }
            "--chaos-kill-rate" => {
                opts.chaos.worker_kill_rate = num(value("--chaos-kill-rate"), "--chaos-kill-rate")
            }
            "--chaos-backend-failure-rate" => {
                opts.chaos.backend_failure_rate = num(
                    value("--chaos-backend-failure-rate"),
                    "--chaos-backend-failure-rate",
                )
            }
            "--chaos-corruption-rate" => {
                opts.chaos.sample_corruption_rate =
                    num(value("--chaos-corruption-rate"), "--chaos-corruption-rate")
            }
            "--chaos-conn-abort-rate" => {
                opts.conn_abort_rate =
                    num(value("--chaos-conn-abort-rate"), "--chaos-conn-abort-rate")
            }
            "--chaos-slow-rate" => {
                opts.slow_rate = num(value("--chaos-slow-rate"), "--chaos-slow-rate")
            }
            "--breaker-threshold" => {
                opts.breaker_threshold = num(value("--breaker-threshold"), "--breaker-threshold")
            }
            "--breaker-open-ms" => {
                opts.breaker_open_ms = num(value("--breaker-open-ms"), "--breaker-open-ms")
            }
            "--help" | "-h" => {
                println!(
                    "loadgen: replay paper-workload streams against mqo_serve\n\
                     --addr HOST:PORT  target an already-running server (default: self-host)\n\
                     --requests N      total requests to send (64)\n\
                     --clients C       concurrent client threads (4)\n\
                     --structures S    distinct instance structures cycled through (4)\n\
                     --plans P         plans per query of the paper class (2)\n\
                     --reads N         annealing reads per request (50)\n\
                     --seed S          workload generator seed (7)\n\
                     --small           4-cell Chimera graph [default]\n\
                     --full            12x12 D-Wave 2X graph\n\
                     --keep-alive      one persistent connection per client thread\n\
                     --pipeline N      pipeline N requests per write (implies --keep-alive)\n\
                     --retry N         client-side replays per shed/failed request (0)\n\
                     --mixed-sizes     cycle structures through paper classes 2-5 plans\n\
                     --tenants T       self-host with chip packing, up to T tenants/cycle (0 = off)\n\
                     --chaos-seed N    seed of all chaos streams (0)\n\
                     --chaos-panic-rate F    server: worker panic probability (0, self-host)\n\
                     --chaos-kill-rate F     server: worker death probability (0, self-host)\n\
                     --chaos-backend-failure-rate F  server: backend failure probability (0)\n\
                     --chaos-corruption-rate F  server: answer corruption probability (0)\n\
                     --chaos-conn-abort-rate F  client: abort connection mid-request (0)\n\
                     --chaos-slow-rate F        client: trickle the request slowly (0)\n\
                     --breaker-threshold N      self-host breaker threshold (5)\n\
                     --breaker-open-ms N        self-host breaker cooling period (1000)"
                );
                std::process::exit(0);
            }
            other => fail(format!("unknown flag {other} (try --help)")),
        }
    }
    if opts.requests == 0 || opts.clients == 0 || opts.structures == 0 || opts.pipeline == 0 {
        fail("--requests, --clients, --structures, and --pipeline must be positive");
    }
    if opts.chaos.validate().is_err()
        || !(0.0..=1.0).contains(&opts.conn_abort_rate)
        || !(0.0..=1.0).contains(&opts.slow_rate)
    {
        fail("chaos rates must lie in [0, 1]");
    }
    opts
}

fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = ((sorted_us.len() as f64 - 1.0) * p).round() as usize;
    sorted_us[rank.min(sorted_us.len() - 1)]
}

fn mean(us: &[u64]) -> f64 {
    if us.is_empty() {
        return 0.0;
    }
    us.iter().sum::<u64>() as f64 / us.len() as f64
}

/// What one replayed request ended as. Anything outside these three states
/// (an I/O error on a connection chaos did not abort) is a lost request and
/// fails the run.
enum Outcome {
    /// 200 with a solve body; latency and cache-hit flag recorded.
    Solved { latency_us: u64, cache_hit: bool },
    /// A typed non-200 rejection (`reason` tag from the JSON body).
    TypedError { status: u16 },
    /// Deliberately aborted by client-side chaos before completion.
    Aborted,
}

/// Opens a raw connection and writes roughly half the request, then drops
/// it — the deterministic "client died mid-request" probe. The server must
/// shrug (no thread leak, no panic) and move on.
fn abort_mid_request(addr: SocketAddr, raw: &[u8]) {
    if let Ok(mut stream) = std::net::TcpStream::connect(addr) {
        let half = raw.len() / 2;
        let _ = stream.write_all(&raw[..half]);
        let _ = stream.flush();
        // Dropping the stream closes the socket mid-request.
    }
}

/// Full request bytes for a manual (non-`roundtrip`) send.
fn raw_request(addr: SocketAddr, body: &[u8]) -> Vec<u8> {
    let mut raw = format!(
        "POST /solve HTTP/1.1\r\nhost: {addr}\r\ncontent-type: application/json\r\n\
         content-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    )
    .into_bytes();
    raw.extend_from_slice(body);
    raw
}

/// Outcome of one `connection: close` exchange:
/// `(status, body, connect_us, request_us, retry_after_secs)`.
type CloseRoundtrip = (u16, Vec<u8>, u64, u64, Option<u64>);

/// One `connection: close` exchange with the connect cost measured
/// separately from the request/response exchange.
fn close_roundtrip(addr: SocketAddr, body: &[u8]) -> std::io::Result<CloseRoundtrip> {
    use std::io::BufReader;
    let connecting = Instant::now();
    let mut stream = std::net::TcpStream::connect(addr)?;
    let connect_us = connecting.elapsed().as_micros() as u64;
    stream.set_nodelay(true)?;
    let sent = Instant::now();
    stream.write_all(&render_request(
        "POST",
        "/solve",
        &addr.to_string(),
        body,
        true,
    ))?;
    let mut reader = BufReader::new(stream);
    let parts = read_response(&mut reader)?;
    Ok((
        parts.status,
        parts.body,
        connect_us,
        sent.elapsed().as_micros() as u64,
        parts.retry_after,
    ))
}

/// Client-side replay accounting, reported as the `failover` block —
/// deliberately separate from the error ledger: a retried-then-solved
/// request is a success with a story, not an error.
#[derive(Default)]
struct FailoverStats {
    /// Replays issued (each extra attempt counts once).
    retries: AtomicU64,
    /// Replays whose pause came from a server `Retry-After` header.
    retry_after_honored: AtomicU64,
    /// Requests that ended 200 only after at least one replay.
    completed_after_retry: AtomicU64,
}

/// Whether a status is worth replaying against an idempotent fleet:
/// solves are deterministic by `(problem, seed)`, so re-sending a shed or
/// failed request cannot change the answer it eventually gets.
fn retryable(status: u16) -> bool {
    matches!(status, 429 | 500 | 503 | 504)
}

/// One request with up to `retries` client-side replays beyond the
/// attempts already spent (`prior_attempts`, for keep-alive hand-offs).
/// Pauses between attempts honour the server's `Retry-After` (capped at
/// 2 s); transport errors replay too — a cell dying mid-solve resets the
/// connection rather than answering.
fn send_with_retry(
    addr: SocketAddr,
    body: &[u8],
    retries: u32,
    prior_attempts: u32,
    stats: &FailoverStats,
) -> std::io::Result<(u16, Vec<u8>, u64, u64)> {
    let mut attempt = prior_attempts;
    loop {
        let pause = |after: Option<u64>| match after {
            Some(secs) => {
                stats.retry_after_honored.fetch_add(1, Ordering::Relaxed);
                Duration::from_secs(secs).min(Duration::from_secs(2))
            }
            None => Duration::from_millis(50),
        };
        match close_roundtrip(addr, body) {
            Ok((status, reply, connect_us, latency_us, retry_after)) => {
                if retryable(status) && attempt < retries {
                    attempt += 1;
                    stats.retries.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(pause(retry_after));
                    continue;
                }
                if status == 200 && attempt > 0 {
                    stats.completed_after_retry.fetch_add(1, Ordering::Relaxed);
                }
                return Ok((status, reply, connect_us, latency_us));
            }
            Err(_) if attempt < retries => {
                attempt += 1;
                stats.retries.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(pause(None));
            }
            Err(e) => return Err(e),
        }
    }
}

/// Maps one `(status, reply)` exchange to an [`Outcome`], failing the run
/// on anything that is neither a 200 solve nor (under chaos) a typed
/// rejection with a `reason` tag.
fn classify(i: usize, status: u16, reply: &[u8], latency_us: u64, chaos_active: bool) -> Outcome {
    if status == 200 {
        let v: serde_json::Value = serde_json::from_slice(reply).unwrap_or_else(|e| fail(e));
        Outcome::Solved {
            latency_us,
            cache_hit: v["cache_hit"].as_bool().unwrap_or(false),
        }
    } else if chaos_active {
        // Under chaos, typed rejections are expected outcomes; an untyped
        // body would mean the error path lost its shape.
        let v: serde_json::Value = serde_json::from_slice(reply)
            .unwrap_or_else(|e| fail(format!("request {i}: untyped {status}: {e}")));
        if v["reason"].as_str().is_none() {
            fail(format!("request {i}: status {status} without a reason tag"));
        }
        Outcome::TypedError { status }
    } else {
        fail(format!(
            "request {i}: status {status}: {}",
            String::from_utf8_lossy(reply)
        ))
    }
}

/// Sends the request a few bytes at a time (a cooperative slowloris that
/// stays inside the server's request deadline), then reads the response.
fn slow_roundtrip(addr: SocketAddr, raw: &[u8]) -> std::io::Result<(u16, Vec<u8>)> {
    use std::io::{BufRead, BufReader, Read};
    let mut stream = std::net::TcpStream::connect(addr)?;
    for chunk in raw.chunks(32) {
        stream.write_all(chunk)?;
        stream.flush()?;
        std::thread::sleep(Duration::from_millis(1));
    }
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status line"))?;
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            break;
        }
        if header.trim_end().is_empty() {
            break;
        }
        if let Some((name, v)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = v.trim().parse().unwrap_or(0);
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok((status, body))
}

fn main() {
    let opts = parse_options();
    let graph = if opts.small {
        ChimeraGraph::new(2, 2)
    } else {
        ChimeraGraph::dwave_2x()
    };

    // Distinct structures: vary the sharing pattern per generator seed so
    // the cache sees `structures` different keys, each repeated
    // `requests / structures` times. With `--mixed-sizes` the structures
    // additionally cycle through the paper's plan classes 2–5 at one or two
    // queries each — the size mix the chip-packing placer sees in practice.
    let mut problems = Vec::new();
    for s in 0..opts.structures {
        let cfg = if opts.mixed_sizes {
            PaperWorkloadConfig {
                sharing_probability: 0.6,
                max_queries: 1 + (s / 4) % 2,
                ..PaperWorkloadConfig::paper_class(2 + s % 4)
            }
        } else {
            PaperWorkloadConfig {
                sharing_probability: 0.6,
                max_queries: 4,
                ..PaperWorkloadConfig::paper_class(opts.plans)
            }
        };
        let mut rng = ChaCha8Rng::seed_from_u64(opts.seed.wrapping_add(s as u64));
        let inst = paper::generate(&graph, &cfg, &mut rng).unwrap_or_else(|e| fail(e));
        problems.push(inst.problem);
    }
    // Request i replays structure i % S under seed base+i: distinct seeds
    // give the server-side chaos streams (keyed on request seed) a distinct
    // roll per request, so fault schedules are index-deterministic.
    let bodies: Vec<Vec<u8>> = (0..opts.requests)
        .map(|i| {
            let mut req = mqo_service::api::SolveRequest::new(
                problems[i % problems.len()].clone(),
                opts.seed.wrapping_add(i as u64),
            );
            req.reads = Some(opts.reads);
            serde_json::to_string(&req)
                .unwrap_or_else(|e| fail(e))
                .into_bytes()
        })
        .collect();

    // Self-host unless an address was given.
    let (server, addr): (Option<Server>, SocketAddr) = match &opts.addr {
        Some(a) => (None, a.parse().unwrap_or_else(|e| fail(e))),
        None => {
            // With packing, host on a chip large enough to co-locate
            // several mixed-size tenants even when structures were
            // generated against the small graph.
            let host_graph = if opts.tenants > 0 && opts.small {
                ChimeraGraph::new(4, 4)
            } else {
                graph.clone()
            };
            let mut engine = EngineConfig::new(host_graph);
            engine.chaos = opts.chaos;
            engine.breaker.failure_threshold = opts.breaker_threshold;
            engine.breaker.open_ms = opts.breaker_open_ms;
            if opts.tenants > 0 {
                engine.packing = true;
                engine.packing_max_tenants = opts.tenants.max(2);
            }
            let mut config = ServerConfig::new(engine);
            config.addr = "127.0.0.1:0".to_string();
            if opts.tenants > 0 {
                // Few workers over a deep claim window: backlogs form while
                // a cycle runs, so the next claim packs several tenants.
                config.queue.workers = 2;
                config.queue.batch_size = config.queue.batch_size.max(opts.tenants);
            } else {
                config.queue.workers = opts.clients.max(2);
            }
            let server = Server::start(config).unwrap_or_else(|e| fail(e));
            let addr = server.local_addr();
            (Some(server), addr)
        }
    };

    // Replay: `clients` threads pull request indices off a shared counter,
    // so the stream interleaves structures exactly like round-robin
    // arrivals.
    let chaos_active = opts.chaos_active();
    let chaos_seed = opts.chaos.seed;
    let (abort_rate, slow_rate) = (opts.conn_abort_rate, opts.slow_rate);
    let keep_alive = opts.keep_alive;
    let pipeline = opts.pipeline.max(1);
    let retry = opts.retry;
    let bodies = Arc::new(bodies);
    let next = Arc::new(AtomicUsize::new(0));
    let outcomes = Arc::new(Mutex::new(Vec::new()));
    let connects = Arc::new(Mutex::new(Vec::new()));
    let failover_stats = Arc::new(FailoverStats::default());
    let started = Instant::now();
    let mut handles = Vec::new();
    for _ in 0..opts.clients {
        let bodies = Arc::clone(&bodies);
        let next = Arc::clone(&next);
        let outcomes = Arc::clone(&outcomes);
        let connects = Arc::clone(&connects);
        let failover_stats = Arc::clone(&failover_stats);
        let total = opts.requests;
        handles.push(std::thread::spawn(move || {
            // In keep-alive mode each client thread holds one persistent
            // connection for its whole stream; chaos aborts/slowloris still
            // run on dedicated throwaway sockets so they never poison it.
            let mut client = keep_alive.then(|| KeepAliveClient::new(addr));
            loop {
                let base = next.fetch_add(pipeline, Ordering::Relaxed);
                if base >= total {
                    return;
                }
                let end = (base + pipeline).min(total);
                let mut batch = Vec::new();
                for i in base..end {
                    // Client-side chaos rolls, keyed on the request index —
                    // the same requests abort at any client-thread count.
                    let aborts = abort_rate > 0.0
                        && chaos_roll(chaos_seed, STREAM_CHAOS_CONN, i as u64, 0) < abort_rate;
                    let slow = slow_rate > 0.0
                        && chaos_roll(chaos_seed, STREAM_CHAOS_CONN, i as u64, 1) < slow_rate;
                    if aborts {
                        abort_mid_request(addr, &raw_request(addr, &bodies[i]));
                        outcomes.lock().unwrap().push((i, Outcome::Aborted));
                    } else if slow {
                        let sent = Instant::now();
                        let (status, reply) = slow_roundtrip(addr, &raw_request(addr, &bodies[i]))
                            .unwrap_or_else(|e| fail(format!("request {i}: {e}")));
                        let latency_us = sent.elapsed().as_micros() as u64;
                        let outcome = classify(i, status, &reply, latency_us, chaos_active);
                        outcomes.lock().unwrap().push((i, outcome));
                    } else {
                        batch.push(i);
                    }
                }
                if batch.is_empty() {
                    continue;
                }
                if let Some(client) = client.as_mut() {
                    let reqs: Vec<(&str, &str, &[u8])> = batch
                        .iter()
                        .map(|&i| ("POST", "/solve", bodies[i].as_slice()))
                        .collect();
                    let connects_before = client.connects();
                    let sent = Instant::now();
                    let responses = client
                        .request_batch(&reqs)
                        .unwrap_or_else(|e| fail(format!("requests {base}..{end}: {e}")));
                    let mut elapsed = sent.elapsed().as_micros() as u64;
                    if client.connects() > connects_before {
                        // A (re)connect happened inside this call: book it
                        // separately and keep it out of the request latency.
                        let connect_us = client.last_connect_us();
                        connects.lock().unwrap().push(connect_us);
                        elapsed = elapsed.saturating_sub(connect_us);
                    }
                    // Pipelined responses share the batch wall clock; book
                    // the amortised per-request latency.
                    let per_request = elapsed / responses.len().max(1) as u64;
                    for (&i, (status, reply)) in batch.iter().zip(&responses) {
                        if retry > 0 && retryable(*status) {
                            // The keep-alive attempt already failed once:
                            // hand the request to the replay path with that
                            // attempt on the books.
                            failover_stats.retries.fetch_add(1, Ordering::Relaxed);
                            let (status, reply, connect_us, latency_us) =
                                send_with_retry(addr, &bodies[i], retry, 1, &failover_stats)
                                    .unwrap_or_else(|e| fail(format!("request {i}: {e}")));
                            connects.lock().unwrap().push(connect_us);
                            let outcome = classify(i, status, &reply, latency_us, chaos_active);
                            outcomes.lock().unwrap().push((i, outcome));
                        } else {
                            let outcome = classify(i, *status, reply, per_request, chaos_active);
                            outcomes.lock().unwrap().push((i, outcome));
                        }
                    }
                } else {
                    for &i in &batch {
                        let (status, reply, connect_us, latency_us) =
                            send_with_retry(addr, &bodies[i], retry, 0, &failover_stats)
                                .unwrap_or_else(|e| fail(format!("request {i}: {e}")));
                        connects.lock().unwrap().push(connect_us);
                        let outcome = classify(i, status, &reply, latency_us, chaos_active);
                        outcomes.lock().unwrap().push((i, outcome));
                    }
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap_or_else(|_| fail("client thread panicked"));
    }
    let wall = started.elapsed();

    let (status, metrics_body) = roundtrip(addr, "GET", "/metrics", b"")
        .unwrap_or_else(|e| fail(format!("GET /metrics: {e}")));
    if status != 200 {
        fail(format!("GET /metrics: status {status}"));
    }
    let metrics: serde_json::Value =
        serde_json::from_slice(&metrics_body).unwrap_or_else(|e| fail(e));

    if let Some(server) = server {
        let _ = roundtrip(addr, "POST", "/shutdown", b"");
        server.wait();
    }

    let outcomes = outcomes.lock().unwrap();
    let mut all = Vec::new();
    let mut hits = Vec::new();
    let mut misses = Vec::new();
    let mut errors_by_status: BTreeMap<u16, u64> = BTreeMap::new();
    let mut aborted = 0u64;
    for (_, outcome) in outcomes.iter() {
        match outcome {
            Outcome::Solved {
                latency_us,
                cache_hit,
            } => {
                all.push(*latency_us);
                if *cache_hit {
                    hits.push(*latency_us);
                } else {
                    misses.push(*latency_us);
                }
            }
            Outcome::TypedError { status } => *errors_by_status.entry(*status).or_default() += 1,
            Outcome::Aborted => aborted += 1,
        }
    }
    all.sort_unstable();
    hits.sort_unstable();
    misses.sort_unstable();
    let errors_total: u64 = errors_by_status.values().sum();
    let mut connects = connects.lock().unwrap();
    connects.sort_unstable();

    // The chaos acceptance signal: nothing is silently dropped. Every
    // request the replay issued is accounted for as a solve, a typed
    // error, or a deliberate client-side abort.
    if all.len() as u64 + errors_total + aborted != opts.requests as u64 {
        fail(format!(
            "lost requests: {} solved + {errors_total} errors + {aborted} aborted != {}",
            all.len(),
            opts.requests
        ));
    }

    // Overall occupancy: solved tenants per programming cycle across the
    // whole run. Solo solves are one-tenant cycles, so without packing this
    // is exactly 1.0; packed batches push it above 1.0.
    let svc_count = |key: &str| metrics["service"][key].as_u64().unwrap_or(0);
    let solved_srv = svc_count("solved_total");
    let packed_batches = svc_count("packed_batches");
    let tenants_packed = svc_count("tenants_packed");
    let cycles = packed_batches + solved_srv.saturating_sub(tenants_packed);
    let occupancy = if cycles == 0 {
        0.0
    } else {
        solved_srv as f64 / cycles as f64
    };

    let errors_value = serde_json::Value::Object(
        errors_by_status
            .iter()
            .map(|(k, v)| (k.to_string(), serde_json::to_value(v)))
            .collect(),
    );
    let report = serde_json::json!({
        "requests": opts.requests,
        "clients": opts.clients,
        "structures": opts.structures,
        "keep_alive": opts.keep_alive,
        "pipeline": pipeline,
        "wall_ms": wall.as_secs_f64() * 1e3,
        "throughput_rps": outcomes.len() as f64 / wall.as_secs_f64().max(1e-9),
        "solved": all.len(),
        "errors_by_status": errors_value,
        "aborted": aborted,
        "p50_us": percentile(&all, 0.50),
        "p99_us": percentile(&all, 0.99),
        "cache_hits": hits.len(),
        "cache_misses": misses.len(),
        "hit_mean_us": mean(&hits),
        "hit_p50_us": percentile(&hits, 0.50),
        "miss_mean_us": mean(&misses),
        "miss_p50_us": percentile(&misses, 0.50),
        // Connection-establishment cost, booked apart from the request
        // latencies above: with --keep-alive this counts one entry per
        // (re)connect instead of one per request.
        "connect": serde_json::json!({
            "count": connects.len(),
            "mean_us": mean(&connects),
            "p50_us": percentile(&connects, 0.50),
            "p99_us": percentile(&connects, 0.99),
        }),
        // Client-side replays and the router's failover counters, apart
        // from the error ledger: a request that died with one cell and
        // completed on another is a success with a story, not an error.
        "failover": serde_json::json!({
            "client_retries": failover_stats.retries.load(Ordering::Relaxed),
            "retry_after_honored": failover_stats.retry_after_honored.load(Ordering::Relaxed),
            "completed_after_retry": failover_stats.completed_after_retry.load(Ordering::Relaxed),
            "router_failovers": metrics["service"]["failovers"].clone(),
            "cell_respawns": metrics["service"]["cell_respawns"].clone(),
            "crash_loops_quarantined": metrics["service"]["crash_loops_quarantined"].clone(),
            "cell_kills_injected": metrics["service"]["chaos_cell_kills_injected"].clone(),
            "deadline_budget_exhausted": metrics["service"]["deadline_budget_exhausted"].clone(),
            "router_cache_hits": metrics["service"]["router_cache_hits"].clone(),
            "router_cache_misses": metrics["service"]["router_cache_misses"].clone(),
        }),
        "integrity": serde_json::json!({
            "violations": metrics["service"]["integrity_violations"].clone(),
            "repairs": metrics["service"]["integrity_repairs"].clone(),
            "rejects": metrics["service"]["integrity_rejects"].clone(),
            "corruptions_injected": metrics["service"]["chaos_corruptions_injected"].clone(),
        }),
        "packing": serde_json::json!({
            "packed_batches": metrics["service"]["packed_batches"].clone(),
            "tenants_packed": metrics["service"]["tenants_packed"].clone(),
            "packing_declines": metrics["service"]["packing_declines"].clone(),
            "tenants_per_cycle": metrics["service"]["tenants_per_cycle"].clone(),
            "occupancy_tenants_per_cycle": occupancy,
        }),
        "chains": serde_json::json!({
            "reads_broken": metrics["service"]["reads_broken_chains"].clone(),
            "majority_repairs": metrics["service"]["chain_majority_repairs"].clone(),
            "tie_breaks": metrics["service"]["chain_tie_breaks"].clone(),
            "reads_verified_clean": metrics["service"]["reads_verified_clean"].clone(),
            "reads_repaired": metrics["service"]["reads_repaired"].clone(),
        }),
        "server_metrics": metrics,
    });
    println!("{report}");

    // Integrity reconciliation (self-host only: against --addr the metrics
    // may include traffic from other clients). Every injected corruption
    // must end flagged — repaired or rejected, never served raw — and a
    // fault-free run must show identically zero integrity and chain-repair
    // activity.
    if opts.addr.is_none() {
        let svc = &metrics["service"];
        let count = |key: &str| svc[key].as_u64().unwrap_or(0);
        let injected = count("chaos_corruptions_injected");
        let violations = count("integrity_violations");
        let repairs = count("integrity_repairs");
        let rejects = count("integrity_rejects");
        if violations < injected {
            fail(format!(
                "unflagged corrupted answers: {injected} injected, only {violations} flagged"
            ));
        }
        if repairs + rejects != violations {
            fail(format!(
                "integrity books do not reconcile: {repairs} repairs + {rejects} rejects != {violations} violations"
            ));
        }
        if !chaos_active {
            // Chain breaks are a physical reality of finite-temperature
            // annealing reads — majority-vote repair flagging them is the
            // mechanism working, not a fault — but the integrity ledger
            // itself must be silent when no corruption was injected.
            for key in ["integrity_violations", "chaos_corruptions_injected"] {
                if count(key) != 0 {
                    fail(format!(
                        "clean run must have zero {key}, got {}",
                        count(key)
                    ));
                }
            }
        }
    }

    // The cache acceptance signal (self-host, clean runs only — chaos can
    // 500 the repeats, and an external server may run a deliberately
    // capacity-starved cache): repeated structures must be hits.
    if opts.addr.is_none() && !chaos_active && outcomes.len() > opts.structures && hits.is_empty() {
        fail("no cache hits despite repeated structures");
    }

    // The packing acceptance signal (self-host, clean runs with a
    // meaningful backlog): at least one programming cycle must have carried
    // multiple tenants, i.e. occupancy exceeds one tenant per cycle.
    if opts.addr.is_none()
        && opts.tenants > 0
        && !chaos_active
        && opts.clients >= 2
        && opts.requests >= 8 * opts.clients
        && occupancy <= 1.0
    {
        fail(format!(
            "packing never engaged: occupancy {occupancy:.3} tenants/cycle \
             ({packed_batches} packed batches over {solved_srv} solves)"
        ));
    }
}
