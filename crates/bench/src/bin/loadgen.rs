//! `loadgen` — replays paper-workload request streams against `mqo_serve`
//! and reports throughput plus p50/p99 latency, split by cache hit/miss.
//!
//! ```text
//! loadgen [--addr HOST:PORT] [--requests N] [--clients C] [--structures S]
//!         [--plans P] [--reads N] [--seed S] [--small]
//! ```
//!
//! Without `--addr` the harness self-hosts a server on a loopback port,
//! so a single invocation produces the full ISSUE-3 acceptance report:
//! repeated identical-structure requests must show up as cache hits with
//! measurably lower latency than the cold (embedding) requests.

use mqo_chimera::graph::ChimeraGraph;
use mqo_service::engine::EngineConfig;
use mqo_service::http::roundtrip;
use mqo_service::server::{Server, ServerConfig};
use mqo_workload::paper::{self, PaperWorkloadConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

struct Options {
    addr: Option<String>,
    requests: usize,
    clients: usize,
    structures: usize,
    plans: usize,
    reads: usize,
    seed: u64,
    small: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            addr: None,
            requests: 64,
            clients: 4,
            structures: 4,
            plans: 2,
            reads: 50,
            seed: 7,
            small: true,
        }
    }
}

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("loadgen: {msg}");
    std::process::exit(2);
}

fn parse_options() -> Options {
    let mut opts = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| fail(format!("{flag} needs a value")))
        };
        fn num<T: std::str::FromStr>(v: String, flag: &str) -> T {
            v.parse()
                .unwrap_or_else(|_| fail(format!("{flag}: cannot parse {v:?}")))
        }
        match flag.as_str() {
            "--addr" => opts.addr = Some(value("--addr")),
            "--requests" => opts.requests = num(value("--requests"), "--requests"),
            "--clients" => opts.clients = num(value("--clients"), "--clients"),
            "--structures" => opts.structures = num(value("--structures"), "--structures"),
            "--plans" => opts.plans = num(value("--plans"), "--plans"),
            "--reads" => opts.reads = num(value("--reads"), "--reads"),
            "--seed" => opts.seed = num(value("--seed"), "--seed"),
            "--small" => opts.small = true,
            "--full" => opts.small = false,
            "--help" | "-h" => {
                println!(
                    "loadgen: replay paper-workload streams against mqo_serve\n\
                     --addr HOST:PORT  target an already-running server (default: self-host)\n\
                     --requests N      total requests to send (64)\n\
                     --clients C       concurrent client threads (4)\n\
                     --structures S    distinct instance structures cycled through (4)\n\
                     --plans P         plans per query of the paper class (2)\n\
                     --reads N         annealing reads per request (50)\n\
                     --seed S          workload generator seed (7)\n\
                     --small           4-cell Chimera graph [default]\n\
                     --full            12x12 D-Wave 2X graph"
                );
                std::process::exit(0);
            }
            other => fail(format!("unknown flag {other} (try --help)")),
        }
    }
    if opts.requests == 0 || opts.clients == 0 || opts.structures == 0 {
        fail("--requests, --clients, and --structures must be positive");
    }
    opts
}

fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = ((sorted_us.len() as f64 - 1.0) * p).round() as usize;
    sorted_us[rank.min(sorted_us.len() - 1)]
}

fn mean(us: &[u64]) -> f64 {
    if us.is_empty() {
        return 0.0;
    }
    us.iter().sum::<u64>() as f64 / us.len() as f64
}

fn main() {
    let opts = parse_options();
    let graph = if opts.small {
        ChimeraGraph::new(2, 2)
    } else {
        ChimeraGraph::dwave_2x()
    };

    // Distinct structures: vary the sharing pattern per generator seed so
    // the cache sees `structures` different keys, each repeated
    // `requests / structures` times.
    let mut bodies = Vec::new();
    for s in 0..opts.structures {
        let cfg = PaperWorkloadConfig {
            sharing_probability: 0.6,
            max_queries: 4,
            ..PaperWorkloadConfig::paper_class(opts.plans)
        };
        let mut rng = ChaCha8Rng::seed_from_u64(opts.seed.wrapping_add(s as u64));
        let inst = paper::generate(&graph, &cfg, &mut rng).unwrap_or_else(|e| fail(e));
        let mut req = mqo_service::api::SolveRequest::new(inst.problem, opts.seed);
        req.reads = Some(opts.reads);
        let body = serde_json::to_string(&req).unwrap_or_else(|e| fail(e));
        bodies.push(body.into_bytes());
    }

    // Self-host unless an address was given.
    let (server, addr): (Option<Server>, SocketAddr) = match &opts.addr {
        Some(a) => (None, a.parse().unwrap_or_else(|e| fail(e))),
        None => {
            let engine = EngineConfig::new(graph.clone());
            let mut config = ServerConfig::new(engine);
            config.addr = "127.0.0.1:0".to_string();
            config.queue.workers = opts.clients.max(2);
            let server = Server::start(config).unwrap_or_else(|e| fail(e));
            let addr = server.local_addr();
            (Some(server), addr)
        }
    };

    // Replay: `clients` threads pull request indices off a shared counter,
    // so the stream interleaves structures exactly like round-robin
    // arrivals. (index, latency_us, cache_hit) tuples are collected.
    let bodies = Arc::new(bodies);
    let next = Arc::new(AtomicUsize::new(0));
    let samples = Arc::new(Mutex::new(Vec::new()));
    let started = Instant::now();
    let mut handles = Vec::new();
    for _ in 0..opts.clients {
        let bodies = Arc::clone(&bodies);
        let next = Arc::clone(&next);
        let samples = Arc::clone(&samples);
        let total = opts.requests;
        handles.push(std::thread::spawn(move || loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= total {
                return;
            }
            let body = &bodies[i % bodies.len()];
            let sent = Instant::now();
            let (status, reply) = roundtrip(addr, "POST", "/solve", body)
                .unwrap_or_else(|e| fail(format!("request {i}: {e}")));
            let latency_us = sent.elapsed().as_micros() as u64;
            if status != 200 {
                fail(format!(
                    "request {i}: status {status}: {}",
                    String::from_utf8_lossy(&reply)
                ));
            }
            let v: serde_json::Value = serde_json::from_slice(&reply).unwrap_or_else(|e| fail(e));
            let hit = v["cache_hit"].as_bool().unwrap_or(false);
            samples.lock().unwrap().push((i, latency_us, hit));
        }));
    }
    for h in handles {
        h.join().unwrap_or_else(|_| fail("client thread panicked"));
    }
    let wall = started.elapsed();

    let (status, metrics_body) = roundtrip(addr, "GET", "/metrics", b"")
        .unwrap_or_else(|e| fail(format!("GET /metrics: {e}")));
    if status != 200 {
        fail(format!("GET /metrics: status {status}"));
    }
    let metrics: serde_json::Value =
        serde_json::from_slice(&metrics_body).unwrap_or_else(|e| fail(e));

    if let Some(server) = server {
        let _ = roundtrip(addr, "POST", "/shutdown", b"");
        server.wait();
    }

    let samples = samples.lock().unwrap();
    let mut all: Vec<u64> = samples.iter().map(|&(_, us, _)| us).collect();
    let mut hits: Vec<u64> = samples
        .iter()
        .filter(|&&(_, _, h)| h)
        .map(|&(_, us, _)| us)
        .collect();
    let mut misses: Vec<u64> = samples
        .iter()
        .filter(|&&(_, _, h)| !h)
        .map(|&(_, us, _)| us)
        .collect();
    all.sort_unstable();
    hits.sort_unstable();
    misses.sort_unstable();

    let report = serde_json::json!({
        "requests": samples.len(),
        "clients": opts.clients,
        "structures": opts.structures,
        "wall_ms": wall.as_secs_f64() * 1e3,
        "throughput_rps": samples.len() as f64 / wall.as_secs_f64().max(1e-9),
        "p50_us": percentile(&all, 0.50),
        "p99_us": percentile(&all, 0.99),
        "cache_hits": hits.len(),
        "cache_misses": misses.len(),
        "hit_mean_us": mean(&hits),
        "hit_p50_us": percentile(&hits, 0.50),
        "miss_mean_us": mean(&misses),
        "miss_p50_us": percentile(&misses, 0.50),
        "server_metrics": metrics,
    });
    println!("{report}");

    // The acceptance signal: repeated structures must be hits, and the hit
    // path (weights-only reprogramming) must be at least as fast on median.
    if samples.len() > opts.structures && hits.is_empty() {
        fail("no cache hits despite repeated structures");
    }
}
