//! Regenerates Figure 7: the maximal problem dimensions (queries ×
//! plans-per-query) representable with 1152, 2304, and 4608 qubits, and —
//! with the same sweep — the quadratic qubit-growth behaviour of
//! Theorems 2 and 3.
//!
//! Usage: `cargo run --release -p mqo-bench --bin capacity [-- --out DIR]`

use mqo_annealer::parallel::{parallel_map_with, resolve_threads};
use mqo_bench::cli::HarnessOptions;
use mqo_bench::report::write_result_file;
use mqo_chimera::capacity;
use mqo_chimera::embedding::triad;
use mqo_chimera::graph::ChimeraGraph;
use std::fmt::Write as _;

/// The paper's budgets: the D-Wave 2X and two hypothetical doublings.
const BUDGETS: [usize; 3] = [1152, 2304, 4608];

fn figure_7(threads: usize) -> (String, String) {
    let mut md = String::from("# Figure 7: representable problem dimensions\n\n");
    let mut csv = String::from("qubits,plans_per_query,max_queries\n");
    let _ = writeln!(
        md,
        "| plans/query | 1152 qubits | 2304 qubits | 4608 qubits |"
    );
    let _ = writeln!(md, "|---|---|---|---|");
    // Each class sweep is independent; rows are reassembled in class order.
    let rows = parallel_map_with(
        19,
        threads,
        || (),
        |_, i| {
            let plans = i + 2;
            let caps: Vec<usize> = BUDGETS
                .iter()
                .map(|&b| capacity::max_queries(b, plans))
                .collect();
            (plans, caps)
        },
    );
    for (plans, caps) in rows {
        let _ = writeln!(md, "| {plans} | {} | {} | {} |", caps[0], caps[1], caps[2]);
        for (b, c) in BUDGETS.iter().zip(&caps) {
            let _ = writeln!(csv, "{b},{plans},{c}");
        }
    }
    md.push_str(
        "\nShape checks (paper): dimensions double with the qubit budget; a handful of \
         plans per query already restricts batches to a few hundred queries.\n",
    );
    (md, csv)
}

fn growth(threads: usize) -> String {
    // Theorems 2/3: the TRIAD consumes Θ(n²) qubits for n chains, and the
    // clustered pattern Θ(n·(m·l)²) overall. Verify empirically against the
    // real embedder.
    let mut md = String::from("\n# Qubit growth (Theorems 2-3)\n\n");
    let _ = writeln!(
        md,
        "| chains n | TRIAD qubits (measured) | n²/4 (asymptotic) | ratio |"
    );
    let _ = writeln!(md, "|---|---|---|---|");
    let sizes = [8usize, 16, 24, 32, 40, 48];
    let measured = parallel_map_with(
        sizes.len(),
        threads,
        || (),
        |_, i| {
            let n = sizes[i];
            let m = triad::triad_block_side(n);
            let g = ChimeraGraph::new(m, m);
            let e = match triad::triad(&g, 0, 0, n) {
                Ok(e) => e,
                Err(err) => {
                    eprintln!(
                        "error: TRIAD on an intact {m}x{m} block failed for {n} chains: {err}"
                    );
                    std::process::exit(2);
                }
            };
            e.qubits_used()
        },
    );
    for (&n, &measured) in sizes.iter().zip(&measured) {
        assert_eq!(measured, triad::triad_qubits(n), "formula matches embedder");
        let asymptotic = (n * n) as f64 / 4.0;
        let _ = writeln!(
            md,
            "| {n} | {measured} | {asymptotic:.0} | {:.2} |",
            measured as f64 / asymptotic
        );
    }
    md.push_str("\nThe ratio converges towards 1: quadratic growth, matching Θ(n²).\n");

    // And the per-variable qubit consumption of the paper's four classes —
    // the x-axis of Figure 6.
    md.push_str("\n| plans/query | qubits per variable |\n|---|---|\n");
    for plans in 2..=5usize {
        let _ = writeln!(
            md,
            "| {plans} | {:.2} |",
            capacity::qubits_per_variable(plans)
        );
    }
    md
}

fn main() {
    let opts = HarnessOptions::from_env();
    let threads = resolve_threads(opts.threads);
    let (mut md, csv) = figure_7(threads);
    md.push_str(&growth(threads));
    println!("{md}");
    if let Some(p) = write_result_file(&opts.out_dir, "figure7.csv", &csv) {
        eprintln!("wrote {}", p.display());
    }
    if let Some(p) = write_result_file(&opts.out_dir, "figure7.md", &md) {
        eprintln!("wrote {}", p.display());
    }
}
