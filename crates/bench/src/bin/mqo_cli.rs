//! `mqo-cli` — generate, inspect, and solve MQO instance files.
//!
//! ```text
//! mqo_cli generate --kind paper|random|relational [--plans L] [--queries N] [--seed S] --out FILE
//! mqo_cli info INSTANCE.json
//! mqo_cli solve INSTANCE.json --algo qa|qa-sparse|bb|qubo-bb|climb|ga|greedy|decomposed
//!          [--budget-ms MS] [--reads N] [--seed S] [--threads N] [--graph RxC]
//! ```
//!
//! Instances are the serde JSON form of [`mqo_core::MqoProblem`]; solutions
//! are printed as JSON `{cost, plans}` on stdout, diagnostics on stderr.

use mqo::decomposition::DecompositionConfig;
use mqo::prelude::*;
use mqo_annealer::sqa::PathIntegralQmcSampler;
use mqo_milp::{bb_mqo, bb_qubo, MqoBbConfig, QuboBbConfig};
use mqo_workload::generic::{self, RandomWorkloadConfig};
use mqo_workload::paper::{self, PaperWorkloadConfig};
use mqo_workload::relational::{self, RelationalConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage:\n  mqo_cli generate --kind paper|random|relational [--plans L] [--queries N] \
         [--seed S] [--graph RxC] --out FILE\n  mqo_cli info FILE\n  mqo_cli solve FILE \
         --algo qa|qa-sparse|bb|qubo-bb|climb|ga|greedy|decomposed [--budget-ms MS] \
         [--reads N] [--seed S] [--threads N] [--graph RxC] [--fault-rate R]"
    );
    std::process::exit(2)
}

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2)
}

struct Args {
    positional: Vec<String>,
    flags: std::collections::HashMap<String, String>,
}

fn parse_args() -> Args {
    let mut positional = Vec::new();
    let mut flags = std::collections::HashMap::new();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            let value = it.next().unwrap_or_else(|| usage());
            flags.insert(name.to_string(), value);
        } else {
            positional.push(a);
        }
    }
    Args { positional, flags }
}

fn parse_graph(spec: &str) -> ChimeraGraph {
    let (r, c) = spec.split_once('x').unwrap_or_else(|| usage());
    let rows = r.parse().unwrap_or_else(|_| usage());
    let cols = c.parse().unwrap_or_else(|_| usage());
    ChimeraGraph::new(rows, cols)
}

fn main() {
    let args = parse_args();
    match args.positional.first().map(String::as_str) {
        Some("generate") => generate(&args),
        Some("info") => info(&args),
        Some("solve") => solve(&args),
        _ => usage(),
    }
}

fn flag<'a>(args: &'a Args, name: &str) -> Option<&'a str> {
    args.flags.get(name).map(String::as_str)
}

fn num_flag<T: std::str::FromStr>(args: &Args, name: &str, default: T) -> T {
    flag(args, name)
        .map(|v| v.parse().unwrap_or_else(|_| usage()))
        .unwrap_or(default)
}

fn generate(args: &Args) {
    let seed: u64 = num_flag(args, "seed", 0);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let problem = match flag(args, "kind").unwrap_or_else(|| usage()) {
        "paper" => {
            let graph = flag(args, "graph").map_or_else(ChimeraGraph::dwave_2x, parse_graph);
            let plans = num_flag(args, "plans", 2);
            let queries = num_flag(args, "queries", usize::MAX);
            let cfg = PaperWorkloadConfig {
                max_queries: queries,
                ..PaperWorkloadConfig::paper_class(plans)
            };
            paper::generate(&graph, &cfg, &mut rng)
                .unwrap_or_else(|e| fail(e))
                .problem
        }
        "random" => generic::generate(
            &RandomWorkloadConfig {
                queries: num_flag(args, "queries", 20),
                plans_per_query: num_flag(args, "plans", 3),
                ..RandomWorkloadConfig::default()
            },
            &mut rng,
        ),
        "relational" => {
            relational::generate(
                &RelationalConfig {
                    num_queries: num_flag(args, "queries", 12),
                    plans_per_query: num_flag(args, "plans", 3),
                    ..RelationalConfig::default()
                },
                &mut rng,
            )
            .problem
        }
        _ => usage(),
    };
    let json = serde_json::to_string_pretty(&problem)
        .unwrap_or_else(|e| fail(format!("cannot serialise the instance: {e}")));
    match flag(args, "out") {
        Some(path) => {
            std::fs::write(path, json)
                .unwrap_or_else(|e| fail(format!("cannot write {path}: {e}")));
            eprintln!(
                "wrote {} ({} queries, {} plans, {} savings)",
                path,
                problem.num_queries(),
                problem.num_plans(),
                problem.num_savings()
            );
        }
        None => println!("{json}"),
    }
}

fn load(args: &Args) -> MqoProblem {
    let path = args.positional.get(1).unwrap_or_else(|| usage());
    let data =
        std::fs::read_to_string(path).unwrap_or_else(|e| fail(format!("cannot read {path}: {e}")));
    serde_json::from_str(&data)
        .unwrap_or_else(|e| fail(format!("{path} is not valid MqoProblem JSON: {e}")))
}

fn info(args: &Args) {
    let p = load(args);
    println!("queries      : {}", p.num_queries());
    println!("plans        : {}", p.num_plans());
    println!("savings pairs: {}", p.num_savings());
    println!("max plan cost: {}", p.max_plan_cost());
    println!("max Σsavings : {}", p.max_savings_sum());
    let mapping = mqo_core::logical::LogicalMapping::with_default_epsilon(&p);
    println!(
        "QUBO         : {} vars, {} quadratic terms, wL={}, wM={}",
        mapping.qubo().num_vars(),
        mapping.qubo().num_quadratic(),
        mapping.w_l(),
        mapping.w_m()
    );
}

fn solve(args: &Args) {
    let problem = load(args);
    let seed: u64 = num_flag(args, "seed", 0);
    let budget = Duration::from_millis(num_flag(args, "budget-ms", 2000));
    let reads = num_flag(args, "reads", 1000);
    let threads = num_flag(args, "threads", 0);
    let fault_rate: f64 = num_flag(args, "fault-rate", 0.0);
    if !(0.0..=1.0).contains(&fault_rate) {
        fail("--fault-rate must be in [0, 1]");
    }
    let graph = flag(args, "graph").map_or_else(ChimeraGraph::dwave_2x, parse_graph);
    let device = || {
        QuantumAnnealer::new(
            DeviceConfig {
                num_reads: reads,
                threads,
                faults: FaultConfig::uniform(fault_rate),
                ..DeviceConfig::default()
            },
            PathIntegralQmcSampler::default(),
        )
    };

    let algo = flag(args, "algo").unwrap_or("bb");
    let (selection, cost) = match algo {
        "qa" | "qa-sparse" | "decomposed" => {
            let solver = QuantumMqoSolver::new(graph, device());
            let out = match algo {
                "qa" => solver.solve(&problem, seed),
                "qa-sparse" => solver.solve_sparse(&problem, seed, 16),
                _ => {
                    let out = solver
                        .solve_decomposed(&problem, &DecompositionConfig::default(), seed)
                        .unwrap_or_else(|e| fail(e));
                    eprintln!(
                        "decomposed: {} blocks, {} improved, {:.1} ms device time",
                        out.blocks_solved,
                        out.blocks_improved,
                        out.device_time.as_secs_f64() * 1e3
                    );
                    Ok(mqo::pipeline::QuantumMqoOutcome {
                        best: out.best,
                        trace: out.trace,
                        reads: 0,
                        repaired_reads: 0,
                        broken_chain_reads: 0,
                        qubits_used: 0,
                        faults: FaultEvents::default(),
                        retries: 0,
                        reembeds: 0,
                        fallback: false,
                        chain_breaks: Default::default(),
                        integrity: Default::default(),
                        repair_descent_moves: 0,
                    })
                }
            };
            let out = out.unwrap_or_else(|e| {
                eprintln!("error: {e}");
                std::process::exit(1)
            });
            out.best
        }
        "bb" => {
            let out = bb_mqo::solve(
                &problem,
                &MqoBbConfig {
                    deadline: Some(budget),
                    ..MqoBbConfig::default()
                },
            );
            eprintln!(
                "bb: {:?}, {} nodes, root bound {:.3}",
                out.stop, out.nodes, out.root_bound
            );
            out.best
                .unwrap_or_else(|| fail("branch-and-bound produced no incumbent within budget"))
        }
        "qubo-bb" => {
            let mapping = mqo_core::logical::LogicalMapping::with_default_epsilon(&problem);
            let out = bb_qubo::solve(
                mapping.qubo(),
                &QuboBbConfig {
                    deadline: Some(budget),
                    ..QuboBbConfig::default()
                },
            );
            eprintln!("qubo-bb: {:?}, {} nodes", out.stop, out.nodes);
            let (x, _) = out
                .best
                .unwrap_or_else(|| fail("QUBO branch-and-bound produced no incumbent"));
            let (sel, _) = mapping.decode_with_repair(&problem, &x);
            let cost = problem.selection_cost(&sel);
            (sel, cost)
        }
        "climb" => HillClimbing.run(&problem, budget, seed).best,
        "ga" => {
            GeneticAlgorithm::with_population(50)
                .run(&problem, budget, seed)
                .best
        }
        "greedy" => Greedy.run(&problem, budget, seed).best,
        _ => usage(),
    };

    problem
        .validate_selection(&selection)
        .unwrap_or_else(|e| fail(format!("solver returned an invalid selection: {e:?}")));
    let plans: Vec<u32> = selection.plans().iter().map(|p| p.0).collect();
    println!(
        "{}",
        serde_json::json!({ "algorithm": algo, "cost": cost, "plans": plans })
    );
}
