//! Regenerates Figures 4 and 5: solution cost as a function of optimization
//! time for all six competitors (LIN-MQO, LIN-QUB, QA, CLIMB, GA(50),
//! GA(200)) on the paper's test-case classes.
//!
//! Costs are normalised per instance as `(cost − best_known)/best_known`
//! where `best_known` is the best value any competitor reached, so 0 means
//! "matched the best-known solution" — the textual analogue of the paper's
//! scaled-cost axis. QA time is simulated device time (376 µs per read);
//! classical times are wall-clock, exactly the comparison the paper makes.
//!
//! Usage:
//!   cargo run --release -p mqo-bench --bin anytime            # all classes, fast
//!   cargo run --release -p mqo-bench --bin anytime -- --plans 2 --full
//!     (537×2 = Figure 4; 108×5 = Figure 5 via --plans 5)

use mqo_bench::algorithms::CompetitorConfig;
use mqo_bench::cli::HarnessOptions;
use mqo_bench::harness::{
    cross_check_class, paper_machine, quantum_speedup, run_class, small_machine,
};
use mqo_bench::report::{
    checkpoint_csv, checkpoint_table, checkpoints_up_to, fault_csv, fault_table, write_result_file,
};
use mqo_workload::paper::PAPER_CLASSES;
use std::fmt::Write as _;
use std::time::Duration;

fn main() {
    let opts = HarnessOptions::from_env();
    let graph = if opts.small {
        small_machine()
    } else {
        paper_machine()
    };
    let cfg = CompetitorConfig {
        classical_budget: opts.budget,
        qa_reads: opts.reads,
        seed: opts.seed,
        threads: opts.threads,
        faults: opts.fault_config(),
        resilience: opts.resilience_config(),
        ..CompetitorConfig::default()
    };
    let checkpoints = checkpoints_up_to(opts.budget);
    let mut classes = Vec::new();
    let mut audit_md = String::from(
        "\n## Cross-check: recorded costs vs proven optima\n\n\
         | class | audited | unproven | violations |\n|---|---|---|---|\n",
    );
    let mut audit_failures = 0usize;

    let mut md = String::from("# Figures 4 & 5: cost vs optimization time\n\n");
    let mut csv = String::new();
    // Figure 6 falls out of the same runs: collect it here too.
    let first_read = Duration::from_secs_f64(376e-6);
    let mut fig6 = String::from(
        "\n## Figure 6 (from the same runs): average quantum speedup\n\n\
         | class | qubits/variable | avg speedup | lower-bound instances |\n|---|---|---|---|\n",
    );
    for plans in PAPER_CLASSES {
        if opts.plans_filter.is_some_and(|p| p != plans) {
            continue;
        }
        eprintln!(
            "running class with {plans} plans/query ({} instances, {:?} budget)...",
            opts.instances, opts.budget
        );
        let class = run_class(&graph, plans, opts.instances, &cfg);
        let table = checkpoint_table(&class, &checkpoints);
        println!("{table}");
        md.push_str(&table);
        md.push('\n');
        let c = checkpoint_csv(&class, &checkpoints);
        if csv.is_empty() {
            csv = c;
        } else {
            // Skip the repeated header.
            csv.push_str(c.split_once('\n').map(|x| x.1).unwrap_or(""));
        }

        let mut speedups = Vec::new();
        let mut bounded = 0usize;
        for inst in &class.instances {
            match quantum_speedup(inst, first_read) {
                Some(s) => speedups.push(s),
                None => {
                    bounded += 1;
                    speedups.push(opts.budget.as_secs_f64() / first_read.as_secs_f64());
                }
            }
        }
        let avg = speedups.iter().sum::<f64>() / speedups.len().max(1) as f64;
        let _ = writeln!(
            fig6,
            "| {} | {:.2} | {}{avg:.0}× | {bounded}/{} |",
            class.label(),
            class.qubits_per_variable,
            if bounded > 0 { "≥ " } else { "" },
            class.instances.len()
        );
        if opts.cross_check {
            let audit = cross_check_class(&graph, &class, opts.budget);
            for v in &audit.violations {
                eprintln!("cross-check violation [{}]: {v}", class.label());
            }
            audit_failures += audit.violations.len();
            let _ = writeln!(
                audit_md,
                "| {} | {} | {} | {} |",
                class.label(),
                audit.audited,
                audit.skipped_unproven,
                audit.violations.len()
            );
        }
        classes.push(class);
    }
    if opts.cross_check {
        md.push_str(&audit_md);
        println!("{audit_md}");
    }
    md.push_str(&fig6);
    println!("{fig6}");
    md.push_str(
        "\nReading guide (paper shapes): QA sits at (near-)zero from its first \
         checkpoint; LIN-MQO needs seconds to reach zero and LIN-QUB trails it; \
         CLIMB leads the randomised pack early, the GAs catch up late.\n",
    );
    if let Some(p) = write_result_file(&opts.out_dir, "figures4_5.md", &md) {
        eprintln!("wrote {}", p.display());
    }
    if let Some(p) = write_result_file(&opts.out_dir, "figures4_5.csv", &csv) {
        eprintln!("wrote {}", p.display());
    }
    // Fault/resilience accounting of the QA track (all-zero on clean runs).
    let faults_md = fault_table(&classes);
    println!("{faults_md}");
    if let Some(p) = write_result_file(&opts.out_dir, "faults.csv", &fault_csv(&classes)) {
        eprintln!("wrote {}", p.display());
    }
    if audit_failures > 0 {
        eprintln!("cross-check failed: {audit_failures} costs undercut a proven optimum");
        std::process::exit(3);
    }
}
