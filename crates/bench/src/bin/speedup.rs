//! Regenerates Figure 6: average quantum speedup per test-case class as a
//! function of qubits-per-variable.
//!
//! Following the paper, the speedup of one instance is the time the *best*
//! classical competitor needs to match the solution quality QA reaches
//! after its **first annealing run** (376 µs of device time), divided by
//! that first run's duration. When no classical competitor matches within
//! budget, the instance contributes a lower bound `budget / 376 µs` and
//! the class is marked with `≥`.
//!
//! Usage: `cargo run --release -p mqo-bench --bin speedup [-- --full ...]`

use mqo_bench::algorithms::CompetitorConfig;
use mqo_bench::cli::HarnessOptions;
use mqo_bench::harness::{paper_machine, quantum_speedup, run_class, small_machine};
use mqo_bench::report::write_result_file;
use mqo_workload::paper::PAPER_CLASSES;
use std::fmt::Write as _;
use std::time::Duration;

fn main() {
    let opts = HarnessOptions::from_env();
    let graph = if opts.small {
        small_machine()
    } else {
        paper_machine()
    };
    let cfg = CompetitorConfig {
        classical_budget: opts.budget,
        qa_reads: opts.reads,
        seed: opts.seed,
        threads: opts.threads,
        faults: opts.fault_config(),
        resilience: opts.resilience_config(),
        ..CompetitorConfig::default()
    };
    let first_read = Duration::from_secs_f64(376e-6);

    let mut md = String::from(
        "# Figure 6: average quantum speedup vs qubits per variable\n\n\
         | class | qubits/variable | avg speedup | bounded instances |\n\
         |---|---|---|---|\n",
    );
    let mut csv = String::from("plans,queries,qubits_per_variable,avg_speedup,lower_bound_only\n");

    for plans in PAPER_CLASSES {
        if opts.plans_filter.is_some_and(|p| p != plans) {
            continue;
        }
        eprintln!("running class with {plans} plans/query...");
        let class = run_class(&graph, plans, opts.instances, &cfg);
        let mut speedups = Vec::new();
        let mut bounded = 0usize;
        for inst in &class.instances {
            match quantum_speedup(inst, first_read) {
                Some(s) => speedups.push(s),
                None => {
                    // Classical never matched QA's first read: lower bound.
                    bounded += 1;
                    speedups.push(opts.budget.as_secs_f64() / first_read.as_secs_f64());
                }
            }
        }
        let avg = speedups.iter().sum::<f64>() / speedups.len().max(1) as f64;
        let marker = if bounded > 0 { "≥ " } else { "" };
        let _ = writeln!(
            md,
            "| {} | {:.2} | {marker}{avg:.0}× | {bounded}/{} |",
            class.label(),
            class.qubits_per_variable,
            class.instances.len()
        );
        let _ = writeln!(
            csv,
            "{},{},{:.4},{avg:.2},{}",
            plans,
            class.queries,
            class.qubits_per_variable,
            bounded > 0
        );
    }

    md.push_str(
        "\nPaper shape: speedups of ~10³–10⁴ at 1 qubit/variable (2-plan class), \
         decreasing as more qubits are needed per variable.\n",
    );
    println!("{md}");
    if let Some(p) = write_result_file(&opts.out_dir, "figure6.md", &md) {
        eprintln!("wrote {}", p.display());
    }
    if let Some(p) = write_result_file(&opts.out_dir, "figure6.csv", &csv) {
        eprintln!("wrote {}", p.display());
    }
}
