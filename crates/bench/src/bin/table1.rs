//! Regenerates Table 1: milliseconds until LIN-MQO finds the optimal
//! solution, per test-case class (min / median / max over instances).
//!
//! The paper's times come from a commercial ILP solver; ours from the
//! in-repo branch-and-bound, so absolute numbers differ while the ordering
//! across classes (537-query instances are orders of magnitude harder than
//! 108-query ones) is the reproduced shape. A run is counted as "optimal
//! found" at the moment the incumbent last improved, provided the search
//! subsequently *proved* optimality; unproved runs are reported separately.
//!
//! Usage: `cargo run --release -p mqo-bench --bin table1 [-- --full --small ...]`

use mqo_annealer::parallel::{parallel_map_with, resolve_threads};
use mqo_bench::algorithms::CompetitorConfig;
use mqo_bench::cli::HarnessOptions;
use mqo_bench::harness::{paper_machine, small_machine};
use mqo_bench::report::{min_median_max, write_result_file};
use mqo_milp::{bb_mqo, MqoBbConfig, StopReason};
use mqo_workload::paper::{self, PaperWorkloadConfig, PAPER_CLASSES};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::fmt::Write as _;

fn main() {
    let opts = HarnessOptions::from_env();
    let graph = if opts.small {
        small_machine()
    } else {
        paper_machine()
    };
    let cfg = CompetitorConfig {
        classical_budget: opts.budget,
        seed: opts.seed,
        ..CompetitorConfig::default()
    };

    let mut md = String::from(
        "# Table 1: ms until LIN-MQO finds the optimal solution\n\n\
         | # Queries | Plans | Minimum | Median | Maximum | proved optimal |\n\
         |---|---|---|---|---|---|\n",
    );
    let mut csv = String::from("queries,plans,instance_seed,ms_to_best,proved\n");

    for plans in PAPER_CLASSES {
        if opts.plans_filter.is_some_and(|p| p != plans) {
            continue;
        }
        let workload = PaperWorkloadConfig::paper_class(plans);
        // Instances are independent: fan them out, each on its own derived
        // seed; reporting below replays them in index order. Time-to-best
        // is wall-clock, so concurrent solves on a loaded machine can read
        // slower than serial ones.
        let solved = parallel_map_with(
            opts.instances,
            resolve_threads(opts.threads),
            || (),
            |_, i| {
                let seed = cfg.seed.wrapping_add(1000 * i as u64 + 17);
                let mut rng = ChaCha8Rng::seed_from_u64(seed);
                let inst = match paper::generate(&graph, &workload, &mut rng) {
                    Ok(inst) => inst,
                    Err(e) => return Err(format!("class {plans}, seed {seed}: {e}")),
                };
                let out = bb_mqo::solve(
                    &inst.problem,
                    &MqoBbConfig {
                        deadline: Some(cfg.classical_budget),
                        lp_var_limit: 0,
                        ..MqoBbConfig::default()
                    },
                );
                Ok((seed, inst.problem.num_queries(), out))
            },
        );
        let mut times_ms = Vec::new();
        let mut proved = 0usize;
        let mut queries = 0usize;
        for (i, solved) in solved.into_iter().enumerate() {
            let (seed, inst_queries, out) = match solved {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: cannot generate instance: {e}");
                    std::process::exit(2);
                }
            };
            queries = inst_queries;
            let Some(best) = out.trace.best() else {
                eprintln!("class {plans}, seed {seed}: no incumbent within budget; skipping");
                continue;
            };
            let Some(t) = out.trace.time_to_reach(best) else {
                eprintln!("class {plans}, seed {seed}: inconsistent trace; skipping");
                continue;
            };
            let is_proved = out.stop == StopReason::Optimal;
            if is_proved {
                proved += 1;
                times_ms.push(t.as_secs_f64() * 1e3);
            }
            let _ = writeln!(
                csv,
                "{queries},{plans},{seed},{:.3},{is_proved}",
                t.as_secs_f64() * 1e3
            );
            eprintln!(
                "class {plans} plans, instance {i}: best {best:.1} after {:.1} ms \
                 ({}; {} nodes)",
                t.as_secs_f64() * 1e3,
                if is_proved {
                    "proved optimal"
                } else {
                    "budget hit"
                },
                out.nodes
            );
        }
        match min_median_max(times_ms) {
            Some((min, med, max)) => {
                let _ = writeln!(
                    md,
                    "| {queries} | {plans} | {min:.1} | {med:.1} | {max:.1} | {proved}/{} |",
                    opts.instances
                );
            }
            None => {
                let _ = writeln!(
                    md,
                    "| {queries} | {plans} | — | — | — | {proved}/{} (none proved in budget) |",
                    opts.instances
                );
            }
        }
    }

    md.push_str(
        "\nPaper reference (CPLEX-class solver): 537q → 9261/25205/34570 ms; \
         253q → 129/178/206 ms; 140q → 45/128/241 ms; 108q → 47/48/51 ms.\n",
    );
    println!("{md}");
    if let Some(p) = write_result_file(&opts.out_dir, "table1.md", &md) {
        eprintln!("wrote {}", p.display());
    }
    if let Some(p) = write_result_file(&opts.out_dir, "table1.csv", &csv) {
        eprintln!("wrote {}", p.display());
    }
}
