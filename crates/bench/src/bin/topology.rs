//! Regenerates Figures 1–3 of the paper as ASCII art plus structural
//! verification:
//!
//! * Figure 1 — four neighbouring unit cells of the Chimera graph;
//! * Figure 2 — the TRIAD pattern with 5, 8, and 12 chains, plus the
//!   broken-qubit variant;
//! * Figure 3 — the clustered embedding pattern (four clusters of eight
//!   plans).
//!
//! Usage: `cargo run --release -p mqo-bench --bin topology [-- --out DIR]`

use mqo_bench::cli::HarnessOptions;
use mqo_bench::report::write_result_file;
use mqo_chimera::embedding::{clustered, triad, Embedding};
use mqo_chimera::graph::{ChimeraGraph, Side};
use mqo_chimera::render;
use mqo_core::ids::VarId;

fn all_pairs(n: usize) -> Vec<(VarId, VarId)> {
    let mut v = Vec::new();
    for i in 0..n {
        for j in i + 1..n {
            v.push((VarId::new(i), VarId::new(j)));
        }
    }
    v
}

fn figure_1(out: &mut String) {
    out.push_str("## Figure 1: four neighbouring unit cells (Chimera)\n\n");
    let g = ChimeraGraph::new(2, 2);
    out.push_str(&render::render(&g, None));
    let max_degree = (0..g.num_qubits() as u32)
        .map(|q| g.neighbours(mqo_chimera::graph::QubitId(q)).len())
        .max()
        .unwrap();
    out.push_str(&format!(
        "\ncells: 4, qubits: {}, couplers: {}, max qubit degree: {} (paper: ≤ 6)\n\n",
        g.num_qubits(),
        g.couplers().len(),
        max_degree
    ));
    assert!(max_degree <= 6);
}

fn figure_2(out: &mut String) {
    out.push_str("## Figure 2: TRIAD patterns\n");
    for n in [5usize, 8, 12] {
        let g = ChimeraGraph::new(3, 3);
        let e = triad::triad(&g, 0, 0, n).expect("intact grid embeds the pattern");
        e.verify(&g, all_pairs(n))
            .expect("TRIAD connects all chain pairs");
        out.push_str(&format!(
            "\n### TRIAD with {n} chains ({} qubits)\n\n",
            e.qubits_used()
        ));
        out.push_str(&render::render(&g, Some(&e)));
        out.push_str(&render::chain_summary(&g, &e));
    }

    // Figure 2(d): broken qubits kill whole chains.
    out.push_str("\n### TRIAD with 12 chains and two broken qubits\n\n");
    let g = ChimeraGraph::new(3, 3);
    let broken = [
        g.qubit(0, 0, Side::Vertical, 2),
        g.qubit(2, 2, Side::Horizontal, 0),
    ];
    let g = g.with_broken(&broken);
    match triad::triad(&g, 0, 0, 12) {
        Err(e) => out.push_str(&format!(
            "full K12 fails as in the paper: {e}\n(the defective chains are unusable; \
             the remaining chains still form a smaller clique)\n"
        )),
        Ok(_) => unreachable!("broken qubits must invalidate their chains"),
    }
    out.push_str(&render::render(&g, None));
}

fn figure_3(out: &mut String) {
    out.push_str("\n## Figure 3: clustered embedding pattern (4 clusters × 8 plans)\n\n");
    let g = ChimeraGraph::new(4, 4);
    let layout = clustered::layout_clusters(&g, &[8, 8, 8, 8]).expect("fits a 4x4 grid");
    layout
        .verify(&g)
        .expect("all intra-cluster pairs realisable");
    out.push_str(&render::render(&g, Some(&layout.embedding)));
    let sharing = layout.sharing_pairs(&g);
    out.push_str(&format!(
        "\nclusters: {}, qubits used: {}, intra-cluster pairs (EM/ES): {}, \
         inter-cluster sharing pairs (sparse ES): {}\n",
        layout.num_clusters,
        layout.embedding.qubits_used(),
        layout.intra_cluster_pairs().len(),
        sharing.len()
    ));
}

fn single_cell_figure(out: &mut String) {
    out.push_str("\n## Bonus: the one-cell K5 pattern behind the paper's 5-plan classes\n\n");
    let g = ChimeraGraph::new(1, 1);
    let chains = triad::single_cell(&g, 0, 0, 5).expect("intact cell");
    let e = Embedding::new(chains, g.num_qubits()).unwrap();
    e.verify(&g, all_pairs(5)).unwrap();
    out.push_str(&render::render(&g, Some(&e)));
}

fn main() {
    let opts = HarnessOptions::from_env();
    let mut out = String::from("# Topology figures (paper Figures 1-3)\n\n");
    figure_1(&mut out);
    figure_2(&mut out);
    figure_3(&mut out);
    single_cell_figure(&mut out);
    println!("{out}");
    if let Some(path) = write_result_file(&opts.out_dir, "topology.md", &out) {
        eprintln!("wrote {}", path.display());
    }
}
