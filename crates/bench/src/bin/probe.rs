//! Focused sampler-convergence probe at full machine scale: a PIQMC
//! sweeps × beta grid plus the behavioural back-end, on one instance of a
//! chosen class, against a long hill-climbing reference. Complements
//! `calibrate` (which runs the broad grid on a small machine). Gaps are
//! absolute cost differences to the reference.
//!
//! Usage: `cargo run --release -p mqo-bench --bin probe -- --plans 3 --reads 100`
//!
//! Developer knobs (environment): `MQO_PROBE_SCALE`, `MQO_PROBE_COST_LEVELS`
//! reshape the generated instance; `MQO_B_RESTARTS`, `MQO_B_SWEEPS`,
//! `MQO_B_BETA`, `MQO_B_THRESH`, `MQO_B_NOISE` override the behavioural
//! back-end; `MQO_B_DEBUG` prints unit statistics.

use mqo::pipeline::QuantumMqoSolver;
use mqo_annealer::behavioral::BehavioralSampler;
use mqo_annealer::device::{DeviceConfig, QuantumAnnealer};
use mqo_annealer::sqa::{PathIntegralQmcSampler, SqaConfig};
use mqo_bench::cli::HarnessOptions;
use mqo_bench::harness::{paper_machine, small_machine};
use mqo_heuristics::{AnytimeHeuristic, HillClimbing};
use mqo_workload::paper::{self, PaperWorkloadConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::{Duration, Instant};

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2)
}

fn env_num<T: std::str::FromStr>(name: &str) -> Option<T> {
    std::env::var(name).ok().map(|v| {
        v.parse()
            .unwrap_or_else(|_| fail(format!("{name} must be numeric, got {v:?}")))
    })
}

fn main() {
    let opts = HarnessOptions::from_env();
    let graph = if opts.small {
        small_machine()
    } else {
        paper_machine()
    };
    let plans = opts.plans_filter.unwrap_or(3);
    let mut rng = ChaCha8Rng::seed_from_u64(opts.seed.wrapping_add(17));
    let mut workload = PaperWorkloadConfig::paper_class(plans);
    if let Some(scale) = env_num("MQO_PROBE_SCALE") {
        workload.saving_scale = scale;
    }
    if let Some(levels) = env_num("MQO_PROBE_COST_LEVELS") {
        workload.cost_levels = levels;
    }
    let inst = paper::generate(&graph, &workload, &mut rng).unwrap_or_else(|e| fail(e));
    eprintln!(
        "instance: {} queries x {plans} plans, {} vars, {} savings",
        inst.problem.num_queries(),
        inst.problem.num_plans(),
        inst.problem.num_savings()
    );
    let reference = HillClimbing
        .run(&inst.problem, Duration::from_secs(20), 1)
        .best
        .1;
    eprintln!("reference (CLIMB 20s): {reference:.1}");

    println!("slices,sweeps,beta,first_gap,best_gap,broken,wall_ms_per_read");
    for &slices in &[8usize] {
        for &sweeps in &[] {
            for &beta in &[32.0f64, 96.0] {
                let device = QuantumAnnealer::new(
                    DeviceConfig {
                        num_reads: opts.reads.min(20),
                        num_gauges: 10,
                        ..DeviceConfig::default()
                    },
                    PathIntegralQmcSampler::new(SqaConfig {
                        slices,
                        sweeps,
                        beta,
                        ..SqaConfig::default()
                    }),
                );
                let solver = QuantumMqoSolver::new(graph.clone(), device);
                let t0 = Instant::now();
                let out = solver
                    .solve_with_embedding(&inst.problem, inst.layout.embedding.clone(), opts.seed)
                    .unwrap_or_else(|e| fail(e));
                let wall = t0.elapsed().as_secs_f64() * 1e3 / out.reads as f64;
                let first = out
                    .trace
                    .value_at(Duration::from_secs_f64(376e-6))
                    .unwrap_or(f64::NAN);
                let best = out.best.1;
                println!(
                    "{slices},{sweeps},{beta},{:.1},{:.1},{},{wall:.1}",
                    first - reference,
                    best - reference,
                    out.broken_chain_reads
                );
            }
        }
    }

    // Behavioural back-end reference row.
    let noise: f64 = std::env::var("MQO_B_NOISE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.01);
    let device = QuantumAnnealer::new(
        DeviceConfig {
            num_reads: opts.reads.min(100),
            num_gauges: 10,
            control_error: mqo_annealer::noise::ControlErrorModel::new(noise),
            ..DeviceConfig::default()
        },
        {
            let mut bc = mqo_annealer::behavioral::BehavioralConfig::default();
            if let Some(v) = env_num("MQO_B_RESTARTS") {
                bc.oracle_restarts = v;
            }
            if let Some(v) = env_num("MQO_B_SWEEPS") {
                bc.read_sweeps = v;
            }
            if let Some(v) = env_num("MQO_B_BETA") {
                bc.beta = v;
            }
            if let Some(v) = env_num("MQO_B_THRESH") {
                bc.cluster_threshold = v;
            }
            BehavioralSampler::new(bc)
        },
    );
    let solver = QuantumMqoSolver::new(graph.clone(), device);
    let t0 = Instant::now();
    let out = solver
        .solve_with_embedding(&inst.problem, inst.layout.embedding.clone(), opts.seed)
        .unwrap_or_else(|e| fail(e));
    let wall = t0.elapsed().as_secs_f64() * 1e3 / out.reads as f64;
    let first = out
        .trace
        .value_at(Duration::from_secs_f64(376e-6))
        .unwrap_or(f64::NAN);
    println!(
        "behavioral,-,-,{:.1},{:.1},{},{wall:.1}",
        first - reference,
        out.best.1 - reference,
        out.broken_chain_reads
    );
}
