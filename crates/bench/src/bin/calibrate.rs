//! Device-model calibration and ablation: how control-error noise, sweep
//! count, and the sampler back-end (classical SA vs path-integral QMC)
//! affect QA solution quality.
//!
//! The paper reports two calibration anchors for the real D-Wave 2X
//! (537-query class): the first annealing run lands within ~1.5% of the
//! run's own final solution, and the final solution within ~0.4% of the true
//! optimum. This binary sweeps the device-model knobs and prints the same
//! two statistics so the defaults in `DeviceConfig` can be pinned to the
//! hardware's observed behaviour.
//!
//! Usage: `cargo run --release -p mqo-bench --bin calibrate [-- --small --plans 2]`

use mqo::pipeline::QuantumMqoSolver;
use mqo_annealer::behavioral::{BehavioralConfig, BehavioralSampler};
use mqo_annealer::device::{DeviceConfig, QuantumAnnealer};
use mqo_annealer::noise::ControlErrorModel;
use mqo_annealer::sa::{SaConfig, SimulatedAnnealingSampler};
use mqo_annealer::sqa::{PathIntegralQmcSampler, SqaConfig};
use mqo_bench::cli::HarnessOptions;
use mqo_bench::harness::{paper_machine, small_machine};
use mqo_bench::report::write_result_file;
use mqo_milp::{bb_mqo, MqoBbConfig};
use mqo_workload::paper::{self, PaperWorkloadConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::fmt::Write as _;
use std::time::Duration;

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2)
}

struct Calibration {
    first_read_overhead: f64,
    final_overhead: f64,
    broken_chain_fraction: f64,
}

fn measure(
    inst: &paper::PaperInstance,
    graph: &mqo_chimera::graph::ChimeraGraph,
    optimum: f64,
    device: QuantumAnnealer<impl mqo_annealer::sampler::Sampler>,
    seed: u64,
) -> Calibration {
    let solver = QuantumMqoSolver::new(graph.clone(), device);
    let out = solver
        .solve_with_embedding(&inst.problem, inst.layout.embedding.clone(), seed)
        .unwrap_or_else(|e| fail(e));
    let first = out
        .trace
        .value_at(Duration::from_secs_f64(376e-6))
        .expect("first read recorded");
    let last = out.trace.best().expect("non-empty trace");
    Calibration {
        first_read_overhead: (first - optimum) / optimum.abs().max(1e-9),
        final_overhead: (last - optimum) / optimum.abs().max(1e-9),
        broken_chain_fraction: out.broken_chain_reads as f64 / out.reads as f64,
    }
}

fn main() {
    let opts = HarnessOptions::from_env();
    let graph = if opts.small {
        small_machine()
    } else {
        paper_machine()
    };
    let plans = opts.plans_filter.unwrap_or(2);
    let mut rng = ChaCha8Rng::seed_from_u64(opts.seed.wrapping_add(17));
    let inst = paper::generate(&graph, &PaperWorkloadConfig::paper_class(plans), &mut rng)
        .unwrap_or_else(|e| fail(e));
    eprintln!(
        "instance: {} queries x {plans} plans, {} savings",
        inst.problem.num_queries(),
        inst.problem.num_savings()
    );

    // Reference optimum (or best-effort within a generous budget).
    let exact = bb_mqo::solve(
        &inst.problem,
        &MqoBbConfig {
            deadline: Some(Duration::from_secs(30).max(opts.budget)),
            lp_var_limit: 0,
            ..MqoBbConfig::default()
        },
    );
    let optimum = exact
        .best
        .as_ref()
        .unwrap_or_else(|| fail("reference solver produced no incumbent"))
        .1;
    eprintln!(
        "reference cost {optimum:.1} ({})",
        if exact.stop == mqo_milp::StopReason::Optimal {
            "proved optimal"
        } else {
            "best-effort"
        }
    );

    let mut md = String::from(
        "# Device-model calibration (paper anchors: first read ≈ +1.5%, final ≈ +0.4%)\n\n\
         | back-end | sweeps/slices | noise σ | first-read overhead | final overhead | broken-chain reads |\n\
         |---|---|---|---|---|---|\n",
    );

    let reads = opts.reads.min(1000);
    for &noise in &[0.0, 0.005, 0.01, 0.02, 0.05] {
        for &sweeps in &[32usize, 128, 512] {
            let device = QuantumAnnealer::new(
                DeviceConfig {
                    num_reads: reads,
                    control_error: ControlErrorModel::new(noise),
                    ..DeviceConfig::default()
                },
                SimulatedAnnealingSampler::new(SaConfig {
                    sweeps,
                    ..SaConfig::default()
                }),
            );
            let c = measure(&inst, &graph, optimum, device, opts.seed);
            let _ = writeln!(
                md,
                "| SA | {sweeps} | {noise} | {:+.2}% | {:+.2}% | {:.1}% |",
                c.first_read_overhead * 100.0,
                c.final_overhead * 100.0,
                c.broken_chain_fraction * 100.0
            );
        }
    }

    // PIQMC back-end, for the sampler ablation and default calibration.
    for &slices in &[8usize, 16] {
        for &sweeps in &[64usize, 128, 256] {
            for &noise in &[0.0, 0.01, 0.02] {
                let device = QuantumAnnealer::new(
                    DeviceConfig {
                        num_reads: reads.min(200), // PIQMC is slices× more expensive
                        control_error: ControlErrorModel::new(noise),
                        ..DeviceConfig::default()
                    },
                    PathIntegralQmcSampler::new(SqaConfig {
                        slices,
                        sweeps,
                        ..SqaConfig::default()
                    }),
                );
                let c = measure(&inst, &graph, optimum, device, opts.seed);
                let _ = writeln!(
                    md,
                    "| PIQMC | {slices}x{sweeps} | {noise} | {:+.2}% | {:+.2}% | {:.1}% |",
                    c.first_read_overhead * 100.0,
                    c.final_overhead * 100.0,
                    c.broken_chain_fraction * 100.0
                );
            }
        }
    }

    // Behavioural back-end (the full-scale default) across noise levels.
    for &noise in &[0.0, 0.0025, 0.005, 0.01] {
        for &sweeps in &[4usize, 8, 16] {
            let device = QuantumAnnealer::new(
                DeviceConfig {
                    num_reads: reads,
                    control_error: ControlErrorModel::new(noise),
                    ..DeviceConfig::default()
                },
                BehavioralSampler::new(BehavioralConfig {
                    read_sweeps: sweeps,
                    ..BehavioralConfig::default()
                }),
            );
            let c = measure(&inst, &graph, optimum, device, opts.seed);
            let _ = writeln!(
                md,
                "| behavioural | {sweeps} | {noise} | {:+.2}% | {:+.2}% | {:.1}% |",
                c.first_read_overhead * 100.0,
                c.final_overhead * 100.0,
                c.broken_chain_fraction * 100.0
            );
        }
    }

    println!("{md}");
    if let Some(p) = write_result_file(&opts.out_dir, "calibration.md", &md) {
        eprintln!("wrote {}", p.display());
    }
}
