//! Classical-solver benches: the exact branch-and-bound engines, the LP
//! simplex, and the randomised heuristics on a fixed mid-size instance.

use criterion::{criterion_group, criterion_main, Criterion};
use mqo_core::logical::LogicalMapping;
use mqo_core::problem::MqoProblem;
use mqo_heuristics::{AnytimeHeuristic, GeneticAlgorithm, Greedy, HillClimbing};
use mqo_milp::model::mqo_to_ilp;
use mqo_milp::{bb_mqo, bb_qubo, simplex, MqoBbConfig, QuboBbConfig};
use mqo_workload::generic::{self, RandomWorkloadConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::Duration;

fn instance(queries: usize) -> MqoProblem {
    generic::generate(
        &RandomWorkloadConfig {
            queries,
            plans_per_query: 3,
            savings_per_query: 3.0,
            ..RandomWorkloadConfig::default()
        },
        &mut ChaCha8Rng::seed_from_u64(7),
    )
}

fn bench_solvers(c: &mut Criterion) {
    let small = instance(12);
    let mid = instance(40);

    let mut g = c.benchmark_group("solvers");
    g.sample_size(10);

    g.bench_function("bb_mqo_exact_12q", |b| {
        b.iter(|| {
            bb_mqo::solve(
                &small,
                &MqoBbConfig {
                    lp_var_limit: 0,
                    ..Default::default()
                },
            )
        })
    });
    g.bench_function("bb_qubo_exact_12q", |b| {
        let mapping = LogicalMapping::with_default_epsilon(&small);
        b.iter(|| bb_qubo::solve(mapping.qubo(), &QuboBbConfig::default()))
    });
    g.bench_function("simplex_mqo_relaxation_40q", |b| {
        let ilp = mqo_to_ilp(&mid);
        b.iter(|| simplex::solve(&ilp.program.relaxation))
    });
    g.bench_function("greedy_40q", |b| b.iter(|| Greedy::construct(&mid)));
    g.bench_function("hill_climb_burst_40q", |b| {
        b.iter(|| HillClimbing.run(&mid, Duration::from_millis(2), 1))
    });
    g.bench_function("ga50_burst_40q", |b| {
        let ga = GeneticAlgorithm::with_population(50);
        b.iter(|| ga.run(&mid, Duration::from_millis(2), 1))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_solvers
}
criterion_main!(benches);
