//! Device read throughput at 1 vs N worker threads.
//!
//! The device model fans gauge programmings and reads over a worker pool
//! with per-(gauge, read) derived seeds, so results are bit-identical at
//! any thread count; this bench measures the wall-clock payoff. Each
//! benchmark executes a full `run_ising` (programming + reads +
//! chronological reassembly) on the 128-qubit paper instance; throughput
//! is reads per wall-clock second.
//!
//! Besides the criterion timings, the run writes a `BENCH_device.json`
//! summary (reads/sec per back-end and thread count, plus the parallel
//! speedup) to the repository root. On a single-core host the speedup is
//! necessarily ~1x; the determinism guarantee is what makes the thread
//! count a pure performance knob.

use criterion::{criterion_group, criterion_main, Criterion};
use mqo_annealer::behavioral::BehavioralSampler;
use mqo_annealer::device::{DeviceConfig, QuantumAnnealer};
use mqo_annealer::parallel::resolve_threads;
use mqo_annealer::sa::SimulatedAnnealingSampler;
use mqo_annealer::sampler::Sampler;
use mqo_annealer::sqa::{PathIntegralQmcSampler, SqaConfig};
use mqo_chimera::graph::ChimeraGraph;
use mqo_chimera::physical::PhysicalMapping;
use mqo_core::ising::Ising;
use mqo_core::qubo::Qubo;
use mqo_workload::paper::{self, PaperWorkloadConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::fmt::Write as _;
use std::time::Instant;

/// Reads per `run_ising` call; small enough to keep the bench quick while
/// still spanning several gauge batches.
const READS: usize = 24;
const GAUGES: usize = 4;

fn programmed_problem() -> (Ising, Qubo) {
    let graph = ChimeraGraph::new(4, 4);
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let inst = paper::generate(&graph, &PaperWorkloadConfig::paper_class(2), &mut rng)
        .expect("benchmark machine hosts the paper class");
    let logical = mqo_core::logical::LogicalMapping::with_default_epsilon(&inst.problem);
    let pm =
        PhysicalMapping::new(logical.qubo(), inst.layout.embedding.clone(), &graph, 0.25).unwrap();
    let qubo = pm.physical_qubo().clone();
    (Ising::from_qubo(&qubo), qubo)
}

/// A cheaper QMC configuration than the default so the full-device bench
/// stays in the seconds range; relative 1-vs-N scaling is unaffected.
fn light_sqa() -> PathIntegralQmcSampler {
    PathIntegralQmcSampler::new(SqaConfig {
        slices: 4,
        sweeps: 64,
        ..SqaConfig::default()
    })
}

fn run_once<S: Sampler>(sampler: S, threads: usize, ising: &Ising, qubo: &Qubo) {
    let device = QuantumAnnealer::new(
        DeviceConfig {
            num_reads: READS,
            num_gauges: GAUGES,
            threads,
            ..DeviceConfig::default()
        },
        sampler,
    );
    let set = device
        .run_ising(ising, qubo, 7)
        .expect("device run succeeds");
    assert_eq!(set.len(), READS);
}

fn bench_device_throughput(c: &mut Criterion) {
    let (ising, qubo) = programmed_problem();
    let many = n_workers();
    let mut g = c.benchmark_group("device_throughput");
    g.sample_size(10);
    for threads in [1, many] {
        g.bench_function(format!("sa/threads={threads}"), |b| {
            b.iter(|| run_once(SimulatedAnnealingSampler::default(), threads, &ising, &qubo))
        });
        g.bench_function(format!("sqa/threads={threads}"), |b| {
            b.iter(|| run_once(light_sqa(), threads, &ising, &qubo))
        });
        g.bench_function(format!("behavioral/threads={threads}"), |b| {
            b.iter(|| run_once(BehavioralSampler::default(), threads, &ising, &qubo))
        });
    }
    g.finish();
}

/// The "many workers" operating point: all available cores, but at least
/// four so the pool is exercised even on small hosts (extra workers are
/// harmless — results are thread-count invariant).
fn n_workers() -> usize {
    resolve_threads(0).max(4)
}

/// Reads/sec of `run_ising` for one back-end at one thread count.
fn throughput<S: Sampler>(make: impl Fn() -> S, threads: usize, ising: &Ising, qubo: &Qubo) -> f64 {
    // One warm-up, then a few timed repetitions.
    run_once(make(), threads, ising, qubo);
    let reps = 5;
    let start = Instant::now();
    for _ in 0..reps {
        run_once(make(), threads, ising, qubo);
    }
    (READS * reps) as f64 / start.elapsed().as_secs_f64()
}

type BackendRun<'a> = (&'a str, Box<dyn Fn(usize) -> f64 + 'a>);

/// Writes the machine-readable summary consumed by `BENCH_device.json`.
fn write_summary(_c: &mut Criterion) {
    let (ising, qubo) = programmed_problem();
    let many = n_workers();
    let mut entries = String::new();
    let backends: [BackendRun; 3] = [
        (
            "sa",
            Box::new(|t| throughput(SimulatedAnnealingSampler::default, t, &ising, &qubo)),
        ),
        ("sqa", Box::new(|t| throughput(light_sqa, t, &ising, &qubo))),
        (
            "behavioral",
            Box::new(|t| throughput(BehavioralSampler::default, t, &ising, &qubo)),
        ),
    ];
    for (name, run) in &backends {
        let serial = run(1);
        let parallel = run(many);
        let _ = write!(
            entries,
            "{}    {{ \"backend\": \"{name}\", \"reads_per_sec_1_thread\": {serial:.1}, \
             \"reads_per_sec_{many}_threads\": {parallel:.1}, \"speedup\": {:.2} }}",
            if entries.is_empty() { "" } else { ",\n" },
            parallel / serial
        );
    }
    let json = format!(
        "{{\n  \"benchmark\": \"device_throughput\",\n  \"problem\": \"paper-class 2-plan \
         instance on a 4x4 Chimera block (128 qubits)\",\n  \"reads_per_run\": {READS},\n  \
         \"gauges_per_run\": {GAUGES},\n  \"host_parallelism\": {},\n  \"worker_threads\": \
         {many},\n  \"results\": [\n{entries}\n  ]\n}}\n",
        std::thread::available_parallelism().map_or(1, |n| n.get()),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_device.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("could not write {path}: {e}");
    } else {
        eprintln!("wrote {path}");
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_device_throughput, write_summary
}
criterion_main!(benches);
