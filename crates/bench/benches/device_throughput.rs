//! Device read throughput across problem sizes and thread counts.
//!
//! The device model fans gauge programmings and reads over the persistent
//! worker pool with per-(gauge, read) derived seeds, so results are
//! bit-identical at any thread count; this bench measures the wall-clock
//! payoff. Each measurement executes full `run_ising` calls (programming +
//! reads + chronological reassembly) and reports reads per wall-clock
//! second together with the host-time breakdown per protocol phase.
//!
//! Two problem scales are exercised: the 128-qubit paper instance (a
//! paper-class MQO workload minor-embedded on a 4×4 Chimera block) and a
//! 1152-qubit synthetic instance (random weights on every coupler of a
//! 12×12 Chimera graph — the full D-Wave 2X scale). Results are written to
//! `BENCH_device.json` at the repository root.
//!
//! This is a plain binary (`harness = false`), so it accepts its own CLI:
//!
//! ```text
//! cargo bench -p mqo-bench --bench device_throughput -- \
//!     [--qubits 128,1152] [--reads N] [--gauges N] [--threads a,b] \
//!     [--packed] [--smoke] [--no-write]
//! ```
//!
//! `--smoke` shrinks everything for CI (tiny reads, one size, no JSON).
//!
//! `--packed` additionally sweeps the chip-packing subsystem (ISSUE-8):
//! batches of small paper-class tenants placed on disjoint regions of a
//! 4×4 Chimera block are solved once per tenant (`run`, the before) and
//! once as a single composite cycle (`run_packed`, the after), reporting
//! tenant solves per wall-clock second for both. Packed reads are
//! bit-identical to solo reads, so the delta isolates the per-cycle
//! overhead packing amortizes — pool fan-outs and protocol bookkeeping —
//! from the annealing work, which is identical by construction.

use mqo_annealer::behavioral::BehavioralSampler;
use mqo_annealer::device::{DeviceConfig, PhaseTimings, QuantumAnnealer};
use mqo_annealer::parallel::resolve_threads;
use mqo_annealer::sa::SimulatedAnnealingSampler;
use mqo_annealer::sampler::{Sampler, SamplerHints};
use mqo_annealer::sqa::{PathIntegralQmcSampler, SqaConfig};
use mqo_chimera::graph::ChimeraGraph;
use mqo_chimera::physical::PhysicalMapping;
use mqo_core::ids::VarId;
use mqo_core::ising::Ising;
use mqo_core::qubo::Qubo;
use mqo_workload::paper::{self, PaperWorkloadConfig};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::fmt::Write as _;
use std::time::Instant;

#[derive(Debug, Clone)]
struct Args {
    qubits: Vec<usize>,
    reads: usize,
    gauges: usize,
    threads: Vec<usize>,
    write: bool,
    smoke: bool,
    packed: bool,
}

impl Args {
    fn parse() -> Args {
        let mut args = Args {
            qubits: vec![128, 1152],
            reads: 24,
            gauges: 4,
            threads: vec![1, resolve_threads(0).max(4)],
            write: true,
            smoke: false,
            packed: false,
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut value =
                |name: &str| it.next().unwrap_or_else(|| panic!("{name} needs a value"));
            match flag.as_str() {
                "--qubits" => {
                    args.qubits = value("--qubits")
                        .split(',')
                        .map(|s| s.parse().expect("--qubits takes integers"))
                        .collect();
                }
                "--reads" => args.reads = value("--reads").parse().expect("--reads"),
                "--gauges" => args.gauges = value("--gauges").parse().expect("--gauges"),
                "--threads" => {
                    args.threads = value("--threads")
                        .split(',')
                        .map(|s| s.parse().expect("--threads takes integers"))
                        .collect();
                }
                "--no-write" => args.write = false,
                "--packed" => args.packed = true,
                "--smoke" => {
                    args.smoke = true;
                    args.qubits = vec![128];
                    args.reads = 6;
                    args.gauges = 2;
                    args.threads = vec![1, 2];
                    args.write = false;
                }
                // Ignore criterion-style flags CI bench runners may pass.
                "--bench" | "--test" => {}
                other => panic!("unknown flag {other}"),
            }
        }
        args
    }
}

/// The 128-qubit paper instance: a paper-class MQO workload minor-embedded
/// on a 4×4 Chimera block.
fn paper_problem() -> (Ising, Qubo, String) {
    let graph = ChimeraGraph::new(4, 4);
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let inst = paper::generate(&graph, &PaperWorkloadConfig::paper_class(2), &mut rng)
        .expect("benchmark machine hosts the paper class");
    let logical = mqo_core::logical::LogicalMapping::with_default_epsilon(&inst.problem);
    let pm =
        PhysicalMapping::new(logical.qubo(), inst.layout.embedding.clone(), &graph, 0.25).unwrap();
    let qubo = pm.physical_qubo().clone();
    (
        Ising::from_qubo(&qubo),
        qubo,
        "paper-class 2-plan instance on a 4x4 Chimera block".into(),
    )
}

/// A synthetic full-scale instance: random fields and random weights on
/// *every* coupler of an `m×m` Chimera graph — the densest Ising problem
/// the device can program at that size, so per-read cost is an upper bound.
fn synthetic_chimera_problem(cells: usize) -> (Ising, Qubo, String) {
    let graph = ChimeraGraph::new(cells, cells);
    let n = graph.num_qubits();
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let h: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let couplings: Vec<(VarId, VarId, f64)> = graph
        .couplers()
        .into_iter()
        .map(|(a, b)| {
            (
                VarId::new(a.index()),
                VarId::new(b.index()),
                rng.gen_range(-1.0..1.0),
            )
        })
        .collect();
    let ising = Ising::new(h, couplings, 0.0);
    let (qubo, _) = ising.to_qubo();
    (
        ising,
        qubo,
        format!("random couplings on a {cells}x{cells} Chimera graph"),
    )
}

fn problem_for(qubits: usize) -> (Ising, Qubo, String) {
    match qubits {
        128 => paper_problem(),
        // 128 = 8·4² is handled above with the paper workload; any other
        // square size gets the synthetic instance.
        other => {
            let cells = (other as f64 / 8.0).sqrt().round() as usize;
            assert_eq!(
                cells * cells * 8,
                other,
                "--qubits must be 8*k^2 (e.g. 128 = 8*4^2, 1152 = 8*12^2)"
            );
            synthetic_chimera_problem(cells)
        }
    }
}

/// A cheaper QMC configuration than the default so the full-device bench
/// stays in the seconds range; relative scaling is unaffected.
fn light_sqa() -> PathIntegralQmcSampler {
    PathIntegralQmcSampler::new(SqaConfig {
        slices: 4,
        sweeps: 64,
        ..SqaConfig::default()
    })
}

struct Measurement {
    reads_per_sec: f64,
    timings: PhaseTimings,
}

fn run_once<S: Sampler + Clone>(
    sampler: &S,
    args: &Args,
    threads: usize,
    ising: &Ising,
    qubo: &Qubo,
) -> PhaseTimings {
    let device = QuantumAnnealer::new(
        DeviceConfig {
            num_reads: args.reads,
            num_gauges: args.gauges,
            threads,
            ..DeviceConfig::default()
        },
        sampler.clone(),
    );
    let (set, timings) = device
        .run_ising_timed(ising, qubo, &SamplerHints::default(), 7)
        .expect("device run succeeds");
    assert_eq!(set.len(), args.reads);
    timings
}

/// Reads/sec of `run_ising` for one back-end at one thread count, with the
/// per-phase host-time breakdown summed over the timed repetitions.
fn throughput<S: Sampler + Clone>(
    sampler: &S,
    args: &Args,
    threads: usize,
    ising: &Ising,
    qubo: &Qubo,
) -> Measurement {
    // One warm-up, then a few timed repetitions.
    run_once(sampler, args, threads, ising, qubo);
    let reps = if args.smoke { 1 } else { 5 };
    let mut timings = PhaseTimings::default();
    let start = Instant::now();
    for _ in 0..reps {
        let t = run_once(sampler, args, threads, ising, qubo);
        timings.program_s += t.program_s;
        timings.read_s += t.read_s;
        timings.assemble_s += t.assemble_s;
    }
    Measurement {
        reads_per_sec: (args.reads * reps) as f64 / start.elapsed().as_secs_f64(),
        timings,
    }
}

/// One packed-sweep tenant: a 4-variable paper-class instance (one Chimera
/// cell after TRIAD embedding) with per-tenant random weights.
fn packed_tenant_qubo(salt: u64) -> Qubo {
    let mut rng = ChaCha8Rng::seed_from_u64(salt);
    let mut b = Qubo::builder(4);
    for v in 0..4 {
        b.add_linear(VarId::new(v), rng.gen_range(-1.0..1.0));
    }
    for v in 0..4 {
        for w in v + 1..4 {
            b.add_quadratic(VarId::new(v), VarId::new(w), rng.gen_range(-1.0..1.0));
        }
    }
    b.build()
}

struct PackedMeasurement {
    solo_solves_per_sec: f64,
    packed_solves_per_sec: f64,
}

/// Before/after of one packed batch: `num_tenants` small tenants solved
/// solo (one full protocol run each) versus in one composite cycle.
fn packed_throughput(args: &Args, threads: usize, num_tenants: usize) -> PackedMeasurement {
    use mqo_annealer::composite::{run_packed, PackedTenant};
    use mqo_chimera::packing;

    let graph = ChimeraGraph::new(4, 4);
    let sizes = vec![4usize; num_tenants];
    let qubos: Vec<Qubo> = (0..num_tenants)
        .map(|t| packed_tenant_qubo(100 + t as u64))
        .collect();
    let pms: Vec<PhysicalMapping> = packing::pack(&graph, &sizes)
        .into_iter()
        .zip(&qubos)
        .map(|(p, q)| {
            let p = p.expect("sixteen one-cell tenants fit a 4x4 block");
            PhysicalMapping::new(q, p.embedding, &graph, 0.25).unwrap()
        })
        .collect();
    let tenants: Vec<PackedTenant<'_>> = pms
        .iter()
        .enumerate()
        .map(|(t, pm)| PackedTenant {
            pm,
            seed: 7 + t as u64,
        })
        .collect();
    let device = QuantumAnnealer::new(
        DeviceConfig {
            num_reads: args.reads,
            num_gauges: args.gauges,
            threads,
            ..DeviceConfig::default()
        },
        SimulatedAnnealingSampler::default(),
    );
    let reps = if args.smoke { 1 } else { 5 };

    // Before: one full protocol run per tenant.
    for t in &tenants {
        device.run(t.pm, &graph, t.seed).expect("solo run succeeds");
    }
    let start = Instant::now();
    for _ in 0..reps {
        for t in &tenants {
            device.run(t.pm, &graph, t.seed).expect("solo run succeeds");
        }
    }
    let solo = (num_tenants * reps) as f64 / start.elapsed().as_secs_f64();

    // After: one composite cycle for the whole batch.
    run_packed(&device, &graph, &tenants).expect("packed run succeeds");
    let start = Instant::now();
    for _ in 0..reps {
        let sets = run_packed(&device, &graph, &tenants).expect("packed run succeeds");
        assert_eq!(sets.len(), num_tenants);
    }
    let packed = (num_tenants * reps) as f64 / start.elapsed().as_secs_f64();

    PackedMeasurement {
        solo_solves_per_sec: solo,
        packed_solves_per_sec: packed,
    }
}

fn main() {
    let args = Args::parse();
    let host_parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut entries = String::new();

    for &qubits in &args.qubits {
        let (ising, qubo, description) = problem_for(qubits);
        assert_eq!(ising.num_spins(), qubits);
        eprintln!("== {qubits} qubits: {description} ==");
        for (backend, sampler) in [
            ("sa", Backend::Sa(SimulatedAnnealingSampler::default())),
            ("sqa", Backend::Sqa(light_sqa())),
            (
                "behavioral",
                Backend::Behavioral(BehavioralSampler::default()),
            ),
        ] {
            for &threads in &args.threads {
                let m = sampler.throughput(&args, threads, &ising, &qubo);
                eprintln!(
                    "{backend:>11} threads={threads}: {:9.1} reads/s  \
                     (program {:.3}s, read {:.3}s, assemble {:.4}s)",
                    m.reads_per_sec, m.timings.program_s, m.timings.read_s, m.timings.assemble_s,
                );
                let _ = write!(
                    entries,
                    "{}    {{ \"backend\": \"{backend}\", \"qubits\": {qubits}, \
                     \"threads\": {threads}, \"reads_per_sec\": {:.1}, \
                     \"program_s\": {:.4}, \"read_s\": {:.4}, \"assemble_s\": {:.5} }}",
                    if entries.is_empty() { "" } else { ",\n" },
                    m.reads_per_sec,
                    m.timings.program_s,
                    m.timings.read_s,
                    m.timings.assemble_s,
                );
            }
        }
    }

    let mut packed_entries = String::new();
    if args.packed {
        eprintln!("== packed: 4-var tenants on a 4x4 Chimera block (sa) ==");
        for &num_tenants in &[1usize, 2, 4, 8] {
            for &threads in &args.threads {
                let m = packed_throughput(&args, threads, num_tenants);
                let speedup = m.packed_solves_per_sec / m.solo_solves_per_sec;
                eprintln!(
                    "tenants={num_tenants} threads={threads}: solo {:9.1} solves/s, \
                     packed {:9.1} solves/s ({speedup:.2}x)",
                    m.solo_solves_per_sec, m.packed_solves_per_sec,
                );
                let _ = write!(
                    packed_entries,
                    "{}    {{ \"tenants\": {num_tenants}, \"threads\": {threads}, \
                     \"solo_solves_per_sec\": {:.1}, \"packed_solves_per_sec\": {:.1}, \
                     \"speedup\": {speedup:.3} }}",
                    if packed_entries.is_empty() { "" } else { ",\n" },
                    m.solo_solves_per_sec,
                    m.packed_solves_per_sec,
                );
            }
        }
    }

    if args.write {
        let sizes = args
            .qubits
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", ");
        let packed_section = if args.packed {
            format!(",\n  \"packed_results\": [\n{packed_entries}\n  ]")
        } else {
            String::new()
        };
        let json = format!(
            "{{\n  \"benchmark\": \"device_throughput\",\n  \"problem_sizes_qubits\": [{sizes}],\n  \
             \"reads_per_run\": {},\n  \"gauges_per_run\": {},\n  \"host_parallelism\": \
             {host_parallelism},\n  \"results\": [\n{entries}\n  ]{packed_section}\n}}\n",
            args.reads, args.gauges,
        );
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_device.json");
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("could not write {path}: {e}");
        } else {
            eprintln!("wrote {path}");
        }
    }
}

/// The three back-ends, statically dispatched per arm (the device is
/// generic over its sampler; there is no object-safe common type anymore).
enum Backend {
    Sa(SimulatedAnnealingSampler),
    Sqa(PathIntegralQmcSampler),
    Behavioral(BehavioralSampler),
}

impl Backend {
    fn throughput(&self, args: &Args, threads: usize, ising: &Ising, qubo: &Qubo) -> Measurement {
        match self {
            Backend::Sa(s) => throughput(s, args, threads, ising, qubo),
            Backend::Sqa(s) => throughput(s, args, threads, ising, qubo),
            Backend::Behavioral(s) => throughput(s, args, threads, ising, qubo),
        }
    }
}
