//! Representation ablation from DESIGN.md: the crate's sparse QUBO
//! (triplets + CSR adjacency) against a naive dense-matrix evaluation, and
//! the heuristic sparse embedder against the TRIAD clique pattern.

use criterion::{criterion_group, criterion_main, Criterion};
use mqo_chimera::embedding::{heuristic, triad};
use mqo_chimera::graph::ChimeraGraph;
use mqo_core::ids::VarId;
use mqo_core::logical::LogicalMapping;
use mqo_core::qubo::Qubo;
use mqo_workload::paper::{self, PaperWorkloadConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Naive dense QUBO: an n×n upper-triangular matrix.
struct DenseQubo {
    n: usize,
    w: Vec<f64>,
}

impl DenseQubo {
    fn from_sparse(q: &Qubo) -> Self {
        let n = q.num_vars();
        let mut w = vec![0.0; n * n];
        for (i, &c) in q.linear().iter().enumerate() {
            w[i * n + i] = c;
        }
        for &(i, j, c) in q.quadratic() {
            w[i.index() * n + j.index()] = c;
        }
        DenseQubo { n, w }
    }

    fn energy(&self, x: &[bool]) -> f64 {
        let mut e = 0.0;
        for i in 0..self.n {
            if !x[i] {
                continue;
            }
            let row = &self.w[i * self.n..(i + 1) * self.n];
            for (j, &w) in row.iter().enumerate().skip(i) {
                if w != 0.0 && x[j] {
                    e += w;
                }
            }
        }
        e
    }
}

fn bench_representation(c: &mut Criterion) {
    let graph = ChimeraGraph::new(6, 6);
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let inst = paper::generate(&graph, &PaperWorkloadConfig::paper_class(2), &mut rng)
        .expect("benchmark machine hosts the paper class");
    let mapping = LogicalMapping::with_default_epsilon(&inst.problem);
    let sparse = mapping.qubo();
    let dense = DenseQubo::from_sparse(sparse);
    let x: Vec<bool> = (0..sparse.num_vars()).map(|i| i % 2 == 0).collect();
    assert!((sparse.energy(&x) - dense.energy(&x)).abs() < 1e-9);

    let mut g = c.benchmark_group("representation");
    g.bench_function("qubo_energy_sparse_144v", |b| b.iter(|| sparse.energy(&x)));
    g.bench_function("qubo_energy_dense_144v", |b| b.iter(|| dense.energy(&x)));
    g.bench_function("qubo_flip_sweep_sparse", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..sparse.num_vars() {
                acc += sparse.flip_delta(&x, VarId::new(i));
            }
            acc
        })
    });

    // Embedding ablation: clique pattern vs sparse routing for 16 variables
    // with a chain-shaped interaction graph.
    let edges: Vec<(VarId, VarId)> = (0..15)
        .map(|i| (VarId::new(i), VarId::new(i + 1)))
        .collect();
    let target = ChimeraGraph::new(4, 4);
    g.bench_function("embed_triad_clique_16v", |b| {
        b.iter(|| triad::triad(&target, 0, 0, 16).unwrap())
    });
    g.bench_function("embed_heuristic_sparse_16v", |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        b.iter(|| heuristic::find_embedding(16, &edges, &target, &mut rng, 4).unwrap())
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_representation
}
criterion_main!(benches);
