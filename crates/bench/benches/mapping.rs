//! Micro-benchmarks of the mapping pipeline (the `O(n·(m·l)²)`
//! preprocessing of Theorem 4): logical mapping, physical mapping (per-chain
//! vs global chain strengths — the ablation from DESIGN.md), and
//! unembedding.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mqo_chimera::graph::ChimeraGraph;
use mqo_chimera::physical::{ChainStrengthMode, PhysicalMapping};
use mqo_core::logical::LogicalMapping;
use mqo_workload::paper::{self, PaperWorkloadConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_mapping(c: &mut Criterion) {
    let graph = ChimeraGraph::new(6, 6);
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let inst = paper::generate(&graph, &PaperWorkloadConfig::paper_class(3), &mut rng)
        .expect("benchmark machine hosts the paper class");
    let logical = LogicalMapping::with_default_epsilon(&inst.problem);

    let mut g = c.benchmark_group("mapping");
    g.bench_function("logical_mapping_72q_3p", |b| {
        b.iter(|| LogicalMapping::with_default_epsilon(&inst.problem))
    });
    g.bench_function("physical_mapping_per_chain", |b| {
        b.iter_batched(
            || inst.layout.embedding.clone(),
            |e| PhysicalMapping::new(logical.qubo(), e, &graph, 0.25).unwrap(),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("physical_mapping_global_strength", |b| {
        b.iter_batched(
            || inst.layout.embedding.clone(),
            |e| {
                PhysicalMapping::with_mode(
                    logical.qubo(),
                    e,
                    &graph,
                    0.25,
                    ChainStrengthMode::GlobalMax,
                )
                .unwrap()
            },
            BatchSize::SmallInput,
        )
    });

    let pm =
        PhysicalMapping::new(logical.qubo(), inst.layout.embedding.clone(), &graph, 0.25).unwrap();
    let sample = pm.extend(&vec![true; logical.qubo().num_vars()]);
    g.bench_function("unembed", |b| b.iter(|| pm.unembed(&sample)));
    g.bench_function("decode_with_repair", |b| {
        let un = pm.unembed(&sample);
        b.iter(|| logical.decode_with_repair(&inst.problem, &un.logical))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_mapping
}
criterion_main!(benches);
