//! Miniature end-to-end versions of every table/figure computation, so that
//! `cargo bench` exercises each experiment path:
//!
//! * `table1_lin_mqo`   — Table 1's measurement (LIN-MQO to optimality);
//! * `fig4_5_competitors` — one Figure 4/5 cell: all six competitors on a
//!   toy instance with millisecond budgets;
//! * `fig6_speedup`     — the Figure 6 statistic over a precomputed batch;
//! * `fig7_capacity`    — the Figure 7 closed-form sweep;
//! * `fig1_3_topology`  — graph construction, TRIAD embedding + verify.

use criterion::{criterion_group, criterion_main, Criterion};
use mqo_bench::algorithms::{run_all, CompetitorConfig};
use mqo_bench::harness::{quantum_speedup, run_class};
use mqo_chimera::capacity;
use mqo_chimera::embedding::triad;
use mqo_chimera::graph::ChimeraGraph;
use mqo_core::ids::VarId;
use mqo_milp::{bb_mqo, MqoBbConfig};
use mqo_workload::paper::{self, PaperWorkloadConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::Duration;

fn fast_cfg() -> CompetitorConfig {
    CompetitorConfig {
        classical_budget: Duration::from_millis(20),
        qa_reads: 20,
        qa_gauges: 2,
        seed: 3,
        ..CompetitorConfig::default()
    }
}

fn bench_experiments(c: &mut Criterion) {
    let graph = ChimeraGraph::new(2, 2);
    let mut g = c.benchmark_group("experiments");
    g.sample_size(10);

    g.bench_function("table1_lin_mqo", |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let inst = paper::generate(&graph, &PaperWorkloadConfig::paper_class(2), &mut rng)
            .expect("benchmark machine hosts the paper class");
        b.iter(|| {
            bb_mqo::solve(
                &inst.problem,
                &MqoBbConfig {
                    lp_var_limit: 0,
                    ..MqoBbConfig::default()
                },
            )
        })
    });

    g.bench_function("fig4_5_competitors", |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let inst = paper::generate(&graph, &PaperWorkloadConfig::paper_class(2), &mut rng)
            .expect("benchmark machine hosts the paper class");
        let cfg = fast_cfg();
        b.iter(|| run_all(&inst, &graph, &cfg))
    });

    g.bench_function("fig6_speedup", |b| {
        let class = run_class(&graph, 2, 1, &fast_cfg());
        let first_read = Duration::from_secs_f64(376e-6);
        b.iter(|| quantum_speedup(&class.instances[0], first_read))
    });

    g.bench_function("fig7_capacity", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for budget in [1152usize, 2304, 4608] {
                for plans in 2..=20 {
                    total += capacity::max_queries(budget, plans);
                }
            }
            total
        })
    });

    g.bench_function("fig1_3_topology", |b| {
        b.iter(|| {
            let g2 = ChimeraGraph::new(3, 3);
            let e = triad::triad(&g2, 0, 0, 12).unwrap();
            let pairs: Vec<(VarId, VarId)> = (0..12)
                .flat_map(|i| ((i + 1)..12).map(move |j| (VarId::new(i), VarId::new(j))))
                .collect();
            e.verify(&g2, pairs).unwrap();
            e.qubits_used()
        })
    });

    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_experiments
}
criterion_main!(benches);
