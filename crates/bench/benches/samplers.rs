//! Sampler ablation: one annealing read with the classical-SA back-end vs
//! the path-integral-QMC back-end on the same programmed physical problem,
//! plus the core energy-evaluation primitives they are built on.

use criterion::{criterion_group, criterion_main, Criterion};
use mqo_annealer::sa::{SaConfig, SimulatedAnnealingSampler};
use mqo_annealer::sampler::Sampler;
use mqo_annealer::sqa::{PathIntegralQmcSampler, SqaConfig};
use mqo_chimera::graph::ChimeraGraph;
use mqo_chimera::physical::PhysicalMapping;
use mqo_core::ids::VarId;
use mqo_core::ising::{bits_to_spins, Ising};
use mqo_core::logical::LogicalMapping;
use mqo_workload::paper::{self, PaperWorkloadConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn programmed_problem() -> Ising {
    let graph = ChimeraGraph::new(4, 4);
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let inst = paper::generate(&graph, &PaperWorkloadConfig::paper_class(2), &mut rng)
        .expect("benchmark machine hosts the paper class");
    let logical = LogicalMapping::with_default_epsilon(&inst.problem);
    let pm =
        PhysicalMapping::new(logical.qubo(), inst.layout.embedding.clone(), &graph, 0.25).unwrap();
    Ising::from_qubo(pm.physical_qubo())
}

fn bench_samplers(c: &mut Criterion) {
    let ising = programmed_problem();
    let mut g = c.benchmark_group("samplers");
    g.sample_size(10);

    g.bench_function("sa_read_128_qubits", |b| {
        let sampler = SimulatedAnnealingSampler::new(SaConfig::default());
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        b.iter(|| sampler.sample(&ising, &mut rng))
    });
    g.bench_function("piqmc_read_128_qubits", |b| {
        let sampler = PathIntegralQmcSampler::new(SqaConfig::default());
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        b.iter(|| sampler.sample(&ising, &mut rng))
    });

    // Core primitives: full evaluation vs O(deg) flip delta.
    let spins: Vec<i8> = bits_to_spins(&vec![true; ising.num_spins()]);
    g.bench_function("ising_energy_full", |b| b.iter(|| ising.energy(&spins)));
    g.bench_function("ising_flip_delta", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..ising.num_spins() {
                acc += ising.flip_delta(&spins, VarId::new(i));
            }
            acc
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_samplers
}
criterion_main!(benches);
