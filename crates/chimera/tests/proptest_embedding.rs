//! Property-based tests of the embedding layer and the physical mapping:
//! the decisive end-to-end invariant is that for *any* logical QUBO that
//! fits, the physical ground state is chain-consistent and decodes to the
//! logical ground state.

use mqo_chimera::embedding::{clustered, triad, Embedding};
use mqo_chimera::graph::{ChimeraGraph, QubitId};
use mqo_chimera::physical::PhysicalMapping;
use mqo_core::ids::VarId;
use mqo_core::qubo::Qubo;
use proptest::prelude::*;

fn arb_qubo(n: usize) -> impl Strategy<Value = Qubo> {
    let linear = proptest::collection::vec(-6.0f64..6.0, n);
    let quad = proptest::collection::vec(((0..n, 0..n), -4.0f64..4.0), 0..=n * 2);
    (linear, quad).prop_map(move |(linear, quad)| {
        let mut b = Qubo::builder(n);
        for (i, w) in linear.into_iter().enumerate() {
            b.add_linear(VarId::new(i), w);
        }
        for ((i, j), w) in quad {
            if i != j {
                b.add_quadratic(VarId::new(i), VarId::new(j), w);
            }
        }
        b.build()
    })
}

fn all_pairs(n: usize) -> Vec<(VarId, VarId)> {
    (0..n)
        .flat_map(|i| ((i + 1)..n).map(move |j| (VarId::new(i), VarId::new(j))))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Physical ground states are chain-consistent and decode to logical
    /// ground states, for arbitrary 5-variable QUBOs on a TRIAD embedding.
    #[test]
    fn physical_ground_state_decodes_to_logical(qubo in arb_qubo(5)) {
        let graph = ChimeraGraph::new(2, 2);
        let embedding = triad::triad(&graph, 0, 0, 5).unwrap();
        let pm = PhysicalMapping::new(&qubo, embedding, &graph, 0.25).unwrap();
        prop_assume!(pm.num_physical_vars() <= 20);
        let (phys, phys_e) = pm.physical_qubo().brute_force_minimum();
        let un = pm.unembed(&phys);
        prop_assert_eq!(un.broken_chains, 0);
        let (_, logical_e) = qubo.brute_force_minimum();
        prop_assert!((qubo.energy(&un.logical) - logical_e).abs() < 1e-9);
        prop_assert!((phys_e - logical_e).abs() < 1e-9);
    }

    /// Consistent extensions preserve energy exactly for any assignment.
    #[test]
    fn consistent_extension_preserves_energy(qubo in arb_qubo(6), mask in 0u32..64) {
        let graph = ChimeraGraph::new(2, 2);
        let embedding = triad::triad(&graph, 0, 0, 6).unwrap();
        let pm = PhysicalMapping::new(&qubo, embedding, &graph, 0.25).unwrap();
        let x: Vec<bool> = (0..6).map(|i| mask & (1 << i) != 0).collect();
        let phys = pm.extend(&x);
        prop_assert!((qubo.energy(&x) - pm.physical_qubo().energy(&phys)).abs() < 1e-9);
    }

    /// TRIAD embeddings remain valid under random broken qubits *outside*
    /// the pattern's block, and fail loudly when a chain qubit breaks.
    #[test]
    fn triad_handles_defects(broken_idx in 0usize..128, n in 4usize..=8) {
        let graph = ChimeraGraph::new(4, 4);
        let dead = QubitId(broken_idx as u32);
        let graph = graph.with_broken(&[dead]);
        match triad::triad(&graph, 0, 0, n) {
            Ok(e) => {
                // The pattern avoided the dead qubit entirely.
                prop_assert!(e.verify(&graph, all_pairs(n)).is_ok());
                prop_assert!(e.chains().iter().all(|c| !c.contains(&dead)));
            }
            Err(err) => {
                prop_assert!(matches!(
                    err,
                    mqo_chimera::embedding::EmbeddingError::BrokenQubit(_, q) if q == dead
                ));
            }
        }
    }

    /// The clustered layout is always verifiable and numbers variables
    /// contiguously per cluster, for any defect pattern.
    #[test]
    fn clustered_layout_is_always_valid(
        defects in proptest::collection::hash_set(0u32..72, 0..12),
        plans in 2usize..=5,
    ) {
        let broken: Vec<QubitId> = defects.into_iter().map(QubitId).collect();
        let graph = ChimeraGraph::new(3, 3).with_broken(&broken);
        let layout = clustered::layout_uniform(&graph, usize::MAX, plans).unwrap();
        layout.verify(&graph).unwrap();
        for cluster in 0..layout.num_clusters {
            let vars = layout.vars_of_cluster(cluster);
            prop_assert_eq!(vars.len(), plans);
            prop_assert!(vars.windows(2).all(|w| w[1].index() == w[0].index() + 1));
        }
        // Sharing pairs always cross clusters.
        for (a, b) in layout.sharing_pairs(&graph) {
            prop_assert_ne!(
                layout.cluster_of_var[a.index()],
                layout.cluster_of_var[b.index()]
            );
        }
    }

    /// Embedding statistics are internally consistent.
    #[test]
    fn embedding_statistics_are_consistent(n in 2usize..=12) {
        let graph = ChimeraGraph::new(3, 3);
        let e = triad::triad(&graph, 0, 0, n).unwrap();
        let total: usize = (0..n).map(|v| e.chain(VarId::new(v)).len()).sum();
        prop_assert_eq!(total, e.qubits_used());
        prop_assert!((e.qubits_per_variable() - total as f64 / n as f64).abs() < 1e-12);
        // Owner map agrees with chains.
        for v in 0..n {
            for &q in e.chain(VarId::new(v)) {
                prop_assert_eq!(e.owner(q), Some(VarId::new(v)));
            }
        }
    }
}

/// Deterministic (non-proptest) regression: an Embedding built from chains
/// with an out-of-graph qubit is rejected before any physical mapping.
#[test]
fn embedding_rejects_out_of_range_chains() {
    let graph = ChimeraGraph::new(1, 1);
    let err = Embedding::new(vec![vec![QubitId(8)]], graph.num_qubits()).unwrap_err();
    assert!(matches!(
        err,
        mqo_chimera::embedding::EmbeddingError::QubitOutOfRange(_)
    ));
}
