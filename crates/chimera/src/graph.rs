//! The Chimera hardware graph of the D-Wave 2X (Section 2, Figure 1).
//!
//! Qubits are partitioned into *unit cells* of eight qubits arranged in two
//! columns ("colons" in the paper) of four. Within a cell every left qubit is
//! coupled to every right qubit (a complete bipartite K4,4) but qubits in the
//! same column are not coupled. Left-column qubits couple to their
//! counterparts in the cells above and below; right-column qubits couple to
//! their counterparts in the cells to the left and to the right. Each qubit
//! therefore touches at most six couplers.
//!
//! The D-Wave 2X is a 12×12 grid of unit cells (1152 qubits); the machine the
//! paper used had 55 broken qubits, leaving 1097 functional. Broken qubits
//! are first-class here: [`ChimeraGraph::with_broken`] marks qubits unusable
//! and every adjacency query respects them.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Which column of a unit cell a qubit sits in.
///
/// The paper's "left colon" carries the vertical inter-cell couplers and the
/// "right colon" the horizontal ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Side {
    /// Left column: coupled vertically across cells.
    Vertical,
    /// Right column: coupled horizontally across cells.
    Horizontal,
}

/// A physical qubit, identified by its linear index in the qubit matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct QubitId(pub u32);

impl QubitId {
    /// The underlying array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for QubitId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// Structured coordinates of a qubit: cell row, cell column, side, and index
/// within the side (0..4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct QubitCoord {
    /// Unit-cell row.
    pub row: usize,
    /// Unit-cell column.
    pub col: usize,
    /// Which column of the cell.
    pub side: Side,
    /// Position within the column (0..4).
    pub k: usize,
}

/// A Chimera graph: `rows × cols` unit cells of eight qubits, with an
/// optional set of broken (unusable) qubits.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChimeraGraph {
    rows: usize,
    cols: usize,
    /// `true` for qubits that are functional.
    working: Vec<bool>,
}

/// Number of qubits per unit cell.
pub const CELL_SIZE: usize = 8;
/// Number of qubits per cell column.
pub const HALF_CELL: usize = 4;

impl ChimeraGraph {
    /// A fully functional `rows × cols` Chimera graph.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "graph must contain at least one cell");
        ChimeraGraph {
            rows,
            cols,
            working: vec![true; rows * cols * CELL_SIZE],
        }
    }

    /// The ideal D-Wave 2X topology: 144 unit cells (12×12), 1152 qubits.
    pub fn dwave_2x() -> Self {
        Self::new(12, 12)
    }

    /// The machine the paper experimented with: a D-Wave 2X with 55 broken
    /// qubits (1097 functional). The broken set is sampled uniformly from the
    /// given RNG; the real machine's defect pattern is proprietary, but the
    /// paper's capacity numbers depend only on defect *counts* at this rate.
    pub fn dwave_2x_as_used_in_paper(rng: &mut impl Rng) -> Self {
        let mut g = Self::dwave_2x();
        g.break_random_qubits(55, rng);
        g
    }

    /// Marks the given qubits broken.
    pub fn with_broken(mut self, broken: &[QubitId]) -> Self {
        for &q in broken {
            assert!(q.index() < self.working.len(), "qubit out of range");
            self.working[q.index()] = false;
        }
        self
    }

    /// Breaks `count` distinct, uniformly chosen qubits.
    pub fn break_random_qubits(&mut self, count: usize, rng: &mut impl Rng) {
        assert!(
            count <= self.num_qubits(),
            "cannot break more qubits than exist"
        );
        let mut ids: Vec<u32> = (0..self.num_qubits() as u32).collect();
        ids.shuffle(rng);
        for &id in &ids[..count] {
            self.working[id as usize] = false;
        }
    }

    /// Grid height in unit cells.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Grid width in unit cells.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of qubits, broken ones included.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.working.len()
    }

    /// Number of functional qubits.
    pub fn num_working_qubits(&self) -> usize {
        self.working.iter().filter(|&&w| w).count()
    }

    /// Stable FNV-1a fingerprint of the topology: dimensions plus the
    /// working-qubit bitmap. Two graphs with equal fingerprints host exactly
    /// the same embeddings, so this participates in embedding-cache keys
    /// alongside the problem's structure hash.
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut mix = |v: u64| {
            for byte in v.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        mix(self.rows as u64);
        mix(self.cols as u64);
        // Pack the bitmap into words so the byte stream stays compact.
        let mut word = 0u64;
        for (i, &w) in self.working.iter().enumerate() {
            if w {
                word |= 1 << (i % 64);
            }
            if i % 64 == 63 {
                mix(word);
                word = 0;
            }
        }
        if !self.working.len().is_multiple_of(64) {
            mix(word);
        }
        h
    }

    /// Whether a qubit is functional.
    #[inline]
    pub fn is_working(&self, q: QubitId) -> bool {
        self.working[q.index()]
    }

    /// The qubit at structured coordinates.
    #[inline]
    pub fn qubit(&self, row: usize, col: usize, side: Side, k: usize) -> QubitId {
        debug_assert!(row < self.rows && col < self.cols && k < HALF_CELL);
        let side_offset = match side {
            Side::Vertical => 0,
            Side::Horizontal => HALF_CELL,
        };
        QubitId(((row * self.cols + col) * CELL_SIZE + side_offset + k) as u32)
    }

    /// Structured coordinates of a qubit.
    #[inline]
    pub fn coords(&self, q: QubitId) -> QubitCoord {
        let idx = q.index();
        let cell = idx / CELL_SIZE;
        let within = idx % CELL_SIZE;
        QubitCoord {
            row: cell / self.cols,
            col: cell % self.cols,
            side: if within < HALF_CELL {
                Side::Vertical
            } else {
                Side::Horizontal
            },
            k: within % HALF_CELL,
        }
    }

    /// Whether the hardware provides a coupler between two *functional*
    /// qubits. Couplers adjacent to a broken qubit are unusable (`false`).
    pub fn has_coupler(&self, a: QubitId, b: QubitId) -> bool {
        if a == b || !self.is_working(a) || !self.is_working(b) {
            return false;
        }
        let ca = self.coords(a);
        let cb = self.coords(b);
        if ca.row == cb.row && ca.col == cb.col {
            // Intra-cell: complete bipartite between the two sides.
            return ca.side != cb.side;
        }
        if ca.side != cb.side || ca.k != cb.k {
            return false;
        }
        match ca.side {
            Side::Vertical => ca.col == cb.col && ca.row.abs_diff(cb.row) == 1,
            Side::Horizontal => ca.row == cb.row && ca.col.abs_diff(cb.col) == 1,
        }
    }

    /// Functional neighbours of a functional qubit (≤ 6 entries; empty for a
    /// broken qubit).
    pub fn neighbours(&self, q: QubitId) -> Vec<QubitId> {
        if !self.is_working(q) {
            return Vec::new();
        }
        let c = self.coords(q);
        let mut out = Vec::with_capacity(6);
        // Opposite side of the same cell.
        let opposite = match c.side {
            Side::Vertical => Side::Horizontal,
            Side::Horizontal => Side::Vertical,
        };
        for k in 0..HALF_CELL {
            let n = self.qubit(c.row, c.col, opposite, k);
            if self.is_working(n) {
                out.push(n);
            }
        }
        // Same-index counterparts in adjacent cells.
        match c.side {
            Side::Vertical => {
                if c.row > 0 {
                    let n = self.qubit(c.row - 1, c.col, c.side, c.k);
                    if self.is_working(n) {
                        out.push(n);
                    }
                }
                if c.row + 1 < self.rows {
                    let n = self.qubit(c.row + 1, c.col, c.side, c.k);
                    if self.is_working(n) {
                        out.push(n);
                    }
                }
            }
            Side::Horizontal => {
                if c.col > 0 {
                    let n = self.qubit(c.row, c.col - 1, c.side, c.k);
                    if self.is_working(n) {
                        out.push(n);
                    }
                }
                if c.col + 1 < self.cols {
                    let n = self.qubit(c.row, c.col + 1, c.side, c.k);
                    if self.is_working(n) {
                        out.push(n);
                    }
                }
            }
        }
        out
    }

    /// Iterates all usable couplers (both endpoints functional), each once,
    /// with the smaller qubit id first.
    pub fn couplers(&self) -> Vec<(QubitId, QubitId)> {
        let mut out = Vec::new();
        for idx in 0..self.num_qubits() as u32 {
            let q = QubitId(idx);
            if !self.is_working(q) {
                continue;
            }
            for n in self.neighbours(q) {
                if q < n {
                    out.push((q, n));
                }
            }
        }
        out
    }

    /// Functional qubits of one cell column, as (k, qubit) pairs.
    pub fn working_in_cell(&self, row: usize, col: usize, side: Side) -> Vec<(usize, QubitId)> {
        (0..HALF_CELL)
            .filter_map(|k| {
                let q = self.qubit(row, col, side, k);
                self.is_working(q).then_some((k, q))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn dwave_2x_has_1152_qubits_in_144_cells() {
        let g = ChimeraGraph::dwave_2x();
        assert_eq!(g.num_qubits(), 1152);
        assert_eq!(g.rows() * g.cols(), 144);
        assert_eq!(g.num_working_qubits(), 1152);
    }

    #[test]
    fn paper_machine_has_1097_working_qubits() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let g = ChimeraGraph::dwave_2x_as_used_in_paper(&mut rng);
        assert_eq!(g.num_working_qubits(), 1097);
    }

    #[test]
    fn coords_round_trip() {
        let g = ChimeraGraph::new(3, 5);
        for idx in 0..g.num_qubits() as u32 {
            let q = QubitId(idx);
            let c = g.coords(q);
            assert_eq!(g.qubit(c.row, c.col, c.side, c.k), q);
        }
    }

    #[test]
    fn intra_cell_is_complete_bipartite() {
        let g = ChimeraGraph::new(2, 2);
        for kl in 0..4 {
            for kr in 0..4 {
                let l = g.qubit(0, 0, Side::Vertical, kl);
                let r = g.qubit(0, 0, Side::Horizontal, kr);
                assert!(g.has_coupler(l, r));
                assert!(g.has_coupler(r, l));
            }
        }
        // Same side is never coupled.
        let l0 = g.qubit(0, 0, Side::Vertical, 0);
        let l1 = g.qubit(0, 0, Side::Vertical, 1);
        assert!(!g.has_coupler(l0, l1));
        let r0 = g.qubit(0, 0, Side::Horizontal, 0);
        let r1 = g.qubit(0, 0, Side::Horizontal, 1);
        assert!(!g.has_coupler(r0, r1));
    }

    #[test]
    fn inter_cell_couplers_follow_side_orientation() {
        let g = ChimeraGraph::new(3, 3);
        // Vertical (left) qubits couple up/down in the same column.
        let v = g.qubit(1, 1, Side::Vertical, 2);
        assert!(g.has_coupler(v, g.qubit(0, 1, Side::Vertical, 2)));
        assert!(g.has_coupler(v, g.qubit(2, 1, Side::Vertical, 2)));
        assert!(!g.has_coupler(v, g.qubit(1, 0, Side::Vertical, 2)));
        assert!(!g.has_coupler(v, g.qubit(0, 1, Side::Vertical, 3)));
        // Horizontal (right) qubits couple left/right in the same row.
        let h = g.qubit(1, 1, Side::Horizontal, 0);
        assert!(g.has_coupler(h, g.qubit(1, 0, Side::Horizontal, 0)));
        assert!(g.has_coupler(h, g.qubit(1, 2, Side::Horizontal, 0)));
        assert!(!g.has_coupler(h, g.qubit(0, 1, Side::Horizontal, 0)));
    }

    #[test]
    fn every_qubit_has_at_most_six_neighbours() {
        let g = ChimeraGraph::new(4, 4);
        let mut interior_seen = false;
        for idx in 0..g.num_qubits() as u32 {
            let q = QubitId(idx);
            let n = g.neighbours(q).len();
            assert!(n <= 6, "{q} has {n} neighbours");
            if n == 6 {
                interior_seen = true;
            }
        }
        assert!(interior_seen, "interior qubits should reach degree 6");
    }

    #[test]
    fn coupler_count_matches_closed_form() {
        // rows×cols cells: 16 intra-cell couplers each, 4·(rows−1)·cols
        // vertical and 4·rows·(cols−1) horizontal inter-cell couplers.
        for (r, c) in [(1, 1), (2, 3), (12, 12)] {
            let g = ChimeraGraph::new(r, c);
            let expect = 16 * r * c + 4 * (r - 1) * c + 4 * r * (c - 1);
            assert_eq!(g.couplers().len(), expect, "{r}x{c}");
        }
    }

    #[test]
    fn broken_qubits_disable_their_couplers_and_neighbours() {
        let g = ChimeraGraph::new(2, 2);
        let dead = g.qubit(0, 0, Side::Vertical, 0);
        let g = g.with_broken(&[dead]);
        assert!(!g.is_working(dead));
        assert!(g.neighbours(dead).is_empty());
        let r = g.qubit(0, 0, Side::Horizontal, 1);
        assert!(!g.has_coupler(dead, r));
        assert!(!g.neighbours(r).contains(&dead));
        assert_eq!(g.num_working_qubits(), 31);
    }

    #[test]
    fn break_random_qubits_breaks_exactly_count_distinct() {
        let mut g = ChimeraGraph::new(4, 4);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        g.break_random_qubits(20, &mut rng);
        assert_eq!(g.num_working_qubits(), 4 * 4 * 8 - 20);
    }

    #[test]
    fn working_in_cell_filters_broken() {
        let g = ChimeraGraph::new(1, 1);
        let dead = g.qubit(0, 0, Side::Vertical, 2);
        let g = g.with_broken(&[dead]);
        let left = g.working_in_cell(0, 0, Side::Vertical);
        assert_eq!(
            left.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            vec![0, 1, 3]
        );
        let right = g.working_in_cell(0, 0, Side::Horizontal);
        assert_eq!(right.len(), 4);
    }

    #[test]
    fn couplers_are_symmetric_and_valid() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut g = ChimeraGraph::new(3, 3);
        g.break_random_qubits(10, &mut rng);
        for (a, b) in g.couplers() {
            assert!(a < b);
            assert!(g.has_coupler(a, b) && g.has_coupler(b, a));
            assert!(g.is_working(a) && g.is_working(b));
        }
    }
}
