//! Closed-form capacity analysis: which MQO problem dimensions fit a given
//! qubit budget (paper Section 6 and Figure 7).
//!
//! Under the clustered pattern with one query per cluster, a query with `l`
//! plans consumes a fixed slice of the qubit matrix:
//!
//! | plans `l` | layout                      | queries per cell/block |
//! |-----------|-----------------------------|------------------------|
//! | 2         | two singleton chains        | 4 per cell             |
//! | 3         | singleton ×2 + one pair     | 2 per cell             |
//! | 4         | singleton ×2 + two pairs    | 1 per cell             |
//! | 5         | singleton ×2 + three pairs  | 1 per cell             |
//! | > 5       | TRIAD on an m×m block, m=⌈l/4⌉ | 1 per block        |
//!
//! All figures below assume an intact matrix (Figure 7 explicitly assumes no
//! broken qubits); `mqo-chimera::embedding::clustered` handles defects.

use crate::embedding::triad::triad_block_side;
use crate::embedding::EmbeddingError;
use crate::graph::CELL_SIZE;

/// Queries with `plans_per_query` plans that fit one intact unit cell
/// (0 when a single cell is too small).
pub fn queries_per_cell(plans_per_query: usize) -> usize {
    match plans_per_query {
        0 => 0,
        1 => CELL_SIZE,
        l @ 2..=5 => 4 / (l - 1),
        _ => 0,
    }
}

/// Maximal number of uniform queries representable with `num_qubits` qubits
/// arranged as a (conceptually square) Chimera matrix.
pub fn max_queries(num_qubits: usize, plans_per_query: usize) -> usize {
    let cells = num_qubits / CELL_SIZE;
    if plans_per_query == 0 {
        return 0;
    }
    if plans_per_query <= 5 {
        return cells * queries_per_cell(plans_per_query);
    }
    let m = triad_block_side(plans_per_query);
    // Blocks tile the square grid; a rectangular remainder is ignored, which
    // matches how the embedder tiles whole blocks.
    let side = (cells as f64).sqrt().floor() as usize;
    (side / m) * (side / m)
}

/// Maximal number of plans per query representable when `num_queries`
/// queries must fit in `num_qubits` qubits (the y-axis of Figure 7 for a
/// given x). Returns 0 when not even 1-plan queries fit.
pub fn max_plans_per_query(num_qubits: usize, num_queries: usize) -> usize {
    if num_queries == 0 {
        return usize::MAX;
    }
    let mut best = 0;
    for l in 1.. {
        if max_queries(num_qubits, l) >= num_queries {
            best = l;
        } else if l > 5 {
            // max_queries is non-increasing in l beyond the per-cell regime.
            break;
        }
        if l > 4 * 100 {
            break;
        }
    }
    best
}

/// Typed capacity check: `Ok(capacity)` when `num_qubits` (intact,
/// conceptually square) can host at least one query of `plans_per_query`
/// plans, otherwise a structured
/// [`EmbeddingError::InsufficientCapacity`] that callers can surface
/// instead of panicking on zero-capacity topologies.
pub fn check_capacity(num_qubits: usize, plans_per_query: usize) -> Result<usize, EmbeddingError> {
    let capacity = max_queries(num_qubits, plans_per_query);
    if capacity == 0 {
        Err(EmbeddingError::InsufficientCapacity {
            requested: plans_per_query,
            available: num_qubits,
        })
    } else {
        Ok(capacity)
    }
}

/// Average physical qubits consumed per logical variable for uniform
/// `l`-plan queries — the x-axis of Figure 6.
pub fn qubits_per_variable(plans_per_query: usize) -> f64 {
    match plans_per_query {
        0 => 0.0,
        1 => 1.0,
        l @ 2..=5 => (2 * (l - 1)) as f64 / l as f64,
        l => (triad_block_side(l) + 1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embedding::clustered::max_uniform_queries;
    use crate::graph::ChimeraGraph;

    #[test]
    fn closed_form_matches_the_embedder_on_intact_graphs() {
        let g = ChimeraGraph::dwave_2x();
        for l in [1, 2, 3, 4, 5] {
            assert_eq!(
                max_queries(1152, l),
                max_uniform_queries(&g, l),
                "plans = {l}"
            );
        }
        // Multi-cell regime: 8 plans → 2×2 blocks → 36 on a 12×12 grid.
        assert_eq!(max_queries(1152, 8), max_uniform_queries(&g, 8));
    }

    #[test]
    fn paper_figure_7_budget_doublings() {
        // 1152 qubits: 576 two-plan queries; doubling budgets doubles them.
        assert_eq!(max_queries(1152, 2), 576);
        assert_eq!(max_queries(2304, 2), 1152);
        assert_eq!(max_queries(4608, 2), 2304);
        // Five-plan queries: one per cell.
        assert_eq!(max_queries(1152, 5), 144);
        assert_eq!(max_queries(4608, 5), 576);
    }

    #[test]
    fn max_queries_is_non_increasing_in_plan_count() {
        for budget in [1152usize, 2304, 4608] {
            let caps: Vec<usize> = (1..=20).map(|l| max_queries(budget, l)).collect();
            assert!(
                caps.windows(2).all(|w| w[0] >= w[1]),
                "budget {budget}: {caps:?}"
            );
        }
    }

    #[test]
    fn max_plans_inverts_max_queries() {
        for (budget, queries) in [(1152, 576), (1152, 144), (2304, 500), (4608, 36)] {
            let l = max_plans_per_query(budget, queries);
            assert!(max_queries(budget, l) >= queries);
            assert!(max_queries(budget, l + 1) < queries);
        }
    }

    #[test]
    fn qubits_per_variable_matches_paper_figure_6_axis() {
        assert_eq!(qubits_per_variable(2), 1.0);
        assert!((qubits_per_variable(3) - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(qubits_per_variable(4), 1.5);
        assert_eq!(qubits_per_variable(5), 1.6);
        // Monotone non-decreasing.
        let vals: Vec<f64> = (2..=20).map(qubits_per_variable).collect();
        assert!(vals.windows(2).all(|w| w[1] >= w[0] - 1e-12));
    }

    #[test]
    fn check_capacity_returns_typed_errors_for_impossible_topologies() {
        assert_eq!(check_capacity(1152, 2), Ok(576));
        assert_eq!(check_capacity(1152, 5), Ok(144));
        assert_eq!(
            check_capacity(4, 2),
            Err(crate::embedding::EmbeddingError::InsufficientCapacity {
                requested: 2,
                available: 4,
            })
        );
        assert!(check_capacity(1152, 0).is_err());
    }

    #[test]
    fn queries_per_cell_table() {
        assert_eq!(queries_per_cell(2), 4);
        assert_eq!(queries_per_cell(3), 2);
        assert_eq!(queries_per_cell(4), 1);
        assert_eq!(queries_per_cell(5), 1);
        assert_eq!(queries_per_cell(6), 0);
    }
}
