//! The physical mapping (Section 5): logical QUBO → qubit weights.
//!
//! Given a logical energy formula and a minor [`Embedding`], this module
//! produces the *physical energy formula* the annealer actually minimises:
//!
//! 1. the linear weight `w_i` of variable `X_i` is distributed uniformly over
//!    the `|B|` qubits of its chain (`w_i/|B|` each);
//! 2. each quadratic term `w_ij X_i X_j` is placed on one physical coupler
//!    between the two chains;
//! 3. every chain gets ferromagnetic equality terms
//!    `EB = Σ (b_k + b_{k+1} − 2 b_k b_{k+1})` along a spanning tree of the
//!    chain, scaled by a per-chain strength `w_B = U + ε` where `U` bounds
//!    the energy increase that making an inconsistent chain consistent can
//!    cause in the rest of the formula (Choi's parameter-setting rule).
//!
//! For a *consistent* physical assignment (all qubits of each chain equal)
//! the physical energy equals the logical energy exactly; the chain terms add
//! nothing. [`PhysicalMapping::unembed`] maps samples back to logical
//! assignments by majority vote, reporting how many chains were broken.

use crate::embedding::{Embedding, EmbeddingError};
use crate::graph::{ChimeraGraph, QubitId};
use mqo_core::ids::VarId;
use mqo_core::qubo::Qubo;
use std::collections::{HashMap, HashSet, VecDeque};

/// How ferromagnetic chain strengths are chosen.
///
/// The paper (following Choi) computes a *per-chain* bound, keeping every
/// weight as small as admissible because wide weight ranges degrade annealer
/// precision. The global alternative applies the largest per-chain bound to
/// every chain — simpler, but it inflates the energy range; the
/// `chain_strength` criterion bench quantifies the difference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ChainStrengthMode {
    /// Choi's per-chain bound (the paper's choice).
    #[default]
    PerChain,
    /// One global strength: the maximum of the per-chain bounds.
    GlobalMax,
}

/// Result of mapping one annealer sample back to logical variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnembedResult {
    /// Majority-vote value per logical variable.
    pub logical: Vec<bool>,
    /// Number of chains whose qubits disagreed (broken chains). Zero for any
    /// minimum-energy sample when chain strengths are set correctly.
    pub broken_chains: usize,
}

/// A fully programmed physical problem: the physical QUBO over densely
/// re-indexed active qubits, plus everything needed to move between logical
/// and physical assignments.
#[derive(Debug, Clone)]
pub struct PhysicalMapping {
    embedding: Embedding,
    /// Dense physical variable index per qubit (only chain qubits are active).
    phys_of_qubit: Vec<Option<u32>>,
    /// Qubit behind each dense physical variable.
    qubit_of_phys: Vec<QubitId>,
    /// The physical energy formula.
    qubo: Qubo,
    /// Ferromagnetic strength chosen for each chain.
    chain_strengths: Vec<f64>,
}

impl PhysicalMapping {
    /// Programs `logical` onto the hardware graph through `embedding`.
    ///
    /// `epsilon` is the slack added to every chain-strength lower bound (the
    /// paper keeps all weights as small as admissible because large weight
    /// ranges hurt annealer precision; it uses ε = 0.25).
    ///
    /// Fails if the embedding cannot realise the logical structure on this
    /// graph (broken/disconnected chains or a missing coupler).
    pub fn new(
        logical: &Qubo,
        embedding: Embedding,
        graph: &ChimeraGraph,
        epsilon: f64,
    ) -> Result<Self, EmbeddingError> {
        Self::with_mode(
            logical,
            embedding,
            graph,
            epsilon,
            ChainStrengthMode::PerChain,
        )
    }

    /// Like [`PhysicalMapping::new`] with an explicit chain-strength mode.
    pub fn with_mode(
        logical: &Qubo,
        embedding: Embedding,
        graph: &ChimeraGraph,
        epsilon: f64,
        mode: ChainStrengthMode,
    ) -> Result<Self, EmbeddingError> {
        assert!(epsilon > 0.0, "epsilon must be positive");
        assert_eq!(
            logical.num_vars(),
            embedding.num_vars(),
            "embedding must cover exactly the logical variables"
        );
        let required: Vec<(VarId, VarId)> = logical
            .quadratic()
            .iter()
            .map(|&(i, j, _)| (i, j))
            .collect();
        embedding.verify(graph, required.iter().copied())?;

        // Dense physical indices, chain by chain.
        let mut phys_of_qubit: Vec<Option<u32>> = vec![None; graph.num_qubits()];
        let mut qubit_of_phys: Vec<QubitId> = Vec::new();
        for chain in embedding.chains() {
            for &q in chain {
                phys_of_qubit[q.index()] = Some(qubit_of_phys.len() as u32);
                qubit_of_phys.push(q);
            }
        }
        let num_phys = qubit_of_phys.len();
        let phys = |q: QubitId| phys_of_qubit[q.index()].expect("chain qubit") as usize;

        // Step 1+2: place the logical weights.
        let mut lin = vec![0.0; num_phys];
        for (v, &w) in logical.linear().iter().enumerate() {
            let chain = embedding.chain(VarId::new(v));
            let share = w / chain.len() as f64;
            for &q in chain {
                lin[phys(q)] += share;
            }
        }
        let mut quad: HashMap<(usize, usize), f64> = HashMap::new();
        for &(i, j, w) in logical.quadratic() {
            let (qa, qb) = embedding
                .find_coupler(graph, i, j)
                .expect("verified edge must have a coupler");
            let (a, b) = (phys(qa), phys(qb));
            let key = if a < b { (a, b) } else { (b, a) };
            *quad.entry(key).or_insert(0.0) += w;
        }

        // Step 3: per-chain strengths from the logical-only physical weights.
        let mut chain_strengths = Vec::with_capacity(embedding.num_vars());
        for (v, chain) in embedding.chains().iter().enumerate() {
            let members: HashSet<usize> = chain.iter().map(|&q| phys(q)).collect();
            let mut up = 0.0; // Σ U0→1(b): worst-case increase setting all to 1
            let mut down = 0.0; // Σ U1→0(b)
            for &q in chain {
                let b = phys(q);
                let v_b = lin[b];
                let mut pos = 0.0;
                let mut neg = 0.0;
                for (&(x, y), &w) in &quad {
                    let other = if x == b {
                        y
                    } else if y == b {
                        x
                    } else {
                        continue;
                    };
                    if members.contains(&other) {
                        continue; // internal to the chain, excluded by the rule
                    }
                    if w > 0.0 {
                        pos += w;
                    } else {
                        neg += -w;
                    }
                }
                // Clamp per qubit: qubits already at the target value do not
                // change, so a qubit whose worst case is a decrease cannot
                // offset the increase caused by others.
                up += (v_b + pos).max(0.0);
                down += (-v_b + neg).max(0.0);
            }
            let u = up.min(down).max(0.0);
            let _ = v;
            chain_strengths.push(u + epsilon);
        }
        if mode == ChainStrengthMode::GlobalMax {
            let max = chain_strengths.iter().cloned().fold(0.0, f64::max);
            chain_strengths.fill(max);
        }

        // Add the ferromagnetic chain terms along a spanning tree.
        let mut builder = Qubo::builder(num_phys);
        for (b, &w) in lin.iter().enumerate() {
            builder.add_linear(VarId::new(b), w);
        }
        for (&(a, b), &w) in &quad {
            builder.add_quadratic(VarId::new(a), VarId::new(b), w);
        }
        for (v, chain) in embedding.chains().iter().enumerate() {
            let w_b = chain_strengths[v];
            for (qa, qb) in spanning_tree_edges(graph, chain) {
                let (a, b) = (phys(qa), phys(qb));
                builder.add_linear(VarId::new(a), w_b);
                builder.add_linear(VarId::new(b), w_b);
                builder.add_quadratic(VarId::new(a), VarId::new(b), -2.0 * w_b);
            }
        }

        Ok(PhysicalMapping {
            embedding,
            phys_of_qubit,
            qubit_of_phys,
            qubo: builder.build(),
            chain_strengths,
        })
    }

    /// The physical energy formula over dense physical variables.
    #[inline]
    pub fn physical_qubo(&self) -> &Qubo {
        &self.qubo
    }

    /// The embedding this mapping was programmed through.
    #[inline]
    pub fn embedding(&self) -> &Embedding {
        &self.embedding
    }

    /// Number of active physical variables (= qubits used).
    #[inline]
    pub fn num_physical_vars(&self) -> usize {
        self.qubit_of_phys.len()
    }

    /// The qubit behind a dense physical variable.
    #[inline]
    pub fn qubit_of_phys(&self, phys: usize) -> QubitId {
        self.qubit_of_phys[phys]
    }

    /// The dense physical variable of a qubit, if it is part of a chain.
    #[inline]
    pub fn phys_of_qubit(&self, q: QubitId) -> Option<usize> {
        self.phys_of_qubit[q.index()].map(|p| p as usize)
    }

    /// The chains of the embedding translated to dense physical indices, in
    /// logical-variable order — the representation device-side machinery
    /// (sampler hints, chain-break statistics) works with.
    pub fn dense_chains(&self) -> Vec<Vec<usize>> {
        self.embedding
            .chains()
            .iter()
            .map(|chain| {
                chain
                    .iter()
                    .map(|&q| {
                        self.phys_of_qubit(q)
                            .expect("every chain qubit is an active physical variable")
                    })
                    .collect()
            })
            .collect()
    }

    /// The ferromagnetic strength chosen for a chain.
    #[inline]
    pub fn chain_strength(&self, v: VarId) -> f64 {
        self.chain_strengths[v.index()]
    }

    /// Extends a logical assignment to the consistent physical assignment
    /// (every chain uniformly set to its variable's value). The physical
    /// energy of the result equals the logical energy exactly.
    pub fn extend(&self, logical: &[bool]) -> Vec<bool> {
        assert_eq!(logical.len(), self.embedding.num_vars());
        let mut phys = vec![false; self.num_physical_vars()];
        for (v, &value) in logical.iter().enumerate() {
            for &q in self.embedding.chain(VarId::new(v)) {
                phys[self.phys_of_qubit(q).expect("chain qubit")] = value;
            }
        }
        phys
    }

    /// Maps a physical sample back to logical variables by majority vote per
    /// chain, reporting broken chains.
    ///
    /// **Tie-breaking contract** (pinned — answer reproducibility depends on
    /// it): an even-length chain split exactly in half resolves to `true`
    /// (`2·ones >= len`). The rule is a pure function of the chain's qubit
    /// values — no RNG, no iteration-order dependence — so identical samples
    /// unembed identically on every host, thread count, and run.
    /// `true` (plan selected) is the deliberate direction: the decoder's
    /// repair pass only ever *removes* over-selected plans cheaply via
    /// min-delta settling, whereas a dropped `true` could silently lose the
    /// sampler's intent for that plan. `SampleSet::chain_break_stats`
    /// counts these ties separately (`tie_breaks` vs `majority_repairs`) so
    /// an operator can see how often the rule actually decided an answer.
    pub fn unembed(&self, phys: &[bool]) -> UnembedResult {
        assert_eq!(phys.len(), self.num_physical_vars());
        let mut logical = Vec::with_capacity(self.embedding.num_vars());
        let mut broken = 0;
        for chain in self.embedding.chains() {
            let ones = chain
                .iter()
                .filter(|&&q| phys[self.phys_of_qubit(q).expect("chain qubit")])
                .count();
            if ones != 0 && ones != chain.len() {
                broken += 1;
            }
            logical.push(2 * ones >= chain.len());
        }
        UnembedResult {
            logical,
            broken_chains: broken,
        }
    }
}

/// Spanning-tree edges of the chain's induced subgraph (BFS). The embedding
/// verifier has already established connectivity.
fn spanning_tree_edges(graph: &ChimeraGraph, chain: &[QubitId]) -> Vec<(QubitId, QubitId)> {
    if chain.len() <= 1 {
        return Vec::new();
    }
    let members: HashSet<QubitId> = chain.iter().copied().collect();
    let mut edges = Vec::with_capacity(chain.len() - 1);
    let mut seen = HashSet::new();
    let mut queue = VecDeque::new();
    seen.insert(chain[0]);
    queue.push_back(chain[0]);
    while let Some(q) = queue.pop_front() {
        for n in graph.neighbours(q) {
            if members.contains(&n) && seen.insert(n) {
                edges.push((q, n));
                queue.push_back(n);
            }
        }
    }
    debug_assert_eq!(edges.len(), chain.len() - 1, "chain must be connected");
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embedding::triad;
    use mqo_core::ids::VarId;

    /// A random-ish dense logical QUBO over n variables.
    fn dense_qubo(n: usize) -> Qubo {
        let mut b = Qubo::builder(n);
        for i in 0..n {
            b.add_linear(VarId::new(i), (i as f64) * 0.7 - 1.3);
            for j in i + 1..n {
                let w = ((i * 31 + j * 17) % 13) as f64 - 6.0;
                if w != 0.0 {
                    b.add_quadratic(VarId::new(i), VarId::new(j), w);
                }
            }
        }
        b.build()
    }

    fn mapping(n: usize) -> (PhysicalMapping, Qubo, ChimeraGraph) {
        let g = ChimeraGraph::new(3, 3);
        let logical = dense_qubo(n);
        let e = triad::triad(&g, 0, 0, n).unwrap();
        let pm = PhysicalMapping::new(&logical, e, &g, 0.25).unwrap();
        (pm, logical, g)
    }

    #[test]
    fn consistent_extension_preserves_energy_exactly() {
        let (pm, logical, _) = mapping(6);
        for mask in 0u32..64 {
            let x: Vec<bool> = (0..6).map(|i| mask & (1 << i) != 0).collect();
            let phys = pm.extend(&x);
            let le = logical.energy(&x);
            let pe = pm.physical_qubo().energy(&phys);
            assert!(
                (le - pe).abs() < 1e-9,
                "mask {mask}: logical {le} vs physical {pe}"
            );
        }
    }

    #[test]
    fn physical_ground_state_is_consistent_and_unembeds_to_logical_optimum() {
        // The decisive correctness property of the chain-strength rule: the
        // global minimum of the physical formula has no broken chains and
        // decodes to the logical optimum.
        let (pm, logical, _) = mapping(5);
        assert!(pm.num_physical_vars() <= 24);
        let (phys_best, phys_e) = pm.physical_qubo().brute_force_minimum();
        let (logical_best, logical_e) = logical.brute_force_minimum();
        let un = pm.unembed(&phys_best);
        assert_eq!(un.broken_chains, 0, "ground state must be chain-consistent");
        assert!((phys_e - logical_e).abs() < 1e-9);
        assert_eq!(
            logical.energy(&un.logical),
            logical.energy(&logical_best),
            "unembedded optimum must match the logical optimum"
        );
    }

    #[test]
    fn unembed_majority_vote_and_broken_chain_count() {
        let (pm, _, _) = mapping(6);
        // Flip a single qubit of the longest chain of the consistent
        // all-true assignment: chain breaks but majority still wins.
        let logical = vec![true; 6];
        let mut phys = pm.extend(&logical);
        let longest = (0..6)
            .map(VarId::new)
            .max_by_key(|&v| pm.embedding().chain(v).len())
            .unwrap();
        assert!(pm.embedding().chain(longest).len() >= 3);
        let q = pm.embedding().chain(longest)[0];
        phys[pm.phys_of_qubit(q).unwrap()] = false;
        let un = pm.unembed(&phys);
        assert_eq!(un.broken_chains, 1);
        assert_eq!(un.logical, logical);
    }

    #[test]
    fn even_chain_ties_resolve_to_true_deterministically() {
        // Find a mapping with an even-length chain and split that chain
        // exactly in half on top of the consistent all-false assignment.
        let (pm, even) = (2..=8usize)
            .find_map(|n| {
                let (pm, _, _) = mapping(n);
                let even = (0..n).map(VarId::new).find(|&v| {
                    let len = pm.embedding().chain(v).len();
                    len >= 2 && len % 2 == 0
                })?;
                Some((pm, even))
            })
            .expect("some triad embedding up to 8 vars has an even chain");
        let n = pm.embedding().num_vars();
        let chain = pm.embedding().chain(even).to_vec();
        let mut phys = pm.extend(&vec![false; n]);
        for &q in &chain[..chain.len() / 2] {
            phys[pm.phys_of_qubit(q).unwrap()] = true;
        }
        let un = pm.unembed(&phys);
        assert_eq!(un.broken_chains, 1, "a half-half chain is broken");
        assert!(
            un.logical[even.index()],
            "the pinned rule resolves an exact tie to true"
        );
        // Same sample, same answer — and flipping the *other* half must
        // give the same logical value: the rule depends only on the count.
        assert_eq!(pm.unembed(&phys).logical, un.logical);
        let mut other_half = pm.extend(&vec![false; n]);
        for &q in &chain[chain.len() / 2..] {
            other_half[pm.phys_of_qubit(q).unwrap()] = true;
        }
        let un2 = pm.unembed(&other_half);
        assert!(un2.logical[even.index()]);
        // One qubit past the tie in either direction follows the majority.
        phys[pm.phys_of_qubit(chain[chain.len() / 2]).unwrap()] = true;
        assert!(pm.unembed(&phys).logical[even.index()]);
        for &q in &chain {
            phys[pm.phys_of_qubit(q).unwrap()] = false;
        }
        phys[pm.phys_of_qubit(chain[0]).unwrap()] = true;
        if chain.len() > 2 {
            assert!(!pm.unembed(&phys).logical[even.index()]);
        }
    }

    #[test]
    fn chain_strengths_are_positive_and_scale_with_weights() {
        let (pm, _, _) = mapping(6);
        for v in 0..6 {
            assert!(pm.chain_strength(VarId::new(v)) > 0.0);
        }

        // Scaling all logical weights by 10 must scale the strengths too.
        let g = ChimeraGraph::new(3, 3);
        let logical = dense_qubo(6);
        let mut b = Qubo::builder(6);
        for (i, &w) in logical.linear().iter().enumerate() {
            b.add_linear(VarId::new(i), 10.0 * w);
        }
        for &(i, j, w) in logical.quadratic() {
            b.add_quadratic(i, j, 10.0 * w);
        }
        let scaled = b.build();
        let e = triad::triad(&g, 0, 0, 6).unwrap();
        let pm10 = PhysicalMapping::new(&scaled, e, &g, 0.25).unwrap();
        let mut grew = false;
        for v in 0..6 {
            let v = VarId::new(v);
            assert!(pm10.chain_strength(v) >= pm.chain_strength(v) - 1e-9);
            if pm10.chain_strength(v) > pm.chain_strength(v) + 1e-9 {
                grew = true;
            }
        }
        assert!(
            grew,
            "larger weights must raise at least one chain strength"
        );
    }

    #[test]
    fn breaking_a_chain_raises_energy_by_at_least_its_strength_margin() {
        // Choi's rule guarantees: flipping one qubit away from the consistent
        // ground state cannot lower the energy.
        let (pm, _, _) = mapping(5);
        let (phys_best, best_e) = pm.physical_qubo().brute_force_minimum();
        for i in 0..pm.num_physical_vars() {
            let mut x = phys_best.clone();
            x[i] = !x[i];
            assert!(
                pm.physical_qubo().energy(&x) >= best_e - 1e-9,
                "single-qubit flip {i} beat the ground state"
            );
        }
    }

    #[test]
    fn global_max_mode_uniformly_inflates_chain_strengths() {
        let g = ChimeraGraph::new(3, 3);
        let logical = dense_qubo(6);
        let e = triad::triad(&g, 0, 0, 6).unwrap();
        let per_chain = PhysicalMapping::new(&logical, e.clone(), &g, 0.25).unwrap();
        let global =
            PhysicalMapping::with_mode(&logical, e, &g, 0.25, ChainStrengthMode::GlobalMax)
                .unwrap();
        let max = (0..6)
            .map(|v| per_chain.chain_strength(VarId::new(v)))
            .fold(0.0, f64::max);
        for v in 0..6 {
            let v = VarId::new(v);
            assert_eq!(global.chain_strength(v), max);
            assert!(global.chain_strength(v) >= per_chain.chain_strength(v));
        }
        // The global mode never shrinks — and generally widens — the
        // physical weight range the annealer must resolve.
        assert!(
            global.physical_qubo().max_abs_weight()
                >= per_chain.physical_qubo().max_abs_weight() - 1e-9
        );
        // Its ground state is still correct.
        let (phys_best, _) = global.physical_qubo().brute_force_minimum();
        let un = global.unembed(&phys_best);
        assert_eq!(un.broken_chains, 0);
        assert_eq!(un.logical, logical.brute_force_minimum().0);
    }

    #[test]
    fn phys_qubit_correspondence_round_trips() {
        let (pm, _, _) = mapping(8);
        for p in 0..pm.num_physical_vars() {
            assert_eq!(pm.phys_of_qubit(pm.qubit_of_phys(p)), Some(p));
        }
    }

    #[test]
    fn single_qubit_chains_need_no_tree_edges() {
        let g = ChimeraGraph::new(1, 1);
        let logical = {
            let mut b = Qubo::builder(2);
            b.add_linear(VarId(0), 1.0);
            b.add_quadratic(VarId(0), VarId(1), -2.0);
            b.build()
        };
        let e = crate::embedding::triad::single_cell(&g, 0, 0, 2)
            .map(|c| Embedding::new(c, g.num_qubits()).unwrap())
            .unwrap();
        let pm = PhysicalMapping::new(&logical, e, &g, 0.25).unwrap();
        assert_eq!(pm.num_physical_vars(), 2);
        // Physical formula must be identical to the logical one.
        let (pb, pe) = pm.physical_qubo().brute_force_minimum();
        let (lb, le) = logical.brute_force_minimum();
        assert_eq!(pb, lb);
        assert!((pe - le).abs() < 1e-12);
    }

    #[test]
    fn mismatched_variable_counts_panic() {
        let g = ChimeraGraph::new(1, 1);
        let logical = Qubo::builder(3).build();
        let e = crate::embedding::triad::single_cell(&g, 0, 0, 2)
            .map(|c| Embedding::new(c, g.num_qubits()).unwrap())
            .unwrap();
        let result = std::panic::catch_unwind(|| PhysicalMapping::new(&logical, e, &g, 0.25));
        assert!(result.is_err());
    }
}
