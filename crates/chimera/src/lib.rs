#![warn(missing_docs)]

//! # mqo-chimera
//!
//! The physical side of the paper's pipeline: the D-Wave 2X **Chimera qubit
//! matrix** (Section 2, Figure 1), **minor embeddings** of logical QUBO
//! variables onto qubit chains (Section 5, Figures 2–3), the **physical
//! mapping** that programs a logical energy formula onto qubit weights and
//! coupler strengths with Choi's chain-strength rule, and the closed-form
//! **capacity analysis** behind Theorems 2–3 and Figure 7.
//!
//! The crate is hardware-faithful but hardware-free: broken qubits, sparse
//! couplers, and unit-cell structure are modelled exactly, so anything that
//! embeds here would embed on the physical machine with the same defect set.
//!
//! ```
//! use mqo_chimera::graph::ChimeraGraph;
//! use mqo_chimera::embedding::triad;
//! use mqo_chimera::physical::PhysicalMapping;
//! use mqo_core::{Qubo, VarId};
//!
//! // A 3-variable logical problem embedded on an intact 2x2 Chimera patch.
//! let mut b = Qubo::builder(3);
//! b.add_linear(VarId(0), -1.0);
//! b.add_quadratic(VarId(0), VarId(1), 2.0);
//! b.add_quadratic(VarId(1), VarId(2), -1.5);
//! let logical = b.build();
//!
//! let graph = ChimeraGraph::new(2, 2);
//! let embedding = triad::triad(&graph, 0, 0, 3).unwrap();
//! let pm = PhysicalMapping::new(&logical, embedding, &graph, 0.25).unwrap();
//!
//! // The physical ground state decodes back to the logical ground state.
//! let (phys, _) = pm.physical_qubo().brute_force_minimum();
//! let decoded = pm.unembed(&phys);
//! assert_eq!(decoded.broken_chains, 0);
//! assert_eq!(logical.brute_force_minimum().0, decoded.logical);
//! ```

pub mod capacity;
pub mod embedding;
pub mod graph;
pub mod packing;
pub mod physical;
pub mod render;

pub use embedding::{Embedding, EmbeddingError};
pub use graph::{ChimeraGraph, QubitId, Side};
pub use physical::{PhysicalMapping, UnembedResult};
