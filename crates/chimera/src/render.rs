//! ASCII rendering of the qubit matrix, embeddings, and chains — the textual
//! counterpart of the paper's Figures 1–3.
//!
//! Each unit cell is drawn as two columns of four slots:
//!
//! ```text
//! +---------+
//! | 1  | 2  |
//! | 3  | 3  |
//! | .  | 4  |
//! | XX | .  |
//! +---------+
//! ```
//!
//! Slots show the logical variable occupying the qubit, `.` for an unused
//! working qubit and `XX` for a broken one.

use crate::embedding::Embedding;
use crate::graph::{ChimeraGraph, Side, HALF_CELL};

/// Renders the graph with an optional embedding overlay. Variable ids are
/// shown modulo 100 to keep cells compact; `None` renders bare topology.
pub fn render(graph: &ChimeraGraph, embedding: Option<&Embedding>) -> String {
    let mut out = String::new();
    let cell_width = 11; // "| aa | bb |"
    let horizontal_rule = |out: &mut String| {
        for _ in 0..graph.cols() {
            out.push('+');
            for _ in 0..cell_width - 1 {
                out.push('-');
            }
        }
        out.push_str("+\n");
    };

    for row in 0..graph.rows() {
        horizontal_rule(&mut out);
        for k in 0..HALF_CELL {
            for col in 0..graph.cols() {
                let left = graph.qubit(row, col, Side::Vertical, k);
                let right = graph.qubit(row, col, Side::Horizontal, k);
                let fmt = |q| {
                    if !graph.is_working(q) {
                        "XX".to_string()
                    } else if let Some(v) = embedding.and_then(|e| e.owner(q)) {
                        format!("{:<2}", v.index() % 100)
                    } else {
                        ". ".to_string()
                    }
                };
                out.push_str(&format!("| {} | {} ", fmt(left), fmt(right)));
            }
            out.push_str("|\n");
        }
    }
    horizontal_rule(&mut out);
    out
}

/// Renders a one-line summary per chain: variable, length, and qubit list.
pub fn chain_summary(graph: &ChimeraGraph, embedding: &Embedding) -> String {
    let mut out = String::new();
    for (v, chain) in embedding.chains().iter().enumerate() {
        let coords: Vec<String> = chain
            .iter()
            .map(|&q| {
                let c = graph.coords(q);
                let side = match c.side {
                    Side::Vertical => 'L',
                    Side::Horizontal => 'R',
                };
                format!("({},{}){}{}", c.row, c.col, side, c.k)
            })
            .collect();
        out.push_str(&format!(
            "var {:>3}: chain of {} [{}]\n",
            v,
            chain.len(),
            coords.join(" ")
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embedding::triad;

    #[test]
    fn render_shows_every_cell_and_marks_broken_qubits() {
        let g = ChimeraGraph::new(2, 2);
        let dead = g.qubit(0, 1, Side::Horizontal, 3);
        let g = g.with_broken(&[dead]);
        let s = render(&g, None);
        assert_eq!(s.matches("XX").count(), 1);
        // 2 rows × 4 slot lines + 3 rules.
        assert_eq!(s.lines().count(), 2 * 4 + 3);
    }

    #[test]
    fn render_overlays_chain_labels() {
        let g = ChimeraGraph::new(2, 2);
        let e = triad::triad(&g, 0, 0, 8).unwrap();
        let s = render(&g, Some(&e));
        for v in 0..8 {
            assert!(s.contains(&format!(" {v} ")), "missing label {v} in:\n{s}");
        }
    }

    #[test]
    fn chain_summary_lists_every_variable_once() {
        let g = ChimeraGraph::new(2, 2);
        let e = triad::triad(&g, 0, 0, 5).unwrap();
        let s = chain_summary(&g, &e);
        assert_eq!(s.lines().count(), 5);
        assert!(s.contains("var   0"));
        assert!(s.contains("(0,0)L"));
    }
}
