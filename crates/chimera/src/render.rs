//! ASCII rendering of the qubit matrix, embeddings, and chains — the textual
//! counterpart of the paper's Figures 1–3.
//!
//! Each unit cell is drawn as two columns of four slots:
//!
//! ```text
//! +---------+
//! | 1  | 2  |
//! | 3  | 3  |
//! | .  | 4  |
//! | XX | .  |
//! +---------+
//! ```
//!
//! Slots show the logical variable occupying the qubit, `.` for an unused
//! working qubit and `XX` for a broken one.

use crate::embedding::Embedding;
use crate::graph::{ChimeraGraph, Side, HALF_CELL};

/// Renders the graph with an optional embedding overlay. Variable ids are
/// shown modulo 100 to keep cells compact; `None` renders bare topology.
pub fn render(graph: &ChimeraGraph, embedding: Option<&Embedding>) -> String {
    let mut out = String::new();
    let cell_width = 11; // "| aa | bb |"
    let horizontal_rule = |out: &mut String| {
        for _ in 0..graph.cols() {
            out.push('+');
            for _ in 0..cell_width - 1 {
                out.push('-');
            }
        }
        out.push_str("+\n");
    };

    for row in 0..graph.rows() {
        horizontal_rule(&mut out);
        for k in 0..HALF_CELL {
            for col in 0..graph.cols() {
                let left = graph.qubit(row, col, Side::Vertical, k);
                let right = graph.qubit(row, col, Side::Horizontal, k);
                let fmt = |q| {
                    if !graph.is_working(q) {
                        "XX".to_string()
                    } else if let Some(v) = embedding.and_then(|e| e.owner(q)) {
                        format!("{:<2}", v.index() % 100)
                    } else {
                        ". ".to_string()
                    }
                };
                out.push_str(&format!("| {} | {} ", fmt(left), fmt(right)));
            }
            out.push_str("|\n");
        }
    }
    horizontal_rule(&mut out);
    out
}

/// Renders a packed placement map: one character cell per unit cell,
/// tenants outlined as regions (internal borders between cells of the same
/// tenant are suppressed), `.` for free cells and an `x` mark on any cell
/// containing a dead qubit.
///
/// ```text
/// +---------+----+
/// | 0    0  | .  |
/// +---------+----+
/// | 1x   1  | .x |
/// +---------+----+
/// ```
pub fn render_packed(graph: &ChimeraGraph, placements: &[crate::packing::Placement]) -> String {
    let (rows, cols) = (graph.rows(), graph.cols());
    let mut owner: Vec<Vec<Option<usize>>> = vec![vec![None; cols]; rows];
    for (tenant, p) in placements.iter().enumerate() {
        let r = &p.region;
        for owner_row in owner.iter_mut().skip(r.origin_row).take(r.side) {
            for slot in owner_row.iter_mut().skip(r.origin_col).take(r.side) {
                *slot = Some(tenant);
            }
        }
    }
    let has_dead = |row: usize, col: usize| {
        [Side::Vertical, Side::Horizontal]
            .iter()
            .any(|&side| (0..HALF_CELL).any(|k| !graph.is_working(graph.qubit(row, col, side, k))))
    };
    // Border between two (possibly out-of-graph) cells: drawn unless both
    // sides belong to the same tenant.
    let joined = |a: Option<Option<usize>>, b: Option<Option<usize>>| match (a, b) {
        (Some(Some(x)), Some(Some(y))) => x == y,
        _ => false,
    };
    let cell_at = |row: isize, col: isize| -> Option<Option<usize>> {
        (row >= 0 && col >= 0 && (row as usize) < rows && (col as usize) < cols)
            .then(|| owner[row as usize][col as usize])
    };
    const W: usize = 5; // interior width of one cell
    let mut out = String::new();
    for row in 0..=rows as isize {
        // Rule line above `row`.
        for col in 0..cols as isize {
            out.push('+');
            let rule = !joined(cell_at(row - 1, col), cell_at(row, col));
            for _ in 0..W {
                out.push(if rule { '-' } else { ' ' });
            }
        }
        out.push_str("+\n");
        if row == rows as isize {
            break;
        }
        // Content line of `row`.
        for col in 0..cols as isize {
            let bar = !joined(cell_at(row, col - 1), cell_at(row, col));
            out.push(if bar { '|' } else { ' ' });
            let label = match owner[row as usize][col as usize] {
                Some(t) => t.to_string(),
                None => ".".to_string(),
            };
            let mark = if has_dead(row as usize, col as usize) {
                "x"
            } else {
                " "
            };
            out.push_str(&format!(" {label:<2}{mark} "));
        }
        out.push_str("|\n");
    }
    out
}

/// Renders a one-line summary per chain: variable, length, and qubit list.
pub fn chain_summary(graph: &ChimeraGraph, embedding: &Embedding) -> String {
    let mut out = String::new();
    for (v, chain) in embedding.chains().iter().enumerate() {
        let coords: Vec<String> = chain
            .iter()
            .map(|&q| {
                let c = graph.coords(q);
                let side = match c.side {
                    Side::Vertical => 'L',
                    Side::Horizontal => 'R',
                };
                format!("({},{}){}{}", c.row, c.col, side, c.k)
            })
            .collect();
        out.push_str(&format!(
            "var {:>3}: chain of {} [{}]\n",
            v,
            chain.len(),
            coords.join(" ")
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embedding::triad;

    #[test]
    fn render_shows_every_cell_and_marks_broken_qubits() {
        let g = ChimeraGraph::new(2, 2);
        let dead = g.qubit(0, 1, Side::Horizontal, 3);
        let g = g.with_broken(&[dead]);
        let s = render(&g, None);
        assert_eq!(s.matches("XX").count(), 1);
        // 2 rows × 4 slot lines + 3 rules.
        assert_eq!(s.lines().count(), 2 * 4 + 3);
    }

    #[test]
    fn render_overlays_chain_labels() {
        let g = ChimeraGraph::new(2, 2);
        let e = triad::triad(&g, 0, 0, 8).unwrap();
        let s = render(&g, Some(&e));
        for v in 0..8 {
            assert!(s.contains(&format!(" {v} ")), "missing label {v} in:\n{s}");
        }
    }

    #[test]
    fn render_packed_snapshot_outlines_regions_and_marks_dead_qubits() {
        use crate::packing;
        let g = ChimeraGraph::new(3, 3);
        let dead = g.qubit(2, 2, Side::Horizontal, 1);
        let g = g.with_broken(&[dead]);
        // Tenant 0 needs a 2×2 region, tenants 1 and 2 one cell each.
        let placements: Vec<_> = packing::pack(&g, &[8, 4, 4])
            .into_iter()
            .flatten()
            .collect();
        assert_eq!(placements.len(), 3);
        let s = render_packed(&g, &placements);
        let expected = "\
+-----+-----+-----+
| 0     0   | 1   |
+     +     +-----+
| 0     0   | 2   |
+-----+-----+-----+
| .   | .   | . x |
+-----+-----+-----+
";
        assert_eq!(s, expected, "snapshot drift:\n{s}");
    }

    #[test]
    fn render_packed_of_an_empty_placement_is_bare_topology() {
        let g = ChimeraGraph::new(2, 2);
        let s = render_packed(&g, &[]);
        assert_eq!(s.matches('.').count(), 4, "all four cells free:\n{s}");
        assert_eq!(s.lines().count(), 2 * 2 + 1);
    }

    #[test]
    fn chain_summary_lists_every_variable_once() {
        let g = ChimeraGraph::new(2, 2);
        let e = triad::triad(&g, 0, 0, 5).unwrap();
        let s = chain_summary(&g, &e);
        assert_eq!(s.lines().count(), 5);
        assert!(s.contains("var   0"));
        assert!(s.contains("(0,0)L"));
    }
}
