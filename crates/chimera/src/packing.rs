//! Chip packing: placing several independently embedded instances onto
//! disjoint unit-cell regions of one Chimera graph, so one programming
//! cycle anneals a whole batch of tenants.
//!
//! The paper's MQO instances occupy only a handful of unit cells (Table 1's
//! small classes), while the D-Wave 2X exposes a 12×12 cell grid — serving
//! one request per programming cycle wastes most of the chip. This module
//! provides the geometry half of multi-tenant packing:
//!
//! * [`footprint_side`] — the per-instance cell footprint, derived from the
//!   TRIAD capacity bound (`⌈n/4⌉` cells per side for an `n`-variable
//!   clique);
//! * [`canonical_embedding`] — the instance's embedding expressed relative
//!   to its own region origin (a TRIAD anchored at cell `(0, 0)` of a
//!   pristine `side × side` region graph). Canonical embeddings are what a
//!   cache should store: they are placement-independent, so a warm hit
//!   relocates to wherever the placer finds room without re-embedding;
//! * [`translate_embedding`] — relocates a canonical embedding to a concrete
//!   origin on the real graph. Chimera is translation-invariant: every
//!   intra-region coupler exists at every origin, so the translated chains
//!   realise exactly the couplers the canonical ones do;
//! * [`Placer`] — a deterministic first-fit placer over the cell grid with
//!   fault-aware derating: a region is only accepted when every qubit the
//!   translated chains touch is functional, so dead qubits exclude exactly
//!   the placements they would corrupt;
//! * [`ffd_order`] / [`pack`] — first-fit-decreasing over footprints
//!   (stable sort, so equal footprints keep arrival order and the whole
//!   pipeline stays deterministic: same queue order → same placement).
//!
//! Bit-identity note: the TRIAD construction is origin-relative, so
//! translating the canonical embedding to origin `(r, c)` reproduces
//! `triad(graph, r, c, n)` verbatim. Downstream, the physical mapping
//! assigns dense spin indices chain-by-chain in chain order and the device's
//! fault/gauge/read streams are keyed on dense indices and the request seed
//! — never on chip location — so a tenant's samples are bit-identical
//! wherever its region lands.

use crate::embedding::{triad, Embedding, EmbeddingError};
use crate::graph::{ChimeraGraph, Side, CELL_SIZE, HALF_CELL};
use serde::{Deserialize, Serialize};

/// Cells per side of the square region an `num_vars`-variable instance
/// needs under the TRIAD bound.
pub fn footprint_side(num_vars: usize) -> usize {
    assert!(num_vars >= 1, "an instance needs at least one variable");
    triad::triad_block_side(num_vars)
}

/// The instance's embedding relative to its own region origin: a TRIAD for
/// `K_num_vars` anchored at cell `(0, 0)` of a pristine
/// `footprint_side × footprint_side` region graph.
///
/// This is the relocatable artifact an embedding cache should hold. On a
/// pristine region the TRIAD construction always succeeds, and it is exactly
/// what the full-graph embedder (`embed_structure`'s TRIAD origin scan)
/// produces at the first working origin — which is why placement-based
/// solves stay bit-identical to the legacy whole-graph path.
pub fn canonical_embedding(num_vars: usize) -> Embedding {
    let side = footprint_side(num_vars);
    let region = ChimeraGraph::new(side, side);
    triad::triad(&region, 0, 0, num_vars).expect("TRIAD always fits its own pristine region block")
}

/// The pristine region graph a canonical embedding is expressed on. Its
/// [`ChimeraGraph::fingerprint`] keys cached canonical embeddings, keeping
/// them disjoint from whole-graph cache entries.
pub fn region_graph(num_vars: usize) -> ChimeraGraph {
    let side = footprint_side(num_vars);
    ChimeraGraph::new(side, side)
}

/// A placed tenant's cell region: a `side × side` block of unit cells
/// anchored at `(origin_row, origin_col)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Region {
    /// Top cell row of the block.
    pub origin_row: usize,
    /// Left cell column of the block.
    pub origin_col: usize,
    /// Cells per side.
    pub side: usize,
}

impl Region {
    /// Whether a cell lies inside the region.
    pub fn contains(&self, row: usize, col: usize) -> bool {
        row >= self.origin_row
            && row < self.origin_row + self.side
            && col >= self.origin_col
            && col < self.origin_col + self.side
    }
}

/// Relocates a canonical region embedding (chains over a `side × side`
/// region graph) to the block anchored at `(origin_row, origin_col)` of
/// `graph`.
///
/// Coordinates are remapped structurally — region cell `(r, c)` becomes
/// graph cell `(origin_row + r, origin_col + c)` with side and in-column
/// index preserved — never by linear-index arithmetic, because qubit indices
/// depend on the grid width.
pub fn translate_embedding(
    canonical: &Embedding,
    side: usize,
    origin_row: usize,
    origin_col: usize,
    graph: &ChimeraGraph,
) -> Result<Embedding, EmbeddingError> {
    if origin_row + side > graph.rows() || origin_col + side > graph.cols() {
        return Err(EmbeddingError::InsufficientCapacity {
            requested: side,
            available: graph.rows().min(graph.cols()),
        });
    }
    let chains = canonical
        .chains()
        .iter()
        .map(|chain| {
            chain
                .iter()
                .map(|&q| {
                    let idx = q.index();
                    let cell = idx / CELL_SIZE;
                    let within = idx % CELL_SIZE;
                    let (s, k) = if within < HALF_CELL {
                        (Side::Vertical, within)
                    } else {
                        (Side::Horizontal, within - HALF_CELL)
                    };
                    graph.qubit(cell / side + origin_row, cell % side + origin_col, s, k)
                })
                .collect()
        })
        .collect();
    Embedding::new(chains, graph.num_qubits())
}

/// A tenant successfully placed on the chip.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    /// The cell block the tenant owns.
    pub region: Region,
    /// The canonical embedding translated to that block.
    pub embedding: Embedding,
}

/// Deterministic first-fit placer over the unit-cell grid.
///
/// Cells are claimed in whole `side × side` blocks, scanned row-major from
/// the top-left, so a given sequence of `place` calls on a given graph
/// always yields the same placements. Fault-aware derating is precise: an
/// origin is rejected exactly when one of the translated chain qubits is
/// broken there, so dead qubits exclude the regions they would corrupt and
/// no others.
pub struct Placer<'a> {
    graph: &'a ChimeraGraph,
    /// `free[row * cols + col]` — whether the cell is still unclaimed.
    free: Vec<bool>,
}

impl<'a> Placer<'a> {
    /// A placer with every cell of `graph` unclaimed.
    pub fn new(graph: &'a ChimeraGraph) -> Self {
        Placer {
            graph,
            free: vec![true; graph.rows() * graph.cols()],
        }
    }

    /// Number of cells not yet claimed by a placement.
    pub fn cells_free(&self) -> usize {
        self.free.iter().filter(|&&f| f).count()
    }

    /// Places a canonical embedding on the first free, fully functional
    /// `side × side` block (row-major scan), claiming its cells. Returns
    /// `None` — declining the tenant — when no such block remains.
    pub fn place(&mut self, canonical: &Embedding, side: usize) -> Option<Placement> {
        if side == 0 || side > self.graph.rows() || side > self.graph.cols() {
            return None;
        }
        let cols = self.graph.cols();
        for origin_row in 0..=self.graph.rows() - side {
            'origin: for origin_col in 0..=cols - side {
                for r in origin_row..origin_row + side {
                    for c in origin_col..origin_col + side {
                        if !self.free[r * cols + c] {
                            continue 'origin;
                        }
                    }
                }
                let Ok(embedding) =
                    translate_embedding(canonical, side, origin_row, origin_col, self.graph)
                else {
                    continue;
                };
                if embedding
                    .chains()
                    .iter()
                    .flatten()
                    .any(|&q| !self.graph.is_working(q))
                {
                    continue;
                }
                for r in origin_row..origin_row + side {
                    for c in origin_col..origin_col + side {
                        self.free[r * cols + c] = false;
                    }
                }
                return Some(Placement {
                    region: Region {
                        origin_row,
                        origin_col,
                        side,
                    },
                    embedding,
                });
            }
        }
        None
    }
}

/// First-fit-decreasing placement order: indices of `sides` sorted by
/// descending footprint. The sort is stable, so equal footprints keep their
/// arrival order and the order is a pure function of the input.
pub fn ffd_order(sides: &[usize]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..sides.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(sides[i]));
    order
}

/// Packs a batch of instances (given by variable count) onto `graph` in
/// first-fit-decreasing order. The result is aligned with the input:
/// `None` marks a declined tenant.
pub fn pack(graph: &ChimeraGraph, num_vars: &[usize]) -> Vec<Option<Placement>> {
    let sides: Vec<usize> = num_vars.iter().map(|&n| footprint_side(n)).collect();
    let mut placer = Placer::new(graph);
    let mut out: Vec<Option<Placement>> = num_vars.iter().map(|_| None).collect();
    for &i in &ffd_order(&sides) {
        let canonical = canonical_embedding(num_vars[i]);
        out[i] = placer.place(&canonical, sides[i]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqo_core::ids::VarId;

    fn all_pairs(n: usize) -> Vec<(VarId, VarId)> {
        let mut v = Vec::new();
        for i in 0..n {
            for j in i + 1..n {
                v.push((VarId::new(i), VarId::new(j)));
            }
        }
        v
    }

    #[test]
    fn footprint_matches_the_triad_bound() {
        for (n, side) in [(1, 1), (4, 1), (5, 2), (8, 2), (9, 3), (12, 3)] {
            assert_eq!(footprint_side(n), side, "n={n}");
        }
    }

    #[test]
    fn translated_canonical_equals_triad_at_that_origin() {
        let g = ChimeraGraph::new(5, 7);
        for n in [2, 4, 5, 9] {
            let side = footprint_side(n);
            let canonical = canonical_embedding(n);
            for (dr, dc) in [(0, 0), (1, 2), (2, 4)] {
                let placed = translate_embedding(&canonical, side, dr, dc, &g).unwrap();
                let direct = triad::triad(&g, dr, dc, n).unwrap();
                assert_eq!(placed, direct, "n={n} origin=({dr},{dc})");
            }
        }
    }

    #[test]
    fn translation_off_the_grid_is_rejected() {
        let g = ChimeraGraph::new(2, 2);
        let canonical = canonical_embedding(8); // side 2
        let err = translate_embedding(&canonical, 2, 1, 0, &g).unwrap_err();
        assert!(matches!(err, EmbeddingError::InsufficientCapacity { .. }));
    }

    #[test]
    fn placer_fills_disjoint_regions_row_major() {
        let g = ChimeraGraph::new(2, 2);
        let mut placer = Placer::new(&g);
        let canonical = canonical_embedding(4); // one cell each
        let mut regions = Vec::new();
        for _ in 0..4 {
            let p = placer.place(&canonical, 1).expect("room for four cells");
            assert!(p.embedding.verify(&g, all_pairs(4)).is_ok());
            regions.push(p.region);
        }
        assert_eq!(
            regions
                .iter()
                .map(|r| (r.origin_row, r.origin_col))
                .collect::<Vec<_>>(),
            vec![(0, 0), (0, 1), (1, 0), (1, 1)]
        );
        assert_eq!(placer.cells_free(), 0);
        assert!(placer.place(&canonical, 1).is_none(), "full chip declines");
    }

    #[test]
    fn placed_tenants_never_share_a_qubit() {
        let g = ChimeraGraph::new(4, 4);
        let placements = pack(&g, &[5, 4, 8, 3, 2]);
        let mut seen = std::collections::HashSet::new();
        for p in placements.iter().flatten() {
            for &q in p.embedding.chains().iter().flatten() {
                assert!(seen.insert(q), "{q} claimed twice");
            }
        }
        assert!(placements.iter().all(Option::is_some));
    }

    #[test]
    fn dead_qubits_exclude_exactly_the_regions_they_touch() {
        let g = ChimeraGraph::new(2, 2);
        // Kill a qubit the K4 TRIAD uses in cell (0, 0): L0 is chain 0's
        // only qubit there.
        let dead = g.qubit(0, 0, Side::Vertical, 0);
        let g = g.with_broken(&[dead]);
        let mut placer = Placer::new(&g);
        let canonical = canonical_embedding(4);
        let p = placer.place(&canonical, 1).expect("three cells still work");
        assert_eq!((p.region.origin_row, p.region.origin_col), (0, 1));
        // The dead cell stays unclaimed but unusable for K4; a K1 canonical
        // avoids L0 only if its chain does — K1 uses L0, so it skips too.
        let single = canonical_embedding(1);
        let p1 = placer.place(&single, 1).expect("cells remain");
        assert_eq!((p1.region.origin_row, p1.region.origin_col), (1, 0));
    }

    #[test]
    fn ffd_is_decreasing_and_stable() {
        let sides = [1, 3, 2, 3, 1, 2];
        assert_eq!(ffd_order(&sides), vec![1, 3, 2, 5, 0, 4]);
    }

    #[test]
    fn pack_declines_the_overflow_tenant_not_the_batch() {
        let g = ChimeraGraph::new(2, 2);
        // Three 2-cell-side tenants cannot all fit on a 2×2 grid: FFD
        // places the first and declines the rest; the single-cell tenant
        // would fit but its cells are gone after the big one lands... on a
        // 2×2 grid a side-2 block takes everything.
        let placements = pack(&g, &[8, 8, 2]);
        assert!(placements[0].is_some());
        assert!(placements[1].is_none());
        assert!(placements[2].is_none());
    }

    #[test]
    fn region_contains_its_cells_only() {
        let r = Region {
            origin_row: 1,
            origin_col: 2,
            side: 2,
        };
        assert!(r.contains(1, 2) && r.contains(2, 3));
        assert!(!r.contains(0, 2) && !r.contains(1, 4) && !r.contains(3, 3));
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Same queue order → same placement, and placements are
            /// always pairwise disjoint with in-bounds, working qubits.
            #[test]
            fn placer_is_deterministic_and_disjoint(
                sizes in proptest::collection::vec(1usize..=9, 1..8),
                broken_seed in 0u64..64,
            ) {
                let mut g = ChimeraGraph::new(4, 4);
                let mut rng = {
                    use rand::SeedableRng;
                    rand_chacha::ChaCha8Rng::seed_from_u64(broken_seed)
                };
                g.break_random_qubits((broken_seed % 16) as usize, &mut rng);

                let a = pack(&g, &sizes);
                let b = pack(&g, &sizes);
                prop_assert_eq!(&a, &b);

                let mut seen = std::collections::HashSet::new();
                for p in a.iter().flatten() {
                    for &q in p.embedding.chains().iter().flatten() {
                        prop_assert!(g.is_working(q));
                        prop_assert!(seen.insert(q), "{} claimed twice", q);
                    }
                }
            }
        }

        proptest! {
            /// Translation is exactly TRIAD at the target origin.
            #[test]
            fn translation_reproduces_triad(n in 1usize..=16, dr in 0usize..3, dc in 0usize..3) {
                let g = ChimeraGraph::new(7, 7);
                let side = footprint_side(n);
                let canonical = canonical_embedding(n);
                let placed = translate_embedding(&canonical, side, dr, dc, &g).unwrap();
                let direct = triad::triad(&g, dr, dc, n).unwrap();
                prop_assert_eq!(placed, direct);
            }
        }
    }
}
