//! Minor embeddings: mapping logical QUBO variables onto chains of physical
//! qubits (Section 5 of the paper).
//!
//! An [`Embedding`] assigns each logical variable a *chain* — a connected,
//! non-empty group of functional qubits — such that chains are pairwise
//! disjoint and every quadratic term of the logical energy formula can be
//! placed on at least one physical coupler between the two chains involved.
//!
//! Two concrete pattern generators are provided, mirroring the paper:
//!
//! * [`triad`] — Choi's TRIAD pattern (Figure 2), which connects *every* pair
//!   of chains and therefore embeds arbitrary QUBOs, at a quadratic cost in
//!   qubits (Theorem 3);
//! * [`clustered`] — the clustered pattern (Figure 3), which embeds one TRIAD
//!   per query cluster and exposes the sparse inter-cluster couplers for work
//!   sharing, growing only linearly in the number of clusters.

pub mod clustered;
pub mod heuristic;
pub mod triad;

use crate::graph::{ChimeraGraph, QubitId};
use mqo_core::ids::VarId;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Errors detected while constructing or verifying an embedding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmbeddingError {
    /// A variable was assigned no qubits.
    EmptyChain(VarId),
    /// Two chains claim the same qubit.
    OverlappingChains(QubitId),
    /// A chain uses a qubit outside the graph.
    QubitOutOfRange(QubitId),
    /// A chain uses a broken qubit, which makes the whole chain unusable
    /// (Figure 2(d) of the paper).
    BrokenQubit(VarId, QubitId),
    /// A chain is not connected through couplers, so its qubits cannot be
    /// forced to behave as one bit.
    DisconnectedChain(VarId),
    /// A required logical edge has no physical coupler between the chains.
    MissingEdge(VarId, VarId),
    /// The requested structure does not fit on the graph.
    InsufficientCapacity {
        /// What was requested (e.g. logical variables or queries).
        requested: usize,
        /// What the graph can host.
        available: usize,
    },
}

impl std::fmt::Display for EmbeddingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EmbeddingError::EmptyChain(v) => write!(f, "variable {v} has an empty chain"),
            EmbeddingError::OverlappingChains(q) => {
                write!(f, "qubit {q} belongs to more than one chain")
            }
            EmbeddingError::QubitOutOfRange(q) => write!(f, "qubit {q} is out of range"),
            EmbeddingError::BrokenQubit(v, q) => {
                write!(f, "chain of variable {v} uses broken qubit {q}")
            }
            EmbeddingError::DisconnectedChain(v) => {
                write!(f, "chain of variable {v} is not connected")
            }
            EmbeddingError::MissingEdge(a, b) => {
                write!(f, "no coupler connects the chains of {a} and {b}")
            }
            EmbeddingError::InsufficientCapacity {
                requested,
                available,
            } => write!(
                f,
                "requested {requested} but the graph only supports {available}"
            ),
        }
    }
}

impl std::error::Error for EmbeddingError {}

/// A minor embedding: one chain of physical qubits per logical variable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Embedding {
    chains: Vec<Vec<QubitId>>,
    /// `owner[q]` — which variable, if any, occupies qubit `q`.
    owner: Vec<Option<VarId>>,
}

impl Embedding {
    /// Wraps per-variable chains, checking only structural disjointness and
    /// non-emptiness. Graph-dependent properties (working qubits, chain
    /// connectivity, edge realisability) are checked by [`Embedding::verify`].
    pub fn new(chains: Vec<Vec<QubitId>>, num_qubits: usize) -> Result<Self, EmbeddingError> {
        let mut owner = vec![None; num_qubits];
        for (v, chain) in chains.iter().enumerate() {
            let var = VarId::new(v);
            if chain.is_empty() {
                return Err(EmbeddingError::EmptyChain(var));
            }
            for &q in chain {
                if q.index() >= num_qubits {
                    return Err(EmbeddingError::QubitOutOfRange(q));
                }
                if owner[q.index()].is_some() {
                    return Err(EmbeddingError::OverlappingChains(q));
                }
                owner[q.index()] = Some(var);
            }
        }
        Ok(Embedding { chains, owner })
    }

    /// Number of logical variables.
    #[inline]
    pub fn num_vars(&self) -> usize {
        self.chains.len()
    }

    /// The chain of a variable.
    #[inline]
    pub fn chain(&self, v: VarId) -> &[QubitId] {
        &self.chains[v.index()]
    }

    /// All chains, indexed by variable.
    #[inline]
    pub fn chains(&self) -> &[Vec<QubitId>] {
        &self.chains
    }

    /// The variable occupying a qubit, if any.
    #[inline]
    pub fn owner(&self, q: QubitId) -> Option<VarId> {
        self.owner[q.index()]
    }

    /// Total number of physical qubits consumed.
    pub fn qubits_used(&self) -> usize {
        self.chains.iter().map(Vec::len).sum()
    }

    /// Longest chain length (1 when every variable is a single qubit).
    pub fn max_chain_length(&self) -> usize {
        self.chains.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Average physical qubits per logical variable — the x-axis of the
    /// paper's Figure 6.
    pub fn qubits_per_variable(&self) -> f64 {
        if self.chains.is_empty() {
            0.0
        } else {
            self.qubits_used() as f64 / self.num_vars() as f64
        }
    }

    /// Checks that every chain consists of functional qubits and is connected
    /// through couplers, and that every `required_edge` has at least one
    /// realising coupler.
    pub fn verify(
        &self,
        graph: &ChimeraGraph,
        required_edges: impl IntoIterator<Item = (VarId, VarId)>,
    ) -> Result<(), EmbeddingError> {
        for (v, chain) in self.chains.iter().enumerate() {
            let var = VarId::new(v);
            for &q in chain {
                if !graph.is_working(q) {
                    return Err(EmbeddingError::BrokenQubit(var, q));
                }
            }
            if !self.chain_is_connected(graph, chain) {
                return Err(EmbeddingError::DisconnectedChain(var));
            }
        }
        for (a, b) in required_edges {
            if self.find_coupler(graph, a, b).is_none() {
                return Err(EmbeddingError::MissingEdge(a, b));
            }
        }
        Ok(())
    }

    fn chain_is_connected(&self, graph: &ChimeraGraph, chain: &[QubitId]) -> bool {
        if chain.len() <= 1 {
            return true;
        }
        let in_chain: std::collections::HashSet<QubitId> = chain.iter().copied().collect();
        let mut seen = std::collections::HashSet::new();
        let mut queue = VecDeque::new();
        queue.push_back(chain[0]);
        seen.insert(chain[0]);
        while let Some(q) = queue.pop_front() {
            for n in graph.neighbours(q) {
                if in_chain.contains(&n) && seen.insert(n) {
                    queue.push_back(n);
                }
            }
        }
        seen.len() == chain.len()
    }

    /// A physical coupler connecting the chains of two variables, if one
    /// exists (deterministically the first in qubit order).
    pub fn find_coupler(
        &self,
        graph: &ChimeraGraph,
        a: VarId,
        b: VarId,
    ) -> Option<(QubitId, QubitId)> {
        for &qa in self.chain(a) {
            for &qb in self.chain(b) {
                if graph.has_coupler(qa, qb) {
                    return Some((qa, qb));
                }
            }
        }
        None
    }

    /// Enumerates every unordered variable pair whose chains are connected by
    /// at least one coupler. This is the set of quadratic terms the embedding
    /// can realise; the clustered workload generator draws sharing pairs from
    /// it.
    pub fn connectable_pairs(&self, graph: &ChimeraGraph) -> Vec<(VarId, VarId)> {
        let mut pairs = std::collections::BTreeSet::new();
        for (qa, qb) in graph.couplers() {
            if let (Some(a), Some(b)) = (self.owner(qa), self.owner(qb)) {
                if a != b {
                    pairs.insert(if a < b { (a, b) } else { (b, a) });
                }
            }
        }
        pairs.into_iter().collect()
    }
}

/// Re-embeds `num_vars` variables with required `edges` on a (typically
/// freshly degraded) graph — the pipeline's recovery entry point after
/// qubit dropout.
///
/// Strategy: scan every TRIAD block origin for a clique embedding that
/// avoids the broken qubits (cheap, and exact for clique-shaped problems);
/// if no origin works, fall back to the randomized heuristic embedder
/// routing only the edges actually required. `tries` (≥ 1) bounds the
/// heuristic's attempts; the error of the last failing strategy is
/// returned.
pub fn reembed(
    graph: &ChimeraGraph,
    num_vars: usize,
    edges: &[(VarId, VarId)],
    rng: &mut impl rand::Rng,
    tries: usize,
) -> Result<Embedding, EmbeddingError> {
    assert!(num_vars >= 1, "cannot re-embed zero variables");
    assert!(tries >= 1, "at least one heuristic attempt is required");
    let m = triad::triad_block_side(num_vars);
    for row in 0..=graph.rows().saturating_sub(m) {
        for col in 0..=graph.cols().saturating_sub(m) {
            if let Ok(e) = triad::triad(graph, row, col, num_vars) {
                return Ok(e);
            }
        }
    }
    heuristic::find_embedding(num_vars, edges, graph, rng, tries)
}

/// Cache-aware embedding entry point: embeds a problem *structure*
/// (variable count + interaction edges) deterministically from
/// `structure_seed`, independent of any per-request randomness.
///
/// Minor embeddings depend only on structure, never on weights (Choi's
/// construction routes edges), so callers that cache embeddings — keyed by
/// `mqo_core::qubo::Qubo::structure_hash` plus
/// [`ChimeraGraph::fingerprint`] — can pass the structure hash as the seed:
/// a cold (miss) computation and any later recomputation of the same
/// structure then yield bit-identical embeddings, which in turn makes
/// cached-hit solves bit-identical to cold solves.
///
/// Strategy is the same as [`reembed`]: TRIAD origin scan first (exact for
/// clique-shaped structures), then the randomized heuristic router with
/// `tries` attempts.
pub fn embed_structure(
    graph: &ChimeraGraph,
    num_vars: usize,
    edges: &[(VarId, VarId)],
    structure_seed: u64,
    tries: usize,
) -> Result<Embedding, EmbeddingError> {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(structure_seed);
    reembed(graph, num_vars, edges, &mut rng, tries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Side;

    fn graph() -> ChimeraGraph {
        ChimeraGraph::new(2, 2)
    }

    #[test]
    fn construction_rejects_empty_and_overlapping_chains() {
        let g = graph();
        let err = Embedding::new(vec![vec![]], g.num_qubits()).unwrap_err();
        assert_eq!(err, EmbeddingError::EmptyChain(VarId(0)));

        let q = g.qubit(0, 0, Side::Vertical, 0);
        let err = Embedding::new(vec![vec![q], vec![q]], g.num_qubits()).unwrap_err();
        assert_eq!(err, EmbeddingError::OverlappingChains(q));

        let err = Embedding::new(vec![vec![QubitId(9999)]], g.num_qubits()).unwrap_err();
        assert_eq!(err, EmbeddingError::QubitOutOfRange(QubitId(9999)));
    }

    #[test]
    fn verify_detects_broken_qubits() {
        let g = graph();
        let q = g.qubit(0, 0, Side::Vertical, 0);
        let g = g.clone().with_broken(&[q]);
        let e = Embedding::new(vec![vec![q]], g.num_qubits()).unwrap();
        assert_eq!(
            e.verify(&g, []).unwrap_err(),
            EmbeddingError::BrokenQubit(VarId(0), q)
        );
    }

    #[test]
    fn verify_detects_disconnected_chains() {
        let g = graph();
        // Two left qubits of the same cell are not coupled.
        let a = g.qubit(0, 0, Side::Vertical, 0);
        let b = g.qubit(0, 0, Side::Vertical, 1);
        let e = Embedding::new(vec![vec![a, b]], g.num_qubits()).unwrap();
        assert_eq!(
            e.verify(&g, []).unwrap_err(),
            EmbeddingError::DisconnectedChain(VarId(0))
        );
    }

    #[test]
    fn verify_accepts_an_l_shaped_connected_chain() {
        let g = graph();
        // Left qubit + right qubit of a cell + right qubit of next cell.
        let chain = vec![
            g.qubit(0, 0, Side::Vertical, 1),
            g.qubit(0, 0, Side::Horizontal, 2),
            g.qubit(0, 1, Side::Horizontal, 2),
        ];
        let e = Embedding::new(vec![chain], g.num_qubits()).unwrap();
        assert!(e.verify(&g, []).is_ok());
    }

    #[test]
    fn missing_edges_are_reported() {
        let g = graph();
        // Chains in diagonal cells share no coupler.
        let a = vec![g.qubit(0, 0, Side::Vertical, 0)];
        let b = vec![g.qubit(1, 1, Side::Horizontal, 0)];
        let e = Embedding::new(vec![a, b], g.num_qubits()).unwrap();
        assert_eq!(
            e.verify(&g, [(VarId(0), VarId(1))]).unwrap_err(),
            EmbeddingError::MissingEdge(VarId(0), VarId(1))
        );
    }

    #[test]
    fn find_coupler_locates_intra_cell_couplers() {
        let g = graph();
        let a = vec![g.qubit(0, 0, Side::Vertical, 0)];
        let b = vec![g.qubit(0, 0, Side::Horizontal, 3)];
        let e = Embedding::new(vec![a.clone(), b.clone()], g.num_qubits()).unwrap();
        assert_eq!(e.find_coupler(&g, VarId(0), VarId(1)), Some((a[0], b[0])));
        assert!(e.verify(&g, [(VarId(0), VarId(1))]).is_ok());
    }

    #[test]
    fn connectable_pairs_reports_exactly_the_coupled_chains() {
        let g = graph();
        let e = Embedding::new(
            vec![
                vec![g.qubit(0, 0, Side::Vertical, 0)],
                vec![g.qubit(0, 0, Side::Horizontal, 0)],
                vec![g.qubit(1, 1, Side::Vertical, 0)],
            ],
            g.num_qubits(),
        )
        .unwrap();
        // var0–var1 share a cell; var2 is isolated from both.
        assert_eq!(e.connectable_pairs(&g), vec![(VarId(0), VarId(1))]);
    }

    #[test]
    fn reembed_scans_triad_origins_around_broken_qubits() {
        use rand::SeedableRng;
        let g = ChimeraGraph::new(2, 2);
        // Kill the whole top-left cell: TRIAD at (0, 0) is impossible, but
        // scanning finds another origin for a 4-clique.
        let dead: Vec<QubitId> = (0..2)
            .flat_map(|u| {
                [
                    g.qubit(0, 0, Side::Vertical, u),
                    g.qubit(0, 0, Side::Horizontal, u),
                ]
            })
            .collect();
        let broken = g.clone().with_broken(&dead);
        assert!(triad::triad(&broken, 0, 0, 4).is_err());
        let edges = [
            (VarId(0), VarId(1)),
            (VarId(0), VarId(2)),
            (VarId(1), VarId(3)),
        ];
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        let e = reembed(&broken, 4, &edges, &mut rng, 4).expect("another origin hosts the clique");
        assert_eq!(e.num_vars(), 4);
        assert!(e.verify(&broken, edges.iter().copied()).is_ok());
        for chain in e.chains() {
            for q in chain {
                assert!(!dead.contains(q), "re-embedding used a dead qubit");
            }
        }
    }

    #[test]
    fn reembed_falls_back_to_the_heuristic_for_sparse_problems() {
        use rand::SeedableRng;
        // 10 variables exceed the 2x2 TRIAD clique capacity (8), but a
        // sparse chain of edges routes heuristically.
        let g = ChimeraGraph::new(2, 2);
        let edges: Vec<(VarId, VarId)> = (0..9).map(|i| (VarId(i), VarId(i + 1))).collect();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        let e = reembed(&g, 10, &edges, &mut rng, 16).expect("a sparse chain routes on 2x2");
        assert_eq!(e.num_vars(), 10);
        assert!(e.verify(&g, edges.iter().copied()).is_ok());
    }

    #[test]
    fn statistics_reflect_chain_sizes() {
        let g = graph();
        let e = Embedding::new(
            vec![
                vec![g.qubit(0, 0, Side::Vertical, 0)],
                vec![
                    g.qubit(0, 0, Side::Vertical, 1),
                    g.qubit(0, 0, Side::Horizontal, 1),
                ],
            ],
            g.num_qubits(),
        )
        .unwrap();
        assert_eq!(e.num_vars(), 2);
        assert_eq!(e.qubits_used(), 3);
        assert_eq!(e.max_chain_length(), 2);
        assert!((e.qubits_per_variable() - 1.5).abs() < 1e-12);
        assert_eq!(e.owner(g.qubit(0, 0, Side::Horizontal, 1)), Some(VarId(1)));
        assert_eq!(e.owner(g.qubit(1, 0, Side::Vertical, 0)), None);
    }
}
