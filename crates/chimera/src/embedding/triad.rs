//! TRIAD clique-embedding patterns (Choi; paper Figure 2).
//!
//! A TRIAD connects *every* pair of chains, so any QUBO over `n` variables can
//! be embedded. Two constructions are provided:
//!
//! * [`single_cell`] — for `n ≤ 5` variables a single unit cell suffices: two
//!   singleton chains (one per cell column) plus up to three two-qubit
//!   chains `{L_k, R_k}`. This is the pattern behind the paper's
//!   one-cell-per-query layouts and tolerates broken qubits by choosing
//!   which `k` indices to use.
//! * [`triad`] — the general diagonal construction embedding `K_n` into an
//!   `m × m` block of cells with `m = ⌈n/4⌉`; every chain has exactly
//!   `m + 1` qubits, so the pattern consumes `n·(m+1) = Θ(n²/4)` qubits,
//!   matching the quadratic growth of Theorem 3.

use super::{Embedding, EmbeddingError};
use crate::graph::{ChimeraGraph, QubitId, Side, HALF_CELL};
use mqo_core::ids::VarId;

/// Number of cells along one side of the block [`triad`] needs for `n`
/// chains.
pub fn triad_block_side(n: usize) -> usize {
    n.div_ceil(HALF_CELL)
}

/// Number of qubits consumed by [`triad`] for `n` chains (every chain has
/// `m + 1` qubits).
pub fn triad_qubits(n: usize) -> usize {
    n * (triad_block_side(n) + 1)
}

/// Embeds `K_n` (`1 ≤ n ≤ 5`) into the unit cell at `(row, col)`, working
/// around broken qubits by choosing suitable `k` indices. Returns the chains
/// or `None` when the cell's defects make the pattern infeasible.
///
/// Chain shapes for `n ≥ 2`: chain 0 = one left qubit, chain 1 = one right
/// qubit, chains 2..n = `{L_k, R_k}` pairs. All pairs of chains share an
/// intra-cell coupler because the cell is a complete bipartite K4,4.
pub fn single_cell(
    graph: &ChimeraGraph,
    row: usize,
    col: usize,
    n: usize,
) -> Option<Vec<Vec<QubitId>>> {
    assert!((1..=5).contains(&n), "single_cell supports 1..=5 chains");
    let left: Vec<usize> = graph
        .working_in_cell(row, col, Side::Vertical)
        .into_iter()
        .map(|(k, _)| k)
        .collect();
    let right: Vec<usize> = graph
        .working_in_cell(row, col, Side::Horizontal)
        .into_iter()
        .map(|(k, _)| k)
        .collect();

    if n == 1 {
        let q = left
            .first()
            .map(|&k| graph.qubit(row, col, Side::Vertical, k))
            .or_else(|| {
                right
                    .first()
                    .map(|&k| graph.qubit(row, col, Side::Horizontal, k))
            })?;
        return Some(vec![vec![q]]);
    }

    let pairs_needed = n - 2;
    let pairable: Vec<usize> = left.iter().copied().filter(|k| right.contains(k)).collect();
    if pairable.len() < pairs_needed
        || left.len() < pairs_needed + 1
        || right.len() < pairs_needed + 1
    {
        return None;
    }
    let pair_ks = &pairable[..pairs_needed];
    let single_l = *left.iter().find(|k| !pair_ks.contains(k))?;
    let single_r = *right.iter().find(|k| !pair_ks.contains(k))?;

    let mut chains = Vec::with_capacity(n);
    chains.push(vec![graph.qubit(row, col, Side::Vertical, single_l)]);
    chains.push(vec![graph.qubit(row, col, Side::Horizontal, single_r)]);
    for &k in pair_ks {
        chains.push(vec![
            graph.qubit(row, col, Side::Vertical, k),
            graph.qubit(row, col, Side::Horizontal, k),
        ]);
    }
    Some(chains)
}

/// Qubits of one general-TRIAD chain: variable `i` of a block anchored at
/// cell `(origin_row, origin_col)` with side length `m`.
///
/// With `b = i / 4` and `o = i % 4`, the chain consists of the vertical
/// qubits `(origin_row + r, origin_col + b, L, o)` for `r ∈ 0..=b` and the
/// horizontal qubits `(origin_row + b, origin_col + c, R, o)` for
/// `c ∈ b..m`. The two segments join through the intra-cell coupler of cell
/// `(b, b)`; chains `i` and `j` with block indices `b_i < b_j` meet in cell
/// `(b_i, b_j)` of the block, and chains of the same block index meet in cell
/// `(b, b)`.
fn triad_chain(
    graph: &ChimeraGraph,
    origin_row: usize,
    origin_col: usize,
    m: usize,
    i: usize,
) -> Vec<QubitId> {
    let b = i / HALF_CELL;
    let o = i % HALF_CELL;
    let mut chain = Vec::with_capacity(m + 1);
    for r in 0..=b {
        chain.push(graph.qubit(origin_row + r, origin_col + b, Side::Vertical, o));
    }
    for c in b..m {
        chain.push(graph.qubit(origin_row + b, origin_col + c, Side::Horizontal, o));
    }
    chain
}

/// Embeds `K_n` into the `m × m` cell block anchored at
/// `(origin_row, origin_col)` using the diagonal TRIAD construction.
///
/// Fails with [`EmbeddingError::InsufficientCapacity`] when the block falls
/// off the grid and with [`EmbeddingError::BrokenQubit`] when a needed qubit
/// is broken (a broken qubit invalidates its whole chain, Figure 2(d)).
pub fn triad(
    graph: &ChimeraGraph,
    origin_row: usize,
    origin_col: usize,
    n: usize,
) -> Result<Embedding, EmbeddingError> {
    assert!(n >= 1, "cannot embed an empty clique");
    let m = triad_block_side(n);
    if origin_row + m > graph.rows() || origin_col + m > graph.cols() {
        let fits = (graph.rows().saturating_sub(origin_row))
            .min(graph.cols().saturating_sub(origin_col))
            * HALF_CELL;
        return Err(EmbeddingError::InsufficientCapacity {
            requested: n,
            available: fits,
        });
    }
    let mut chains = Vec::with_capacity(n);
    for i in 0..n {
        let chain = triad_chain(graph, origin_row, origin_col, m, i);
        for &q in &chain {
            if !graph.is_working(q) {
                return Err(EmbeddingError::BrokenQubit(VarId::new(i), q));
            }
        }
        chains.push(chain);
    }
    Embedding::new(chains, graph.num_qubits())
}

/// Largest clique the general TRIAD can host on an intact `rows × cols`
/// grid: `4 · min(rows, cols)`.
pub fn max_clique(graph: &ChimeraGraph) -> usize {
    HALF_CELL * graph.rows().min(graph.cols())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_pairs(n: usize) -> Vec<(VarId, VarId)> {
        let mut v = Vec::new();
        for i in 0..n {
            for j in i + 1..n {
                v.push((VarId::new(i), VarId::new(j)));
            }
        }
        v
    }

    #[test]
    fn single_cell_embeds_k1_through_k5_on_an_intact_cell() {
        let g = ChimeraGraph::new(1, 1);
        for n in 1..=5 {
            let chains = single_cell(&g, 0, 0, n).unwrap_or_else(|| panic!("K{n} failed"));
            let e = Embedding::new(chains, g.num_qubits()).unwrap();
            e.verify(&g, all_pairs(n))
                .unwrap_or_else(|err| panic!("K{n}: {err}"));
        }
    }

    #[test]
    fn single_cell_k5_uses_exactly_eight_qubits() {
        let g = ChimeraGraph::new(1, 1);
        let e = Embedding::new(single_cell(&g, 0, 0, 5).unwrap(), g.num_qubits()).unwrap();
        assert_eq!(e.qubits_used(), 8);
        assert!((e.qubits_per_variable() - 1.6).abs() < 1e-12);
    }

    #[test]
    fn single_cell_works_around_broken_qubits() {
        let g = ChimeraGraph::new(1, 1);
        // Break L0 and R2: K4 needs 2 pair indices + 1 L + 1 R.
        let broken = [
            g.qubit(0, 0, Side::Vertical, 0),
            g.qubit(0, 0, Side::Horizontal, 2),
        ];
        let g = g.with_broken(&broken);
        let chains = single_cell(&g, 0, 0, 4).expect("K4 should survive 2 defects");
        let e = Embedding::new(chains, g.num_qubits()).unwrap();
        e.verify(&g, all_pairs(4)).unwrap();
        // K5 needs all eight qubits, so it must fail here.
        assert!(single_cell(&g, 0, 0, 5).is_none());
    }

    #[test]
    fn single_cell_k1_survives_a_fully_broken_left_column() {
        let g = ChimeraGraph::new(1, 1);
        let broken: Vec<_> = (0..4).map(|k| g.qubit(0, 0, Side::Vertical, k)).collect();
        let g = g.with_broken(&broken);
        let chains = single_cell(&g, 0, 0, 1).unwrap();
        assert_eq!(chains.len(), 1);
        // K2 needs one qubit per column, so it fails.
        assert!(single_cell(&g, 0, 0, 2).is_none());
    }

    #[test]
    fn triad_embeds_cliques_of_paper_figure_sizes() {
        let g = ChimeraGraph::new(4, 4);
        for n in [5, 8, 12] {
            let e = triad(&g, 0, 0, n).unwrap_or_else(|err| panic!("K{n}: {err}"));
            e.verify(&g, all_pairs(n))
                .unwrap_or_else(|err| panic!("K{n}: {err}"));
            assert_eq!(e.qubits_used(), triad_qubits(n));
        }
    }

    #[test]
    fn triad_chain_lengths_are_uniform() {
        let g = ChimeraGraph::new(3, 3);
        let e = triad(&g, 0, 0, 12).unwrap();
        let m = triad_block_side(12);
        for v in 0..12 {
            assert_eq!(e.chain(VarId::new(v)).len(), m + 1);
        }
    }

    #[test]
    fn triad_grows_quadratically_in_chain_count() {
        // Theorem 3: Θ(n²) qubits for n chains.
        assert_eq!(triad_qubits(4), 8);
        assert_eq!(triad_qubits(8), 24);
        assert_eq!(triad_qubits(16), 80);
        assert_eq!(triad_qubits(32), 288);
        // Ratio approaches n²/4.
        let n = 48;
        let q = triad_qubits(n) as f64;
        assert!(q / (n as f64 * n as f64 / 4.0) < 1.2);
    }

    #[test]
    fn triad_at_offset_origin_is_valid() {
        let g = ChimeraGraph::new(5, 5);
        let e = triad(&g, 2, 1, 9).unwrap();
        e.verify(&g, all_pairs(9)).unwrap();
    }

    #[test]
    fn triad_rejects_blocks_off_the_grid() {
        let g = ChimeraGraph::new(2, 2);
        // K12 needs a 3×3 block.
        let err = triad(&g, 0, 0, 12).unwrap_err();
        assert!(matches!(err, EmbeddingError::InsufficientCapacity { .. }));
    }

    #[test]
    fn triad_reports_broken_qubits() {
        let g = ChimeraGraph::new(2, 2);
        let dead = g.qubit(0, 0, Side::Vertical, 0);
        let g = g.with_broken(&[dead]);
        let err = triad(&g, 0, 0, 8).unwrap_err();
        assert!(matches!(err, EmbeddingError::BrokenQubit(_, q) if q == dead));
    }

    #[test]
    fn max_clique_on_dwave_2x_is_48() {
        assert_eq!(max_clique(&ChimeraGraph::dwave_2x()), 48);
    }

    #[test]
    fn full_dwave_2x_clique_embedding_is_valid() {
        let g = ChimeraGraph::dwave_2x();
        let n = max_clique(&g);
        let e = triad(&g, 0, 0, n).unwrap();
        e.verify(&g, all_pairs(n)).unwrap();
        assert!(e.qubits_used() <= g.num_qubits());
    }
}
