//! The clustered embedding pattern (Section 5, Figure 3).
//!
//! Instead of one global TRIAD — whose qubit consumption grows quadratically
//! in the *total* number of plans — each query cluster gets its own TRIAD
//! block. All connections required by the at-most-one-plan term `EM` and by
//! intra-cluster work sharing are realised inside the block; sharing between
//! clusters is limited to the sparse couplers between adjacent blocks, which
//! matches MQO preprocessing that clusters queries so that inter-cluster
//! sharing is rare.
//!
//! For the paper's experiments every query forms its own cluster and has at
//! most five plans, so a cluster fits inside a single unit cell (see
//! [`super::triad::single_cell`]) and multiple queries can share one cell:
//! 4 queries/cell for 2 plans, 2 for 3 plans, 1 for 4–5 plans. That packing
//! is what makes 537 two-plan queries representable on 1097 working qubits.

use super::triad::{single_cell, triad, triad_block_side};
use super::{Embedding, EmbeddingError};
use crate::graph::{ChimeraGraph, QubitId, Side, HALF_CELL};
use mqo_core::ids::VarId;

/// A clustered embedding: chains per variable plus the cluster (query group)
/// each variable belongs to.
#[derive(Debug, Clone)]
pub struct ClusteredLayout {
    /// The physical chains, variable-indexed. Variables are numbered cluster
    /// by cluster in embedding order.
    pub embedding: Embedding,
    /// Cluster index of each variable.
    pub cluster_of_var: Vec<usize>,
    /// Number of clusters embedded.
    pub num_clusters: usize,
}

impl ClusteredLayout {
    /// Variables belonging to one cluster.
    pub fn vars_of_cluster(&self, cluster: usize) -> Vec<VarId> {
        self.cluster_of_var
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c == cluster)
            .map(|(v, _)| VarId::new(v))
            .collect()
    }

    /// All intra-cluster variable pairs — the edges `EM` and intra-cluster
    /// `ES` may need; the pattern guarantees they are all realisable.
    pub fn intra_cluster_pairs(&self) -> Vec<(VarId, VarId)> {
        let mut pairs = Vec::new();
        for cluster in 0..self.num_clusters {
            let vars = self.vars_of_cluster(cluster);
            for (i, &a) in vars.iter().enumerate() {
                for &b in &vars[i + 1..] {
                    pairs.push((a, b));
                }
            }
        }
        pairs
    }

    /// Variable pairs in *different* clusters whose chains share at least one
    /// coupler: the work-sharing opportunities this layout can represent.
    /// The paper's workload generator draws its savings from exactly this
    /// set ("we consider test cases that map well to the quantum annealer").
    pub fn sharing_pairs(&self, graph: &ChimeraGraph) -> Vec<(VarId, VarId)> {
        self.embedding
            .connectable_pairs(graph)
            .into_iter()
            .filter(|&(a, b)| self.cluster_of_var[a.index()] != self.cluster_of_var[b.index()])
            .collect()
    }

    /// Verifies chains and all intra-cluster edges against the graph.
    pub fn verify(&self, graph: &ChimeraGraph) -> Result<(), EmbeddingError> {
        self.embedding.verify(graph, self.intra_cluster_pairs())
    }
}

/// Remaining working `k` indices of one cell during packing.
struct CellPool {
    left: Vec<usize>,
    right: Vec<usize>,
}

impl CellPool {
    fn new(graph: &ChimeraGraph, row: usize, col: usize) -> Self {
        CellPool {
            left: graph
                .working_in_cell(row, col, Side::Vertical)
                .into_iter()
                .map(|(k, _)| k)
                .collect(),
            right: graph
                .working_in_cell(row, col, Side::Horizontal)
                .into_iter()
                .map(|(k, _)| k)
                .collect(),
        }
    }

    /// Tries to carve chains for one `l`-plan query out of this cell.
    fn allocate(
        &mut self,
        graph: &ChimeraGraph,
        row: usize,
        col: usize,
        l: usize,
    ) -> Option<Vec<Vec<QubitId>>> {
        debug_assert!((1..=5).contains(&l));
        if l == 1 {
            let q = if self.left.len() >= self.right.len() {
                let k = self.left.pop()?;
                graph.qubit(row, col, Side::Vertical, k)
            } else {
                let k = self.right.pop()?;
                graph.qubit(row, col, Side::Horizontal, k)
            };
            return Some(vec![vec![q]]);
        }
        let pairs_needed = l - 2;
        let pairable: Vec<usize> = self
            .left
            .iter()
            .copied()
            .filter(|k| self.right.contains(k))
            .collect();
        if pairable.len() < pairs_needed
            || self.left.len() < pairs_needed + 1
            || self.right.len() < pairs_needed + 1
        {
            return None;
        }
        let pair_ks: Vec<usize> = pairable[..pairs_needed].to_vec();
        let single_l = *self.left.iter().find(|k| !pair_ks.contains(k))?;
        let single_r = *self.right.iter().find(|k| !pair_ks.contains(k))?;

        self.left.retain(|k| !pair_ks.contains(k) && *k != single_l);
        self.right
            .retain(|k| !pair_ks.contains(k) && *k != single_r);

        let mut chains = Vec::with_capacity(l);
        chains.push(vec![graph.qubit(row, col, Side::Vertical, single_l)]);
        chains.push(vec![graph.qubit(row, col, Side::Horizontal, single_r)]);
        for k in pair_ks {
            chains.push(vec![
                graph.qubit(row, col, Side::Vertical, k),
                graph.qubit(row, col, Side::Horizontal, k),
            ]);
        }
        Some(chains)
    }
}

/// Embeds up to `max_queries` uniform queries of `plans_per_query`
/// alternative plans each, one cluster per query, packing as densely as the
/// working graph allows. Returns the layout with however many queries fit
/// (callers check `num_clusters`); fails only on degenerate inputs.
pub fn layout_uniform(
    graph: &ChimeraGraph,
    max_queries: usize,
    plans_per_query: usize,
) -> Result<ClusteredLayout, EmbeddingError> {
    assert!(plans_per_query >= 1, "queries need at least one plan");
    let mut chains: Vec<Vec<QubitId>> = Vec::new();
    let mut cluster_of_var = Vec::new();
    let mut clusters = 0usize;

    if plans_per_query <= 5 {
        'cells: for row in 0..graph.rows() {
            for col in 0..graph.cols() {
                let mut pool = CellPool::new(graph, row, col);
                while clusters < max_queries {
                    match pool.allocate(graph, row, col, plans_per_query) {
                        Some(query_chains) => {
                            for chain in query_chains {
                                chains.push(chain);
                                cluster_of_var.push(clusters);
                            }
                            clusters += 1;
                        }
                        None => break,
                    }
                }
                if clusters >= max_queries {
                    break 'cells;
                }
            }
        }
    } else {
        let m = triad_block_side(plans_per_query);
        let block_rows = graph.rows() / m;
        let block_cols = graph.cols() / m;
        'blocks: for br in 0..block_rows {
            for bc in 0..block_cols {
                if clusters >= max_queries {
                    break 'blocks;
                }
                match triad(graph, br * m, bc * m, plans_per_query) {
                    Ok(e) => {
                        for chain in e.chains() {
                            chains.push(chain.clone());
                            cluster_of_var.push(clusters);
                        }
                        clusters += 1;
                    }
                    Err(EmbeddingError::BrokenQubit(..)) => continue,
                    Err(other) => return Err(other),
                }
            }
        }
    }

    let embedding = Embedding::new(chains, graph.num_qubits())?;
    Ok(ClusteredLayout {
        embedding,
        cluster_of_var,
        num_clusters: clusters,
    })
}

/// The maximal number of uniform `plans_per_query` queries this graph can
/// host under the clustered pattern.
pub fn max_uniform_queries(graph: &ChimeraGraph, plans_per_query: usize) -> usize {
    layout_uniform(graph, usize::MAX, plans_per_query)
        .map(|l| l.num_clusters)
        .unwrap_or(0)
}

/// Embeds heterogeneous clusters (`cluster_sizes[i]` = number of plans in
/// cluster `i`), one TRIAD block per cluster, placed left-to-right and
/// top-to-bottom. Used for the Figure 3 rendering and for workloads with
/// several queries per cluster. Fails if not all clusters fit.
pub fn layout_clusters(
    graph: &ChimeraGraph,
    cluster_sizes: &[usize],
) -> Result<ClusteredLayout, EmbeddingError> {
    let mut chains: Vec<Vec<QubitId>> = Vec::new();
    let mut cluster_of_var = Vec::new();
    let mut row = 0usize;
    let mut col = 0usize;
    let mut row_height = 0usize;

    for (cluster, &size) in cluster_sizes.iter().enumerate() {
        assert!(size >= 1, "clusters need at least one plan");
        let m = if size <= 5 { 1 } else { triad_block_side(size) };
        let mut placed = false;
        while !placed {
            if col + m > graph.cols() {
                row += row_height.max(1);
                col = 0;
                row_height = 0;
            }
            if row + m > graph.rows() {
                return Err(EmbeddingError::InsufficientCapacity {
                    requested: cluster_sizes.len(),
                    available: cluster,
                });
            }
            let attempt = if size <= 5 {
                single_cell(graph, row, col, size)
                    .map(|c| Embedding::new(c, graph.num_qubits()))
                    .transpose()?
            } else {
                match triad(graph, row, col, size) {
                    Ok(e) => Some(e),
                    Err(EmbeddingError::BrokenQubit(..)) => None,
                    Err(other) => return Err(other),
                }
            };
            match attempt {
                Some(e) => {
                    for chain in e.chains() {
                        chains.push(chain.clone());
                        cluster_of_var.push(cluster);
                    }
                    row_height = row_height.max(m);
                    col += m;
                    placed = true;
                }
                None => col += 1, // skip defective region
            }
        }
    }

    let embedding = Embedding::new(chains, graph.num_qubits())?;
    Ok(ClusteredLayout {
        embedding,
        cluster_of_var,
        num_clusters: cluster_sizes.len(),
    })
}

/// Qubits one uniform query consumes under the clustered pattern — the
/// closed form behind the capacity analysis (Figure 7).
pub fn qubits_per_query(plans_per_query: usize) -> f64 {
    match plans_per_query {
        0 => 0.0,
        1 => 1.0,
        // One cell hosts ⌊4/(l−1)⌋ queries of 2·(l−1) qubits each for l ≤ 5.
        l @ 2..=5 => (2 * (l - 1)) as f64,
        l => {
            let m = triad_block_side(l);
            // A whole m×m block of cells is consumed per query.
            (m * m * (2 * HALF_CELL)) as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn uniform_two_plan_queries_pack_four_per_cell() {
        let g = ChimeraGraph::new(2, 2);
        let l = layout_uniform(&g, usize::MAX, 2).unwrap();
        assert_eq!(l.num_clusters, 16); // 4 cells × 4 queries
        assert_eq!(l.embedding.num_vars(), 32);
        l.verify(&g).unwrap();
    }

    #[test]
    fn uniform_packing_densities_match_the_pattern() {
        let g = ChimeraGraph::new(3, 3); // 9 intact cells
        assert_eq!(max_uniform_queries(&g, 2), 36); // 4 per cell
        assert_eq!(max_uniform_queries(&g, 3), 18); // 2 per cell
        assert_eq!(max_uniform_queries(&g, 4), 9); // 1 per cell
        assert_eq!(max_uniform_queries(&g, 5), 9); // 1 per cell
        assert_eq!(max_uniform_queries(&g, 8), 1); // 8 plans → one 2×2 block fits
    }

    #[test]
    fn uniform_multi_cell_clusters_use_block_tiling() {
        let g = ChimeraGraph::new(4, 4);
        // 8 plans → 2×2 blocks → 4 blocks.
        let l = layout_uniform(&g, usize::MAX, 8).unwrap();
        assert_eq!(l.num_clusters, 4);
        l.verify(&g).unwrap();
    }

    #[test]
    fn paper_machine_capacities_have_the_paper_shape() {
        // With 55 broken qubits the capacities must land near the paper's
        // 537/253/140/108 for 2/3/4/5 plans per query.
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let g = ChimeraGraph::dwave_2x_as_used_in_paper(&mut rng);
        let caps: Vec<usize> = (2..=5).map(|l| max_uniform_queries(&g, l)).collect();
        assert!(caps[0] >= 500 && caps[0] <= 576, "2 plans: {}", caps[0]);
        assert!(caps[1] >= 230 && caps[1] <= 288, "3 plans: {}", caps[1]);
        assert!(caps[2] >= 100 && caps[2] <= 144, "4 plans: {}", caps[2]);
        assert!(caps[3] >= 80 && caps[3] <= 144, "5 plans: {}", caps[3]);
        // Strictly decreasing in the number of plans.
        assert!(caps.windows(2).all(|w| w[0] > w[1]));
    }

    #[test]
    fn quota_is_respected() {
        let g = ChimeraGraph::new(3, 3);
        let l = layout_uniform(&g, 5, 2).unwrap();
        assert_eq!(l.num_clusters, 5);
        assert_eq!(l.embedding.num_vars(), 10);
    }

    #[test]
    fn sharing_pairs_cross_clusters_only() {
        let g = ChimeraGraph::new(2, 2);
        let l = layout_uniform(&g, usize::MAX, 2).unwrap();
        let pairs = l.sharing_pairs(&g);
        assert!(!pairs.is_empty());
        for (a, b) in pairs {
            assert_ne!(
                l.cluster_of_var[a.index()],
                l.cluster_of_var[b.index()],
                "{a}-{b} is intra-cluster"
            );
        }
    }

    #[test]
    fn intra_cluster_pairs_are_all_realisable() {
        let g = ChimeraGraph::new(2, 2);
        for l in [2, 3, 4, 5] {
            let layout = layout_uniform(&g, usize::MAX, l).unwrap();
            layout.verify(&g).unwrap();
        }
    }

    #[test]
    fn broken_qubits_reduce_capacity_gracefully() {
        let g = ChimeraGraph::new(2, 2);
        let intact = max_uniform_queries(&g, 5);
        // Breaking one qubit kills exactly one 5-plan cell.
        let g2 = g.clone().with_broken(&[g.qubit(0, 0, Side::Vertical, 0)]);
        assert_eq!(max_uniform_queries(&g2, 5), intact - 1);
        // ...but two-plan queries lose only one of four slots in that cell.
        assert_eq!(max_uniform_queries(&g2, 2), 16 - 1);
    }

    #[test]
    fn heterogeneous_clusters_place_like_figure_3() {
        let g = ChimeraGraph::new(4, 4);
        // Figure 3: four clusters of eight plans each.
        let l = layout_clusters(&g, &[8, 8, 8, 8]).unwrap();
        assert_eq!(l.num_clusters, 4);
        l.verify(&g).unwrap();
        assert!(!l.sharing_pairs(&g).is_empty());
    }

    #[test]
    fn heterogeneous_clusters_can_exhaust_capacity() {
        let g = ChimeraGraph::new(1, 1);
        let err = layout_clusters(&g, &[5, 5]).unwrap_err();
        assert!(matches!(err, EmbeddingError::InsufficientCapacity { .. }));
    }

    #[test]
    fn cluster_variable_numbering_is_contiguous() {
        let g = ChimeraGraph::new(2, 2);
        let l = layout_uniform(&g, 6, 3).unwrap();
        for q in 0..6 {
            let vars = l.vars_of_cluster(q);
            assert_eq!(vars.len(), 3);
            assert!(vars.windows(2).all(|w| w[1].index() == w[0].index() + 1));
        }
    }

    #[test]
    fn qubits_per_query_closed_form() {
        assert_eq!(qubits_per_query(2), 2.0);
        assert_eq!(qubits_per_query(3), 4.0);
        assert_eq!(qubits_per_query(4), 6.0);
        assert_eq!(qubits_per_query(5), 8.0);
        assert_eq!(qubits_per_query(8), 32.0);
    }
}
