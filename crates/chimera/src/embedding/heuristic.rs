//! Heuristic minor embedding for arbitrary sparse interaction graphs — the
//! "new mapping … algorithms that might allow to represent significantly
//! larger problem instances with the given connectivity" the paper's
//! Section 7 announces as ongoing work.
//!
//! The algorithm is a simplified Cai–Macready–Roy search: variables are
//! placed one at a time (highest interaction degree first, shuffled on
//! retries); each new variable picks a root qubit minimising the total
//! number of free qubits needed to reach all of its already-placed
//! neighbours' chains, then claims the connecting BFS paths as its chain.
//! No chain ripping/refinement is attempted — for the sparse,
//! grid-structured interaction graphs MQO instances produce this already
//! beats the TRIAD clique pattern by a wide margin in qubit consumption,
//! because a TRIAD pays for all `n(n−1)/2` potential couplings while a
//! sparse instance needs only its actual edges.

use super::{Embedding, EmbeddingError};
use crate::graph::{ChimeraGraph, QubitId};
use mqo_core::ids::VarId;
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::VecDeque;

/// Attempts to embed the interaction graph (`num_vars` variables, unordered
/// `edges`) into `graph`, making `tries` placement attempts with shuffled
/// orders. Returns the first embedding whose chains realise every edge.
pub fn find_embedding(
    num_vars: usize,
    edges: &[(VarId, VarId)],
    graph: &ChimeraGraph,
    rng: &mut impl Rng,
    tries: usize,
) -> Result<Embedding, EmbeddingError> {
    assert!(tries >= 1, "need at least one attempt");
    for &(a, b) in edges {
        assert!(
            a.index() < num_vars && b.index() < num_vars,
            "edge out of range"
        );
        assert_ne!(a, b, "self-edges are not quadratic terms");
    }
    if num_vars == 0 {
        return Embedding::new(Vec::new(), graph.num_qubits());
    }

    // Adjacency of the logical interaction graph.
    let mut adjacency: Vec<Vec<VarId>> = vec![Vec::new(); num_vars];
    for &(a, b) in edges {
        if !adjacency[a.index()].contains(&b) {
            adjacency[a.index()].push(b);
            adjacency[b.index()].push(a);
        }
    }

    // Degree-descending base order.
    let mut base_order: Vec<usize> = (0..num_vars).collect();
    base_order.sort_by_key(|&v| std::cmp::Reverse(adjacency[v].len()));

    let mut last_err = EmbeddingError::InsufficientCapacity {
        requested: num_vars,
        available: graph.num_working_qubits(),
    };
    for attempt in 0..tries {
        let mut order = base_order.clone();
        if attempt > 0 {
            order.shuffle(rng);
        }
        match try_place(&order, &adjacency, graph, rng) {
            Ok(chains) => {
                let embedding = Embedding::new(chains, graph.num_qubits())?;
                embedding.verify(graph, edges.iter().copied())?;
                return Ok(embedding);
            }
            Err(e) => last_err = e,
        }
    }
    Err(last_err)
}

fn try_place(
    order: &[usize],
    adjacency: &[Vec<VarId>],
    graph: &ChimeraGraph,
    rng: &mut impl Rng,
) -> Result<Vec<Vec<QubitId>>, EmbeddingError> {
    let num_vars = adjacency.len();
    let mut chains: Vec<Vec<QubitId>> = vec![Vec::new(); num_vars];
    let mut owner: Vec<Option<usize>> = vec![None; graph.num_qubits()];

    for &v in order {
        let placed_neighbours: Vec<usize> = adjacency[v]
            .iter()
            .map(|n| n.index())
            .filter(|&n| !chains[n].is_empty())
            .collect();

        if placed_neighbours.is_empty() {
            // Seed anywhere free, preferring well-connected qubits.
            let mut candidates: Vec<QubitId> = (0..graph.num_qubits() as u32)
                .map(QubitId)
                .filter(|&q| graph.is_working(q) && owner[q.index()].is_none())
                .collect();
            if candidates.is_empty() {
                return Err(EmbeddingError::InsufficientCapacity {
                    requested: num_vars,
                    available: 0,
                });
            }
            candidates.shuffle(rng);
            let seed = *candidates
                .iter()
                .max_by_key(|&&q| free_degree(graph, &owner, q))
                .expect("non-empty");
            owner[seed.index()] = Some(v);
            chains[v] = vec![seed];
            continue;
        }

        // One BFS per placed neighbour over *free* qubits; dist counts the
        // free qubits that must be claimed to connect (root inclusive).
        let mut dists: Vec<Vec<u32>> = Vec::with_capacity(placed_neighbours.len());
        let mut parents: Vec<Vec<Option<QubitId>>> = Vec::with_capacity(placed_neighbours.len());
        for &u in &placed_neighbours {
            let (dist, parent) = bfs_from_chain(graph, &owner, &chains[u]);
            dists.push(dist);
            parents.push(parent);
        }

        // Root minimising the total claim count (counting the root once).
        let mut best: Option<(u64, QubitId)> = None;
        for idx in 0..graph.num_qubits() {
            let q = QubitId(idx as u32);
            if owner[idx].is_some() || !graph.is_working(q) {
                continue;
            }
            let mut total: u64 = 1; // the root itself
            let mut reachable = true;
            for dist in &dists {
                if dist[idx] == u32::MAX {
                    reachable = false;
                    break;
                }
                total += u64::from(dist[idx].saturating_sub(1)); // path minus root
            }
            if reachable && best.is_none_or(|(t, _)| total < t) {
                best = Some((total, q));
            }
        }
        let Some((_, root)) = best else {
            return Err(EmbeddingError::InsufficientCapacity {
                requested: num_vars,
                available: graph.num_working_qubits(),
            });
        };

        // Claim the root plus each connecting path.
        let mut chain = vec![root];
        owner[root.index()] = Some(v);
        for parent in &parents {
            let mut cursor = root;
            while let Some(next) = parent[cursor.index()] {
                if owner[next.index()].is_none() {
                    owner[next.index()] = Some(v);
                    chain.push(next);
                }
                cursor = next;
            }
        }
        chains[v] = chain;
    }

    Ok(chains)
}

fn free_degree(graph: &ChimeraGraph, owner: &[Option<usize>], q: QubitId) -> usize {
    graph
        .neighbours(q)
        .into_iter()
        .filter(|n| owner[n.index()].is_none())
        .count()
}

/// BFS over free qubits starting from the free frontier of `chain`.
/// `dist[q]` = number of free qubits to claim to connect `q` to the chain
/// (1 when `q` touches the chain directly); `parent[q]` points one step
/// towards the chain (`None` at the frontier).
fn bfs_from_chain(
    graph: &ChimeraGraph,
    owner: &[Option<usize>],
    chain: &[QubitId],
) -> (Vec<u32>, Vec<Option<QubitId>>) {
    let mut dist = vec![u32::MAX; graph.num_qubits()];
    let mut parent: Vec<Option<QubitId>> = vec![None; graph.num_qubits()];
    let mut queue = VecDeque::new();
    for &cq in chain {
        for n in graph.neighbours(cq) {
            if owner[n.index()].is_none() && dist[n.index()] == u32::MAX {
                dist[n.index()] = 1;
                queue.push_back(n);
            }
        }
    }
    while let Some(q) = queue.pop_front() {
        for n in graph.neighbours(q) {
            if owner[n.index()].is_none() && dist[n.index()] == u32::MAX {
                dist[n.index()] = dist[q.index()] + 1;
                parent[n.index()] = Some(q);
                queue.push_back(n);
            }
        }
    }
    (dist, parent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embedding::triad;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn path_edges(n: usize) -> Vec<(VarId, VarId)> {
        (0..n - 1)
            .map(|i| (VarId::new(i), VarId::new(i + 1)))
            .collect()
    }

    fn grid_edges(side: usize) -> Vec<(VarId, VarId)> {
        let mut e = Vec::new();
        let id = |r: usize, c: usize| VarId::new(r * side + c);
        for r in 0..side {
            for c in 0..side {
                if c + 1 < side {
                    e.push((id(r, c), id(r, c + 1)));
                }
                if r + 1 < side {
                    e.push((id(r, c), id(r + 1, c)));
                }
            }
        }
        e
    }

    #[test]
    fn embeds_paths_with_short_chains() {
        let graph = ChimeraGraph::new(3, 3);
        let edges = path_edges(20);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let e = find_embedding(20, &edges, &graph, &mut rng, 8).unwrap();
        e.verify(&graph, edges.iter().copied()).unwrap();
        assert!(
            e.qubits_per_variable() <= 2.5,
            "paths should embed economically, got {:.2}",
            e.qubits_per_variable()
        );
    }

    #[test]
    fn embeds_grids_that_triad_cannot_fit() {
        // A 5×5 grid graph = 25 variables. The TRIAD clique for 25 vars
        // needs a 7×7 cell block — far more than a 4×4 graph offers — but
        // the sparse embedder fits it (no chain refinement, so denser grids
        // would need a bigger target; see the module docs).
        let graph = ChimeraGraph::new(4, 4);
        let edges = grid_edges(5);
        assert!(triad::triad(&graph, 0, 0, 25).is_err());
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let e = find_embedding(25, &edges, &graph, &mut rng, 32).unwrap();
        e.verify(&graph, edges.iter().copied()).unwrap();
        assert!(e.qubits_used() < 8 * 16);
    }

    #[test]
    fn beats_triad_on_sparse_instances() {
        let graph = ChimeraGraph::new(4, 4);
        let n = 16;
        let edges = path_edges(n);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let sparse = find_embedding(n, &edges, &graph, &mut rng, 8).unwrap();
        let clique = triad::triad(&graph, 0, 0, n).unwrap();
        assert!(
            sparse.qubits_used() < clique.qubits_used() / 2,
            "sparse {} vs clique {}",
            sparse.qubits_used(),
            clique.qubits_used()
        );
    }

    #[test]
    fn handles_disconnected_and_isolated_variables() {
        let graph = ChimeraGraph::new(2, 2);
        // Two components plus an isolated variable 4.
        let edges = vec![(VarId(0), VarId(1)), (VarId(2), VarId(3))];
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let e = find_embedding(5, &edges, &graph, &mut rng, 8).unwrap();
        e.verify(&graph, edges.iter().copied()).unwrap();
        assert_eq!(e.num_vars(), 5);
    }

    #[test]
    fn works_around_broken_qubits() {
        let graph = ChimeraGraph::new(2, 2);
        let broken: Vec<QubitId> = (0..8).map(QubitId).collect(); // kill cell (0,0)
        let graph = graph.with_broken(&broken);
        let edges = path_edges(8);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let e = find_embedding(8, &edges, &graph, &mut rng, 8).unwrap();
        e.verify(&graph, edges.iter().copied()).unwrap();
        for chain in e.chains() {
            for q in chain {
                assert!(graph.is_working(*q));
            }
        }
    }

    #[test]
    fn fails_cleanly_when_capacity_is_exhausted() {
        let graph = ChimeraGraph::new(1, 1);
        // A 9-clique cannot fit 8 qubits.
        let mut edges = Vec::new();
        for i in 0..9 {
            for j in i + 1..9 {
                edges.push((VarId::new(i), VarId::new(j)));
            }
        }
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let err = find_embedding(9, &edges, &graph, &mut rng, 4).unwrap_err();
        assert!(matches!(err, EmbeddingError::InsufficientCapacity { .. }));
    }

    #[test]
    fn end_to_end_with_physical_mapping() {
        // Heuristic embedding feeds the physical mapping and the ground
        // state still decodes to the logical optimum.
        use crate::physical::PhysicalMapping;
        use mqo_core::qubo::Qubo;
        let graph = ChimeraGraph::new(2, 2);
        let mut b = Qubo::builder(5);
        for i in 0..5u32 {
            b.add_linear(VarId(i), f64::from(i) - 2.0);
        }
        for i in 0..4u32 {
            b.add_quadratic(VarId(i), VarId(i + 1), if i % 2 == 0 { 2.0 } else { -1.5 });
        }
        let qubo = b.build();
        let edges: Vec<(VarId, VarId)> =
            qubo.quadratic().iter().map(|&(a, bb, _)| (a, bb)).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let e = find_embedding(5, &edges, &graph, &mut rng, 8).unwrap();
        let pm = PhysicalMapping::new(&qubo, e, &graph, 0.25).unwrap();
        assert!(pm.num_physical_vars() <= 20);
        let (phys, _) = pm.physical_qubo().brute_force_minimum();
        let un = pm.unembed(&phys);
        assert_eq!(un.broken_chains, 0);
        assert_eq!(un.logical, qubo.brute_force_minimum().0);
    }

    #[test]
    fn deterministic_given_the_rng_seed() {
        let graph = ChimeraGraph::new(3, 3);
        let edges = grid_edges(4);
        let a = find_embedding(16, &edges, &graph, &mut ChaCha8Rng::seed_from_u64(9), 8).unwrap();
        let b = find_embedding(16, &edges, &graph, &mut ChaCha8Rng::seed_from_u64(9), 8).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_self_edges_and_out_of_range() {
        let graph = ChimeraGraph::new(1, 1);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let self_edge = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = find_embedding(2, &[(VarId(0), VarId(0))], &graph, &mut rng, 1);
        }));
        assert!(self_edge.is_err());
    }
}
