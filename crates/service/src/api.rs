//! The JSON request/response surface of the solve server.
//!
//! Everything here round-trips through `serde_json`; the problem payload is
//! the [`MqoProblem`] serde form (per-query plan costs + savings triplets),
//! so clients need no conversion shims. Deserialisation re-runs full builder
//! validation — a malformed instance is rejected before it reaches a worker.

use mqo_core::problem::MqoProblem;
use serde::{Deserialize, Serialize};

/// Which backend ultimately answered a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Backend {
    /// The simulated quantum annealer (Algorithm 1).
    Annealer,
    /// MILP branch-and-bound (the paper's LIN-MQO baseline).
    Milp,
    /// Iterated hill climbing.
    HillClimbing,
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Backend::Annealer => write!(f, "annealer"),
            Backend::Milp => write!(f, "milp"),
            Backend::HillClimbing => write!(f, "hill_climbing"),
        }
    }
}

/// Body of `POST /solve`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SolveRequest {
    /// The MQO instance (serde form: `{"queries": [[costs...]...],
    /// "savings": [[p1, p2, s]...]}`).
    pub problem: MqoProblem,
    /// Base seed for the annealer run (default 0): identical
    /// (problem, seed) requests return identical solutions.
    #[serde(default)]
    pub seed: u64,
    /// Annealing reads for this request (server default when absent).
    #[serde(default)]
    pub reads: Option<usize>,
    /// Gauge batches for this request (server default when absent).
    #[serde(default)]
    pub gauges: Option<usize>,
    /// Deadline in milliseconds from admission; requests still queued when
    /// it expires are rejected with [`Reject::DeadlineExceeded`].
    #[serde(default)]
    pub deadline_ms: Option<u64>,
    /// Pin the request to a backend instead of asking the router.
    #[serde(default)]
    pub backend: Option<Backend>,
}

impl SolveRequest {
    /// A minimal request: the problem with server defaults and `seed`.
    pub fn new(problem: MqoProblem, seed: u64) -> Self {
        SolveRequest {
            problem,
            seed,
            reads: None,
            gauges: None,
            deadline_ms: None,
            backend: None,
        }
    }
}

/// Body of a successful `POST /solve` reply.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SolveResponse {
    /// Global plan id selected for each query, indexed by query.
    pub selection: Vec<u32>,
    /// Accumulated execution cost of the selection.
    pub cost: f64,
    /// Backend that produced the answer.
    pub backend: Backend,
    /// Why the router picked that backend.
    pub route_reason: String,
    /// Whether the embedding came from the cache (annealer backend only).
    pub cache_hit: bool,
    /// Annealer reads performed (0 for classical backends).
    pub reads: usize,
    /// Physical qubits consumed by the embedding (0 for classical backends).
    pub qubits_used: usize,
    /// Simulated device time consumed, microseconds (annealer only).
    pub device_time_us: f64,
    /// Host wall-clock time spent solving, microseconds.
    pub wall_us: u64,
    /// Wall-clock time the request waited in the queue, microseconds.
    pub queue_wait_us: u64,
    /// Tenants in the composite programming cycle this answer came from
    /// (0 = solved solo, ≥ 2 = packed; see DESIGN.md §12).
    #[serde(default)]
    pub packed_tenants: usize,
}

/// Typed rejection: every way the service refuses a request without
/// solving it. Serialised as `{"reason": "...", ...}` with the HTTP status
/// from [`Reject::http_status`]; overload answers 429, never a panic or an
/// unbounded queue.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(tag = "reason", rename_all = "snake_case")]
pub enum Reject {
    /// The admission queue is at its configured depth.
    QueueFull {
        /// The configured bound that was hit.
        depth: usize,
    },
    /// The server is draining; no new work is admitted.
    ShuttingDown,
    /// The request's deadline expired while it was still queued.
    DeadlineExceeded {
        /// The deadline that expired, in milliseconds.
        deadline_ms: u64,
    },
    /// The body was not a valid solve request.
    InvalidRequest {
        /// Parser/validation detail.
        detail: String,
    },
    /// The instance was admitted but no backend could solve it.
    Unsolvable {
        /// Pipeline error detail.
        detail: String,
    },
    /// A worker panicked while solving the request. The panic was isolated
    /// (`catch_unwind`): the rest of the batch is unaffected and, when the
    /// panic escalates into a worker death, the supervisor respawns the
    /// thread.
    InternalError {
        /// Panic payload (or a placeholder for non-string payloads).
        detail: String,
    },
    /// Every candidate backend was skipped by an open circuit breaker (or
    /// failed); the request should be retried after the cooling period.
    BackendUnavailable {
        /// Which breakers were open / which attempts failed.
        detail: String,
    },
    /// A backend produced an answer that failed the integrity gate
    /// (infeasible selection or cost mismatch against a from-scratch
    /// recomputation) and repair was disabled or impossible. The corrupt
    /// answer is withheld — the client gets this typed 500 instead of a
    /// wrong result.
    IntegrityViolation {
        /// The [`mqo_core::integrity::IntegrityError`] detail.
        detail: String,
    },
    /// The connection cap was reached; the request was shed at accept time
    /// with a `Retry-After` hint.
    Overloaded {
        /// The configured connection cap that was hit.
        max_connections: usize,
    },
    /// The whole-request wall-clock deadline expired while reading the
    /// request (slowloris defense).
    RequestTimeout {
        /// The configured deadline, milliseconds.
        deadline_ms: u64,
    },
    /// A request-line, header-size, or header-count cap was exceeded.
    HeaderLimit {
        /// Which limit was exceeded.
        detail: String,
    },
}

impl Reject {
    /// The HTTP status code this rejection is reported with.
    pub fn http_status(&self) -> u16 {
        match self {
            Reject::QueueFull { .. } => 429,
            Reject::ShuttingDown => 503,
            Reject::DeadlineExceeded { .. } => 504,
            Reject::InvalidRequest { .. } => 400,
            Reject::Unsolvable { .. } => 422,
            Reject::InternalError { .. } => 500,
            Reject::BackendUnavailable { .. } => 503,
            Reject::IntegrityViolation { .. } => 500,
            Reject::Overloaded { .. } => 503,
            Reject::RequestTimeout { .. } => 408,
            Reject::HeaderLimit { .. } => 431,
        }
    }

    /// The JSON body this rejection is answered with
    /// (`{"reason": ..., ...}`); serialisation failure degrades to a
    /// generic internal-error body rather than panicking on the error path.
    #[must_use]
    pub fn body_json(&self) -> String {
        serde_json::to_string(self).unwrap_or_else(|_| r#"{"reason":"internal"}"#.to_string())
    }
}

impl std::fmt::Display for Reject {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Reject::QueueFull { depth } => write!(f, "queue full (depth {depth})"),
            Reject::ShuttingDown => write!(f, "server is shutting down"),
            Reject::DeadlineExceeded { deadline_ms } => {
                write!(f, "deadline of {deadline_ms} ms expired in queue")
            }
            Reject::InvalidRequest { detail } => write!(f, "invalid request: {detail}"),
            Reject::Unsolvable { detail } => write!(f, "unsolvable: {detail}"),
            Reject::InternalError { detail } => write!(f, "internal error: {detail}"),
            Reject::BackendUnavailable { detail } => {
                write!(f, "no backend available: {detail}")
            }
            Reject::IntegrityViolation { detail } => {
                write!(f, "integrity violation: {detail}")
            }
            Reject::Overloaded { max_connections } => {
                write!(f, "connection cap of {max_connections} reached")
            }
            Reject::RequestTimeout { deadline_ms } => {
                write!(f, "request deadline of {deadline_ms} ms expired")
            }
            Reject::HeaderLimit { detail } => write!(f, "header limit: {detail}"),
        }
    }
}

impl std::error::Error for Reject {}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_problem() -> MqoProblem {
        let mut b = MqoProblem::builder();
        let q1 = b.add_query(&[2.0, 4.0]);
        let q2 = b.add_query(&[3.0, 1.0]);
        let (p2, p3) = (b.plans_of(q1)[1], b.plans_of(q2)[0]);
        b.add_saving(p2, p3, 5.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn request_round_trips_and_defaults_apply() {
        let json = r#"{"problem": {"queries": [[2,4],[3,1]], "savings": [[1,2,5.0]]}}"#;
        let req: SolveRequest = serde_json::from_str(json).unwrap();
        assert_eq!(req.problem, tiny_problem());
        assert_eq!(req.seed, 0);
        assert!(req.reads.is_none() && req.backend.is_none());
        let back: SolveRequest =
            serde_json::from_str(&serde_json::to_string(&req).unwrap()).unwrap();
        assert_eq!(back.problem, req.problem);
    }

    #[test]
    fn malformed_problems_fail_to_deserialise() {
        // Saving within one query is rejected by builder validation.
        let json = r#"{"problem": {"queries": [[2,4]], "savings": [[0,1,5.0]]}}"#;
        assert!(serde_json::from_str::<SolveRequest>(json).is_err());
    }

    #[test]
    fn non_finite_weights_are_rejected_at_the_request_boundary() {
        // `1e999` overflows f64 — whether the parser rejects the literal or
        // saturates to +∞, the request must fail (builder validation rejects
        // non-finite costs and savings), never reach a worker as Inf/NaN.
        let inf_cost = r#"{"problem": {"queries": [[2,1e999],[3,1]], "savings": []}}"#;
        assert!(serde_json::from_str::<SolveRequest>(inf_cost).is_err());
        let inf_saving = r#"{"problem": {"queries": [[2,4],[3,1]], "savings": [[1,2,1e999]]}}"#;
        assert!(serde_json::from_str::<SolveRequest>(inf_saving).is_err());
    }

    #[test]
    fn reject_statuses_and_tags() {
        let r = Reject::QueueFull { depth: 8 };
        assert_eq!(r.http_status(), 429);
        let json = serde_json::to_string(&r).unwrap();
        assert!(json.contains("\"reason\":\"queue_full\""), "{json}");
        assert_eq!(serde_json::from_str::<Reject>(&json).unwrap(), r);
        assert_eq!(Reject::ShuttingDown.http_status(), 503);
        assert_eq!(
            Reject::DeadlineExceeded { deadline_ms: 5 }.http_status(),
            504
        );
    }

    #[test]
    fn robustness_rejects_have_stable_tags_and_statuses() {
        let cases: Vec<(Reject, u16, &str)> = vec![
            (
                Reject::InternalError {
                    detail: "chaos".into(),
                },
                500,
                "internal_error",
            ),
            (
                Reject::BackendUnavailable {
                    detail: "all breakers open".into(),
                },
                503,
                "backend_unavailable",
            ),
            (
                Reject::IntegrityViolation {
                    detail: "cost mismatch".into(),
                },
                500,
                "integrity_violation",
            ),
            (Reject::Overloaded { max_connections: 8 }, 503, "overloaded"),
            (
                Reject::RequestTimeout { deadline_ms: 100 },
                408,
                "request_timeout",
            ),
            (
                Reject::HeaderLimit {
                    detail: "too many headers".into(),
                },
                431,
                "header_limit",
            ),
        ];
        for (reject, status, tag) in cases {
            assert_eq!(reject.http_status(), status, "{reject}");
            let json = serde_json::to_string(&reject).unwrap();
            assert!(json.contains(&format!("\"reason\":\"{tag}\"")), "{json}");
            assert_eq!(serde_json::from_str::<Reject>(&json).unwrap(), reject);
        }
    }
}
