//! Per-backend circuit breakers.
//!
//! A backend that fails repeatedly (device programming aborts, injected
//! chaos failures, panics inside a solver) stops receiving traffic for a
//! cooling period instead of burning the latency budget of every request
//! that routes to it. Classic three-state machine:
//!
//! ```text
//!        failure (consecutive >= threshold)
//!  Closed ────────────────────────────────▶ Open
//!    ▲                                       │ open_for elapsed
//!    │ probe succeeds                        ▼
//!    └───────────────────────────────── HalfOpen
//!                 probe fails: back to Open ─┘
//! ```
//!
//! `HalfOpen` admits a single probe request at a time; its outcome decides
//! the next state. All transitions are counted (surfaced in `/metrics`) and
//! every lock acquisition recovers from poisoning — a panicking worker
//! thread must never wedge the breaker for the rest of the fleet.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Breaker policy knobs (shared by every backend's breaker).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(default)]
pub struct BreakerConfig {
    /// Consecutive failures that open the breaker. `0` disables breaking
    /// entirely (every request is admitted).
    pub failure_threshold: u32,
    /// How long an open breaker rejects before allowing a half-open probe,
    /// milliseconds.
    pub open_ms: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 5,
            open_ms: 1_000,
        }
    }
}

/// Observable breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum BreakerState {
    /// Healthy: all requests admitted.
    Closed,
    /// Tripped: requests are rejected until the cooling period elapses.
    Open,
    /// Cooling elapsed: one probe in flight decides the next state.
    HalfOpen,
}

#[derive(Debug)]
struct BreakerInner {
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: Option<Instant>,
    probe_in_flight: bool,
}

/// Serialisable snapshot of one breaker, reported under `/metrics`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BreakerSnapshot {
    /// Current state.
    pub state: BreakerState,
    /// Consecutive failures recorded since the last success.
    pub consecutive_failures: u32,
    /// Times the breaker transitioned Closed/HalfOpen → Open.
    pub opened_total: u64,
    /// Times the breaker transitioned Open → HalfOpen.
    pub half_opened_total: u64,
    /// Times the breaker transitioned HalfOpen → Closed.
    pub closed_total: u64,
    /// Requests rejected (not admitted) by this breaker.
    pub rejected_total: u64,
}

/// One backend's circuit breaker. Thread-safe; poison-recovering.
#[derive(Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    inner: Mutex<BreakerInner>,
    opened_total: AtomicU64,
    half_opened_total: AtomicU64,
    closed_total: AtomicU64,
    rejected_total: AtomicU64,
}

impl CircuitBreaker {
    /// A closed breaker under `config`.
    #[must_use]
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            inner: Mutex::new(BreakerInner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                opened_at: None,
                probe_in_flight: false,
            }),
            opened_total: AtomicU64::new(0),
            half_opened_total: AtomicU64::new(0),
            closed_total: AtomicU64::new(0),
            rejected_total: AtomicU64::new(0),
        }
    }

    /// The breaker's state is a few plain fields with no cross-field
    /// invariant a mid-update panic could break, so a poisoned guard is
    /// safe to recover as-is.
    fn lock(&self) -> MutexGuard<'_, BreakerInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Asks to route one request through this backend. `true` admits it
    /// (and, from `Open`, may start a half-open probe); `false` means the
    /// caller should fall through to the next backend.
    pub fn admit(&self) -> bool {
        if self.config.failure_threshold == 0 {
            return true;
        }
        let mut inner = self.lock();
        let admitted = match inner.state {
            BreakerState::Closed => true,
            BreakerState::Open => {
                let cooled = inner
                    .opened_at
                    .is_none_or(|t| t.elapsed() >= Duration::from_millis(self.config.open_ms));
                if cooled {
                    inner.state = BreakerState::HalfOpen;
                    inner.probe_in_flight = true;
                    self.half_opened_total.fetch_add(1, Ordering::Relaxed);
                    true
                } else {
                    false
                }
            }
            // One probe at a time: concurrent requests bounce to the next
            // backend until the probe's verdict is in.
            BreakerState::HalfOpen => {
                if inner.probe_in_flight {
                    false
                } else {
                    inner.probe_in_flight = true;
                    true
                }
            }
        };
        if !admitted {
            self.rejected_total.fetch_add(1, Ordering::Relaxed);
        }
        admitted
    }

    /// Records a successful attempt: closes the breaker.
    pub fn record_success(&self) {
        if self.config.failure_threshold == 0 {
            return;
        }
        let mut inner = self.lock();
        if inner.state != BreakerState::Closed {
            self.closed_total.fetch_add(1, Ordering::Relaxed);
        }
        inner.state = BreakerState::Closed;
        inner.consecutive_failures = 0;
        inner.opened_at = None;
        inner.probe_in_flight = false;
    }

    /// Records a failed attempt: a failed probe re-opens immediately, and
    /// `failure_threshold` consecutive failures open a closed breaker.
    pub fn record_failure(&self) {
        if self.config.failure_threshold == 0 {
            return;
        }
        let mut inner = self.lock();
        inner.consecutive_failures = inner.consecutive_failures.saturating_add(1);
        let open_now = match inner.state {
            BreakerState::HalfOpen => true,
            BreakerState::Closed => inner.consecutive_failures >= self.config.failure_threshold,
            BreakerState::Open => false,
        };
        if open_now {
            inner.state = BreakerState::Open;
            inner.opened_at = Some(Instant::now());
            inner.probe_in_flight = false;
            self.opened_total.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Current state (for tests and the snapshot).
    #[must_use]
    pub fn state(&self) -> BreakerState {
        self.lock().state
    }

    /// How much of the cooling period an `Open` breaker still has to sit
    /// out. `None` when the breaker is not open (or breaking is disabled);
    /// `Some(Duration::ZERO)` once the cooling has elapsed but no probe has
    /// been admitted yet. Callers use this to compute an honest
    /// `Retry-After` instead of a constant.
    #[must_use]
    pub fn remaining_open(&self) -> Option<Duration> {
        if self.config.failure_threshold == 0 {
            return None;
        }
        let inner = self.lock();
        if inner.state != BreakerState::Open {
            return None;
        }
        let open_for = Duration::from_millis(self.config.open_ms);
        Some(match inner.opened_at {
            Some(at) => open_for.saturating_sub(at.elapsed()),
            None => Duration::ZERO,
        })
    }

    /// Serialisable snapshot of state and transition counters.
    #[must_use]
    pub fn snapshot(&self) -> BreakerSnapshot {
        let inner = self.lock();
        BreakerSnapshot {
            state: inner.state,
            consecutive_failures: inner.consecutive_failures,
            opened_total: self.opened_total.load(Ordering::Relaxed),
            half_opened_total: self.half_opened_total.load(Ordering::Relaxed),
            closed_total: self.closed_total.load(Ordering::Relaxed),
            rejected_total: self.rejected_total.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker(threshold: u32, open_ms: u64) -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            failure_threshold: threshold,
            open_ms,
        })
    }

    #[test]
    fn consecutive_failures_open_the_breaker() {
        let b = breaker(3, 60_000);
        for _ in 0..2 {
            assert!(b.admit());
            b.record_failure();
            assert_eq!(b.state(), BreakerState::Closed);
        }
        assert!(b.admit());
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.admit(), "open breaker rejects");
        let s = b.snapshot();
        assert_eq!(s.opened_total, 1);
        assert_eq!(s.rejected_total, 1);
        assert_eq!(s.consecutive_failures, 3);
    }

    #[test]
    fn success_resets_the_failure_run() {
        let b = breaker(3, 60_000);
        b.record_failure();
        b.record_failure();
        b.record_success();
        b.record_failure();
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Closed, "run was interrupted");
    }

    #[test]
    fn open_breaker_half_opens_after_cooling_and_closes_on_probe_success() {
        let b = breaker(1, 0); // cooling period 0: next admit is the probe
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert!(b.admit(), "cooled breaker admits a probe");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(!b.admit(), "only one probe at a time");
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        let s = b.snapshot();
        assert_eq!(
            (s.opened_total, s.half_opened_total, s.closed_total),
            (1, 1, 1)
        );
    }

    #[test]
    fn failed_probe_reopens_immediately() {
        let b = breaker(1, 0);
        b.record_failure();
        assert!(b.admit());
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.snapshot().opened_total, 2);
    }

    #[test]
    fn remaining_open_tracks_the_cooling_interval() {
        let b = breaker(1, 30_000);
        assert_eq!(b.remaining_open(), None, "closed breaker has no interval");
        b.record_failure();
        let remaining = b.remaining_open().expect("open breaker reports interval");
        assert!(
            remaining <= Duration::from_millis(30_000),
            "never exceeds the configured cooling period"
        );
        assert!(
            remaining >= Duration::from_millis(29_000),
            "a just-opened breaker has nearly the full period left, got {remaining:?}"
        );
        b.record_success();
        assert_eq!(b.remaining_open(), None, "closing clears the interval");

        let cooled = breaker(1, 0);
        cooled.record_failure();
        assert_eq!(
            cooled.remaining_open(),
            Some(Duration::ZERO),
            "elapsed cooling reports zero, not None: the breaker is still open"
        );

        let disabled = breaker(0, 30_000);
        disabled.record_failure();
        assert_eq!(
            disabled.remaining_open(),
            None,
            "disabled breaker never opens"
        );
    }

    #[test]
    fn zero_threshold_disables_breaking() {
        let b = breaker(0, 0);
        for _ in 0..100 {
            assert!(b.admit());
            b.record_failure();
        }
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.snapshot().opened_total, 0);
    }

    #[test]
    fn poisoned_lock_is_recovered_not_propagated() {
        let b = std::sync::Arc::new(breaker(2, 60_000));
        let b2 = std::sync::Arc::clone(&b);
        // Poison the inner mutex by panicking while holding it.
        let _ = std::thread::spawn(move || {
            let _guard = b2.inner.lock().unwrap();
            panic!("poison the breaker");
        })
        .join();
        assert!(b.inner.is_poisoned());
        assert!(b.admit(), "poisoned breaker still admits");
        b.record_failure();
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open, "state machine still works");
    }
}
