//! Deterministic chaos injection at the service boundary.
//!
//! PR 2 gave the *device* a seeded fault model ([`mqo_annealer::faults`]);
//! this module applies the same discipline one layer up, to the serving
//! stack itself: worker panics, fatal worker deaths, and per-backend
//! failures are all rolled from SplitMix64 streams keyed on the **request
//! content** (the request seed), never on scheduling order. That makes a
//! chaos schedule a pure function of `(chaos seed, request stream)`:
//!
//! * bit-identical at any worker count, device thread count, or client
//!   interleaving — the acceptance tests compare `/metrics` counters across
//!   pool sizes;
//! * completely absent when the configuration is inert — a zero-rate config
//!   takes the exact clean code path (no RNG stream is even consulted).
//!
//! Injection sites:
//!
//! * **Worker panic** ([`ChaosConfig::worker_panics`]) — the engine panics
//!   at `solve` entry. The batching worker catches it (`catch_unwind`),
//!   answers a typed `500 internal_error`, and keeps draining the batch.
//! * **Worker kill** ([`ChaosConfig::worker_dies`]) — a caught panic is
//!   escalated after the request is answered: the worker re-queues the rest
//!   of its batch and dies, exercising the supervisor's respawn path.
//! * **Backend failure** ([`ChaosConfig::backend_fails`]) — one backend
//!   attempt fails before running; the engine records it against that
//!   backend's circuit breaker and falls through to the next candidate.
//!
//! Client-side chaos (aborted and slow connections) lives in the `loadgen`
//! bench binary and shares the same stream constants via
//! [`chaos_roll`], keyed on the request index of the replay.

use crate::api::Backend;
use mqo_annealer::faults::unit_uniform;
use mqo_annealer::parallel::derive_seed;
use serde::{Deserialize, Serialize};

/// Stream tag for worker-panic rolls.
pub const STREAM_CHAOS_PANIC: u64 = 0x4348_5041_4e49_0001;
/// Stream tag for worker-kill escalation rolls.
pub const STREAM_CHAOS_KILL: u64 = 0x4348_4b49_4c4c_0002;
/// Stream tag for per-backend failure rolls.
pub const STREAM_CHAOS_BACKEND: u64 = 0x4348_4241_434b_0003;
/// Stream tag for client-side connection chaos (aborts/slow writes in
/// `loadgen`).
pub const STREAM_CHAOS_CONN: u64 = 0x4348_434f_4e4e_0004;
/// Stream tag for sample-corruption rolls (mangled backend answers at the
/// API boundary, caught by the integrity gate).
pub const STREAM_CHAOS_CORRUPT: u64 = 0x4348_434f_5252_0005;
/// Stream tag for fleet cell-kill rolls (SIGKILL of a supervised
/// `mqo_serve` cell process mid-drain, DESIGN.md §14).
pub const STREAM_CHAOS_CELL_KILL: u64 = 0x4348_4345_4c4c_0006;

/// One uniform sample in `[0, 1)` for slot `(a, b)` of `stream` under
/// `chaos_seed` — the single primitive every chaos decision reduces to.
#[must_use]
pub fn chaos_roll(chaos_seed: u64, stream: u64, a: u64, b: u64) -> f64 {
    unit_uniform(derive_seed(chaos_seed, stream, a, b))
}

/// Service-level chaos configuration. The default (all rates zero) injects
/// nothing and leaves every code path identical to a chaos-free build.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct ChaosConfig {
    /// Seed of every chaos stream; distinct from the request seeds.
    pub seed: u64,
    /// Per-request probability that the solve panics inside the engine.
    pub worker_panic_rate: f64,
    /// Probability that a *caught* panic escalates and kills the worker
    /// thread after the request was answered (the supervisor respawns it).
    pub worker_kill_rate: f64,
    /// Per-(request, backend) probability that a backend attempt fails
    /// before running, tripping that backend's circuit breaker.
    pub backend_failure_rate: f64,
    /// Per-request probability that a *successful* backend answer is
    /// corrupted at the API boundary (cross-query plan flip, NaN cost, or
    /// +∞ cost) before the integrity gate sees it. Every corruption this
    /// injects is detectable by [`mqo_core::integrity::verify_selection`],
    /// so a drain with this rate on must end with
    /// `chaos_corruptions_injected == integrity_repairs + integrity_rejects`.
    pub sample_corruption_rate: f64,
}

/// Which mangling a fired corruption roll applies to the response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleCorruption {
    /// One query's selection entry is replaced by a plan of the *next*
    /// query — structurally infeasible, caught by selection validation.
    CrossQueryPlan,
    /// The reported cost becomes NaN.
    NanCost,
    /// The reported cost becomes +∞.
    InfCost,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig::NONE
    }
}

impl ChaosConfig {
    /// No chaos at all: the service takes the exact clean code path.
    pub const NONE: ChaosConfig = ChaosConfig {
        seed: 0,
        worker_panic_rate: 0.0,
        worker_kill_rate: 0.0,
        backend_failure_rate: 0.0,
        sample_corruption_rate: 0.0,
    };

    /// Whether this configuration can never inject anything.
    #[must_use]
    pub fn is_inert(&self) -> bool {
        self.worker_panic_rate <= 0.0
            && self.worker_kill_rate <= 0.0
            && self.backend_failure_rate <= 0.0
            && self.sample_corruption_rate <= 0.0
    }

    /// Validates rates; the binaries surface violations before binding.
    pub fn validate(&self) -> Result<(), &'static str> {
        let rate_ok = |r: f64| (0.0..=1.0).contains(&r);
        if !rate_ok(self.worker_panic_rate)
            || !rate_ok(self.worker_kill_rate)
            || !rate_ok(self.backend_failure_rate)
            || !rate_ok(self.sample_corruption_rate)
        {
            return Err("chaos rates must lie in [0, 1]");
        }
        Ok(())
    }

    /// Whether the request with base seed `req_seed` panics inside the
    /// engine. Pure in `(self.seed, req_seed)`.
    #[must_use]
    pub fn worker_panics(&self, req_seed: u64) -> bool {
        self.worker_panic_rate > 0.0
            && chaos_roll(self.seed, STREAM_CHAOS_PANIC, req_seed, 0) < self.worker_panic_rate
    }

    /// Whether the caught panic of request `req_seed` escalates into a
    /// worker death. Only consulted after [`ChaosConfig::worker_panics`]
    /// fired, so the kill schedule is a deterministic subset of the panic
    /// schedule.
    #[must_use]
    pub fn worker_dies(&self, req_seed: u64) -> bool {
        self.worker_kill_rate > 0.0
            && chaos_roll(self.seed, STREAM_CHAOS_KILL, req_seed, 0) < self.worker_kill_rate
    }

    /// Whether the attempt of `backend` for request `req_seed` is failed
    /// before it runs.
    #[must_use]
    pub fn backend_fails(&self, req_seed: u64, backend: Backend) -> bool {
        self.backend_failure_rate > 0.0
            && chaos_roll(self.seed, STREAM_CHAOS_BACKEND, req_seed, backend as u64)
                < self.backend_failure_rate
    }

    /// Which corruption (if any) to apply to the successful answer of
    /// request `req_seed`. Pure in `(self.seed, req_seed)`; the mode comes
    /// from an independent slot of the same stream so rate and shape don't
    /// alias.
    #[must_use]
    pub fn sample_corruption(&self, req_seed: u64) -> Option<SampleCorruption> {
        if self.sample_corruption_rate <= 0.0
            || chaos_roll(self.seed, STREAM_CHAOS_CORRUPT, req_seed, 0)
                >= self.sample_corruption_rate
        {
            return None;
        }
        let mode = chaos_roll(self.seed, STREAM_CHAOS_CORRUPT, req_seed, 1);
        Some(if mode < 1.0 / 3.0 {
            SampleCorruption::CrossQueryPlan
        } else if mode < 2.0 / 3.0 {
            SampleCorruption::NanCost
        } else {
            SampleCorruption::InfCost
        })
    }
}

/// A seeded schedule of cell-process SIGKILLs for fleet kill-chaos.
///
/// The schedule is a pure function of `(seed, kills, delay bounds, cell
/// count)`: kill `k` fires `delay_ms(k)` milliseconds after the supervisor
/// starts executing the schedule and targets `target_cell(k)`. Two runs
/// with the same configuration kill the same cells at the same offsets —
/// the fleet drain tests rely on that to compare recovery behaviour across
/// runs. A `kills` of zero is inert: the supervisor never consults the
/// schedule's streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(default)]
pub struct CellKillSchedule {
    /// Seed of the kill streams; independent of every other chaos stream.
    pub seed: u64,
    /// Total SIGKILLs to deliver over the drain.
    pub kills: u32,
    /// Earliest offset of a kill from schedule start, milliseconds.
    pub min_delay_ms: u64,
    /// Latest offset of a kill from schedule start, milliseconds.
    pub max_delay_ms: u64,
}

impl Default for CellKillSchedule {
    fn default() -> Self {
        CellKillSchedule {
            seed: 0,
            kills: 0,
            min_delay_ms: 100,
            max_delay_ms: 2_000,
        }
    }
}

impl CellKillSchedule {
    /// Whether this schedule can never fire.
    #[must_use]
    pub fn is_inert(&self) -> bool {
        self.kills == 0
    }

    /// Validates the delay bounds; the binaries surface violations before
    /// binding.
    pub fn validate(&self) -> Result<(), &'static str> {
        if self.min_delay_ms > self.max_delay_ms {
            return Err("cell-kill min delay must not exceed max delay");
        }
        Ok(())
    }

    /// Offset of kill `k` from schedule start, milliseconds. Uniform in
    /// `[min_delay_ms, max_delay_ms]`, pure in `(self.seed, k)`.
    #[must_use]
    pub fn delay_ms(&self, k: u32) -> u64 {
        let span = self.max_delay_ms - self.min_delay_ms;
        let roll = chaos_roll(self.seed, STREAM_CHAOS_CELL_KILL, u64::from(k), 0);
        self.min_delay_ms + (roll * (span + 1) as f64) as u64
    }

    /// Which of `cells` processes kill `k` targets. Pure in
    /// `(self.seed, k)`; an independent slot of the kill stream so delay
    /// and target don't alias.
    #[must_use]
    pub fn target_cell(&self, k: u32, cells: usize) -> usize {
        let roll = chaos_roll(self.seed, STREAM_CHAOS_CELL_KILL, u64::from(k), 1);
        ((roll * cells as f64) as usize).min(cells.saturating_sub(1))
    }
}

/// Panic payload message used by injected worker panics, so tests and
/// operators can tell chaos from genuine bugs in `500` details.
pub const CHAOS_PANIC_MESSAGE: &str = "chaos: injected worker panic";

/// Extracts a human-readable message from a caught panic payload
/// (`&str` and `String` payloads cover `panic!`; anything else gets a
/// placeholder rather than a lossy `Debug` dump).
#[must_use]
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_configs_are_detected_and_never_fire() {
        assert!(ChaosConfig::NONE.is_inert());
        assert!(ChaosConfig::default().is_inert());
        let cfg = ChaosConfig {
            seed: 99,
            ..ChaosConfig::NONE
        };
        assert!(cfg.is_inert());
        for req_seed in 0..1_000 {
            assert!(!cfg.worker_panics(req_seed));
            assert!(!cfg.worker_dies(req_seed));
            assert!(!cfg.backend_fails(req_seed, Backend::Annealer));
            assert!(cfg.sample_corruption(req_seed).is_none());
        }
        assert!(!ChaosConfig {
            worker_panic_rate: 0.1,
            ..ChaosConfig::NONE
        }
        .is_inert());
    }

    #[test]
    fn validate_rejects_out_of_range_rates() {
        assert!(ChaosConfig::NONE.validate().is_ok());
        for bad in [-0.1, 1.5, f64::NAN] {
            assert!(ChaosConfig {
                worker_panic_rate: bad,
                ..ChaosConfig::NONE
            }
            .validate()
            .is_err());
            assert!(ChaosConfig {
                backend_failure_rate: bad,
                ..ChaosConfig::NONE
            }
            .validate()
            .is_err());
            assert!(ChaosConfig {
                sample_corruption_rate: bad,
                ..ChaosConfig::NONE
            }
            .validate()
            .is_err());
        }
    }

    #[test]
    fn corruption_schedule_is_deterministic_and_covers_every_mode() {
        let cfg = ChaosConfig {
            seed: 13,
            sample_corruption_rate: 0.5,
            ..ChaosConfig::NONE
        };
        let schedule: Vec<_> = (0..400).map(|s| cfg.sample_corruption(s)).collect();
        let again: Vec<_> = (0..400).map(|s| cfg.sample_corruption(s)).collect();
        assert_eq!(schedule, again, "same seed, same corruption schedule");
        let fired: Vec<_> = schedule.iter().flatten().collect();
        assert!(
            (100..=300).contains(&fired.len()),
            "50% of 400 should land near 200, got {}",
            fired.len()
        );
        for mode in [
            SampleCorruption::CrossQueryPlan,
            SampleCorruption::NanCost,
            SampleCorruption::InfCost,
        ] {
            assert!(
                fired.iter().any(|&&m| m == mode),
                "mode {mode:?} never drawn in 400 rolls"
            );
        }
    }

    #[test]
    fn rolls_are_deterministic_and_content_keyed() {
        let cfg = ChaosConfig {
            seed: 7,
            worker_panic_rate: 0.3,
            worker_kill_rate: 0.5,
            backend_failure_rate: 0.3,
            ..ChaosConfig::NONE
        };
        let schedule: Vec<bool> = (0..200).map(|s| cfg.worker_panics(s)).collect();
        let again: Vec<bool> = (0..200).map(|s| cfg.worker_panics(s)).collect();
        assert_eq!(schedule, again, "same seed, same schedule");
        let fired = schedule.iter().filter(|&&p| p).count();
        assert!(
            (20..=100).contains(&fired),
            "30% of 200 requests should land near 60, got {fired}"
        );
        let other = ChaosConfig { seed: 8, ..cfg };
        let other_schedule: Vec<bool> = (0..200).map(|s| other.worker_panics(s)).collect();
        assert_ne!(schedule, other_schedule, "different chaos seeds differ");
    }

    #[test]
    fn cell_kill_schedule_is_deterministic_and_bounded() {
        let schedule = CellKillSchedule {
            seed: 42,
            kills: 8,
            min_delay_ms: 100,
            max_delay_ms: 1_500,
        };
        assert!(!schedule.is_inert());
        assert!(schedule.validate().is_ok());
        let plan: Vec<(u64, usize)> = (0..schedule.kills)
            .map(|k| (schedule.delay_ms(k), schedule.target_cell(k, 3)))
            .collect();
        let again: Vec<(u64, usize)> = (0..schedule.kills)
            .map(|k| (schedule.delay_ms(k), schedule.target_cell(k, 3)))
            .collect();
        assert_eq!(plan, again, "same seed, same kill plan");
        for &(delay, cell) in &plan {
            assert!(
                (100..=1_500).contains(&delay),
                "delay {delay} out of bounds"
            );
            assert!(cell < 3, "target {cell} out of range");
        }
        let other = CellKillSchedule {
            seed: 43,
            ..schedule
        };
        let other_plan: Vec<(u64, usize)> = (0..schedule.kills)
            .map(|k| (other.delay_ms(k), other.target_cell(k, 3)))
            .collect();
        assert_ne!(plan, other_plan, "different seeds, different plans");
        // Over enough kills every cell is hit at least once.
        let wide: Vec<usize> = (0..64).map(|k| schedule.target_cell(k, 3)).collect();
        for cell in 0..3 {
            assert!(
                wide.contains(&cell),
                "cell {cell} never targeted in 64 kills"
            );
        }
    }

    #[test]
    fn cell_kill_schedule_defaults_are_inert_and_bad_bounds_rejected() {
        assert!(CellKillSchedule::default().is_inert());
        assert!(CellKillSchedule::default().validate().is_ok());
        let bad = CellKillSchedule {
            min_delay_ms: 500,
            max_delay_ms: 100,
            ..CellKillSchedule::default()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn streams_are_independent_per_backend_and_site() {
        let cfg = ChaosConfig {
            seed: 3,
            worker_panic_rate: 0.5,
            worker_kill_rate: 0.5,
            backend_failure_rate: 0.5,
            ..ChaosConfig::NONE
        };
        let panics: Vec<bool> = (0..400).map(|s| cfg.worker_panics(s)).collect();
        let kills: Vec<bool> = (0..400).map(|s| cfg.worker_dies(s)).collect();
        assert_ne!(panics, kills, "kill rolls use their own stream");
        let annealer: Vec<bool> = (0..400)
            .map(|s| cfg.backend_fails(s, Backend::Annealer))
            .collect();
        let milp: Vec<bool> = (0..400)
            .map(|s| cfg.backend_fails(s, Backend::Milp))
            .collect();
        assert_ne!(annealer, milp, "backend rolls are per-backend");
    }
}
