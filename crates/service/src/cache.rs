//! The embedding/programming cache.
//!
//! Choi's minor-embedding construction depends only on the *structure* of
//! the QUBO adjacency — which variables interact — never on the weights
//! (Section 5 of the paper). Structurally identical MQO instances can
//! therefore reuse one cached embedding and only re-derive the Ising
//! weights, which turns the dominant per-request cost (placement/routing)
//! into a lookup.
//!
//! Keys pair the canonical structure hash of the logical QUBO
//! (`Qubo::structure_hash`) with the topology fingerprint of the device
//! graph (`ChimeraGraph::fingerprint`): an embedding is only valid for the
//! exact graph it was routed on. The cache is a bounded LRU with hit, miss,
//! and eviction counters; all access is through one mutex (lookups are
//! nanoseconds against solves that are milliseconds).

use mqo_chimera::embedding::Embedding;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};

/// Cache key: problem structure × device topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CacheKey {
    /// `Qubo::structure_hash` of the logical formula.
    pub structure: u64,
    /// `ChimeraGraph::fingerprint` of the graph the embedding was routed on.
    pub graph: u64,
}

/// Counter snapshot of an [`EmbeddingCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups that found a reusable embedding.
    pub hits: u64,
    /// Lookups that required a fresh placement.
    pub misses: u64,
    /// Entries displaced by the LRU bound.
    pub evictions: u64,
    /// Entries currently held.
    pub len: usize,
    /// The configured bound.
    pub capacity: usize,
}

#[derive(Debug, Default)]
struct CacheInner {
    /// Key → (embedding, recency stamp of the last touch).
    map: HashMap<CacheKey, (Arc<Embedding>, u64)>,
    /// Recency stamp → key, oldest first; kept in lockstep with `map`.
    recency: BTreeMap<u64, CacheKey>,
    /// Monotonic touch counter.
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// A bounded LRU cache of minor embeddings.
#[derive(Debug)]
pub struct EmbeddingCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
}

impl EmbeddingCache {
    /// Creates a cache bounded to `capacity` entries (`capacity = 0`
    /// disables caching: every lookup misses, inserts are dropped).
    pub fn new(capacity: usize) -> Self {
        EmbeddingCache {
            inner: Mutex::new(CacheInner::default()),
            capacity,
        }
    }

    /// Looks up an embedding, bumping its recency. Counts a hit or a miss.
    pub fn get(&self, key: CacheKey) -> Option<Arc<Embedding>> {
        let mut inner = self.inner.lock().expect("cache mutex poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(&key) {
            Some((embedding, stamp)) => {
                let old = std::mem::replace(stamp, tick);
                let embedding = Arc::clone(embedding);
                inner.recency.remove(&old);
                inner.recency.insert(tick, key);
                inner.hits += 1;
                Some(embedding)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Inserts (or refreshes) an embedding, evicting the least recently
    /// used entry when the bound is exceeded.
    pub fn insert(&self, key: CacheKey, embedding: Arc<Embedding>) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock().expect("cache mutex poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        if let Some((_, old)) = inner.map.insert(key, (embedding, tick)) {
            inner.recency.remove(&old);
        }
        inner.recency.insert(tick, key);
        while inner.map.len() > self.capacity {
            let (&oldest, &victim) = inner
                .recency
                .iter()
                .next()
                .expect("recency tracks every entry");
            inner.recency.remove(&oldest);
            inner.map.remove(&victim);
            inner.evictions += 1;
        }
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().expect("cache mutex poisoned");
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            len: inner.map.len(),
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqo_chimera::graph::ChimeraGraph;

    fn embedding(n: usize) -> Arc<Embedding> {
        use mqo_chimera::embedding::triad;
        let g = ChimeraGraph::new(2, 2);
        Arc::new(triad::triad(&g, 0, 0, n).unwrap())
    }

    fn key(structure: u64) -> CacheKey {
        CacheKey {
            structure,
            graph: 1,
        }
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let cache = EmbeddingCache::new(4);
        assert!(cache.get(key(1)).is_none());
        cache.insert(key(1), embedding(2));
        let e = cache.get(key(1)).expect("inserted entry is found");
        assert_eq!(e.num_vars(), 2);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.evictions, s.len), (1, 1, 0, 1));
    }

    #[test]
    fn lru_evicts_the_least_recently_used_entry() {
        let cache = EmbeddingCache::new(2);
        cache.insert(key(1), embedding(2));
        cache.insert(key(2), embedding(3));
        // Touch key 1 so key 2 becomes the LRU victim.
        assert!(cache.get(key(1)).is_some());
        cache.insert(key(3), embedding(4));
        assert!(cache.get(key(2)).is_none(), "LRU entry was evicted");
        assert!(cache.get(key(1)).is_some());
        assert!(cache.get(key(3)).is_some());
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.len, 2);
    }

    #[test]
    fn capacity_bound_is_never_exceeded() {
        let cache = EmbeddingCache::new(3);
        for i in 0..50 {
            cache.insert(key(i), embedding(2));
            assert!(cache.stats().len <= 3);
        }
        let s = cache.stats();
        assert_eq!(s.len, 3);
        assert_eq!(s.evictions, 47);
        // The three most recent keys survive.
        for i in 47..50 {
            assert!(cache.get(key(i)).is_some(), "key {i} should be cached");
        }
    }

    #[test]
    fn reinserting_a_key_does_not_leak_recency_entries() {
        let cache = EmbeddingCache::new(2);
        for _ in 0..10 {
            cache.insert(key(1), embedding(2));
        }
        cache.insert(key(2), embedding(2));
        cache.insert(key(3), embedding(2));
        let s = cache.stats();
        assert_eq!(s.len, 2);
        assert_eq!(s.evictions, 1, "only key 1 was ever displaced");
    }

    #[test]
    fn different_graphs_do_not_share_entries() {
        let cache = EmbeddingCache::new(4);
        cache.insert(
            CacheKey {
                structure: 7,
                graph: 1,
            },
            embedding(2),
        );
        assert!(cache
            .get(CacheKey {
                structure: 7,
                graph: 2,
            })
            .is_none());
    }

    #[test]
    fn zero_capacity_disables_caching_without_panicking() {
        let cache = EmbeddingCache::new(0);
        cache.insert(key(1), embedding(2));
        assert!(cache.get(key(1)).is_none());
        assert_eq!(cache.stats().len, 0);
    }
}
