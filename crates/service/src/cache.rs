//! The embedding/programming cache.
//!
//! Choi's minor-embedding construction depends only on the *structure* of
//! the QUBO adjacency — which variables interact — never on the weights
//! (Section 5 of the paper). Structurally identical MQO instances can
//! therefore reuse one cached embedding and only re-derive the Ising
//! weights, which turns the dominant per-request cost (placement/routing)
//! into a lookup.
//!
//! Keys pair the canonical structure hash of the logical QUBO
//! (`Qubo::structure_hash`) with the topology fingerprint of the device
//! graph (`ChimeraGraph::fingerprint`): an embedding is only valid for the
//! exact graph it was routed on. The cache is a bounded LRU with hit, miss,
//! and eviction counters; all access is through one mutex (lookups are
//! nanoseconds against solves that are milliseconds).

use mqo_chimera::embedding::Embedding;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Cache key: problem structure × device topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CacheKey {
    /// `Qubo::structure_hash` of the logical formula.
    pub structure: u64,
    /// `ChimeraGraph::fingerprint` of the graph the embedding was routed on.
    pub graph: u64,
}

/// Counter snapshot of an [`EmbeddingCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups that found a reusable embedding.
    pub hits: u64,
    /// Lookups that required a fresh placement.
    pub misses: u64,
    /// Entries displaced by the LRU bound.
    pub evictions: u64,
    /// Entries currently held.
    pub len: usize,
    /// The configured bound.
    pub capacity: usize,
    /// Entries invalidated by poison recovery (the whole map is dropped
    /// when a panicking holder may have broken the LRU bookkeeping).
    pub poison_invalidations: u64,
}

#[derive(Debug, Default)]
struct CacheInner {
    /// Key → (embedding, recency stamp of the last touch).
    map: HashMap<CacheKey, (Arc<Embedding>, u64)>,
    /// Recency stamp → key, oldest first; kept in lockstep with `map`.
    recency: BTreeMap<u64, CacheKey>,
    /// Monotonic touch counter.
    tick: u64,
}

/// A bounded LRU cache of minor embeddings.
///
/// Counters are lock-free atomics (read by `/metrics` without touching the
/// map lock); the map lock itself is poison-recovering: if a panicking
/// holder poisons it, the next acquirer drops every entry (the `map` ↔
/// `recency` lockstep cannot be trusted after an interrupted update) and
/// carries on — an embedding cache may always be cold, it must never take
/// the service down.
#[derive(Debug)]
pub struct EmbeddingCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    poison_invalidations: AtomicU64,
}

impl EmbeddingCache {
    /// Creates a cache bounded to `capacity` entries (`capacity = 0`
    /// disables caching: every lookup misses, inserts are dropped).
    pub fn new(capacity: usize) -> Self {
        EmbeddingCache {
            inner: Mutex::new(CacheInner::default()),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            poison_invalidations: AtomicU64::new(0),
        }
    }

    /// Acquires the map lock; a poisoned guard is recovered by invalidating
    /// the whole cache. The dropped entries are not LRU evictions (nothing
    /// displaced them), so they land in their own counter.
    fn lock(&self) -> MutexGuard<'_, CacheInner> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                let mut inner = poisoned.into_inner();
                self.poison_invalidations
                    .fetch_add(inner.map.len() as u64, Ordering::Relaxed);
                inner.map.clear();
                inner.recency.clear();
                self.inner.clear_poison();
                inner
            }
        }
    }

    /// Looks up an embedding, bumping its recency. Counts a hit or a miss.
    pub fn get(&self, key: CacheKey) -> Option<Arc<Embedding>> {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(&key) {
            Some((embedding, stamp)) => {
                let old = std::mem::replace(stamp, tick);
                let embedding = Arc::clone(embedding);
                inner.recency.remove(&old);
                inner.recency.insert(tick, key);
                drop(inner);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(embedding)
            }
            None => {
                drop(inner);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts (or refreshes) an embedding, evicting the least recently
    /// used entry when the bound is exceeded.
    pub fn insert(&self, key: CacheKey, embedding: Arc<Embedding>) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some((_, old)) = inner.map.insert(key, (embedding, tick)) {
            inner.recency.remove(&old);
        }
        inner.recency.insert(tick, key);
        let mut evicted = 0u64;
        while inner.map.len() > self.capacity {
            // `recency` tracks every entry; if the lockstep ever broke (it
            // cannot after poison recovery — recovery clears both), stop
            // evicting rather than looping forever.
            let Some((&oldest, &victim)) = inner.recency.iter().next() else {
                break;
            };
            inner.recency.remove(&oldest);
            inner.map.remove(&victim);
            evicted += 1;
        }
        drop(inner);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        let len = self.lock().map.len();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            len,
            capacity: self.capacity,
            poison_invalidations: self.poison_invalidations.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqo_chimera::graph::ChimeraGraph;

    fn embedding(n: usize) -> Arc<Embedding> {
        use mqo_chimera::embedding::triad;
        let g = ChimeraGraph::new(2, 2);
        Arc::new(triad::triad(&g, 0, 0, n).unwrap())
    }

    fn key(structure: u64) -> CacheKey {
        CacheKey {
            structure,
            graph: 1,
        }
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let cache = EmbeddingCache::new(4);
        assert!(cache.get(key(1)).is_none());
        cache.insert(key(1), embedding(2));
        let e = cache.get(key(1)).expect("inserted entry is found");
        assert_eq!(e.num_vars(), 2);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.evictions, s.len), (1, 1, 0, 1));
    }

    #[test]
    fn lru_evicts_the_least_recently_used_entry() {
        let cache = EmbeddingCache::new(2);
        cache.insert(key(1), embedding(2));
        cache.insert(key(2), embedding(3));
        // Touch key 1 so key 2 becomes the LRU victim.
        assert!(cache.get(key(1)).is_some());
        cache.insert(key(3), embedding(4));
        assert!(cache.get(key(2)).is_none(), "LRU entry was evicted");
        assert!(cache.get(key(1)).is_some());
        assert!(cache.get(key(3)).is_some());
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.len, 2);
    }

    #[test]
    fn capacity_bound_is_never_exceeded() {
        let cache = EmbeddingCache::new(3);
        for i in 0..50 {
            cache.insert(key(i), embedding(2));
            assert!(cache.stats().len <= 3);
        }
        let s = cache.stats();
        assert_eq!(s.len, 3);
        assert_eq!(s.evictions, 47);
        // The three most recent keys survive.
        for i in 47..50 {
            assert!(cache.get(key(i)).is_some(), "key {i} should be cached");
        }
    }

    #[test]
    fn reinserting_a_key_does_not_leak_recency_entries() {
        let cache = EmbeddingCache::new(2);
        for _ in 0..10 {
            cache.insert(key(1), embedding(2));
        }
        cache.insert(key(2), embedding(2));
        cache.insert(key(3), embedding(2));
        let s = cache.stats();
        assert_eq!(s.len, 2);
        assert_eq!(s.evictions, 1, "only key 1 was ever displaced");
    }

    #[test]
    fn different_graphs_do_not_share_entries() {
        let cache = EmbeddingCache::new(4);
        cache.insert(
            CacheKey {
                structure: 7,
                graph: 1,
            },
            embedding(2),
        );
        assert!(cache
            .get(CacheKey {
                structure: 7,
                graph: 2,
            })
            .is_none());
    }

    #[test]
    fn poisoned_cache_recovers_by_invalidating_not_panicking() {
        let cache = Arc::new(EmbeddingCache::new(4));
        cache.insert(key(1), embedding(2));
        cache.insert(key(2), embedding(2));
        // Poison the map lock by panicking while holding it.
        let c2 = Arc::clone(&cache);
        let _ = std::thread::spawn(move || {
            let _guard = c2.inner.lock().unwrap();
            panic!("die holding the cache lock");
        })
        .join();
        assert!(cache.inner.is_poisoned());
        // Recovery: the lookup succeeds (a miss — entries were dropped) and
        // the cache is fully usable again.
        assert!(cache.get(key(1)).is_none());
        let s = cache.stats();
        assert_eq!(s.len, 0, "poisoned cache was invalidated");
        assert_eq!(s.poison_invalidations, 2, "both entries dropped");
        assert!(!cache.inner.is_poisoned(), "poison flag cleared");
        cache.insert(key(3), embedding(2));
        assert!(cache.get(key(3)).is_some(), "cache works after recovery");
    }

    #[test]
    fn zero_capacity_disables_caching_without_panicking() {
        let cache = EmbeddingCache::new(0);
        cache.insert(key(1), embedding(2));
        assert!(cache.get(key(1)).is_none());
        assert_eq!(cache.stats().len, 0);
    }
}
