//! Bounded admission queue + batching worker pool.
//!
//! The front-end enqueues; a small worker pool drains the queue in batches
//! (grouping structurally similar requests so embedding-cache hits cluster)
//! and answers each job through a one-shot channel. Overload is a typed
//! [`Reject::QueueFull`] at admission time — the queue never grows without
//! bound and never panics under pressure — and shutdown stops admissions
//! while the workers drain everything already accepted.

use crate::api::{Reject, SolveRequest, SolveResponse};
use crate::engine::SolveEngine;
use crate::metrics::Metrics;
use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Queue/scheduler knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueConfig {
    /// Maximum queued (admitted but not yet dispatched) requests.
    pub depth: usize,
    /// Worker threads draining the queue.
    pub workers: usize,
    /// Maximum requests one worker claims per wake-up.
    pub batch_size: usize,
    /// Deadline applied to requests that specify none (0 = unbounded).
    pub default_deadline_ms: u64,
}

impl Default for QueueConfig {
    fn default() -> Self {
        QueueConfig {
            depth: 64,
            workers: 2,
            batch_size: 8,
            default_deadline_ms: 0,
        }
    }
}

/// One admitted request awaiting dispatch.
struct Job {
    req: SolveRequest,
    enqueued: Instant,
    deadline: Option<Instant>,
    deadline_ms: u64,
    tx: mpsc::Sender<Result<SolveResponse, Reject>>,
}

struct QueueState {
    jobs: VecDeque<Job>,
    accepting: bool,
}

/// The admission queue and its worker pool.
pub struct SolveQueue {
    state: Mutex<QueueState>,
    wakeup: Condvar,
    config: QueueConfig,
    engine: Arc<SolveEngine>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for SolveQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SolveQueue")
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl SolveQueue {
    /// Creates the queue without spawning workers (tests use this to
    /// exercise admission behaviour deterministically).
    pub fn new(engine: Arc<SolveEngine>, config: QueueConfig) -> Arc<Self> {
        Arc::new(SolveQueue {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                accepting: true,
            }),
            wakeup: Condvar::new(),
            config,
            engine,
            workers: Mutex::new(Vec::new()),
        })
    }

    /// Creates the queue and spawns its worker pool.
    pub fn start(engine: Arc<SolveEngine>, config: QueueConfig) -> Arc<Self> {
        let queue = Self::new(engine, config);
        queue.spawn_workers();
        queue
    }

    /// Spawns the worker pool (idempotent only in the sense that calling it
    /// twice doubles the pool; call once).
    pub fn spawn_workers(self: &Arc<Self>) {
        let n = self.config.workers.max(1);
        let mut workers = self.workers.lock().expect("worker registry poisoned");
        for i in 0..n {
            let queue = Arc::clone(self);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("mqo-worker-{i}"))
                    .spawn(move || queue.worker_loop())
                    .expect("spawning a worker thread"),
            );
        }
    }

    /// Admits a request, returning the channel its answer will arrive on,
    /// or a typed rejection when the queue is full or draining.
    pub fn submit(
        &self,
        req: SolveRequest,
    ) -> Result<mpsc::Receiver<Result<SolveResponse, Reject>>, Reject> {
        let metrics = self.engine.metrics();
        let mut state = self.state.lock().expect("queue mutex poisoned");
        if !state.accepting {
            Metrics::inc(&metrics.rejected_shutdown);
            return Err(Reject::ShuttingDown);
        }
        if state.jobs.len() >= self.config.depth {
            Metrics::inc(&metrics.rejected_queue_full);
            return Err(Reject::QueueFull {
                depth: self.config.depth,
            });
        }
        let deadline_ms = req.deadline_ms.unwrap_or(self.config.default_deadline_ms);
        let deadline = (deadline_ms > 0)
            .then(|| Instant::now() + std::time::Duration::from_millis(deadline_ms));
        let (tx, rx) = mpsc::channel();
        state.jobs.push_back(Job {
            req,
            enqueued: Instant::now(),
            deadline,
            deadline_ms,
            tx,
        });
        metrics
            .queue_depth
            .store(state.jobs.len() as u64, Ordering::Relaxed);
        drop(state);
        self.wakeup.notify_one();
        Ok(rx)
    }

    /// Requests currently queued.
    pub fn depth(&self) -> usize {
        self.state.lock().expect("queue mutex poisoned").jobs.len()
    }

    /// Stops admissions, lets the workers drain every queued job, and joins
    /// them. Every admitted request receives an answer before this returns.
    pub fn shutdown(&self) {
        {
            let mut state = self.state.lock().expect("queue mutex poisoned");
            state.accepting = false;
        }
        self.wakeup.notify_all();
        let mut workers = self.workers.lock().expect("worker registry poisoned");
        for handle in workers.drain(..) {
            let _ = handle.join();
        }
    }

    fn worker_loop(&self) {
        let metrics = Arc::clone(self.engine.metrics());
        loop {
            let mut batch = {
                let mut state = self.state.lock().expect("queue mutex poisoned");
                loop {
                    if !state.jobs.is_empty() {
                        break;
                    }
                    if !state.accepting {
                        return;
                    }
                    state = self.wakeup.wait(state).expect("queue mutex poisoned");
                }
                let n = self.config.batch_size.max(1).min(state.jobs.len());
                let batch: Vec<Job> = state.jobs.drain(..n).collect();
                metrics
                    .queue_depth
                    .store(state.jobs.len() as u64, Ordering::Relaxed);
                batch
            };
            Metrics::inc(&metrics.batches_dispatched);
            // Group structurally identical instances adjacently so the
            // second one of a pair hits the embedding the first just cached.
            batch.sort_by_key(|job| (job.req.problem.num_queries(), job.req.problem.num_plans()));
            for job in batch {
                if job
                    .deadline
                    .is_some_and(|deadline| Instant::now() >= deadline)
                {
                    Metrics::inc(&metrics.rejected_deadline);
                    let _ = job.tx.send(Err(Reject::DeadlineExceeded {
                        deadline_ms: job.deadline_ms,
                    }));
                    continue;
                }
                let wait_us = job.enqueued.elapsed().as_micros() as u64;
                metrics.queue_wait.record(wait_us);
                let started = Instant::now();
                let result = self.engine.solve(&job.req).map(|mut response| {
                    response.queue_wait_us = wait_us;
                    response
                });
                metrics
                    .solve_latency
                    .record(started.elapsed().as_micros() as u64);
                // A receiver that hung up is not an error for the worker.
                let _ = job.tx.send(result);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::Backend;
    use crate::engine::EngineConfig;
    use mqo_chimera::graph::ChimeraGraph;
    use mqo_core::problem::MqoProblem;

    fn tiny_problem() -> MqoProblem {
        let mut b = MqoProblem::builder();
        let q1 = b.add_query(&[2.0, 4.0]);
        let q2 = b.add_query(&[3.0, 1.0]);
        let (p2, p3) = (b.plans_of(q1)[1], b.plans_of(q2)[0]);
        b.add_saving(p2, p3, 5.0).unwrap();
        b.build().unwrap()
    }

    fn engine() -> Arc<SolveEngine> {
        let mut cfg = EngineConfig::new(ChimeraGraph::new(2, 2));
        cfg.device.num_reads = 20;
        cfg.device.num_gauges = 2;
        Arc::new(SolveEngine::new(cfg, Arc::new(Metrics::default())))
    }

    #[test]
    fn overload_is_a_typed_rejection_not_a_panic_or_hang() {
        // No workers running: the queue fills to its bound, then rejects.
        let queue = SolveQueue::new(
            engine(),
            QueueConfig {
                depth: 3,
                ..QueueConfig::default()
            },
        );
        let mut pending = Vec::new();
        for i in 0..3 {
            pending.push(
                queue
                    .submit(SolveRequest::new(tiny_problem(), i))
                    .unwrap_or_else(|r| panic!("request {i} should be admitted, got {r}")),
            );
        }
        match queue.submit(SolveRequest::new(tiny_problem(), 99)) {
            Err(Reject::QueueFull { depth }) => assert_eq!(depth, 3),
            other => panic!("expected QueueFull, got {other:?}"),
        }
        assert_eq!(queue.depth(), 3);
        let m = queue.engine.metrics().snapshot();
        assert_eq!(m.rejected_queue_full, 1);
        assert_eq!(m.queue_depth, 3);

        // Draining the backlog: every admitted request still gets answered.
        queue.spawn_workers();
        queue.shutdown();
        for rx in pending {
            let response = rx.recv().expect("drained job answers").unwrap();
            assert_eq!(response.cost, 2.0);
        }
    }

    #[test]
    fn shutdown_rejects_new_work_and_drains_admitted_work() {
        let queue = SolveQueue::start(
            engine(),
            QueueConfig {
                workers: 2,
                ..QueueConfig::default()
            },
        );
        let rx = queue
            .submit(SolveRequest::new(tiny_problem(), 1))
            .expect("admitted before shutdown");
        queue.shutdown();
        let response = rx.recv().expect("in-flight job is drained").unwrap();
        assert_eq!(response.cost, 2.0);
        match queue.submit(SolveRequest::new(tiny_problem(), 2)) {
            Err(Reject::ShuttingDown) => {}
            other => panic!("expected ShuttingDown, got {other:?}"),
        }
        let m = queue.engine.metrics().snapshot();
        assert_eq!(m.rejected_shutdown, 1);
        assert_eq!(m.solved_total, 1);
    }

    #[test]
    fn expired_deadlines_reject_instead_of_solving() {
        let queue = SolveQueue::new(engine(), QueueConfig::default());
        let mut req = SolveRequest::new(tiny_problem(), 1);
        req.deadline_ms = Some(1);
        let rx = queue.submit(req).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(10));
        queue.spawn_workers();
        queue.shutdown();
        match rx.recv().unwrap() {
            Err(Reject::DeadlineExceeded { deadline_ms }) => assert_eq!(deadline_ms, 1),
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        assert_eq!(queue.engine.metrics().snapshot().rejected_deadline, 1);
    }

    #[test]
    fn batches_group_and_answer_every_request() {
        let queue = SolveQueue::new(
            engine(),
            QueueConfig {
                batch_size: 4,
                workers: 1,
                ..QueueConfig::default()
            },
        );
        let receivers: Vec<_> = (0..8)
            .map(|i| {
                let mut req = SolveRequest::new(tiny_problem(), i);
                req.backend = Some(Backend::HillClimbing);
                queue.submit(req).unwrap()
            })
            .collect();
        queue.spawn_workers();
        queue.shutdown();
        for rx in receivers {
            assert_eq!(rx.recv().unwrap().unwrap().cost, 2.0);
        }
        let m = queue.engine.metrics().snapshot();
        assert!(
            m.batches_dispatched >= 2,
            "8 jobs at batch size 4 need at least 2 batches, saw {}",
            m.batches_dispatched
        );
        assert_eq!(m.solved_total, 8);
        assert_eq!(m.queue_wait.count, 8);
    }
}
