//! Bounded admission queue + batching worker pool + supervisor.
//!
//! The front-end enqueues; a small worker pool drains the queue in batches
//! (grouping structurally similar requests so embedding-cache hits cluster)
//! and answers each job through a one-shot channel. Overload is a typed
//! [`Reject::QueueFull`] at admission time — the queue never grows without
//! bound and never panics under pressure — and shutdown stops admissions
//! while the workers drain everything already accepted.
//!
//! Robustness model (DESIGN.md §9):
//!
//! * every solve runs inside `catch_unwind`: a panicking request is answered
//!   with a typed `500 internal_error` and the worker keeps draining its
//!   batch — one poisoned request cannot take its batchmates down;
//! * a caught panic may escalate into a *worker death* (chaos injection or a
//!   genuinely unrecoverable worker). The dying worker first pushes the rest
//!   of its batch back onto the queue, so no admitted request is lost;
//! * a supervisor thread joins panic-exited workers and respawns them,
//!   counting respawns in `/metrics` (`worker_respawns`);
//! * every lock acquisition recovers from poisoning via
//!   [`crate::metrics::lock_recover`] — the queue state is a `VecDeque` of
//!   independent jobs with no cross-field invariant, so a poisoned guard is
//!   safe to adopt as-is.

use crate::api::{Reject, SolveRequest, SolveResponse};
use crate::chaos::panic_message;
use crate::engine::SolveEngine;
use crate::metrics::{lock_recover, wait_recover, Metrics};
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Queue/scheduler knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueConfig {
    /// Maximum queued (admitted but not yet dispatched) requests.
    pub depth: usize,
    /// Worker threads draining the queue.
    pub workers: usize,
    /// Maximum requests one worker claims per wake-up.
    pub batch_size: usize,
    /// Deadline applied to requests that specify none (0 = unbounded).
    pub default_deadline_ms: u64,
}

impl Default for QueueConfig {
    fn default() -> Self {
        QueueConfig {
            depth: 64,
            workers: 2,
            batch_size: 8,
            default_deadline_ms: 0,
        }
    }
}

/// Where a job's answer goes: the blocking front-end waits on a one-shot
/// channel; the event-loop front-end hands the queue a callback that posts
/// the response back to the owning shard and wakes its `poll`.
pub struct Responder(ResponderKind);

/// Boxed completion callback invoked with the job's final answer.
type ResponseCallback = Box<dyn FnOnce(Result<SolveResponse, Reject>) + Send>;

enum ResponderKind {
    Channel(mpsc::Sender<Result<SolveResponse, Reject>>),
    Callback(Option<ResponseCallback>),
}

impl Responder {
    /// A responder that sends into a one-shot channel.
    #[must_use]
    pub fn channel(tx: mpsc::Sender<Result<SolveResponse, Reject>>) -> Responder {
        Responder(ResponderKind::Channel(tx))
    }

    /// A responder that invokes `f` with the answer. Invoked from a worker
    /// thread, so `f` must be cheap and non-blocking (the event loop's
    /// completers only push onto a channel and write one wakeup byte).
    #[must_use]
    pub fn callback(f: impl FnOnce(Result<SolveResponse, Reject>) + Send + 'static) -> Responder {
        Responder(ResponderKind::Callback(Some(Box::new(f))))
    }

    /// Delivers the answer. A receiver that hung up is not an error.
    pub fn respond(mut self, result: Result<SolveResponse, Reject>) {
        match &mut self.0 {
            ResponderKind::Channel(tx) => {
                let _ = tx.send(result);
            }
            ResponderKind::Callback(f) => {
                if let Some(f) = f.take() {
                    f(result);
                }
            }
        }
    }
}

impl Drop for Responder {
    /// Safety net: a callback responder dropped without answering (worker
    /// pool died hard) still tells the client the service is going away,
    /// mirroring what channel waiters see as a `RecvError`.
    fn drop(&mut self) {
        if let ResponderKind::Callback(f) = &mut self.0 {
            if let Some(f) = f.take() {
                f(Err(Reject::ShuttingDown));
            }
        }
    }
}

/// One admitted request awaiting dispatch.
struct Job {
    req: SolveRequest,
    enqueued: Instant,
    deadline: Option<Instant>,
    deadline_ms: u64,
    responder: Responder,
}

struct QueueState {
    jobs: VecDeque<Job>,
    accepting: bool,
}

/// The admission queue, its worker pool, and the supervisor.
pub struct SolveQueue {
    state: Mutex<QueueState>,
    wakeup: Condvar,
    config: QueueConfig,
    engine: Arc<SolveEngine>,
    /// One slot per worker. `Some` while the worker (original or respawned)
    /// is running; `None` after a normal drain exit.
    workers: Mutex<Vec<Option<JoinHandle<()>>>>,
    supervisor: Mutex<Option<JoinHandle<()>>>,
}

impl std::fmt::Debug for SolveQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SolveQueue")
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl SolveQueue {
    /// Creates the queue without spawning workers (tests use this to
    /// exercise admission behaviour deterministically).
    pub fn new(engine: Arc<SolveEngine>, config: QueueConfig) -> Arc<Self> {
        Arc::new(SolveQueue {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                accepting: true,
            }),
            wakeup: Condvar::new(),
            config,
            engine,
            workers: Mutex::new(Vec::new()),
            supervisor: Mutex::new(None),
        })
    }

    /// Creates the queue and spawns its worker pool.
    pub fn start(engine: Arc<SolveEngine>, config: QueueConfig) -> Arc<Self> {
        let queue = Self::new(engine, config);
        queue.spawn_workers();
        queue
    }

    /// Spawns the worker pool and its supervisor (idempotent only in the
    /// sense that calling it twice doubles the pool; call once).
    pub fn spawn_workers(self: &Arc<Self>) {
        let n = self.config.workers.max(1);
        let recoveries = &self.engine.metrics().lock_poison_recoveries;
        {
            let mut workers = lock_recover(&self.workers, recoveries);
            let base = workers.len();
            for i in 0..n {
                workers.push(Some(Self::spawn_worker(self, base + i)));
            }
        }
        let mut supervisor = lock_recover(&self.supervisor, recoveries);
        if supervisor.is_none() {
            let queue = Arc::clone(self);
            *supervisor = Some(
                std::thread::Builder::new()
                    .name("mqo-supervisor".to_string())
                    .spawn(move || queue.supervisor_loop())
                    .expect("spawning the supervisor thread"),
            );
        }
    }

    fn spawn_worker(queue: &Arc<Self>, slot: usize) -> JoinHandle<()> {
        let queue = Arc::clone(queue);
        std::thread::Builder::new()
            .name(format!("mqo-worker-{slot}"))
            .spawn(move || queue.worker_loop())
            .expect("spawning a worker thread")
    }

    /// Scans the worker pool, joining finished threads and respawning the
    /// ones that exited by panic. Normal exits (drain complete) leave their
    /// slot empty; the supervisor itself exits once the queue is draining
    /// and every slot is empty.
    fn supervisor_loop(self: &Arc<Self>) {
        let metrics = Arc::clone(self.engine.metrics());
        loop {
            std::thread::sleep(Duration::from_millis(2));
            let draining = !lock_recover(&self.state, &metrics.lock_poison_recoveries).accepting;
            let mut workers = lock_recover(&self.workers, &metrics.lock_poison_recoveries);
            let mut alive = 0usize;
            for slot in 0..workers.len() {
                match &workers[slot] {
                    Some(handle) if handle.is_finished() => {
                        let handle = workers[slot].take().expect("slot checked Some");
                        if handle.join().is_err() {
                            // Panic exit: the worker died mid-batch (its
                            // remaining jobs are already back on the queue).
                            Metrics::inc(&metrics.worker_respawns);
                            workers[slot] = Some(Self::spawn_worker(self, slot));
                            alive += 1;
                        }
                    }
                    Some(_) => alive += 1,
                    None => {}
                }
            }
            drop(workers);
            if draining && alive == 0 {
                return;
            }
        }
    }

    /// Admits a request, returning the channel its answer will arrive on,
    /// or a typed rejection when the queue is full or draining.
    pub fn submit(
        &self,
        req: SolveRequest,
    ) -> Result<mpsc::Receiver<Result<SolveResponse, Reject>>, Reject> {
        let (tx, rx) = mpsc::channel();
        self.submit_with(req, Responder::channel(tx))
            .map(|()| rx)
            .map_err(|(_responder, reject)| reject)
    }

    /// Admits a request whose answer is delivered through `responder`.
    /// Admission rejections (queue full, draining) hand the responder back
    /// unanswered, so the caller decides how to answer — the HTTP
    /// front-ends attach `Retry-After` to back-pressure rejections.
    pub fn submit_with(
        &self,
        req: SolveRequest,
        responder: Responder,
    ) -> Result<(), (Responder, Reject)> {
        let metrics = self.engine.metrics();
        let mut state = lock_recover(&self.state, &metrics.lock_poison_recoveries);
        if !state.accepting {
            Metrics::inc(&metrics.rejected_shutdown);
            return Err((responder, Reject::ShuttingDown));
        }
        if state.jobs.len() >= self.config.depth {
            Metrics::inc(&metrics.rejected_queue_full);
            return Err((
                responder,
                Reject::QueueFull {
                    depth: self.config.depth,
                },
            ));
        }
        let deadline_ms = req.deadline_ms.unwrap_or(self.config.default_deadline_ms);
        let deadline = (deadline_ms > 0)
            .then(|| Instant::now() + std::time::Duration::from_millis(deadline_ms));
        state.jobs.push_back(Job {
            req,
            enqueued: Instant::now(),
            deadline,
            deadline_ms,
            responder,
        });
        metrics
            .queue_depth
            .store(state.jobs.len() as u64, Ordering::Relaxed);
        drop(state);
        self.wakeup.notify_one();
        Ok(())
    }

    /// Requests currently queued.
    pub fn depth(&self) -> usize {
        lock_recover(&self.state, &self.engine.metrics().lock_poison_recoveries)
            .jobs
            .len()
    }

    /// Stops admissions, lets the workers drain every queued job, and joins
    /// them (via the supervisor, which keeps respawning panic-exited workers
    /// until the drain completes). Every admitted request receives an answer
    /// before this returns.
    pub fn shutdown(&self) {
        let recoveries = &self.engine.metrics().lock_poison_recoveries;
        {
            let mut state = lock_recover(&self.state, recoveries);
            state.accepting = false;
        }
        self.wakeup.notify_all();
        let supervisor = lock_recover(&self.supervisor, recoveries).take();
        if let Some(handle) = supervisor {
            let _ = handle.join();
        }
        // No supervisor (a queue built with `new` and never started, or a
        // second shutdown): join whatever workers remain directly.
        let handles: Vec<JoinHandle<()>> = lock_recover(&self.workers, recoveries)
            .iter_mut()
            .filter_map(Option::take)
            .collect();
        for handle in handles {
            let _ = handle.join();
        }
    }

    /// Pushes the unprocessed remainder of a dying worker's batch back to
    /// the queue front (preserving order) so surviving workers pick it up.
    fn requeue(&self, batch: VecDeque<Job>) {
        let metrics = self.engine.metrics();
        let mut state = lock_recover(&self.state, &metrics.lock_poison_recoveries);
        for job in batch.into_iter().rev() {
            state.jobs.push_front(job);
        }
        metrics
            .queue_depth
            .store(state.jobs.len() as u64, Ordering::Relaxed);
        drop(state);
        self.wakeup.notify_all();
    }

    fn worker_loop(&self) {
        let metrics = Arc::clone(self.engine.metrics());
        loop {
            let mut batch = {
                let mut state = lock_recover(&self.state, &metrics.lock_poison_recoveries);
                loop {
                    if !state.jobs.is_empty() {
                        break;
                    }
                    if !state.accepting {
                        return;
                    }
                    state = wait_recover(self.wakeup.wait(state), &metrics.lock_poison_recoveries);
                }
                let n = self.config.batch_size.max(1).min(state.jobs.len());
                let batch: Vec<Job> = state.jobs.drain(..n).collect();
                metrics
                    .queue_depth
                    .store(state.jobs.len() as u64, Ordering::Relaxed);
                batch
            };
            Metrics::inc(&metrics.batches_dispatched);
            // Group structurally identical instances adjacently so the
            // second one of a pair hits the embedding the first just cached.
            batch.sort_by_key(|job| (job.req.problem.num_queries(), job.req.problem.num_plans()));
            // Packing mode: try to answer the whole batch from one composite
            // programming cycle first. Slots the packer leaves `None` (not
            // packable, placer declined, tenant hit a device fault) take the
            // solo path below, so this is a pure fast-path — a panic inside
            // it degrades the batch to all-solo rather than failing anyone.
            let mut packed: VecDeque<Option<Result<SolveResponse, Reject>>> = VecDeque::new();
            let mut packed_us = 0u64;
            if self.engine.config().packing && batch.len() >= 2 {
                let refs: Vec<&SolveRequest> = batch.iter().map(|job| &job.req).collect();
                let started = Instant::now();
                packed = match catch_unwind(AssertUnwindSafe(|| self.engine.solve_packed(&refs))) {
                    Ok(results) => results.into(),
                    Err(_) => {
                        Metrics::inc(&metrics.worker_panics_caught);
                        VecDeque::new()
                    }
                };
                packed_us = started.elapsed().as_micros() as u64;
            }
            let mut batch: VecDeque<Job> = batch.into();
            while let Some(job) = batch.pop_front() {
                let pre = packed.pop_front().flatten();
                if job
                    .deadline
                    .is_some_and(|deadline| Instant::now() >= deadline)
                {
                    Metrics::inc(&metrics.rejected_deadline);
                    job.responder.respond(Err(Reject::DeadlineExceeded {
                        deadline_ms: job.deadline_ms,
                    }));
                    continue;
                }
                let wait_us = job.enqueued.elapsed().as_micros() as u64;
                metrics.queue_wait.record(wait_us);
                if let Some(result) = pre {
                    // Answered by the packed cycle. The recorded latency is
                    // the cycle's wall time: that is what the request cost.
                    metrics.solve_latency.record(packed_us);
                    let result = result.map(|mut response| {
                        response.queue_wait_us = wait_us;
                        response
                    });
                    job.responder.respond(result);
                    continue;
                }
                let started = Instant::now();
                // The engine is a shared reference either way; the unwind
                // boundary only isolates the panic, it does not hand the
                // closure anything another thread could observe half-updated
                // (all engine state is itself poison-recovering).
                let outcome = catch_unwind(AssertUnwindSafe(|| self.engine.solve(&job.req)));
                metrics
                    .solve_latency
                    .record(started.elapsed().as_micros() as u64);
                match outcome {
                    Ok(result) => {
                        let result = result.map(|mut response| {
                            response.queue_wait_us = wait_us;
                            response
                        });
                        // A receiver that hung up is not an error here.
                        job.responder.respond(result);
                    }
                    Err(payload) => {
                        Metrics::inc(&metrics.worker_panics_caught);
                        Metrics::inc(&metrics.rejected_internal);
                        let detail = panic_message(payload.as_ref());
                        job.responder.respond(Err(Reject::InternalError { detail }));
                        // Chaos may escalate the caught panic into a worker
                        // death (keyed on request content, so the kill
                        // schedule is deterministic). The batch remainder
                        // goes back on the queue first: requests are never
                        // lost, only delayed by the respawn.
                        if self.engine.config().chaos.worker_dies(job.req.seed) {
                            Metrics::inc(&metrics.chaos_kills_injected);
                            self.requeue(batch);
                            resume_unwind(payload);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::Backend;
    use crate::engine::EngineConfig;
    use mqo_chimera::graph::ChimeraGraph;
    use mqo_core::problem::MqoProblem;

    fn tiny_problem() -> MqoProblem {
        let mut b = MqoProblem::builder();
        let q1 = b.add_query(&[2.0, 4.0]);
        let q2 = b.add_query(&[3.0, 1.0]);
        let (p2, p3) = (b.plans_of(q1)[1], b.plans_of(q2)[0]);
        b.add_saving(p2, p3, 5.0).unwrap();
        b.build().unwrap()
    }

    fn engine() -> Arc<SolveEngine> {
        let mut cfg = EngineConfig::new(ChimeraGraph::new(2, 2));
        cfg.device.num_reads = 20;
        cfg.device.num_gauges = 2;
        Arc::new(SolveEngine::new(cfg, Arc::new(Metrics::default())))
    }

    #[test]
    fn overload_is_a_typed_rejection_not_a_panic_or_hang() {
        // No workers running: the queue fills to its bound, then rejects.
        let queue = SolveQueue::new(
            engine(),
            QueueConfig {
                depth: 3,
                ..QueueConfig::default()
            },
        );
        let mut pending = Vec::new();
        for i in 0..3 {
            pending.push(
                queue
                    .submit(SolveRequest::new(tiny_problem(), i))
                    .unwrap_or_else(|r| panic!("request {i} should be admitted, got {r}")),
            );
        }
        match queue.submit(SolveRequest::new(tiny_problem(), 99)) {
            Err(Reject::QueueFull { depth }) => assert_eq!(depth, 3),
            other => panic!("expected QueueFull, got {other:?}"),
        }
        assert_eq!(queue.depth(), 3);
        let m = queue.engine.metrics().snapshot();
        assert_eq!(m.rejected_queue_full, 1);
        assert_eq!(m.queue_depth, 3);

        // Draining the backlog: every admitted request still gets answered.
        queue.spawn_workers();
        queue.shutdown();
        for rx in pending {
            let response = rx.recv().expect("drained job answers").unwrap();
            assert_eq!(response.cost, 2.0);
        }
    }

    #[test]
    fn shutdown_rejects_new_work_and_drains_admitted_work() {
        let queue = SolveQueue::start(
            engine(),
            QueueConfig {
                workers: 2,
                ..QueueConfig::default()
            },
        );
        let rx = queue
            .submit(SolveRequest::new(tiny_problem(), 1))
            .expect("admitted before shutdown");
        queue.shutdown();
        let response = rx.recv().expect("in-flight job is drained").unwrap();
        assert_eq!(response.cost, 2.0);
        match queue.submit(SolveRequest::new(tiny_problem(), 2)) {
            Err(Reject::ShuttingDown) => {}
            other => panic!("expected ShuttingDown, got {other:?}"),
        }
        let m = queue.engine.metrics().snapshot();
        assert_eq!(m.rejected_shutdown, 1);
        assert_eq!(m.solved_total, 1);
    }

    #[test]
    fn expired_deadlines_reject_instead_of_solving() {
        let queue = SolveQueue::new(engine(), QueueConfig::default());
        let mut req = SolveRequest::new(tiny_problem(), 1);
        req.deadline_ms = Some(1);
        let rx = queue.submit(req).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(10));
        queue.spawn_workers();
        queue.shutdown();
        match rx.recv().unwrap() {
            Err(Reject::DeadlineExceeded { deadline_ms }) => assert_eq!(deadline_ms, 1),
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        assert_eq!(queue.engine.metrics().snapshot().rejected_deadline, 1);
    }

    #[test]
    fn batches_group_and_answer_every_request() {
        let queue = SolveQueue::new(
            engine(),
            QueueConfig {
                batch_size: 4,
                workers: 1,
                ..QueueConfig::default()
            },
        );
        let receivers: Vec<_> = (0..8)
            .map(|i| {
                let mut req = SolveRequest::new(tiny_problem(), i);
                req.backend = Some(Backend::HillClimbing);
                queue.submit(req).unwrap()
            })
            .collect();
        queue.spawn_workers();
        queue.shutdown();
        for rx in receivers {
            assert_eq!(rx.recv().unwrap().unwrap().cost, 2.0);
        }
        let m = queue.engine.metrics().snapshot();
        assert!(
            m.batches_dispatched >= 2,
            "8 jobs at batch size 4 need at least 2 batches, saw {}",
            m.batches_dispatched
        );
        assert_eq!(m.solved_total, 8);
        assert_eq!(m.queue_wait.count, 8);
    }

    #[test]
    fn packed_batches_answer_every_request_identically_to_solo() {
        let packing_engine = || {
            let mut cfg = EngineConfig::new(ChimeraGraph::new(2, 2));
            cfg.device.num_reads = 20;
            cfg.device.num_gauges = 2;
            cfg.packing = true;
            Arc::new(SolveEngine::new(cfg, Arc::new(Metrics::default())))
        };
        let run = |engine: Arc<SolveEngine>| {
            let queue = SolveQueue::new(
                engine,
                QueueConfig {
                    batch_size: 4,
                    workers: 1,
                    ..QueueConfig::default()
                },
            );
            let receivers: Vec<_> = (0..4)
                .map(|i| queue.submit(SolveRequest::new(tiny_problem(), i)).unwrap())
                .collect();
            queue.spawn_workers();
            queue.shutdown();
            let answers: Vec<SolveResponse> = receivers
                .into_iter()
                .map(|rx| rx.recv().unwrap().unwrap())
                .collect();
            (queue, answers)
        };
        let (packed_queue, packed) = run(packing_engine());
        let (_, solo) = run(engine());
        for (p, s) in packed.iter().zip(&solo) {
            assert_eq!(p.selection, s.selection);
            assert_eq!(p.cost, s.cost);
            assert_eq!(p.reads, s.reads);
            assert_eq!(p.packed_tenants, 4, "{}", p.route_reason);
            assert_eq!(s.packed_tenants, 0);
        }
        let m = packed_queue.engine.metrics().snapshot();
        assert_eq!(m.packed_batches, 1);
        assert_eq!(m.tenants_packed, 4);
        assert_eq!(m.solved_total, 4);
        assert_eq!(m.solve_latency.count, 4);
    }

    fn chaos_engine(chaos: crate::chaos::ChaosConfig) -> Arc<SolveEngine> {
        let mut cfg = EngineConfig::new(ChimeraGraph::new(2, 2));
        cfg.device.num_reads = 20;
        cfg.device.num_gauges = 2;
        cfg.chaos = chaos;
        Arc::new(SolveEngine::new(cfg, Arc::new(Metrics::default())))
    }

    /// Keeps caught-panic backtraces out of the test output; restores the
    /// default hook on drop so other tests are unaffected.
    fn silence_panics() -> impl Drop {
        struct Restore;
        impl Drop for Restore {
            fn drop(&mut self) {
                let _ = std::panic::take_hook();
            }
        }
        std::panic::set_hook(Box::new(|_| {}));
        Restore
    }

    #[test]
    fn panicking_requests_answer_500_and_spare_their_batchmates() {
        let _quiet = silence_panics();
        // Panic rate 0.5: a deterministic subset of seeds 0..16 panics, the
        // rest solve normally — all inside the same worker.
        let chaos = crate::chaos::ChaosConfig {
            seed: 5,
            worker_panic_rate: 0.5,
            ..crate::chaos::ChaosConfig::NONE
        };
        let queue = SolveQueue::new(
            chaos_engine(chaos),
            QueueConfig {
                workers: 1,
                batch_size: 8,
                ..QueueConfig::default()
            },
        );
        let receivers: Vec<_> = (0..16)
            .map(|i| {
                let mut req = SolveRequest::new(tiny_problem(), i);
                req.backend = Some(Backend::HillClimbing);
                (i, queue.submit(req).unwrap())
            })
            .collect();
        queue.spawn_workers();
        queue.shutdown();
        let mut panicked = 0;
        for (seed, rx) in receivers {
            match rx.recv().expect("every admitted request is answered") {
                Ok(r) => {
                    assert!(!chaos.worker_panics(seed), "seed {seed} should panic");
                    assert_eq!(r.cost, 2.0);
                }
                Err(Reject::InternalError { detail }) => {
                    assert!(chaos.worker_panics(seed), "seed {seed} shouldn't panic");
                    assert!(
                        detail.contains(crate::chaos::CHAOS_PANIC_MESSAGE),
                        "{detail}"
                    );
                    panicked += 1;
                }
                Err(other) => panic!("unexpected rejection {other}"),
            }
        }
        let expected: u64 = (0..16).filter(|&s| chaos.worker_panics(s)).count() as u64;
        assert!(expected > 0 && expected < 16, "0.5 rate splits 16 seeds");
        assert_eq!(panicked, expected);
        let m = queue.engine.metrics().snapshot();
        assert_eq!(m.worker_panics_caught, expected);
        assert_eq!(m.rejected_internal, expected);
        assert_eq!(m.solved_total, 16 - expected);
        assert_eq!(m.worker_respawns, 0, "no kills: the worker never died");
    }

    #[test]
    fn killed_workers_requeue_their_batch_and_are_respawned() {
        let _quiet = silence_panics();
        // Every request panics AND escalates into a worker death: the
        // supervisor must respawn once per request for the drain to finish.
        let chaos = crate::chaos::ChaosConfig {
            seed: 9,
            worker_panic_rate: 1.0,
            worker_kill_rate: 1.0,
            ..crate::chaos::ChaosConfig::NONE
        };
        let queue = SolveQueue::new(
            chaos_engine(chaos),
            QueueConfig {
                workers: 1,
                batch_size: 4,
                ..QueueConfig::default()
            },
        );
        let receivers: Vec<_> = (0..6)
            .map(|i| queue.submit(SolveRequest::new(tiny_problem(), i)).unwrap())
            .collect();
        queue.spawn_workers();
        queue.shutdown();
        for rx in receivers {
            match rx.recv().expect("killed workers never lose requests") {
                Err(Reject::InternalError { .. }) => {}
                other => panic!("expected InternalError, got {other:?}"),
            }
        }
        let m = queue.engine.metrics().snapshot();
        assert_eq!(m.worker_panics_caught, 6);
        assert_eq!(m.chaos_kills_injected, 6);
        assert_eq!(
            m.worker_respawns, 6,
            "each worker death is matched by a respawn"
        );
        assert_eq!(m.solved_total, 0);
    }
}
