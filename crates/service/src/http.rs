//! A deliberately small HTTP/1.1 subset over `std::net` — just enough for a
//! JSON API (request line, headers, `Content-Length` bodies, one request per
//! connection). No external dependencies: the build environment is offline.
//!
//! Hardening (DESIGN.md §9): every read is bounded three ways —
//!
//! * **bytes** — the request line and each header line have byte caps, the
//!   header count is capped, and `Content-Length` is capped, so a hostile
//!   client can never make the server buffer without bound;
//! * **time** — an optional whole-request deadline ([`HttpLimits::deadline`])
//!   re-arms the socket read timeout before every line, so a slowloris
//!   client trickling one byte per second is cut off with a typed 408;
//! * **totality** — [`read_request`] is generic over any [`RequestSource`]
//!   (a live socket or an in-memory byte slice), and the property tests
//!   feed it arbitrary byte streams: it must always return `Ok` or a typed
//!   [`HttpError`], never panic.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// A parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, ...).
    pub method: String,
    /// Path without query string.
    pub path: String,
    /// Raw body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

/// Byte, count, and time bounds applied while reading one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HttpLimits {
    /// Cap on the declared `Content-Length`, bytes.
    pub max_body: usize,
    /// Cap on the request line and on each header line, bytes (including
    /// the terminating `\r\n`).
    pub max_line_bytes: usize,
    /// Cap on the number of header lines.
    pub max_header_count: usize,
    /// Whole-request wall-clock deadline; reads past it fail with
    /// [`HttpError::Timeout`]. `None` disables the deadline (in-memory
    /// parsing, tests).
    pub deadline: Option<Instant>,
}

impl Default for HttpLimits {
    fn default() -> Self {
        HttpLimits {
            max_body: 1 << 20,
            max_line_bytes: 8 << 10,
            max_header_count: 64,
            deadline: None,
        }
    }
}

/// Errors while reading a request; each maps to a status via
/// [`HttpError::http_status`].
#[derive(Debug)]
pub enum HttpError {
    /// Malformed request line or headers (400).
    BadRequest(&'static str),
    /// Body larger than the configured cap (413).
    BodyTooLarge {
        /// Declared `Content-Length`.
        declared: usize,
        /// Configured maximum.
        limit: usize,
    },
    /// The whole-request deadline expired mid-read (408).
    Timeout,
    /// A request or header line exceeded the byte cap (431).
    LineTooLong {
        /// Configured cap, bytes.
        limit: usize,
    },
    /// More header lines than the configured cap (431).
    TooManyHeaders {
        /// Configured cap.
        limit: usize,
    },
    /// Socket-level failure (no response is possible).
    Io(io::Error),
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        // Armed read timeouts surface as WouldBlock or TimedOut depending
        // on the platform; both mean the deadline struck.
        match e.kind() {
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => HttpError::Timeout,
            _ => HttpError::Io(e),
        }
    }
}

impl HttpError {
    /// The HTTP status this error is answered with.
    #[must_use]
    pub fn http_status(&self) -> u16 {
        match self {
            HttpError::BadRequest(_) => 400,
            HttpError::BodyTooLarge { .. } => 413,
            HttpError::Timeout => 408,
            HttpError::LineTooLong { .. } | HttpError::TooManyHeaders { .. } => 431,
            HttpError::Io(_) => 400,
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::BadRequest(d) => write!(f, "bad request: {d}"),
            HttpError::BodyTooLarge { declared, limit } => {
                write!(f, "body of {declared} bytes exceeds the {limit}-byte cap")
            }
            HttpError::Timeout => write!(f, "request deadline expired mid-read"),
            HttpError::LineTooLong { limit } => {
                write!(f, "request/header line exceeds the {limit}-byte cap")
            }
            HttpError::TooManyHeaders { limit } => {
                write!(f, "more than {limit} header lines")
            }
            HttpError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

/// Anything a request can be read from: a live socket (which can arm
/// per-read timeouts toward the deadline) or an in-memory byte slice (the
/// property tests' fuzzing surface, where arming is a no-op).
pub trait RequestSource: Read {
    /// Arms an I/O timeout of `remaining` for the next read.
    fn arm_timeout(&mut self, remaining: Duration) -> io::Result<()> {
        let _ = remaining;
        Ok(())
    }
}

impl RequestSource for TcpStream {
    fn arm_timeout(&mut self, remaining: Duration) -> io::Result<()> {
        // Zero would mean "no timeout"; clamp up so an already-struck
        // deadline still produces a fast WouldBlock/TimedOut.
        self.set_read_timeout(Some(remaining.max(Duration::from_millis(1))))
    }
}

impl RequestSource for &[u8] {}

impl<S: RequestSource + ?Sized> RequestSource for &mut S {
    fn arm_timeout(&mut self, remaining: Duration) -> io::Result<()> {
        (**self).arm_timeout(remaining)
    }
}

/// Reads one `\n`-terminated line, enforcing the byte cap and the deadline.
/// Returns `None` at a clean EOF before any byte of the line.
fn read_line_bounded<S: RequestSource>(
    reader: &mut BufReader<S>,
    limits: &HttpLimits,
) -> Result<Option<String>, HttpError> {
    if let Some(deadline) = limits.deadline {
        let now = Instant::now();
        if now >= deadline {
            return Err(HttpError::Timeout);
        }
        reader.get_mut().arm_timeout(deadline - now)?;
    }
    let mut buf = Vec::new();
    let cap = limits.max_line_bytes;
    let n = reader
        .by_ref()
        .take(cap as u64 + 1)
        .read_until(b'\n', &mut buf)?;
    if n == 0 {
        return Ok(None);
    }
    if buf.len() > cap || (buf.len() == cap && buf.last() != Some(&b'\n')) {
        return Err(HttpError::LineTooLong { limit: cap });
    }
    // Headers are ASCII in practice; anything else is malformed input, not
    // a reason to panic.
    String::from_utf8(buf)
        .map(Some)
        .map_err(|_| HttpError::BadRequest("non-UTF-8 bytes in request line or headers"))
}

/// Reads one request from the source under `limits`. Total: every input —
/// including adversarial byte streams and stalled sockets — produces `Ok`
/// or a typed [`HttpError`], never a panic or an unbounded buffer.
pub fn read_request<S: RequestSource>(
    source: &mut S,
    limits: &HttpLimits,
) -> Result<Request, HttpError> {
    let mut reader = BufReader::new(source);
    let line = read_line_bounded(&mut reader, limits)?
        .ok_or(HttpError::BadRequest("empty request line"))?;
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or(HttpError::BadRequest("empty request line"))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or(HttpError::BadRequest("missing request target"))?;
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut content_length = 0usize;
    let mut header_count = 0usize;
    loop {
        let header = read_line_bounded(&mut reader, limits)?
            .ok_or(HttpError::BadRequest("connection closed mid-headers"))?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        header_count += 1;
        if header_count > limits.max_header_count {
            return Err(HttpError::TooManyHeaders {
                limit: limits.max_header_count,
            });
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| HttpError::BadRequest("unparseable content-length"))?;
            }
        }
    }
    if content_length > limits.max_body {
        return Err(HttpError::BodyTooLarge {
            declared: content_length,
            limit: limits.max_body,
        });
    }
    if let Some(deadline) = limits.deadline {
        let now = Instant::now();
        if now >= deadline {
            return Err(HttpError::Timeout);
        }
        reader.get_mut().arm_timeout(deadline - now)?;
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Request { method, path, body })
}

/// Writes a response with a JSON body and closes the exchange
/// (`Connection: close`).
pub fn write_json_response<W: Write>(stream: &mut W, status: u16, body: &str) -> io::Result<()> {
    write_json_response_with(stream, status, body, &[])
}

/// [`write_json_response`] with extra response headers (e.g. `Retry-After`
/// on load-shedding 503s). Header names and values must be pre-sanitised
/// static strings — no client data goes through here.
pub fn write_json_response_with<W: Write>(
    stream: &mut W,
    status: u16,
    body: &str,
    extra_headers: &[(&str, &str)],
) -> io::Result<()> {
    let reason = reason_phrase(status);
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\ncontent-type: application/json\r\n\
         content-length: {}\r\nconnection: close\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Minimal client used by tests and the load generator: one round trip,
/// returning `(status, body)`.
pub fn roundtrip(
    addr: std::net::SocketAddr,
    method: &str,
    path: &str,
    body: &[u8],
) -> io::Result<(u16, Vec<u8>)> {
    let mut stream = TcpStream::connect(addr)?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-type: application/json\r\n\
         content-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()?;

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            break;
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().unwrap_or(0);
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// Exercises the parser + writer over a real loopback socket.
    #[test]
    fn request_and_response_round_trip_over_loopback() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let limits = HttpLimits {
                max_body: 1024,
                ..HttpLimits::default()
            };
            let req = read_request(&mut stream, &limits).unwrap();
            assert_eq!(req.method, "POST");
            assert_eq!(req.path, "/solve");
            assert_eq!(req.body, b"{\"x\":1}");
            write_json_response(&mut stream, 200, "{\"ok\":true}").unwrap();
        });
        let (status, body) = roundtrip(addr, "POST", "/solve?verbose=1", b"{\"x\":1}").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, b"{\"ok\":true}");
        server.join().unwrap();
    }

    #[test]
    fn oversized_bodies_are_rejected_before_allocation() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let limits = HttpLimits {
                max_body: 16,
                ..HttpLimits::default()
            };
            match read_request(&mut stream, &limits) {
                Err(HttpError::BodyTooLarge { declared, limit }) => {
                    assert_eq!(declared, 1000);
                    assert_eq!(limit, 16);
                }
                other => panic!("expected BodyTooLarge, got {other:?}"),
            }
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"POST /solve HTTP/1.1\r\ncontent-length: 1000\r\n\r\n")
            .unwrap();
        server.join().unwrap();
    }

    #[test]
    fn in_memory_sources_parse_without_a_socket() {
        let mut raw: &[u8] = b"GET /healthz HTTP/1.1\r\nhost: x\r\n\r\n";
        let req = read_request(&mut raw, &HttpLimits::default()).unwrap();
        assert_eq!(
            (req.method.as_str(), req.path.as_str()),
            ("GET", "/healthz")
        );
        assert!(req.body.is_empty());
    }

    #[test]
    fn long_request_lines_answer_431_not_unbounded_buffering() {
        let limits = HttpLimits {
            max_line_bytes: 64,
            ..HttpLimits::default()
        };
        let mut raw: Vec<u8> = b"GET /".to_vec();
        raw.extend(std::iter::repeat_n(b'a', 10_000));
        match read_request(&mut raw.as_slice(), &limits) {
            Err(HttpError::LineTooLong { limit }) => assert_eq!(limit, 64),
            other => panic!("expected LineTooLong, got {other:?}"),
        }
        // A long *header* line trips the same cap.
        let mut raw: Vec<u8> = b"GET / HTTP/1.1\r\nx-junk: ".to_vec();
        raw.extend(std::iter::repeat_n(b'b', 10_000));
        match read_request(&mut raw.as_slice(), &limits) {
            Err(HttpError::LineTooLong { limit }) => assert_eq!(limit, 64),
            other => panic!("expected LineTooLong, got {other:?}"),
        }
    }

    #[test]
    fn header_count_cap_is_enforced() {
        let limits = HttpLimits {
            max_header_count: 4,
            ..HttpLimits::default()
        };
        let mut raw: Vec<u8> = b"GET / HTTP/1.1\r\n".to_vec();
        for i in 0..10 {
            raw.extend(format!("x-h{i}: v\r\n").into_bytes());
        }
        raw.extend(b"\r\n");
        match read_request(&mut raw.as_slice(), &limits) {
            Err(HttpError::TooManyHeaders { limit }) => assert_eq!(limit, 4),
            other => panic!("expected TooManyHeaders, got {other:?}"),
        }
    }

    #[test]
    fn expired_deadlines_fail_with_timeout_before_reading() {
        let limits = HttpLimits {
            deadline: Some(Instant::now() - Duration::from_millis(1)),
            ..HttpLimits::default()
        };
        let mut raw: &[u8] = b"GET / HTTP/1.1\r\n\r\n";
        match read_request(&mut raw, &limits) {
            Err(HttpError::Timeout) => {}
            other => panic!("expected Timeout, got {other:?}"),
        }
    }

    #[test]
    fn slowloris_clients_are_cut_off_by_the_wall_clock_deadline() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let limits = HttpLimits {
                deadline: Some(Instant::now() + Duration::from_millis(50)),
                ..HttpLimits::default()
            };
            let started = Instant::now();
            let result = read_request(&mut stream, &limits);
            assert!(
                matches!(result, Err(HttpError::Timeout)),
                "stalled client should time out, got {result:?}"
            );
            assert!(
                started.elapsed() < Duration::from_secs(5),
                "deadline cut the read off promptly"
            );
        });
        // Send half a request line, then stall well past the deadline.
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"POST /so").unwrap();
        stream.flush().unwrap();
        server.join().unwrap();
        drop(stream);
    }

    #[test]
    fn extra_headers_are_emitted_in_the_response_head() {
        let mut out = Vec::new();
        write_json_response_with(&mut out, 503, "{}", &[("retry-after", "1")]).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(
            text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"),
            "{text}"
        );
        assert!(text.contains("retry-after: 1\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{}"), "{text}");
    }

    #[test]
    fn status_mapping_covers_every_error() {
        assert_eq!(HttpError::BadRequest("x").http_status(), 400);
        assert_eq!(
            HttpError::BodyTooLarge {
                declared: 2,
                limit: 1
            }
            .http_status(),
            413
        );
        assert_eq!(HttpError::Timeout.http_status(), 408);
        assert_eq!(HttpError::LineTooLong { limit: 1 }.http_status(), 431);
        assert_eq!(HttpError::TooManyHeaders { limit: 1 }.http_status(), 431);
        let timeout: HttpError = io::Error::from(io::ErrorKind::TimedOut).into();
        assert!(matches!(timeout, HttpError::Timeout));
    }
}
