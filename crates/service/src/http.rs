//! A deliberately small HTTP/1.1 subset over `std::net` — just enough for a
//! JSON API (request line, headers, `Content-Length` bodies). No external
//! dependencies: the build environment is offline.
//!
//! Two parsing surfaces share the same limits and typed errors:
//!
//! * [`read_request`] — the original blocking reader over any
//!   [`RequestSource`], one request per call;
//! * [`parse_request`] — an incremental parser over a connection buffer for
//!   the nonblocking event loop (DESIGN.md §13): `Ok(None)` means "need
//!   more bytes", and every cap (line bytes, header count, body size) is
//!   enforced even on partial data, so a connection can never make the
//!   server buffer without bound while waiting for the rest of a request.
//!
//! Hardening (DESIGN.md §9): every read is bounded three ways —
//!
//! * **bytes** — the request line and each header line have byte caps, the
//!   header count is capped, and `Content-Length` is capped, so a hostile
//!   client can never make the server buffer without bound;
//! * **time** — an optional whole-request deadline ([`HttpLimits::deadline`])
//!   re-arms the socket read timeout before every line, so a slowloris
//!   client trickling one byte per second is cut off with a typed 408;
//! * **totality** — [`read_request`] is generic over any [`RequestSource`]
//!   (a live socket or an in-memory byte slice), and the property tests
//!   feed it arbitrary byte streams: it must always return `Ok` or a typed
//!   [`HttpError`], never panic.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// A parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, ...).
    pub method: String,
    /// Path without query string.
    pub path: String,
    /// Raw body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

/// Byte, count, and time bounds applied while reading one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HttpLimits {
    /// Cap on the declared `Content-Length`, bytes.
    pub max_body: usize,
    /// Cap on the request line and on each header line, bytes (including
    /// the terminating `\r\n`).
    pub max_line_bytes: usize,
    /// Cap on the number of header lines.
    pub max_header_count: usize,
    /// Whole-request wall-clock deadline; reads past it fail with
    /// [`HttpError::Timeout`]. `None` disables the deadline (in-memory
    /// parsing, tests).
    pub deadline: Option<Instant>,
}

impl Default for HttpLimits {
    fn default() -> Self {
        HttpLimits {
            max_body: 1 << 20,
            max_line_bytes: 8 << 10,
            max_header_count: 64,
            deadline: None,
        }
    }
}

/// Errors while reading a request; each maps to a status via
/// [`HttpError::http_status`].
#[derive(Debug)]
pub enum HttpError {
    /// Malformed request line or headers (400).
    BadRequest(&'static str),
    /// Body larger than the configured cap (413).
    BodyTooLarge {
        /// Declared `Content-Length`.
        declared: usize,
        /// Configured maximum.
        limit: usize,
    },
    /// The whole-request deadline expired mid-read (408).
    Timeout,
    /// A request or header line exceeded the byte cap (431).
    LineTooLong {
        /// Configured cap, bytes.
        limit: usize,
    },
    /// More header lines than the configured cap (431).
    TooManyHeaders {
        /// Configured cap.
        limit: usize,
    },
    /// Socket-level failure (no response is possible).
    Io(io::Error),
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        // Armed read timeouts surface as WouldBlock or TimedOut depending
        // on the platform; both mean the deadline struck.
        match e.kind() {
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => HttpError::Timeout,
            _ => HttpError::Io(e),
        }
    }
}

impl HttpError {
    /// The HTTP status this error is answered with.
    #[must_use]
    pub fn http_status(&self) -> u16 {
        match self {
            HttpError::BadRequest(_) => 400,
            HttpError::BodyTooLarge { .. } => 413,
            HttpError::Timeout => 408,
            HttpError::LineTooLong { .. } | HttpError::TooManyHeaders { .. } => 431,
            HttpError::Io(_) => 400,
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::BadRequest(d) => write!(f, "bad request: {d}"),
            HttpError::BodyTooLarge { declared, limit } => {
                write!(f, "body of {declared} bytes exceeds the {limit}-byte cap")
            }
            HttpError::Timeout => write!(f, "request deadline expired mid-read"),
            HttpError::LineTooLong { limit } => {
                write!(f, "request/header line exceeds the {limit}-byte cap")
            }
            HttpError::TooManyHeaders { limit } => {
                write!(f, "more than {limit} header lines")
            }
            HttpError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

/// Anything a request can be read from: a live socket (which can arm
/// per-read timeouts toward the deadline) or an in-memory byte slice (the
/// property tests' fuzzing surface, where arming is a no-op).
pub trait RequestSource: Read {
    /// Arms an I/O timeout of `remaining` for the next read.
    fn arm_timeout(&mut self, remaining: Duration) -> io::Result<()> {
        let _ = remaining;
        Ok(())
    }
}

impl RequestSource for TcpStream {
    fn arm_timeout(&mut self, remaining: Duration) -> io::Result<()> {
        // Zero would mean "no timeout"; clamp up so an already-struck
        // deadline still produces a fast WouldBlock/TimedOut.
        self.set_read_timeout(Some(remaining.max(Duration::from_millis(1))))
    }
}

impl RequestSource for &[u8] {}

impl<S: RequestSource + ?Sized> RequestSource for &mut S {
    fn arm_timeout(&mut self, remaining: Duration) -> io::Result<()> {
        (**self).arm_timeout(remaining)
    }
}

/// Reads one `\n`-terminated line, enforcing the byte cap and the deadline.
/// Returns `None` at a clean EOF before any byte of the line.
fn read_line_bounded<S: RequestSource>(
    reader: &mut BufReader<S>,
    limits: &HttpLimits,
) -> Result<Option<String>, HttpError> {
    if let Some(deadline) = limits.deadline {
        let now = Instant::now();
        if now >= deadline {
            return Err(HttpError::Timeout);
        }
        reader.get_mut().arm_timeout(deadline - now)?;
    }
    let mut buf = Vec::new();
    let cap = limits.max_line_bytes;
    let n = reader
        .by_ref()
        .take(cap as u64 + 1)
        .read_until(b'\n', &mut buf)?;
    if n == 0 {
        return Ok(None);
    }
    if buf.len() > cap || (buf.len() == cap && buf.last() != Some(&b'\n')) {
        return Err(HttpError::LineTooLong { limit: cap });
    }
    // Headers are ASCII in practice; anything else is malformed input, not
    // a reason to panic.
    String::from_utf8(buf)
        .map(Some)
        .map_err(|_| HttpError::BadRequest("non-UTF-8 bytes in request line or headers"))
}

/// Reads one request from the source under `limits`. Total: every input —
/// including adversarial byte streams and stalled sockets — produces `Ok`
/// or a typed [`HttpError`], never a panic or an unbounded buffer.
pub fn read_request<S: RequestSource>(
    source: &mut S,
    limits: &HttpLimits,
) -> Result<Request, HttpError> {
    let mut reader = BufReader::new(source);
    let line = read_line_bounded(&mut reader, limits)?
        .ok_or(HttpError::BadRequest("empty request line"))?;
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or(HttpError::BadRequest("empty request line"))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or(HttpError::BadRequest("missing request target"))?;
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut content_length = 0usize;
    let mut header_count = 0usize;
    loop {
        let header = read_line_bounded(&mut reader, limits)?
            .ok_or(HttpError::BadRequest("connection closed mid-headers"))?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        header_count += 1;
        if header_count > limits.max_header_count {
            return Err(HttpError::TooManyHeaders {
                limit: limits.max_header_count,
            });
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| HttpError::BadRequest("unparseable content-length"))?;
            }
        }
    }
    if content_length > limits.max_body {
        return Err(HttpError::BodyTooLarge {
            declared: content_length,
            limit: limits.max_body,
        });
    }
    if let Some(deadline) = limits.deadline {
        let now = Instant::now();
        if now >= deadline {
            return Err(HttpError::Timeout);
        }
        reader.get_mut().arm_timeout(deadline - now)?;
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Request { method, path, body })
}

/// A request parsed incrementally out of a connection buffer by
/// [`parse_request`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedRequest {
    /// The parsed request.
    pub request: Request,
    /// Bytes of the buffer this request consumed (head + body); the caller
    /// drains this prefix before parsing the next pipelined request.
    pub consumed: usize,
    /// True when the client asked the connection to close after this
    /// exchange (`Connection: close`, or HTTP/1.0 without
    /// `Connection: keep-alive`).
    pub close: bool,
}

/// Locates the next `\n`-terminated line starting at `start`, enforcing the
/// same byte cap as the blocking reader: the line including its `\n` must
/// fit in `cap` bytes. `Ok(None)` means the line is incomplete but still
/// within the cap.
fn scan_line(buf: &[u8], start: usize, cap: usize) -> Result<Option<(usize, usize)>, HttpError> {
    let rest = &buf[start..];
    let window = &rest[..rest.len().min(cap)];
    match window.iter().position(|&b| b == b'\n') {
        Some(pos) => Ok(Some((start + pos, start + pos + 1))),
        None if rest.len() >= cap => Err(HttpError::LineTooLong { limit: cap }),
        None => Ok(None),
    }
}

/// Decodes one header/request line (trailing `\r` stripped) as UTF-8.
fn line_str(line: &[u8]) -> Result<&str, HttpError> {
    let line = match line.last() {
        Some(b'\r') => &line[..line.len() - 1],
        _ => line,
    };
    std::str::from_utf8(line)
        .map_err(|_| HttpError::BadRequest("non-UTF-8 bytes in request line or headers"))
}

/// Incrementally parses one request from the front of `buf`.
///
/// * `Ok(Some(parsed))` — a complete request; the caller drains
///   `parsed.consumed` bytes and may call again on the remainder (pipelining).
/// * `Ok(None)` — the bytes so far are a valid prefix; read more and retry.
///   Buffering while in this state is bounded: the head is capped by
///   `max_line_bytes × max_header_count` and the body by `max_body`.
/// * `Err(_)` — the prefix can never become a valid request; the caller
///   answers the typed status and closes.
///
/// Total like [`read_request`]: arbitrary byte prefixes must produce one of
/// the three outcomes, never a panic (fuzzed in `proptest_http.rs`), and on
/// complete inputs the outcome agrees with the blocking reader.
pub fn parse_request(buf: &[u8], limits: &HttpLimits) -> Result<Option<ParsedRequest>, HttpError> {
    let cap = limits.max_line_bytes;
    let (line_end, mut cursor) = match scan_line(buf, 0, cap)? {
        Some(bounds) => bounds,
        None => return Ok(None),
    };
    let line = line_str(&buf[..line_end])?;
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or(HttpError::BadRequest("empty request line"))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or(HttpError::BadRequest("missing request target"))?;
    let path = target.split('?').next().unwrap_or(target).to_string();
    // HTTP/1.0 defaults to close; everything else (1.1, or the version-less
    // requests the blocking reader also tolerates) defaults to keep-alive.
    let mut close = parts.next() == Some("HTTP/1.0");

    let mut content_length = 0usize;
    let mut header_count = 0usize;
    loop {
        let (header_end, next) = match scan_line(buf, cursor, cap)? {
            Some(bounds) => bounds,
            None => return Ok(None),
        };
        let header = line_str(&buf[cursor..header_end])?.trim_end();
        cursor = next;
        if header.is_empty() {
            break;
        }
        header_count += 1;
        if header_count > limits.max_header_count {
            return Err(HttpError::TooManyHeaders {
                limit: limits.max_header_count,
            });
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| HttpError::BadRequest("unparseable content-length"))?;
            } else if name.eq_ignore_ascii_case("connection") {
                for token in value.split(',') {
                    let token = token.trim();
                    if token.eq_ignore_ascii_case("close") {
                        close = true;
                    } else if token.eq_ignore_ascii_case("keep-alive") {
                        close = false;
                    }
                }
            }
        }
    }
    if content_length > limits.max_body {
        return Err(HttpError::BodyTooLarge {
            declared: content_length,
            limit: limits.max_body,
        });
    }
    let total = cursor + content_length;
    if buf.len() < total {
        return Ok(None);
    }
    Ok(Some(ParsedRequest {
        request: Request {
            method,
            path,
            body: buf[cursor..total].to_vec(),
        },
        consumed: total,
        close,
    }))
}

/// Renders a complete response (head + JSON body) into a byte vector for
/// the event loop's buffered writer. `close` selects the `connection`
/// header; keep-alive responses rely on `content-length` framing.
#[must_use]
pub fn render_response(
    status: u16,
    body: &str,
    extra_headers: &[(&str, &str)],
    close: bool,
) -> Vec<u8> {
    let reason = reason_phrase(status);
    let connection = if close { "close" } else { "keep-alive" };
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\ncontent-type: application/json\r\n\
         content-length: {}\r\nconnection: {connection}\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    let mut bytes = head.into_bytes();
    bytes.extend_from_slice(body.as_bytes());
    bytes
}

/// Renders a request head + body for a client connection. `close` asks the
/// server to end the connection after this exchange; pooled keep-alive
/// clients pass `false`.
#[must_use]
pub fn render_request(method: &str, path: &str, host: &str, body: &[u8], close: bool) -> Vec<u8> {
    let connection = if close { "close" } else { "keep-alive" };
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: {host}\r\ncontent-type: application/json\r\n\
         content-length: {}\r\nconnection: {connection}\r\n\r\n",
        body.len()
    );
    let mut bytes = head.into_bytes();
    bytes.extend_from_slice(body);
    bytes
}

/// Writes a response with a JSON body and closes the exchange
/// (`Connection: close`).
pub fn write_json_response<W: Write>(stream: &mut W, status: u16, body: &str) -> io::Result<()> {
    write_json_response_with(stream, status, body, &[])
}

/// [`write_json_response`] with extra response headers (e.g. `Retry-After`
/// on load-shedding 503s). Header names and values must be pre-sanitised
/// static strings — no client data goes through here.
pub fn write_json_response_with<W: Write>(
    stream: &mut W,
    status: u16,
    body: &str,
    extra_headers: &[(&str, &str)],
) -> io::Result<()> {
    stream.write_all(&render_response(status, body, extra_headers, true))?;
    stream.flush()
}

fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// A response as read off a client connection by [`read_response`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResponseParts {
    /// Status code from the status line.
    pub status: u16,
    /// Body bytes (`content-length` framed).
    pub body: Vec<u8>,
    /// True when the server announced `connection: close` — the connection
    /// must not be reused for another request.
    pub close: bool,
    /// Parsed `Retry-After` header (whole seconds), when the server sent
    /// one on a 429/503 — clients use it to pace their retries.
    pub retry_after: Option<u64>,
}

/// Reads one `content-length`-framed response from a client-side reader.
/// A clean EOF before the status line is `UnexpectedEof` (pooled clients
/// use this to detect a stale connection and retry once).
pub fn read_response<R: BufRead>(reader: &mut R) -> io::Result<ResponseParts> {
    let mut status_line = String::new();
    if reader.read_line(&mut status_line)? == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed before a response arrived",
        ));
    }
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
    let mut content_length = 0usize;
    let mut close = false;
    let mut retry_after = None;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            break;
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().unwrap_or(0);
            } else if name.eq_ignore_ascii_case("connection")
                && value.trim().eq_ignore_ascii_case("close")
            {
                close = true;
            } else if name.eq_ignore_ascii_case("retry-after") {
                retry_after = value.trim().parse().ok();
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(ResponseParts {
        status,
        body,
        close,
        retry_after,
    })
}

/// Minimal client used by tests and the load generator: one round trip on a
/// fresh connection (`Connection: close`), returning `(status, body)`.
pub fn roundtrip(
    addr: std::net::SocketAddr,
    method: &str,
    path: &str,
    body: &[u8],
) -> io::Result<(u16, Vec<u8>)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.write_all(&render_request(method, path, &addr.to_string(), body, true))?;
    stream.flush()?;
    let mut reader = BufReader::new(stream);
    let parts = read_response(&mut reader)?;
    Ok((parts.status, parts.body))
}

/// A pooled keep-alive client connection: requests reuse one TCP stream,
/// reconnecting transparently (with a single retry) when the pooled stream
/// turns out to be stale — e.g. the server closed it during an idle gap.
///
/// Also supports request pipelining ([`KeepAliveClient::request_batch`]):
/// every request in the batch is written back-to-back before any response
/// is read, amortising syscalls and round trips across the batch.
pub struct KeepAliveClient {
    addr: std::net::SocketAddr,
    host: String,
    io_timeout: Option<Duration>,
    stream: Option<BufReader<TcpStream>>,
    connects: u64,
    reuses: u64,
    last_connect_us: u64,
}

/// Batch-exchange failure: the number of responses already read off the
/// wire (0 means a stale pooled connection, safe to retry) and the error.
type BatchError = (usize, io::Error);

impl KeepAliveClient {
    /// A client for `addr` with no I/O timeout.
    #[must_use]
    pub fn new(addr: std::net::SocketAddr) -> Self {
        Self::with_timeout(addr, None)
    }

    /// A client for `addr` arming `timeout` on reads and writes of every
    /// connection it opens.
    #[must_use]
    pub fn with_timeout(addr: std::net::SocketAddr, timeout: Option<Duration>) -> Self {
        KeepAliveClient {
            addr,
            host: addr.to_string(),
            io_timeout: timeout,
            stream: None,
            connects: 0,
            reuses: 0,
            last_connect_us: 0,
        }
    }

    /// TCP connects this client has made.
    #[must_use]
    pub fn connects(&self) -> u64 {
        self.connects
    }

    /// Requests (or batches) that reused a pooled connection.
    #[must_use]
    pub fn reuses(&self) -> u64 {
        self.reuses
    }

    /// Microseconds the most recent request/batch spent on TCP connect
    /// (0 when it reused a pooled connection).
    #[must_use]
    pub fn last_connect_us(&self) -> u64 {
        self.last_connect_us
    }

    fn connect(&mut self) -> io::Result<()> {
        let started = Instant::now();
        let stream = TcpStream::connect(self.addr)?;
        let _ = stream.set_nodelay(true);
        if let Some(timeout) = self.io_timeout {
            stream.set_read_timeout(Some(timeout))?;
            stream.set_write_timeout(Some(timeout))?;
        }
        self.last_connect_us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        self.connects += 1;
        self.stream = Some(BufReader::new(stream));
        Ok(())
    }

    /// One keep-alive round trip, returning `(status, body)`.
    pub fn request(&mut self, method: &str, path: &str, body: &[u8]) -> io::Result<(u16, Vec<u8>)> {
        let mut responses = self.request_batch(&[(method, path, body)])?;
        responses
            .pop()
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "no response"))
    }

    /// Writes every request in the batch back-to-back on one connection
    /// (HTTP/1.1 pipelining), then reads the responses in order. A stale
    /// pooled connection (error before any response byte) is replaced and
    /// the whole batch retried once; errors after a partial read are
    /// surfaced as-is, since the server has already seen some requests.
    pub fn request_batch(
        &mut self,
        reqs: &[(&str, &str, &[u8])],
    ) -> io::Result<Vec<(u16, Vec<u8>)>> {
        if reqs.is_empty() {
            return Ok(Vec::new());
        }
        if self.stream.is_some() {
            self.last_connect_us = 0;
            match self.exchange(reqs) {
                Ok(responses) => {
                    self.reuses += 1;
                    return Ok(responses);
                }
                // Nothing read back: the pooled stream was stale. Reconnect
                // and retry the batch once.
                Err((0, _stale)) => self.stream = None,
                Err((_, e)) => {
                    self.stream = None;
                    return Err(e);
                }
            }
        }
        self.connect()?;
        self.exchange(reqs).map_err(|(_, e)| {
            self.stream = None;
            e
        })
    }

    /// One write-all-then-read-all exchange over the current stream.
    /// Errors carry the number of responses already read so the caller can
    /// distinguish a stale pooled connection (0) from a mid-batch failure.
    fn exchange(
        &mut self,
        reqs: &[(&str, &str, &[u8])],
    ) -> Result<Vec<(u16, Vec<u8>)>, BatchError> {
        let mut wire = Vec::new();
        for (method, path, body) in reqs {
            wire.extend(render_request(method, path, &self.host, body, false));
        }
        let mut responses = Vec::with_capacity(reqs.len());
        let mut server_closes = false;
        {
            let reader = self
                .stream
                .as_mut()
                .expect("exchange requires a connection");
            reader.get_mut().write_all(&wire).map_err(|e| (0, e))?;
            for _ in reqs {
                if server_closes {
                    return Err((
                        responses.len(),
                        io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "server closed the connection mid-pipeline",
                        ),
                    ));
                }
                let count = responses.len();
                let parts = read_response(reader).map_err(|e| (count, e))?;
                server_closes = parts.close;
                responses.push((parts.status, parts.body));
            }
        }
        if server_closes {
            self.stream = None;
        }
        Ok(responses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// Exercises the parser + writer over a real loopback socket.
    #[test]
    fn request_and_response_round_trip_over_loopback() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let limits = HttpLimits {
                max_body: 1024,
                ..HttpLimits::default()
            };
            let req = read_request(&mut stream, &limits).unwrap();
            assert_eq!(req.method, "POST");
            assert_eq!(req.path, "/solve");
            assert_eq!(req.body, b"{\"x\":1}");
            write_json_response(&mut stream, 200, "{\"ok\":true}").unwrap();
        });
        let (status, body) = roundtrip(addr, "POST", "/solve?verbose=1", b"{\"x\":1}").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, b"{\"ok\":true}");
        server.join().unwrap();
    }

    #[test]
    fn oversized_bodies_are_rejected_before_allocation() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let limits = HttpLimits {
                max_body: 16,
                ..HttpLimits::default()
            };
            match read_request(&mut stream, &limits) {
                Err(HttpError::BodyTooLarge { declared, limit }) => {
                    assert_eq!(declared, 1000);
                    assert_eq!(limit, 16);
                }
                other => panic!("expected BodyTooLarge, got {other:?}"),
            }
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"POST /solve HTTP/1.1\r\ncontent-length: 1000\r\n\r\n")
            .unwrap();
        server.join().unwrap();
    }

    #[test]
    fn in_memory_sources_parse_without_a_socket() {
        let mut raw: &[u8] = b"GET /healthz HTTP/1.1\r\nhost: x\r\n\r\n";
        let req = read_request(&mut raw, &HttpLimits::default()).unwrap();
        assert_eq!(
            (req.method.as_str(), req.path.as_str()),
            ("GET", "/healthz")
        );
        assert!(req.body.is_empty());
    }

    #[test]
    fn long_request_lines_answer_431_not_unbounded_buffering() {
        let limits = HttpLimits {
            max_line_bytes: 64,
            ..HttpLimits::default()
        };
        let mut raw: Vec<u8> = b"GET /".to_vec();
        raw.extend(std::iter::repeat_n(b'a', 10_000));
        match read_request(&mut raw.as_slice(), &limits) {
            Err(HttpError::LineTooLong { limit }) => assert_eq!(limit, 64),
            other => panic!("expected LineTooLong, got {other:?}"),
        }
        // A long *header* line trips the same cap.
        let mut raw: Vec<u8> = b"GET / HTTP/1.1\r\nx-junk: ".to_vec();
        raw.extend(std::iter::repeat_n(b'b', 10_000));
        match read_request(&mut raw.as_slice(), &limits) {
            Err(HttpError::LineTooLong { limit }) => assert_eq!(limit, 64),
            other => panic!("expected LineTooLong, got {other:?}"),
        }
    }

    #[test]
    fn header_count_cap_is_enforced() {
        let limits = HttpLimits {
            max_header_count: 4,
            ..HttpLimits::default()
        };
        let mut raw: Vec<u8> = b"GET / HTTP/1.1\r\n".to_vec();
        for i in 0..10 {
            raw.extend(format!("x-h{i}: v\r\n").into_bytes());
        }
        raw.extend(b"\r\n");
        match read_request(&mut raw.as_slice(), &limits) {
            Err(HttpError::TooManyHeaders { limit }) => assert_eq!(limit, 4),
            other => panic!("expected TooManyHeaders, got {other:?}"),
        }
    }

    #[test]
    fn expired_deadlines_fail_with_timeout_before_reading() {
        let limits = HttpLimits {
            deadline: Some(Instant::now() - Duration::from_millis(1)),
            ..HttpLimits::default()
        };
        let mut raw: &[u8] = b"GET / HTTP/1.1\r\n\r\n";
        match read_request(&mut raw, &limits) {
            Err(HttpError::Timeout) => {}
            other => panic!("expected Timeout, got {other:?}"),
        }
    }

    #[test]
    fn slowloris_clients_are_cut_off_by_the_wall_clock_deadline() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let limits = HttpLimits {
                deadline: Some(Instant::now() + Duration::from_millis(50)),
                ..HttpLimits::default()
            };
            let started = Instant::now();
            let result = read_request(&mut stream, &limits);
            assert!(
                matches!(result, Err(HttpError::Timeout)),
                "stalled client should time out, got {result:?}"
            );
            assert!(
                started.elapsed() < Duration::from_secs(5),
                "deadline cut the read off promptly"
            );
        });
        // Send half a request line, then stall well past the deadline.
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"POST /so").unwrap();
        stream.flush().unwrap();
        server.join().unwrap();
        drop(stream);
    }

    #[test]
    fn extra_headers_are_emitted_in_the_response_head() {
        let mut out = Vec::new();
        write_json_response_with(&mut out, 503, "{}", &[("retry-after", "1")]).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(
            text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"),
            "{text}"
        );
        assert!(text.contains("retry-after: 1\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{}"), "{text}");
    }

    #[test]
    fn incremental_parser_needs_more_bytes_then_agrees_with_the_blocking_reader() {
        let wire = b"POST /solve HTTP/1.1\r\nhost: x\r\ncontent-length: 7\r\n\r\n{\"x\":1}";
        let limits = HttpLimits::default();
        // Every strict prefix is "need more bytes"...
        for cut in 0..wire.len() {
            match parse_request(&wire[..cut], &limits) {
                Ok(None) => {}
                other => panic!("prefix of {cut} bytes should be incomplete, got {other:?}"),
            }
        }
        // ...and the full buffer parses to exactly what the blocking reader sees.
        let parsed = parse_request(wire, &limits).unwrap().unwrap();
        let blocking = read_request(&mut &wire[..], &limits).unwrap();
        assert_eq!(parsed.request, blocking);
        assert_eq!(parsed.consumed, wire.len());
        assert!(!parsed.close, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn pipelined_requests_parse_one_at_a_time_off_the_front() {
        let mut wire = Vec::new();
        wire.extend_from_slice(b"GET /healthz HTTP/1.1\r\n\r\n");
        wire.extend_from_slice(b"POST /solve HTTP/1.1\r\ncontent-length: 2\r\n\r\n{}");
        wire.extend_from_slice(b"GET /metrics HTTP/1.1\r\nconnection: close\r\n\r\n");
        let limits = HttpLimits::default();
        let mut paths = Vec::new();
        let mut offset = 0;
        while let Some(parsed) = parse_request(&wire[offset..], &limits).unwrap() {
            paths.push((parsed.request.path.clone(), parsed.close));
            offset += parsed.consumed;
        }
        assert_eq!(offset, wire.len(), "every byte belongs to some request");
        assert_eq!(
            paths,
            vec![
                ("/healthz".to_string(), false),
                ("/solve".to_string(), false),
                ("/metrics".to_string(), true),
            ]
        );
    }

    #[test]
    fn connection_semantics_cover_http10_and_explicit_headers() {
        let limits = HttpLimits::default();
        let close = |wire: &[u8]| parse_request(wire, &limits).unwrap().unwrap().close;
        assert!(close(b"GET / HTTP/1.0\r\n\r\n"), "1.0 defaults to close");
        assert!(
            !close(b"GET / HTTP/1.0\r\nconnection: keep-alive\r\n\r\n"),
            "1.0 + keep-alive stays open"
        );
        assert!(close(b"GET / HTTP/1.1\r\nConnection: Close\r\n\r\n"));
        assert!(!close(b"GET / HTTP/1.1\r\n\r\n"));
    }

    #[test]
    fn incremental_caps_trip_on_partial_data() {
        let limits = HttpLimits {
            max_line_bytes: 32,
            max_header_count: 2,
            max_body: 8,
            deadline: None,
        };
        // A request line that can never fit errors before it completes.
        let long: Vec<u8> = b"GET /".iter().copied().chain([b'a'; 64]).collect();
        assert!(matches!(
            parse_request(&long, &limits),
            Err(HttpError::LineTooLong { limit: 32 })
        ));
        // Too many headers errors even though the blank line never arrived.
        let heads = b"GET / HTTP/1.1\r\na: 1\r\nb: 2\r\nc: 3\r\n";
        assert!(matches!(
            parse_request(heads, &limits),
            Err(HttpError::TooManyHeaders { limit: 2 })
        ));
        // An oversized declared body errors without waiting for the bytes.
        let big = b"POST / HTTP/1.1\r\ncontent-length: 999\r\n\r\n";
        assert!(matches!(
            parse_request(big, &limits),
            Err(HttpError::BodyTooLarge {
                declared: 999,
                limit: 8
            })
        ));
    }

    #[test]
    fn render_response_is_keep_alive_aware() {
        let keep = String::from_utf8(render_response(200, "{}", &[], false)).unwrap();
        assert!(keep.contains("connection: keep-alive\r\n"), "{keep}");
        let close = String::from_utf8(render_response(200, "{}", &[], true)).unwrap();
        assert!(close.contains("connection: close\r\n"), "{close}");
        assert!(close.ends_with("\r\n\r\n{}"), "{close}");
    }

    #[test]
    fn keep_alive_client_reuses_one_connection_and_recovers_from_a_stale_one() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            // First connection: serve two requests, then close (stale pool).
            let (mut stream, _) = listener.accept().unwrap();
            for _ in 0..2 {
                let req = read_request(&mut stream, &HttpLimits::default()).unwrap();
                assert_eq!(req.method, "GET");
                stream
                    .write_all(&render_response(200, "{\"n\":1}", &[], false))
                    .unwrap();
            }
            drop(stream);
            // Second connection: the client's retry after the stale reuse.
            let (mut stream, _) = listener.accept().unwrap();
            let _ = read_request(&mut stream, &HttpLimits::default()).unwrap();
            stream
                .write_all(&render_response(200, "{\"n\":2}", &[], false))
                .unwrap();
        });
        let mut client = KeepAliveClient::new(addr);
        let (status, _) = client.request("GET", "/a", b"").unwrap();
        assert_eq!(status, 200);
        let (status, _) = client.request("GET", "/b", b"").unwrap();
        assert_eq!(status, 200);
        assert_eq!(client.connects(), 1, "second request reused the stream");
        assert_eq!(client.reuses(), 1);
        // The server has closed the pooled stream; the next request must
        // transparently reconnect and succeed.
        let (status, body) = client.request("GET", "/c", b"").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, b"{\"n\":2}");
        assert_eq!(client.connects(), 2, "stale reuse reconnected once");
        server.join().unwrap();
    }

    #[test]
    fn pipelined_batches_come_back_in_order() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            // Pipelined requests share read segments, so the server side
            // must parse incrementally from one buffer — `read_request`'s
            // per-call BufReader would swallow the trailing requests.
            let (mut stream, _) = listener.accept().unwrap();
            let mut buf = Vec::new();
            let mut chunk = [0u8; 4096];
            let mut served = 0;
            while served < 3 {
                match parse_request(&buf, &HttpLimits::default()).unwrap() {
                    Some(parsed) => {
                        let body =
                            format!("{{\"path\":\"{}\",\"i\":{served}}}", parsed.request.path);
                        stream
                            .write_all(&render_response(200, &body, &[], false))
                            .unwrap();
                        buf.drain(..parsed.consumed);
                        served += 1;
                    }
                    None => {
                        let n = stream.read(&mut chunk).unwrap();
                        assert!(n > 0, "client closed before sending all requests");
                        buf.extend_from_slice(&chunk[..n]);
                    }
                }
            }
        });
        let mut client = KeepAliveClient::new(addr);
        let responses = client
            .request_batch(&[
                ("GET", "/a", b"".as_slice()),
                ("GET", "/b", b"".as_slice()),
                ("GET", "/c", b"".as_slice()),
            ])
            .unwrap();
        let bodies: Vec<String> = responses
            .iter()
            .map(|(status, body)| {
                assert_eq!(*status, 200);
                String::from_utf8(body.clone()).unwrap()
            })
            .collect();
        assert_eq!(bodies[0], "{\"path\":\"/a\",\"i\":0}");
        assert_eq!(bodies[1], "{\"path\":\"/b\",\"i\":1}");
        assert_eq!(bodies[2], "{\"path\":\"/c\",\"i\":2}");
        assert_eq!(client.connects(), 1);
        server.join().unwrap();
    }

    #[test]
    fn status_mapping_covers_every_error() {
        assert_eq!(HttpError::BadRequest("x").http_status(), 400);
        assert_eq!(
            HttpError::BodyTooLarge {
                declared: 2,
                limit: 1
            }
            .http_status(),
            413
        );
        assert_eq!(HttpError::Timeout.http_status(), 408);
        assert_eq!(HttpError::LineTooLong { limit: 1 }.http_status(), 431);
        assert_eq!(HttpError::TooManyHeaders { limit: 1 }.http_status(), 431);
        let timeout: HttpError = io::Error::from(io::ErrorKind::TimedOut).into();
        assert!(matches!(timeout, HttpError::Timeout));
    }
}
