//! A deliberately small HTTP/1.1 subset over `std::net` — just enough for a
//! JSON API (request line, headers, `Content-Length` bodies, one request per
//! connection). No external dependencies: the build environment is offline.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// A parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, ...).
    pub method: String,
    /// Path without query string.
    pub path: String,
    /// Raw body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

/// Errors while reading a request; each maps to a 4xx.
#[derive(Debug)]
pub enum HttpError {
    /// Malformed request line or headers.
    BadRequest(&'static str),
    /// Body larger than the configured cap.
    BodyTooLarge {
        /// Declared `Content-Length`.
        declared: usize,
        /// Configured maximum.
        limit: usize,
    },
    /// Socket-level failure.
    Io(io::Error),
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::BadRequest(d) => write!(f, "bad request: {d}"),
            HttpError::BodyTooLarge { declared, limit } => {
                write!(f, "body of {declared} bytes exceeds the {limit}-byte cap")
            }
            HttpError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

/// Reads one request from the stream. `max_body` caps `Content-Length` so a
/// hostile client cannot make the server allocate without bound.
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<Request, HttpError> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or(HttpError::BadRequest("empty request line"))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or(HttpError::BadRequest("missing request target"))?;
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            return Err(HttpError::BadRequest("connection closed mid-headers"));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| HttpError::BadRequest("unparseable content-length"))?;
            }
        }
    }
    if content_length > max_body {
        return Err(HttpError::BodyTooLarge {
            declared: content_length,
            limit: max_body,
        });
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Request { method, path, body })
}

/// Writes a response with a JSON body and closes the exchange
/// (`Connection: close`).
pub fn write_json_response(stream: &mut TcpStream, status: u16, body: &str) -> io::Result<()> {
    let reason = reason_phrase(status);
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\ncontent-type: application/json\r\n\
         content-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Minimal client used by tests and the load generator: one round trip,
/// returning `(status, body)`.
pub fn roundtrip(
    addr: std::net::SocketAddr,
    method: &str,
    path: &str,
    body: &[u8],
) -> io::Result<(u16, Vec<u8>)> {
    let mut stream = TcpStream::connect(addr)?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-type: application/json\r\n\
         content-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()?;

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            break;
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().unwrap_or(0);
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// Exercises the parser + writer over a real loopback socket.
    #[test]
    fn request_and_response_round_trip_over_loopback() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let req = read_request(&mut stream, 1024).unwrap();
            assert_eq!(req.method, "POST");
            assert_eq!(req.path, "/solve");
            assert_eq!(req.body, b"{\"x\":1}");
            write_json_response(&mut stream, 200, "{\"ok\":true}").unwrap();
        });
        let (status, body) = roundtrip(addr, "POST", "/solve?verbose=1", b"{\"x\":1}").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, b"{\"ok\":true}");
        server.join().unwrap();
    }

    #[test]
    fn oversized_bodies_are_rejected_before_allocation() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            match read_request(&mut stream, 16) {
                Err(HttpError::BodyTooLarge { declared, limit }) => {
                    assert_eq!(declared, 1000);
                    assert_eq!(limit, 16);
                }
                other => panic!("expected BodyTooLarge, got {other:?}"),
            }
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"POST /solve HTTP/1.1\r\ncontent-length: 1000\r\n\r\n")
            .unwrap();
        server.join().unwrap();
    }
}
