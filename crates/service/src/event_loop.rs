//! Std-only poll(2)-driven HTTP front-end (DESIGN.md §13).
//!
//! Replaces the thread-per-connection accept loop: N *accept shards* each
//! run a nonblocking event loop over a cloned listener, a wakeup pipe, and
//! their connections. Every connection is a small state machine — buffered
//! partial reads feed the incremental parser ([`crate::http::parse_request`]),
//! parsed requests dispatch to a [`Handler`], and responses flush through a
//! buffered writer, strictly in request order (HTTP/1.1 keep-alive with
//! per-connection pipelining).
//!
//! All of the thread-per-connection hardening carries over, readiness-driven
//! instead of blocking:
//!
//! * **wall-clock request deadlines** — a partial request arms a deadline;
//!   `poll` timeouts enforce it with a typed `408` (slowloris defense);
//! * **byte/count caps** — the incremental parser rejects oversized lines,
//!   header floods, and oversized bodies on *partial* data, so buffering per
//!   connection is bounded;
//! * **connection cap** — accepts beyond [`LoopConfig::max_connections`] are
//!   shed with a typed `503` + `Retry-After` written through the same
//!   nonblocking writer (no helper thread, no blocking round-trip);
//! * **graceful drain** — on shutdown the shards stop accepting, parse the
//!   requests already buffered, answer everything in flight, and mark the
//!   final response on each connection `connection: close`;
//! * **panic isolation** — a panicking handler answers a typed `500` and
//!   closes that connection; the shard keeps running.
//!
//! Workers answer asynchronously through a [`Completer`]: the response is
//! posted to the owning shard's completion channel and the shard's `poll`
//! is woken through a pipe byte ([`Waker`]), so solve threads never touch
//! client sockets.

use crate::api::Reject;
use crate::http::{parse_request, render_response, HttpError, HttpLimits, Request};
use crate::metrics::{Metrics, MAX_TRACKED_SHARDS};
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::UnixStream;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// poll(2) via FFI — std exposes no readiness API, and the build is offline
// (no libc crate). Linux ABI: nfds_t is unsigned long, events are i16.

#[repr(C)]
#[derive(Clone, Copy)]
struct PollFd {
    fd: std::os::raw::c_int,
    events: i16,
    revents: i16,
}

const POLLIN: i16 = 0x001;
const POLLOUT: i16 = 0x004;
const POLLNVAL: i16 = 0x020;
/// Error/hangup conditions are delivered in `revents` regardless of the
/// requested events; treating them as readable lets the normal read path
/// observe the EOF/error.
const POLL_READ_EVENTS: i16 = POLLIN | 0x008 | 0x010; // POLLIN | POLLERR | POLLHUP

extern "C" {
    fn poll(fds: *mut PollFd, nfds: std::os::raw::c_ulong, timeout: std::os::raw::c_int) -> i32;
}

/// Blocks until a descriptor is ready or `timeout` passes, retrying EINTR.
fn poll_fds(fds: &mut [PollFd], timeout: Duration) -> io::Result<usize> {
    let timeout_ms = i32::try_from(timeout.as_millis()).unwrap_or(i32::MAX);
    loop {
        let rc = unsafe {
            poll(
                fds.as_mut_ptr(),
                fds.len() as std::os::raw::c_ulong,
                timeout_ms,
            )
        };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

// ---------------------------------------------------------------------------
// Handler surface.

/// A response a [`Handler`] produces.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// JSON body.
    pub body: String,
    /// Extra response headers (pre-sanitised names/values only).
    pub headers: Vec<(&'static str, String)>,
    /// Force `connection: close` after this response even if the client
    /// asked for keep-alive (the `/shutdown` acknowledgement does this).
    pub close: bool,
}

impl Response {
    /// A JSON response with no extra headers.
    #[must_use]
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            body: body.into(),
            headers: Vec::new(),
            close: false,
        }
    }

    /// Adds a response header.
    #[must_use]
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Response {
        self.headers.push((name, value.into()));
        self
    }

    /// Marks the connection to close after this response.
    #[must_use]
    pub fn closing(mut self) -> Response {
        self.close = true;
        self
    }

    /// A typed rejection body with the rejection's status.
    #[must_use]
    pub fn reject(reject: &Reject) -> Response {
        Response::json(reject.http_status(), reject.body_json())
    }
}

/// What a [`Handler`] did with a request.
pub enum Action {
    /// Answered synchronously.
    Respond(Response),
    /// The answer will arrive later through the [`Completer`] the handler
    /// was given (it must eventually be completed or dropped — a dropped
    /// completion simply never flushes and the connection times out).
    Pending,
}

/// Dispatches parsed requests. Implementations must be cheap and
/// non-blocking on the calling (shard) thread: anything slow goes through
/// an admission queue and answers via the [`Completer`].
pub trait Handler: Send + Sync + 'static {
    /// Handles one request.
    fn handle(&self, request: Request, completer: Completer) -> Action;
}

/// Wakes a shard's `poll` by writing one byte into its wakeup pipe.
/// Nonblocking: a full pipe already guarantees a pending wakeup.
#[derive(Clone)]
pub struct Waker {
    tx: Arc<UnixStream>,
}

impl Waker {
    /// Wakes the owning shard.
    pub fn wake(&self) {
        let _ = (&*self.tx).write(&[1u8]);
    }
}

impl std::fmt::Debug for Waker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Waker")
    }
}

/// One-shot handle delivering an asynchronous response back to the shard
/// that owns the connection. Send-able into worker threads; completing
/// posts the response and wakes the shard's `poll`.
#[derive(Debug)]
pub struct Completer {
    token: u64,
    tx: mpsc::Sender<(u64, Response)>,
    waker: Waker,
}

impl Completer {
    /// Delivers the response for the request this completer was issued for.
    pub fn complete(self, response: Response) {
        let _ = self.tx.send((self.token, response));
        self.waker.wake();
    }
}

// ---------------------------------------------------------------------------
// Configuration and the public front-end handle.

/// Event-loop front-end knobs.
#[derive(Debug, Clone, Copy)]
pub struct LoopConfig {
    /// Accept shards (event-loop threads); each polls its own clone of the
    /// listener. 0 is treated as 1.
    pub shards: usize,
    /// Byte/count caps applied by the incremental parser.
    pub http: HttpLimits,
    /// Wall-clock budget for reading one request, milliseconds (0 disables);
    /// expiry answers a typed `408` and closes.
    pub request_deadline_ms: u64,
    /// Keep-alive idle timeout and write-stall timeout, milliseconds
    /// (0 disables): idle connections close silently, stalled writers are
    /// dropped.
    pub idle_timeout_ms: u64,
    /// Connection cap across all shards; accepts beyond it are shed with a
    /// typed `503` + `Retry-After`.
    pub max_connections: usize,
    /// Maximum requests queued per connection (parsed but not yet
    /// answered); beyond it the shard stops reading from that connection
    /// until responses drain (pipelining backpressure).
    pub max_pipeline: usize,
}

/// A running event-loop front-end: one thread per accept shard.
#[derive(Debug)]
pub struct EventLoop {
    wakers: Vec<Waker>,
    handles: Vec<JoinHandle<()>>,
}

impl EventLoop {
    /// Spawns `config.shards` event-loop threads over clones of `listener`.
    /// The shards watch `shutdown`; flip it and [`EventLoop::wake`] to start
    /// a graceful drain.
    pub fn spawn(
        listener: TcpListener,
        config: LoopConfig,
        handler: Arc<dyn Handler>,
        metrics: Arc<Metrics>,
        shutdown: Arc<AtomicBool>,
    ) -> io::Result<EventLoop> {
        listener.set_nonblocking(true)?;
        let shards = config.shards.max(1);
        let mut wakers = Vec::with_capacity(shards);
        let mut handles = Vec::with_capacity(shards);
        for shard_id in 0..shards {
            let listener = listener.try_clone()?;
            let (wake_tx, wake_rx) = UnixStream::pair()?;
            wake_tx.set_nonblocking(true)?;
            wake_rx.set_nonblocking(true)?;
            let waker = Waker {
                tx: Arc::new(wake_tx),
            };
            wakers.push(waker.clone());
            let (completion_tx, completions) = mpsc::channel();
            let mut shard = Shard {
                id: shard_id,
                listener,
                wake_rx,
                completions,
                completion_tx,
                waker,
                handler: Arc::clone(&handler),
                metrics: Arc::clone(&metrics),
                shutdown: Arc::clone(&shutdown),
                config,
                read_cap: config.http.max_body
                    + config.http.max_line_bytes * (config.http.max_header_count + 2),
                conns: HashMap::new(),
                tokens: HashMap::new(),
                next_conn: 0,
                next_token: 0,
                draining: false,
            };
            handles.push(
                std::thread::Builder::new()
                    .name(format!("mqo-loop-{shard_id}"))
                    .spawn(move || shard.run())?,
            );
        }
        Ok(EventLoop { wakers, handles })
    }

    /// Wakes every shard's `poll` (call after flipping the shutdown flag).
    pub fn wake(&self) {
        for waker in &self.wakers {
            waker.wake();
        }
    }

    /// Joins every shard thread; returns once all connections have drained.
    pub fn join(self) {
        for handle in self.handles {
            let _ = handle.join();
        }
    }
}

// ---------------------------------------------------------------------------
// Per-connection state machine.

/// A queued exchange on one connection, in request order.
enum Slot {
    /// Dispatched to the handler; the response will arrive by token.
    Waiting { token: u64, close: bool },
    /// Response ready to flush (responses only flush from the front, so
    /// pipelined responses keep request order).
    Ready { response: Response, close: bool },
}

struct Conn {
    stream: TcpStream,
    /// Unparsed input bytes (grows only while under the read cap).
    buf: Vec<u8>,
    /// In-flight exchanges, request order.
    pending: VecDeque<Slot>,
    /// Rendered output being written.
    out: Vec<u8>,
    out_pos: usize,
    /// Requests parsed on this connection.
    requests: u64,
    /// Armed while a partial request sits in `buf`; expiry answers 408.
    read_deadline: Option<Instant>,
    /// Last I/O or parse progress (idle/stall timeouts key off this).
    idle_since: Instant,
    /// No more reads: peer EOF, a close-requesting or malformed request,
    /// or drain.
    read_closed: bool,
    /// Drain: close once everything pending has flushed.
    close_after_flush: bool,
    /// A `connection: close` response has been rendered; close once the
    /// output buffer empties.
    closing: bool,
    /// Counted in the `connections_active` gauge (shed connections are not).
    counted: bool,
}

impl Conn {
    fn new(stream: TcpStream, counted: bool) -> Conn {
        Conn {
            stream,
            buf: Vec::new(),
            pending: VecDeque::new(),
            out: Vec::new(),
            out_pos: 0,
            requests: 0,
            read_deadline: None,
            idle_since: Instant::now(),
            read_closed: false,
            close_after_flush: false,
            closing: false,
            counted,
        }
    }

    fn wants_read(&self, max_pipeline: usize, read_cap: usize) -> bool {
        !self.read_closed && self.pending.len() < max_pipeline && self.buf.len() < read_cap
    }

    fn wants_write(&self) -> bool {
        self.out_pos < self.out.len() || matches!(self.pending.front(), Some(Slot::Ready { .. }))
    }
}

// ---------------------------------------------------------------------------
// The shard loop.

struct Shard {
    id: usize,
    listener: TcpListener,
    wake_rx: UnixStream,
    completions: mpsc::Receiver<(u64, Response)>,
    completion_tx: mpsc::Sender<(u64, Response)>,
    waker: Waker,
    handler: Arc<dyn Handler>,
    metrics: Arc<Metrics>,
    shutdown: Arc<AtomicBool>,
    config: LoopConfig,
    /// Per-connection input-buffer cap: a full head plus a full body.
    read_cap: usize,
    conns: HashMap<u64, Conn>,
    /// token → connection id, for routing completions.
    tokens: HashMap<u64, u64>,
    next_conn: u64,
    next_token: u64,
    draining: bool,
}

impl Shard {
    fn run(&mut self) {
        loop {
            if self.shutdown.load(Ordering::SeqCst) {
                self.begin_drain();
            }
            if self.draining && self.conns.is_empty() {
                return;
            }
            let now = Instant::now();
            let timeout = self.poll_timeout(now);
            let (mut fds, listener_idx, first_conn, conn_ids) = self.build_poll_set();
            if poll_fds(&mut fds, timeout).is_err() {
                // EINVAL/ENOMEM would spin; back off and retry.
                std::thread::sleep(Duration::from_millis(1));
                continue;
            }
            Metrics::inc(&self.metrics.event_loop_wakeups);
            if fds[0].revents != 0 {
                self.drain_wake_bytes();
            }
            if let Some(idx) = listener_idx {
                if fds[idx].revents != 0 {
                    self.accept_ready();
                }
            }
            for (i, id) in conn_ids.iter().enumerate() {
                let revents = fds[first_conn + i].revents;
                if revents == 0 {
                    continue;
                }
                if revents & POLLNVAL != 0 {
                    if let Some(conn) = self.conns.remove(id) {
                        self.finalize(conn);
                    }
                    continue;
                }
                self.pump(*id, revents & POLL_READ_EVENTS != 0);
            }
            self.apply_completions();
            // Catch a /shutdown dispatched this iteration before flushing,
            // so its acknowledgement and every in-flight response goes out
            // with the drain's `connection: close` semantics.
            if self.shutdown.load(Ordering::SeqCst) {
                self.begin_drain();
            }
            self.enforce_deadlines();
        }
    }

    fn build_poll_set(&self) -> (Vec<PollFd>, Option<usize>, usize, Vec<u64>) {
        let mut fds = vec![PollFd {
            fd: self.wake_rx.as_raw_fd(),
            events: POLLIN,
            revents: 0,
        }];
        let listener_idx = if self.draining {
            None
        } else {
            fds.push(PollFd {
                fd: self.listener.as_raw_fd(),
                events: POLLIN,
                revents: 0,
            });
            Some(fds.len() - 1)
        };
        let first_conn = fds.len();
        let mut conn_ids = Vec::with_capacity(self.conns.len());
        for (&id, conn) in &self.conns {
            let mut events = 0i16;
            if conn.wants_read(self.config.max_pipeline.max(1), self.read_cap) {
                events |= POLLIN;
            }
            if conn.wants_write() {
                events |= POLLOUT;
            }
            // No interest (e.g. waiting on the engine): leave the fd out of
            // the poll set entirely — POLLHUP is reported regardless of the
            // mask and would busy-spin the loop.
            if events != 0 {
                conn_ids.push(id);
                fds.push(PollFd {
                    fd: conn.stream.as_raw_fd(),
                    events,
                    revents: 0,
                });
            }
        }
        (fds, listener_idx, first_conn, conn_ids)
    }

    fn poll_timeout(&self, now: Instant) -> Duration {
        // The base tick bounds how stale another shard's shutdown flag can
        // go unnoticed; wakeup bytes cover everything latency-critical.
        let mut timeout = Duration::from_millis(if self.draining { 10 } else { 100 });
        let idle_ms = self.config.idle_timeout_ms;
        for conn in self.conns.values() {
            if let Some(deadline) = conn.read_deadline {
                timeout = timeout.min(deadline.saturating_duration_since(now));
            }
            if idle_ms > 0 {
                let stalled_write = conn.out_pos < conn.out.len();
                let pure_idle = !conn.read_closed
                    && conn.pending.is_empty()
                    && conn.out.is_empty()
                    && conn.buf.is_empty();
                if stalled_write || pure_idle {
                    let expiry = conn.idle_since + Duration::from_millis(idle_ms);
                    timeout = timeout.min(expiry.saturating_duration_since(now));
                }
            }
        }
        timeout
    }

    fn drain_wake_bytes(&mut self) {
        let mut sink = [0u8; 64];
        loop {
            match (&self.wake_rx).read(&mut sink) {
                Ok(0) => return,
                Ok(_) => {}
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return,
            }
        }
    }

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if self.draining {
                        continue; // drop: the listener race lost to drain
                    }
                    let _ = stream.set_nonblocking(true);
                    let _ = stream.set_nodelay(true);
                    let max = self.config.max_connections.max(1) as u64;
                    // fetch_add admission keeps the cap race-free across
                    // shards: whoever pushes the gauge past the cap backs
                    // out and sheds.
                    let prev = self
                        .metrics
                        .connections_active
                        .fetch_add(1, Ordering::Relaxed);
                    if prev >= max {
                        self.metrics
                            .connections_active
                            .fetch_sub(1, Ordering::Relaxed);
                        Metrics::inc(&self.metrics.connections_shed);
                        let body = Reject::Overloaded {
                            max_connections: self.config.max_connections,
                        }
                        .body_json();
                        let mut conn = Conn::new(stream, false);
                        conn.out = render_response(503, &body, &[("retry-after", "1")], true);
                        conn.read_closed = true;
                        conn.closing = true;
                        let id = self.next_conn;
                        self.next_conn += 1;
                        self.conns.insert(id, conn);
                        self.pump(id, false);
                    } else {
                        Metrics::inc(&self.metrics.connections_accepted);
                        Metrics::inc(&self.metrics.shard_accepts[self.id % MAX_TRACKED_SHARDS]);
                        let id = self.next_conn;
                        self.next_conn += 1;
                        self.conns.insert(id, Conn::new(stream, true));
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                // Transient accept failures (EMFILE, aborted handshake):
                // leave the backlog for the next tick.
                Err(_) => return,
            }
        }
    }

    /// Runs one connection's state machine: optional read, then
    /// parse→dispatch→flush until quiescent, then reinsert or finalize.
    fn pump(&mut self, id: u64, readable: bool) {
        let Some(mut conn) = self.conns.remove(&id) else {
            return;
        };
        if readable && !conn.read_closed && self.do_read(&mut conn).is_err() {
            self.finalize(conn);
            return;
        }
        self.pump_taken(id, conn);
    }

    fn pump_taken(&mut self, id: u64, mut conn: Conn) {
        loop {
            let before = (
                conn.buf.len(),
                conn.pending.len(),
                conn.out.len(),
                conn.out_pos,
                conn.requests,
            );
            self.parse_and_dispatch(id, &mut conn);
            if self.flush(&mut conn).is_err() {
                self.finalize(conn);
                return;
            }
            let after = (
                conn.buf.len(),
                conn.pending.len(),
                conn.out.len(),
                conn.out_pos,
                conn.requests,
            );
            if after == before {
                break;
            }
        }
        let flushed = conn.out_pos >= conn.out.len();
        let done = flushed
            && (conn.closing
                || (conn.read_closed && conn.pending.is_empty() && conn.buf.is_empty()));
        if done {
            self.finalize(conn);
        } else {
            self.conns.insert(id, conn);
        }
    }

    fn do_read(&self, conn: &mut Conn) -> Result<(), ()> {
        let mut chunk = [0u8; 4096];
        while conn.buf.len() < self.read_cap {
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.read_closed = true;
                    return Ok(());
                }
                Ok(n) => {
                    conn.buf.extend_from_slice(&chunk[..n]);
                    conn.idle_since = Instant::now();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                // Hard socket error: nothing can be answered.
                Err(_) => return Err(()),
            }
        }
        Ok(())
    }

    fn parse_and_dispatch(&mut self, id: u64, conn: &mut Conn) {
        let max_pipeline = self.config.max_pipeline.max(1);
        loop {
            if conn.pending.len() >= max_pipeline {
                return; // backpressure: stop parsing until responses drain
            }
            if conn.buf.is_empty() {
                conn.read_deadline = None;
                return;
            }
            match parse_request(&conn.buf, &self.config.http) {
                Ok(None) => {
                    if conn.read_closed {
                        // Peer half-closed mid-request: the blocking reader
                        // answered this "closed mid-headers" case with 400.
                        let reject = Reject::InvalidRequest {
                            detail: "connection closed mid-request".to_string(),
                        };
                        conn.pending.push_back(Slot::Ready {
                            response: Response::reject(&reject),
                            close: true,
                        });
                        conn.buf.clear();
                        conn.read_deadline = None;
                    } else if conn.read_deadline.is_none() && self.config.request_deadline_ms > 0 {
                        conn.read_deadline = Some(
                            Instant::now() + Duration::from_millis(self.config.request_deadline_ms),
                        );
                    }
                    return;
                }
                Ok(Some(parsed)) => {
                    conn.buf.drain(..parsed.consumed);
                    conn.read_deadline = None;
                    conn.idle_since = Instant::now();
                    conn.requests += 1;
                    if conn.requests >= 2 {
                        Metrics::inc(&self.metrics.connections_reused);
                    }
                    if !conn.pending.is_empty() {
                        Metrics::inc(&self.metrics.pipelined_requests);
                    }
                    let token = self.next_token;
                    self.next_token += 1;
                    let completer = Completer {
                        token,
                        tx: self.completion_tx.clone(),
                        waker: self.waker.clone(),
                    };
                    let handler = Arc::clone(&self.handler);
                    let request = parsed.request;
                    match catch_unwind(AssertUnwindSafe(move || handler.handle(request, completer)))
                    {
                        Ok(Action::Respond(response)) => {
                            conn.pending.push_back(Slot::Ready {
                                response,
                                close: parsed.close,
                            });
                        }
                        Ok(Action::Pending) => {
                            self.tokens.insert(token, id);
                            conn.pending.push_back(Slot::Waiting {
                                token,
                                close: parsed.close,
                            });
                        }
                        Err(_) => {
                            Metrics::inc(&self.metrics.conn_panics_caught);
                            let reject = Reject::InternalError {
                                detail: "handler panicked".to_string(),
                            };
                            conn.pending.push_back(Slot::Ready {
                                response: Response::reject(&reject),
                                close: true,
                            });
                            conn.read_closed = true;
                            conn.buf.clear();
                            return;
                        }
                    }
                    if parsed.close {
                        conn.read_closed = true;
                        conn.buf.clear();
                        return;
                    }
                }
                Err(e) => {
                    // Typed error, then close — mid-pipeline malformed
                    // requests still answer, after the responses queued
                    // ahead of them flush in order.
                    let reject = match &e {
                        HttpError::Timeout => {
                            Metrics::inc(&self.metrics.rejected_request_timeout);
                            Reject::RequestTimeout {
                                deadline_ms: self.config.request_deadline_ms,
                            }
                        }
                        HttpError::LineTooLong { .. } | HttpError::TooManyHeaders { .. } => {
                            Metrics::inc(&self.metrics.rejected_header_limit);
                            Reject::HeaderLimit {
                                detail: e.to_string(),
                            }
                        }
                        _ => Reject::InvalidRequest {
                            detail: e.to_string(),
                        },
                    };
                    conn.pending.push_back(Slot::Ready {
                        response: Response::json(e.http_status(), reject.body_json()),
                        close: true,
                    });
                    conn.read_closed = true;
                    conn.buf.clear();
                    conn.read_deadline = None;
                    return;
                }
            }
        }
    }

    /// Writes buffered output and renders front-of-queue ready responses
    /// until the socket would block or an ordered response is still pending.
    fn flush(&mut self, conn: &mut Conn) -> Result<(), ()> {
        loop {
            while conn.out_pos < conn.out.len() {
                match conn.stream.write(&conn.out[conn.out_pos..]) {
                    Ok(0) => return Err(()),
                    Ok(n) => {
                        conn.out_pos += n;
                        conn.idle_since = Instant::now();
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => return Err(()),
                }
            }
            conn.out.clear();
            conn.out_pos = 0;
            if conn.closing {
                return Ok(());
            }
            match conn.pending.front() {
                Some(Slot::Ready { .. }) => {
                    let Some(Slot::Ready { response, close }) = conn.pending.pop_front() else {
                        unreachable!("front checked Ready");
                    };
                    let is_final = conn.pending.is_empty();
                    let conn_closes = conn.close_after_flush || conn.read_closed;
                    let close_header = close || response.close || (conn_closes && is_final);
                    let headers: Vec<(&str, &str)> = response
                        .headers
                        .iter()
                        .map(|(name, value)| (*name, value.as_str()))
                        .collect();
                    conn.out =
                        render_response(response.status, &response.body, &headers, close_header);
                    conn.out_pos = 0;
                    conn.idle_since = Instant::now();
                    if close_header {
                        conn.closing = true;
                        conn.read_closed = true;
                    }
                }
                // Front response still being computed (ordering) or nothing
                // pending: wait.
                _ => return Ok(()),
            }
        }
    }

    fn apply_completions(&mut self) {
        let mut touched = Vec::new();
        while let Ok((token, response)) = self.completions.try_recv() {
            let Some(conn_id) = self.tokens.remove(&token) else {
                continue; // connection died first; drop the answer
            };
            let Some(conn) = self.conns.get_mut(&conn_id) else {
                continue;
            };
            let found = conn
                .pending
                .iter()
                .position(|slot| matches!(slot, Slot::Waiting { token: t, .. } if *t == token));
            if let Some(idx) = found {
                let close = match conn.pending[idx] {
                    Slot::Waiting { close, .. } => close,
                    Slot::Ready { .. } => unreachable!("position matched Waiting"),
                };
                conn.pending[idx] = Slot::Ready { response, close };
                touched.push(conn_id);
            }
        }
        for id in touched {
            self.pump(id, false);
        }
    }

    fn enforce_deadlines(&mut self) {
        let now = Instant::now();
        let idle_ms = self.config.idle_timeout_ms;
        let ids: Vec<u64> = self.conns.keys().copied().collect();
        for id in ids {
            let Some(conn) = self.conns.get(&id) else {
                continue;
            };
            if conn.read_deadline.is_some_and(|deadline| now >= deadline) {
                let mut conn = self.conns.remove(&id).expect("conn key just seen");
                Metrics::inc(&self.metrics.rejected_request_timeout);
                let reject = Reject::RequestTimeout {
                    deadline_ms: self.config.request_deadline_ms,
                };
                conn.pending.push_back(Slot::Ready {
                    response: Response::reject(&reject),
                    close: true,
                });
                conn.read_closed = true;
                conn.read_deadline = None;
                conn.buf.clear();
                self.pump_taken(id, conn);
                continue;
            }
            if idle_ms > 0 && now.duration_since(conn.idle_since).as_millis() as u64 >= idle_ms {
                let stalled_write = conn.out_pos < conn.out.len();
                let pure_idle = !conn.read_closed
                    && conn.pending.is_empty()
                    && conn.out.is_empty()
                    && conn.buf.is_empty();
                if stalled_write || pure_idle {
                    // Keep-alive idle gap over, or a client that will not
                    // read its response: close silently.
                    let conn = self.conns.remove(&id).expect("conn key just seen");
                    self.finalize(conn);
                }
            }
        }
    }

    fn begin_drain(&mut self) {
        if self.draining {
            return;
        }
        self.draining = true;
        let ids: Vec<u64> = self.conns.keys().copied().collect();
        for id in ids {
            let Some(mut conn) = self.conns.remove(&id) else {
                continue;
            };
            // Answer what is already buffered as complete requests, then
            // stop reading; the final response flushes `connection: close`.
            self.parse_and_dispatch(id, &mut conn);
            conn.read_closed = true;
            conn.close_after_flush = true;
            conn.buf.clear();
            conn.read_deadline = None;
            self.pump_taken(id, conn);
        }
    }

    fn finalize(&mut self, conn: Conn) {
        if conn.counted {
            self.metrics.requests_per_connection.record(conn.requests);
            self.metrics
                .connections_active
                .fetch_sub(1, Ordering::Relaxed);
        }
        for slot in &conn.pending {
            if let Slot::Waiting { token, .. } = slot {
                self.tokens.remove(token);
            }
        }
        let _ = conn.stream.shutdown(std::net::Shutdown::Both);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::{roundtrip, KeepAliveClient};

    /// Echo-ish test handler: immediate answers for `/now`, deferred
    /// answers (completed from a helper thread) for `/later`, panic for
    /// `/boom`.
    struct TestHandler;

    impl Handler for TestHandler {
        fn handle(&self, request: Request, completer: Completer) -> Action {
            match request.path.as_str() {
                "/later" => {
                    std::thread::spawn(move || {
                        std::thread::sleep(Duration::from_millis(5));
                        completer.complete(Response::json(200, r#"{"when":"later"}"#));
                    });
                    Action::Pending
                }
                "/boom" => panic!("handler exploded"),
                _ => Action::Respond(Response::json(
                    200,
                    format!(r#"{{"path":"{}"}}"#, request.path),
                )),
            }
        }
    }

    fn start_loop(
        config_mut: impl FnOnce(&mut LoopConfig),
    ) -> (
        EventLoop,
        std::net::SocketAddr,
        Arc<Metrics>,
        Arc<AtomicBool>,
    ) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut config = LoopConfig {
            shards: 2,
            http: HttpLimits::default(),
            request_deadline_ms: 10_000,
            idle_timeout_ms: 10_000,
            max_connections: 64,
            max_pipeline: 32,
        };
        config_mut(&mut config);
        let metrics = Arc::new(Metrics::default());
        let shutdown = Arc::new(AtomicBool::new(false));
        let event_loop = EventLoop::spawn(
            listener,
            config,
            Arc::new(TestHandler),
            Arc::clone(&metrics),
            Arc::clone(&shutdown),
        )
        .unwrap();
        (event_loop, addr, metrics, shutdown)
    }

    fn stop(event_loop: EventLoop, shutdown: &AtomicBool) {
        shutdown.store(true, Ordering::SeqCst);
        event_loop.wake();
        event_loop.join();
    }

    #[test]
    fn immediate_and_deferred_responses_round_trip() {
        let (event_loop, addr, _metrics, shutdown) = start_loop(|_| {});
        let (status, body) = roundtrip(addr, "GET", "/now", b"").unwrap();
        assert_eq!(
            (status, body.as_slice()),
            (200, br#"{"path":"/now"}"#.as_slice())
        );
        let (status, body) = roundtrip(addr, "GET", "/later", b"").unwrap();
        assert_eq!(
            (status, body.as_slice()),
            (200, br#"{"when":"later"}"#.as_slice())
        );
        stop(event_loop, &shutdown);
    }

    #[test]
    fn keep_alive_pipelining_keeps_request_order() {
        let (event_loop, addr, metrics, shutdown) = start_loop(|_| {});
        let mut client = KeepAliveClient::new(addr);
        // Mixed immediate/deferred pipelined batch: responses must come
        // back in request order regardless of completion order.
        let responses = client
            .request_batch(&[
                ("GET", "/later", b"".as_slice()),
                ("GET", "/a", b"".as_slice()),
                ("GET", "/later", b"".as_slice()),
                ("GET", "/b", b"".as_slice()),
            ])
            .unwrap();
        let bodies: Vec<&str> = responses
            .iter()
            .map(|(status, body)| {
                assert_eq!(*status, 200);
                std::str::from_utf8(body).unwrap()
            })
            .collect();
        assert_eq!(
            bodies,
            vec![
                r#"{"when":"later"}"#,
                r#"{"path":"/a"}"#,
                r#"{"when":"later"}"#,
                r#"{"path":"/b"}"#,
            ]
        );
        assert_eq!(client.connects(), 1, "one connection served the batch");
        let snapshot = metrics.snapshot();
        assert!(snapshot.pipelined_requests >= 1, "batch pipelined");
        assert!(snapshot.connections_reused >= 3);
        stop(event_loop, &shutdown);
    }

    #[test]
    fn handler_panics_answer_500_and_close() {
        let (event_loop, addr, metrics, shutdown) = start_loop(|_| {});
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let (status, body) = roundtrip(addr, "GET", "/boom", b"").unwrap();
        std::panic::set_hook(prev_hook);
        assert_eq!(status, 500, "{}", String::from_utf8_lossy(&body));
        assert_eq!(metrics.snapshot().conn_panics_caught, 1);
        // The loop survives: the next request answers normally.
        let (status, _) = roundtrip(addr, "GET", "/still-up", b"").unwrap();
        assert_eq!(status, 200);
        stop(event_loop, &shutdown);
    }

    #[test]
    fn drain_answers_in_flight_requests_with_connection_close() {
        let (event_loop, addr, _metrics, shutdown) = start_loop(|_| {});
        // Park a deferred request, then trigger drain before it completes.
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(&crate::http::render_request(
                "GET", "/later", "t", b"", false,
            ))
            .unwrap();
        std::thread::sleep(Duration::from_millis(2));
        shutdown.store(true, Ordering::SeqCst);
        event_loop.wake();
        let mut reader = std::io::BufReader::new(&stream);
        let parts = crate::http::read_response(&mut reader).unwrap();
        assert_eq!(parts.status, 200);
        assert!(
            parts.close,
            "final in-flight response announces connection: close"
        );
        event_loop.join();
    }

    #[test]
    fn byte_at_a_time_requests_complete_and_slowloris_gets_408() {
        let (event_loop, addr, metrics, shutdown) =
            start_loop(|config| config.request_deadline_ms = 150);
        // A slow-but-finite client completes normally.
        let mut stream = TcpStream::connect(addr).unwrap();
        for byte in b"GET /drip HTTP/1.1\r\n\r\n" {
            stream.write_all(&[*byte]).unwrap();
        }
        let mut reader = std::io::BufReader::new(&stream);
        let parts = crate::http::read_response(&mut reader).unwrap();
        assert_eq!(parts.status, 200);
        drop(reader);
        drop(stream);
        // A stalling client is cut off with a typed 408 at the deadline.
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"GET /stall HT").unwrap();
        let mut reader = std::io::BufReader::new(&stream);
        let parts = crate::http::read_response(&mut reader).unwrap();
        assert_eq!(parts.status, 408);
        assert_eq!(metrics.snapshot().rejected_request_timeout, 1);
        stop(event_loop, &shutdown);
    }

    #[test]
    fn mid_pipeline_malformed_requests_answer_typed_errors_then_close() {
        let (event_loop, addr, _metrics, shutdown) = start_loop(|_| {});
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut wire = Vec::new();
        wire.extend_from_slice(&crate::http::render_request("GET", "/ok", "t", b"", false));
        wire.extend_from_slice(b"GET /bad HTTP/1.1\r\ncontent-length: nope\r\n\r\n");
        stream.write_all(&wire).unwrap();
        let mut reader = std::io::BufReader::new(&stream);
        let first = crate::http::read_response(&mut reader).unwrap();
        assert_eq!(first.status, 200, "valid leading request still answers");
        let second = crate::http::read_response(&mut reader).unwrap();
        assert_eq!(second.status, 400, "malformed follow-up answers typed 400");
        assert!(second.close, "malformed request closes the connection");
        stop(event_loop, &shutdown);
    }

    #[test]
    fn connections_beyond_the_cap_are_shed_with_retry_after() {
        let (event_loop, addr, metrics, shutdown) = start_loop(|config| {
            config.max_connections = 1;
        });
        let mut holder = TcpStream::connect(addr).unwrap();
        holder.write_all(b"GET /hold HT").unwrap();
        let deadline = Instant::now() + Duration::from_secs(2);
        while metrics.connections_active.load(Ordering::Relaxed) < 1 {
            assert!(Instant::now() < deadline, "holder never admitted");
            std::thread::sleep(Duration::from_millis(1));
        }
        let shed = TcpStream::connect(addr).unwrap();
        let mut reader = std::io::BufReader::new(&shed);
        let parts = crate::http::read_response(&mut reader).unwrap();
        assert_eq!(parts.status, 503);
        assert_eq!(metrics.snapshot().connections_shed, 1);
        drop(reader);
        drop(holder);
        stop(event_loop, &shutdown);
    }
}
