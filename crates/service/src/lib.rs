#![warn(missing_docs)]

//! # mqo-service — a batching MQO solve server
//!
//! Long-running, std-only HTTP service over the Algorithm-1 pipeline (see
//! DESIGN.md §8). A request travels through four layers:
//!
//! ```text
//! POST /solve ──▶ admission queue ──▶ batching workers ──▶ router
//!                 (bounded depth,      (groups requests,    │
//!                  per-request          sorts batches by    ├─▶ annealer ──▶ embedding
//!                  deadlines, typed     structure key)      │               cache (LRU)
//!                  429 rejections)                          ├─▶ MILP
//!                                                           └─▶ hill climbing
//! ```
//!
//! * [`queue`] — bounded admission with per-request deadlines; overload
//!   returns a typed rejection ([`api::Reject`]) instead of queuing without
//!   bound, and graceful shutdown drains every admitted request.
//! * [`cache`] — the embedding/programming cache. Choi's minor-embedding
//!   construction is structure-dependent, not weight-dependent, so
//!   structurally identical instances reuse a cached embedding and only
//!   re-derive the Ising weights. Keys combine
//!   `Qubo::structure_hash` with `ChimeraGraph::fingerprint`.
//! * [`router`] — the paper's representability split (Section 6/7): instances
//!   over the (possibly fault-degraded) Chimera capacity bound are routed to
//!   the MILP or hill-climbing backends instead of the annealer.
//! * [`server`] — hand-rolled HTTP/1.1 over `std::net` exposing
//!   `POST /solve`, `GET /metrics`, `GET /healthz`, and `POST /shutdown`.
//! * [`breaker`] — per-backend circuit breakers; a repeatedly failing
//!   backend is skipped in favour of the next candidate (DESIGN.md §9).
//! * [`chaos`] — deterministic fault injection for the serving stack:
//!   seeded worker panics, worker deaths, backend failures, and cell-kill
//!   schedules keyed on request content / seeded streams, inert by default.
//! * [`supervisor`] — fleet supervision for `mqo_serve` cells run as child
//!   processes: respawn with exponential backoff, crash-loop quarantine,
//!   deadline-bounded health probes (DESIGN.md §14).
//! * [`shard`] — the structure-sharded `mqo_router` front with zero-loss
//!   failover: bounded in-flight journals, deterministic replay on healthy
//!   cells within the client's deadline budget, and a response cache for
//!   idempotent repeats.
//!
//! The `mqo_serve` binary wires the layers together; the `loadgen` bench bin
//! (in `mqo-bench`) replays paper-workload request streams against it.

pub mod api;
pub mod breaker;
pub mod cache;
pub mod chaos;
pub mod engine;
pub mod event_loop;
pub mod http;
pub mod metrics;
pub mod queue;
pub mod router;
pub mod server;
pub mod shard;
pub mod supervisor;

pub use api::{Backend, Reject, SolveRequest, SolveResponse};
pub use breaker::{BreakerConfig, BreakerSnapshot, BreakerState, CircuitBreaker};
pub use cache::{CacheKey, CacheStats, EmbeddingCache};
pub use chaos::ChaosConfig;
pub use engine::{BreakerPanel, EngineConfig, SolveEngine};
pub use event_loop::{Action, Completer, EventLoop, Handler, LoopConfig, Response};
pub use metrics::{Metrics, MetricsSnapshot};
pub use queue::{QueueConfig, SolveQueue};
pub use router::{route, RouteDecision, RouterConfig};
pub use server::{Server, ServerConfig};
pub use shard::{
    next_deadline, structure_key, CellSnapshot, FailoverConfig, MqoRouter, MqoRouterConfig,
};
pub use supervisor::{
    RespawnPolicy, RespawnVerdict, SupervisedCellSnapshot, Supervisor, SupervisorConfig,
};
